// Fig 8 reproduction: number of WDMs for optical connections before the
// placement (i.e. #connections, one waveguide each), after the greedy
// placement (§4.1, "initial"), and after the min-cost max-flow
// assignment (§4.2, "final"), normalized to #connections = 100% per
// case. The paper reports large savings from placement and a further
// 8.9% average reduction from the flow assignment.

#include <cstdio>

#include "benchgen/benchgen.hpp"
#include "core/flow.hpp"
#include "obs/sink.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace operon;
  const util::Cli cli(argc, argv);
  const obs::CliObservation observing(cli);  // --trace-out/--metrics-out

  std::printf("=== Fig 8: WDM counts before placement / after placement / "
              "after flow assignment ===\n\n");

  util::Table table({"Bench", "#Connections", "#Initial WDMs", "#Final WDMs",
                     "initial %", "final %", "flow saving %"});
  double saving_sum = 0.0;
  int cases = 0;
  for (const std::string& id : benchgen::table1_cases()) {
    const model::Design design =
        benchgen::generate_benchmark(benchgen::table1_spec(id));
    core::OperonOptions options;
    options.solver = core::SolverKind::Lr;
    const core::OperonResult result = core::run_operon(design, options);
    const wdm::WdmPlan& plan = result.wdm_plan;

    const double conns = static_cast<double>(plan.connections.size());
    const double initial = static_cast<double>(plan.initial_wdms);
    const double final_wdms = static_cast<double>(plan.final_wdms);
    const double saving =
        initial > 0 ? 100.0 * (initial - final_wdms) / initial : 0.0;
    saving_sum += saving;
    ++cases;
    table.add_row({id, std::to_string(plan.connections.size()),
                   std::to_string(plan.initial_wdms),
                   std::to_string(plan.final_wdms),
                   util::fixed(conns > 0 ? 100.0 * initial / conns : 0.0, 1),
                   util::fixed(conns > 0 ? 100.0 * final_wdms / conns : 0.0, 1),
                   util::fixed(saving, 1)});
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("Average flow-assignment saving: %.1f%% of placed WDMs "
              "(paper: 8.9%% on average).\n",
              saving_sum / cases);
  std::printf("Placement itself reduces waveguide count to well below the "
              "connection count wherever channel sharing is possible "
              "(narrow-bus cases I2/I5); 32-bit buses (I3) cannot share a "
              "32-channel WDM, so their reduction comes from the flow "
              "splitting channels across neighbors.\n");
  return 0;
}
