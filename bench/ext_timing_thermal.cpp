// Extension experiments beyond the paper's tables:
//
//  E1 — interconnect timing: worst/mean source-to-sink delay of the
//       all-electrical design vs the OPERON design (the intro's
//       "interconnect delay becomes a bottleneck" motivation, measured),
//       plus the raw electrical/optical delay crossover length.
//
//  E2 — ring thermal tuning (refs [2]/[6]): the electrical layer heats
//       the die; resonant EO/OE rings pay tuning power proportional to
//       their temperature offset. Compares GLOW vs OPERON tuning energy
//       on each Table 1 case — a cooler electrical layer (Fig 9) also
//       buys cheaper ring tuning.

#include "obs/sink.hpp"
#include "util/cli.hpp"
#include <cstdio>

#include "baseline/routers.hpp"
#include "benchgen/benchgen.hpp"
#include "core/flow.hpp"
#include "thermal/thermal.hpp"
#include "timing/timing.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const operon::util::Cli cli(argc, argv);
  const operon::obs::CliObservation observing(cli);  // --trace-out/--metrics-out
  using namespace operon;
  const timing::TimingParams timing_params = timing::TimingParams::defaults();

  std::printf("=== E1: interconnect timing (electrical vs OPERON) ===\n\n");
  std::printf("electrical/optical delay crossover: %.0f um\n\n",
              timing::delay_crossover_um(timing_params));

  util::Table timing_table({"Bench", "elec worst (ps)", "elec mean (ps)",
                            "OPERON worst (ps)", "OPERON mean (ps)",
                            "speedup"});
  util::Table thermal_table({"Bench", "GLOW Tmax (C)", "OPERON Tmax (C)",
                             "GLOW pJ/ring", "OPERON pJ/ring",
                             "per-ring saving"});
  const thermal::ThermalParams thermal_params;

  for (const std::string& id : benchgen::table1_cases()) {
    const model::Design design =
        benchgen::generate_benchmark(benchgen::table1_spec(id));
    core::OperonOptions options;
    options.solver = core::SolverKind::Lr;
    options.run_wdm_stage = false;
    const core::OperonResult result = core::run_operon(design, options);

    // E1: timing.
    codesign::SelectionEvaluator evaluator(result.sets, options.params);
    const auto electrical_selection = evaluator.all_electrical();
    const auto elec_timing = timing::analyze_selection(
        result.sets, electrical_selection, timing_params);
    const auto operon_timing =
        timing::analyze_selection(result.sets, result.selection, timing_params);
    timing_table.add_row(
        {id, util::fixed(elec_timing.worst_delay_ps, 1),
         util::fixed(elec_timing.mean_worst_delay_ps, 1),
         util::fixed(operon_timing.worst_delay_ps, 1),
         util::fixed(operon_timing.mean_worst_delay_ps, 1),
         util::fixed(elec_timing.mean_worst_delay_ps /
                         std::max(operon_timing.mean_worst_delay_ps, 1e-9),
                     2) +
             "x"});

    // E2: thermal tuning.
    const auto glow = baseline::route_optical_glow(result.sets, options.params);
    std::vector<codesign::Candidate> operon_chosen;
    for (std::size_t i = 0; i < result.sets.size(); ++i) {
      operon_chosen.push_back(result.sets[i].options[result.selection[i]]);
    }
    const auto glow_thermal = thermal::analyze(
        design.chip, result.sets, glow.chosen, options.params, thermal_params);
    const auto operon_thermal =
        thermal::analyze(design.chip, result.sets, operon_chosen,
                         options.params, thermal_params);
    const double glow_per_ring =
        glow_thermal.rings.empty()
            ? 0.0
            : glow_thermal.total_tuning_pj / glow_thermal.rings.size();
    const double operon_per_ring =
        operon_thermal.rings.empty()
            ? 0.0
            : operon_thermal.total_tuning_pj / operon_thermal.rings.size();
    const double saving =
        glow_per_ring > 0
            ? 100.0 * (glow_per_ring - operon_per_ring) / glow_per_ring
            : 0.0;
    thermal_table.add_row(
        {id, util::fixed(glow_thermal.max_temperature_c, 1),
         util::fixed(operon_thermal.max_temperature_c, 1),
         util::fixed(glow_per_ring, 3), util::fixed(operon_per_ring, 3),
         util::fixed(saving, 1) + "%"});
  }
  std::printf("%s\n", timing_table.to_text().c_str());
  std::printf("Expected: the hybrid design's mean delay beats all-copper "
              "(optical time-of-flight + fixed conversion latency vs "
              "repeatered RC) wherever nets are long.\n\n");

  std::printf("=== E2: ring thermal tuning (GLOW vs OPERON) ===\n\n%s\n",
              thermal_table.to_text().c_str());
  std::printf("Expected: OPERON's cooler electrical layer (Fig 9) lowers "
              "die temperature peaks, so each resonant ring sits closer "
              "to its design-time tuning point and pays less tuning "
              "energy (OPERON routes more nets optically, so its total "
              "ring count is larger — the per-ring energy is the fair "
              "comparison).\n");
  return 0;
}
