// Fig 3(b) reproduction: normalized power distribution through cascaded
// 50-50 Y-branch splitters. The paper's simulation shows each branch
// halving the input power; we print the per-output normalized power for
// 1..4 cascade levels and the equivalent splitting loss in dB, plus an
// unbalanced tree to illustrate the worst-output metric the loss model
// (Eq. 2) protects.

#include "obs/sink.hpp"
#include "util/cli.hpp"
#include <cstdio>

#include "model/params.hpp"
#include "optical/loss.hpp"
#include "optical/splitter.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const operon::util::Cli cli(argc, argv);
  const operon::obs::CliObservation observing(cli);  // --trace-out/--metrics-out
  using namespace operon;
  const model::OpticalParams params = model::TechParams::dac18_defaults().optical;

  std::printf("=== Fig 3(b): normalized power in cascaded 50-50 Y-branch "
              "splitters ===\n\n");

  util::Table table({"cascade depth", "#outputs", "power per output",
                     "splitting loss (dB)", "ideal 10*log10(2^d)"});
  for (int depth = 0; depth <= 4; ++depth) {
    const optical::SplitterNode tree = optical::balanced_cascade(depth);
    const auto outputs = optical::simulate(params, tree, 1.0);
    table.add_row({std::to_string(depth), std::to_string(outputs.size()),
                   util::fixed(outputs.front(), 4),
                   util::fixed(optical::worst_split_loss_db(params, tree), 3),
                   util::fixed(10.0 * depth * 0.30103, 3)});
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("Paper Fig 3(b): two cascaded branches -> every output at 1/4 "
              "of the input (6.02 dB), as in row depth=2.\n\n");

  // Unbalanced split tree: one arm splits again. The worst output sets
  // the detection constraint.
  optical::SplitterNode unbalanced;
  unbalanced.arms.push_back(optical::balanced_cascade(2));
  unbalanced.arms.push_back(optical::balanced_cascade(0));
  const auto outputs = optical::simulate(params, unbalanced, 1.0);
  std::printf("Unbalanced tree (one arm re-split twice): outputs =");
  for (double p : outputs) std::printf(" %.4f", p);
  std::printf("  worst-output loss = %.3f dB\n",
              optical::worst_split_loss_db(params, unbalanced));

  // Eq. (2) sanity line: a 1 cm waveguide with 3 crossings and a 4-way
  // split, the loss decomposition the router reasons about.
  const std::vector<int> splits{4};
  const auto loss = optical::path_loss(params, 1e4, 3, splits);
  std::printf("\nEq. (2) example: 1 cm, 3 crossings, 1-to-4 split -> "
              "%.3f dB propagation + %.3f dB crossing + %.3f dB splitting "
              "= %.3f dB total (budget lm = %.1f dB)\n",
              loss.propagation_db, loss.crossing_db, loss.splitting_db,
              loss.total_db(), params.max_loss_db);
  return 0;
}
