// Ablation A: the co-design DP's inferior-solution pruning (Fig 5's
// mechanism). We compare candidate generation with (a) full Pareto
// pruning + pool cap, (b) pool cap only, (c) tight pool caps, measuring
// generation runtime, candidate counts, and the final OPERON(LR) power.
// The expected result: pruning costs no measurable quality while keeping
// the candidate explosion in check — the paper's O(|Nc||d|) claim relies
// on it.

#include <cstdio>

#include "benchgen/benchgen.hpp"
#include "core/flow.hpp"
#include "obs/sink.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace operon;
  const util::Cli cli(argc, argv);
  const obs::CliObservation observing(cli);  // --trace-out/--metrics-out
  const std::string id = cli.get("bench", "I1");

  std::printf("=== Ablation A: DP Pareto pruning (case %s) ===\n\n",
              id.c_str());
  const model::Design design =
      benchgen::generate_benchmark(benchgen::table1_spec(id));

  struct Config {
    const char* name;
    std::size_t max_labels;
    bool prune_dominated;
  };
  const Config configs[] = {
      {"pareto + cap 24 (default)", 24, true},
      {"pareto + cap 8", 8, true},
      {"cap 24, no pareto", 24, false},
      {"pareto, no cap", 0, true},
  };

  util::Table table({"configuration", "gen time (s)", "avg candidates/net",
                     "LR power (pJ)", "LR CPU (s)"});
  for (const Config& config : configs) {
    core::OperonOptions options;
    options.solver = core::SolverKind::Lr;
    options.run_wdm_stage = false;
    options.generation.dp.max_labels = config.max_labels;
    options.generation.dp.prune_dominated = config.prune_dominated;

    util::Timer timer;
    const core::OperonResult result = core::run_operon(design, options);
    std::size_t candidates = 0;
    for (const auto& set : result.sets) candidates += set.options.size();
    table.add_row({config.name, util::fixed(result.stats.times.generation_s, 2),
                   util::fixed(static_cast<double>(candidates) /
                                   static_cast<double>(result.sets.size()),
                               2),
                   util::fixed(result.stats.power_pj, 1),
                   util::fixed(result.stats.times.selection_s, 2)});
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("Expected: identical (or near-identical) power across rows; "
              "pruning/capping trades nothing measurable for bounded label "
              "growth.\n");
  return 0;
}
