// Crossing-engine microbenchmark: brute-force pair loop vs the bucket
// SegmentIndex vs the sweep-line counter over random segment soups at
// several density regimes. All three counters must agree exactly (the
// sweep and index are drop-in replacements for the brute oracle); the
// totals are recorded as semantic metrics and the per-method runtimes as
// timing gauges in one ledger record per regime, so
// `scripts/bench_regress.py point` can fold a run into the
// BENCH_crossing.json trajectory and `operon_cli compare` can gate the
// counts across commits.
//
// Artifacts (the ledger JSONL) land in --outdir (default CWD).

#include <cstdio>
#include <string>
#include <vector>

#include "codesign/crossing.hpp"
#include "geom/sweep.hpp"
#include "obs/ledger.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using operon::geom::Point;
using operon::geom::Segment;

struct Regime {
  const char* name;
  std::size_t lhs_segments;
  std::size_t rhs_segments;
  double span_um;     ///< max segment extent (shorter = sparser contact)
  bool axis_aligned;  ///< rectilinear soup (collinear-heavy regime)
};

// Densities bracket the solver's workloads: "sparse" looks like two
// candidate paths, "dense" like a whole net's geometry vs a congested
// region, "grid" stresses the collinear/degenerate handling.
constexpr Regime kRegimes[] = {
    {"sparse", 32, 32, 800.0, false},
    {"medium", 256, 256, 2500.0, false},
    {"dense", 1024, 1024, 6000.0, false},
    {"grid", 512, 512, 3000.0, true},
};

constexpr double kChipUm = 20000.0;

std::vector<Segment> random_soup(const Regime& regime, std::size_t n,
                                 operon::util::Rng& rng) {
  std::vector<Segment> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Point a{rng.uniform(0.0, kChipUm), rng.uniform(0.0, kChipUm)};
    Point b{a.x + rng.uniform(-regime.span_um, regime.span_um),
            a.y + rng.uniform(-regime.span_um, regime.span_um)};
    if (regime.axis_aligned) {
      // Alternate H/V on a coarse grid: maximal collinear overlap.
      if (i % 2 == 0) {
        b.y = a.y;
      } else {
        b.x = a.x;
      }
    }
    out.push_back({a, b});
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace operon;
  const util::Cli cli(argc, argv);
  const std::size_t reps =
      static_cast<std::size_t>(cli.get_int("reps", 20));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  // --ledger-out is a full path (matching the other binaries); the
  // default artifact drops into --outdir.
  const std::string ledger_path = cli.has("ledger-out")
                                      ? cli.get("ledger-out", "")
                                      : cli.out_path("micro_crossing.jsonl");

  std::printf("=== Crossing engine: brute vs indexed vs sweep ===\n");
  std::printf("(%zu reps per cell; ledger -> %s)\n\n", reps,
              ledger_path.c_str());

  util::Table table({"Regime", "|L|", "|R|", "Crossings", "Brute(s)",
                     "Indexed(s)", "Sweep(s)", "Sweep speedup"});

  for (const Regime& regime : kRegimes) {
    util::Rng rng(seed);
    const std::vector<Segment> lhs =
        random_soup(regime, regime.lhs_segments, rng);
    const std::vector<Segment> rhs =
        random_soup(regime, regime.rhs_segments, rng);

    util::Timer brute_timer;
    std::size_t brute = 0;
    for (std::size_t r = 0; r < reps; ++r) {
      brute = geom::count_crossings_brute(lhs, rhs);
    }
    const double brute_s = brute_timer.seconds();

    // Index construction is counted: the solvers rebuild it per design.
    util::Timer indexed_timer;
    std::size_t indexed = 0;
    for (std::size_t r = 0; r < reps; ++r) {
      codesign::SegmentIndex index(
          geom::BBox::of({0.0, 0.0}, {kChipUm, kChipUm}));
      index.add_all(/*net=*/1, rhs);
      index.finalize();
      indexed = 0;
      for (const Segment& seg : lhs) {
        indexed += index.count_crossings(seg, /*exclude_net=*/0);
      }
    }
    const double indexed_s = indexed_timer.seconds();

    util::Timer sweep_timer;
    std::size_t sweep = 0;
    for (std::size_t r = 0; r < reps; ++r) {
      sweep = geom::count_crossings_sweep(lhs, rhs);
    }
    const double sweep_s = sweep_timer.seconds();

    OPERON_CHECK_MSG(sweep == brute && indexed == brute,
                     "crossing counters disagree on regime "
                         << regime.name << ": brute " << brute << ", indexed "
                         << indexed << ", sweep " << sweep);

    table.add_row({regime.name, std::to_string(regime.lhs_segments),
                   std::to_string(regime.rhs_segments), std::to_string(brute),
                   util::fixed(brute_s, 3), util::fixed(indexed_s, 3),
                   util::fixed(sweep_s, 3),
                   sweep_s > 0.0 ? util::fixed(brute_s / sweep_s, 1) + "x"
                                 : std::string("-")});

    // One ledger record per regime: the count is the semantic anchor
    // (bit-identical across methods, commits, and machines for a fixed
    // seed), the per-method runtimes are timing gauges held only to
    // ratio thresholds.
    obs::LedgerRecord record;
    record.case_id = std::string("crossing-") + regime.name;
    record.seed = seed;
    record.options = "micro-crossing-v1";
    record.solver = "micro";
    record.threads = 1;
    const auto metric = [](std::string name, double value, bool timing) {
      obs::MetricPoint point;
      point.name = std::move(name);
      point.kind = obs::MetricKind::Gauge;
      point.timing = timing;
      point.value = value;
      return point;
    };
    record.metrics.push_back(
        metric("crossing.total", static_cast<double>(brute), false));
    record.metrics.push_back(metric(
        "crossing.segments",
        static_cast<double>(regime.lhs_segments + regime.rhs_segments), false));
    record.timings.push_back(metric("time.brute_s", brute_s, true));
    record.timings.push_back(metric("time.indexed_s", indexed_s, true));
    record.timings.push_back(metric("time.sweep_s", sweep_s, true));
    record.timings.push_back(metric("time.total_s", brute_s + indexed_s + sweep_s, true));
    obs::append_ledger_record(ledger_path, record);
  }

  std::printf("%s\n", table.to_text().c_str());
  std::printf("All three counters agreed exactly on every regime.\n");
  return 0;
}
