// Ablation B: the §3.3 speed-up — removing crossing variables for
// hyper-net pairs with non-overlapping bounding boxes (plus this repo's
// sharper conflict-graph decomposition). We compare the exact selection
// with and without the reduction on progressively larger slices of a
// Table 1 case: interaction-pair counts, component structure, nodes
// explored, runtime, and (identical) optimal power.

#include <cstdio>

#include "benchgen/benchgen.hpp"
#include "cluster/hypernet_builder.hpp"
#include "codesign/generate.hpp"
#include "codesign/ilp_select.hpp"
#include "obs/sink.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace operon;
  const util::Cli cli(argc, argv);
  const obs::CliObservation observing(cli);  // --trace-out/--metrics-out
  const double limit = cli.get_double("limit", 10.0);

  std::printf("=== Ablation B: ILP variable reduction (bounding boxes, "
              "Sec 3.3) ===\n\n");

  const model::TechParams params = model::TechParams::dac18_defaults();
  const model::Design design =
      benchgen::generate_benchmark(benchgen::table1_spec("I1"));
  cluster::SignalProcessingOptions processing;
  processing.kmeans.capacity =
      static_cast<std::size_t>(params.optical.wdm_capacity);
  const auto nets = cluster::build_hyper_nets(design, processing);

  util::Table table({"#hnets", "reduction", "interacting pairs", "components",
                     "largest", "nodes", "time (s)", "power (pJ)", "status"});
  for (const std::size_t count : {30ul, 60ul, 120ul}) {
    std::vector<model::HyperNet> slice(
        nets.hyper_nets.begin(),
        nets.hyper_nets.begin() + static_cast<std::ptrdiff_t>(
                                      std::min(count, nets.hyper_nets.size())));
    const auto sets = codesign::generate_candidates(design, slice, params);

    for (const bool reduce : {true, false}) {
      codesign::SelectOptions options;
      options.time_limit_s = limit;
      options.reduce_variables = reduce;
      const auto result = codesign::solve_selection_exact(sets, params, options);
      codesign::SelectionEvaluator evaluator(sets, params, !reduce);
      table.add_row({std::to_string(slice.size()), reduce ? "on" : "off",
                     std::to_string(evaluator.num_interacting_pairs()),
                     std::to_string(result.num_components),
                     std::to_string(result.largest_component),
                     std::to_string(result.nodes_explored),
                     util::fixed(result.runtime_s, 3),
                     util::fixed(result.power_pj, 1),
                     result.proven_optimal
                         ? "optimal"
                         : (result.timed_out ? "timeout" : "feasible")});
    }
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("Expected: identical power on/off (the reduction is exact), "
              "with far fewer interacting pairs and faster/prove-able solves "
              "when it is on.\n");
  return 0;
}
