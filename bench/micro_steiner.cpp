// Microbenchmarks for the Steiner engine: MST, BI1S (both metrics),
// baseline generation, and crossing counting — the inner loops of
// candidate generation.

#include "obs/sink.hpp"
#include "util/cli.hpp"
#include <benchmark/benchmark.h>

#include "codesign/crossing.hpp"
#include "steiner/bi1s.hpp"
#include "steiner/mst.hpp"
#include "util/rng.hpp"

namespace {

std::vector<operon::geom::Point> random_points(std::size_t n,
                                               std::uint64_t seed) {
  operon::util::Rng rng(seed);
  std::vector<operon::geom::Point> pts(n);
  for (auto& p : pts) p = {rng.uniform(0, 20000), rng.uniform(0, 20000)};
  return pts;
}

void BM_Mst(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        operon::steiner::mst_length(pts, operon::steiner::Metric::Euclidean));
  }
}
BENCHMARK(BM_Mst)->Arg(8)->Arg(32)->Arg(128);

void BM_Bi1sEuclidean(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        operon::steiner::bi1s(pts, {.metric = operon::steiner::Metric::Euclidean}));
  }
}
BENCHMARK(BM_Bi1sEuclidean)->Arg(4)->Arg(8)->Arg(12);

void BM_Bi1sRectilinear(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(operon::steiner::bi1s(
        pts, {.metric = operon::steiner::Metric::Rectilinear}));
  }
}
BENCHMARK(BM_Bi1sRectilinear)->Arg(4)->Arg(8)->Arg(12);

void BM_GenerateBaselines(benchmark::State& state) {
  const auto pts = random_points(6, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(operon::steiner::generate_baselines(
        pts, operon::steiner::Metric::Euclidean, 3));
  }
}
BENCHMARK(BM_GenerateBaselines);

void BM_SegmentIndexQuery(benchmark::State& state) {
  operon::util::Rng rng(5);
  const operon::geom::BBox chip = operon::geom::BBox::of({0, 0}, {20000, 20000});
  operon::codesign::SegmentIndex index(chip, 64);
  const std::size_t segments = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < segments; ++i) {
    index.add(i, {{rng.uniform(0, 20000), rng.uniform(0, 20000)},
                  {rng.uniform(0, 20000), rng.uniform(0, 20000)}});
  }
  index.finalize();
  const operon::geom::Segment probe{{1000, 1000}, {19000, 18000}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.count_crossings(probe, 1u << 30));
  }
}
BENCHMARK(BM_SegmentIndexQuery)->Arg(100)->Arg(1000)->Arg(4000);

}  // namespace

int main(int argc, char** argv) {
  const operon::util::Cli cli(argc, argv);
  const operon::obs::CliObservation observing(cli);  // --trace-out/--metrics-out
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
