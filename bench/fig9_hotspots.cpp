// Fig 9 reproduction: power-consumption distribution of I2 on the
// optical and electrical layers, for GLOW and OPERON. The paper's
// observation: the optical-layer hotspot maps are similar (similar
// EO/OE conversion volumes), while OPERON's electrical layer is much
// cooler (far fewer electrical wires). We print total/max/hotspot-share
// statistics per layer plus coarse ASCII heat maps, and write the full
// grids as CSV next to the binary for external plotting.

#include <cstdio>
#include <fstream>

#include "baseline/routers.hpp"
#include "benchgen/benchgen.hpp"
#include "core/flow.hpp"
#include "core/powermap.hpp"
#include "obs/sink.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace operon;
  const util::Cli cli(argc, argv);
  const obs::CliObservation observing(cli);  // --trace-out/--metrics-out
  const std::string id = cli.get("bench", "I2");
  const auto cells = static_cast<std::size_t>(cli.get_int("cells", 48));

  std::printf("=== Fig 9: power distribution of %s (GLOW vs OPERON) ===\n\n",
              id.c_str());

  const model::Design design =
      benchgen::generate_benchmark(benchgen::table1_spec(id));
  core::OperonOptions options;
  options.solver = core::SolverKind::Lr;
  options.run_wdm_stage = false;
  options.threads = cli.get_threads();
  const core::OperonResult result = core::run_operon(design, options);

  const auto glow = baseline::route_optical_glow(result.sets, options.params);
  std::vector<codesign::Candidate> operon_chosen;
  operon_chosen.reserve(result.sets.size());
  for (std::size_t i = 0; i < result.sets.size(); ++i) {
    operon_chosen.push_back(result.sets[i].options[result.selection[i]]);
  }

  const core::PowerMap glow_map = core::build_power_map(
      design.chip, result.sets, glow.chosen, options.params, cells);
  const core::PowerMap operon_map = core::build_power_map(
      design.chip, result.sets, operon_chosen, options.params, cells);

  const std::size_t top = cells * cells / 20;  // hottest 5% of cells
  util::Table table({"layer / metric", "GLOW", "OPERON", "OPERON/GLOW"});
  const auto ratio = [](double a, double b) {
    return b > 0 ? util::fixed(a / b, 3) : std::string("-");
  };
  table.add_row({"optical total (pJ)", util::fixed(glow_map.total_optical(), 1),
                 util::fixed(operon_map.total_optical(), 1),
                 ratio(operon_map.total_optical(), glow_map.total_optical())});
  table.add_row({"optical max cell (pJ)", util::fixed(glow_map.max_optical(), 2),
                 util::fixed(operon_map.max_optical(), 2),
                 ratio(operon_map.max_optical(), glow_map.max_optical())});
  table.add_row({"optical top-5% share",
                 util::fixed(glow_map.optical_hotspot_share(top), 3),
                 util::fixed(operon_map.optical_hotspot_share(top), 3),
                 ratio(operon_map.optical_hotspot_share(top),
                       glow_map.optical_hotspot_share(top))});
  table.add_row(
      {"electrical total (pJ)", util::fixed(glow_map.total_electrical(), 1),
       util::fixed(operon_map.total_electrical(), 1),
       ratio(operon_map.total_electrical(), glow_map.total_electrical())});
  table.add_row(
      {"electrical max cell (pJ)", util::fixed(glow_map.max_electrical(), 2),
       util::fixed(operon_map.max_electrical(), 2),
       ratio(operon_map.max_electrical(), glow_map.max_electrical())});
  std::printf("%s\n", table.to_text().c_str());

  std::printf("Expectation from the paper: optical rows similar (ratio near "
              "1), electrical rows much cooler for OPERON (ratio well below "
              "1).\n\n");

  const std::size_t down = cells / 24 + 1;
  std::printf("(a) GLOW optical layer:\n%s\n",
              glow_map.ascii(true, down).c_str());
  std::printf("(b) GLOW electrical layer:\n%s\n",
              glow_map.ascii(false, down).c_str());
  std::printf("(c) OPERON optical layer:\n%s\n",
              operon_map.ascii(true, down).c_str());
  std::printf("(d) OPERON electrical layer:\n%s\n",
              operon_map.ascii(false, down).c_str());

  for (const auto& [name, map] :
       {std::pair<const char*, const core::PowerMap*>{"fig9_glow.csv",
                                                      &glow_map},
        std::pair<const char*, const core::PowerMap*>{"fig9_operon.csv",
                                                      &operon_map}}) {
    const std::string path = cli.out_path(name);
    std::ofstream os(path);
    os << map->to_csv();
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
