// Microbenchmarks for the LP/MIP substrate: dense two-phase simplex and
// branch-and-bound on knapsack/one-hot structures like the OPERON ILP.

#include "obs/sink.hpp"
#include "util/cli.hpp"
#include <benchmark/benchmark.h>

#include "ilp/bnb.hpp"
#include "ilp/simplex.hpp"
#include "util/rng.hpp"

namespace {

operon::ilp::Model random_lp(std::size_t vars, std::size_t rows,
                             std::uint64_t seed) {
  operon::util::Rng rng(seed);
  operon::ilp::Model model;
  operon::ilp::LinearExpr objective;
  for (std::size_t v = 0; v < vars; ++v) {
    model.add_continuous(0.0, 10.0);
    objective.push_back({v, rng.uniform(-5.0, 5.0)});
  }
  for (std::size_t r = 0; r < rows; ++r) {
    operon::ilp::LinearExpr expr;
    for (std::size_t v = 0; v < vars; ++v) {
      if (rng.bernoulli(0.4)) expr.push_back({v, rng.uniform(0.1, 3.0)});
    }
    if (expr.empty()) expr.push_back({0, 1.0});
    model.add_constraint(std::move(expr), operon::ilp::Relation::LessEq,
                         rng.uniform(5.0, 25.0));
  }
  model.set_objective(std::move(objective), operon::ilp::Sense::Minimize);
  return model;
}

void BM_SimplexRandomLp(benchmark::State& state) {
  const auto model = random_lp(static_cast<std::size_t>(state.range(0)),
                               static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(operon::ilp::solve_lp(model));
  }
}
BENCHMARK(BM_SimplexRandomLp)->Arg(10)->Arg(30)->Arg(60);

void BM_BnbKnapsack(benchmark::State& state) {
  operon::util::Rng rng(9);
  operon::ilp::Model model;
  operon::ilp::LinearExpr weight, value;
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = model.add_binary();
    weight.push_back({v, rng.uniform(1.0, 9.0)});
    value.push_back({v, rng.uniform(1.0, 9.0)});
  }
  model.add_constraint(std::move(weight), operon::ilp::Relation::LessEq,
                       static_cast<double>(n));
  model.set_objective(std::move(value), operon::ilp::Sense::Maximize);
  for (auto _ : state) {
    benchmark::DoNotOptimize(operon::ilp::solve_mip(model));
  }
}
BENCHMARK(BM_BnbKnapsack)->Arg(8)->Arg(14)->Arg(20);

void BM_BnbOneHotSelection(benchmark::State& state) {
  // The OPERON structure: one-hot groups with a shared soft budget.
  operon::util::Rng rng(13);
  operon::ilp::Model model;
  operon::ilp::LinearExpr objective, budget;
  const std::size_t groups = static_cast<std::size_t>(state.range(0));
  for (std::size_t g = 0; g < groups; ++g) {
    operon::ilp::LinearExpr onehot;
    for (int c = 0; c < 4; ++c) {
      const auto v = model.add_binary();
      onehot.push_back({v, 1.0});
      objective.push_back({v, rng.uniform(1.0, 20.0)});
      budget.push_back({v, rng.uniform(0.0, 2.0)});
    }
    model.add_constraint(std::move(onehot), operon::ilp::Relation::Equal, 1.0);
  }
  model.add_constraint(std::move(budget), operon::ilp::Relation::LessEq,
                       static_cast<double>(groups));
  model.set_objective(std::move(objective), operon::ilp::Sense::Minimize);
  for (auto _ : state) {
    benchmark::DoNotOptimize(operon::ilp::solve_mip(model));
  }
}
BENCHMARK(BM_BnbOneHotSelection)->Arg(4)->Arg(8)->Arg(12);

}  // namespace

int main(int argc, char** argv) {
  const operon::util::Cli cli(argc, argv);
  const operon::obs::CliObservation observing(cli);  // --trace-out/--metrics-out
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
