// Table 1 reproduction: performance comparison among designs.
//
// Columns mirror the paper: per case I1..I5 the benchmark statistics
// (#Net, #HNet, #HPin), the power of Electrical [14] (Streak-like RSMT),
// Optical [4] (GLOW-like), OPERON (ILP: exact time-limited
// branch-and-bound) and OPERON (LR), with CPU seconds for the two OPERON
// solvers, then averages and power ratios normalized to the optical
// baseline (paper: 3.565 / 1.000 / 0.860 / 0.889).
//
// The paper's ILP rows use GUROBI with a 3000 s budget on 8 cores; this
// harness defaults to a 20 s budget (override with --ilp-limit) and
// prints "> T" for timed-out rows, reproducing the same qualitative
// pattern. Powers are pJ/bit-cycle aggregates; the paper's unit is
// unspecified, so only relative numbers are comparable.

#include <cstdio>

#include "baseline/routers.hpp"
#include "benchgen/benchgen.hpp"
#include "core/flow.hpp"
#include "obs/ledger.hpp"
#include "obs/sink.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

struct PaperRow {
  const char* bench;
  double electrical, optical, ilp, lr;
};

// Paper Table 1 reference values (power columns).
constexpr PaperRow kPaper[] = {
    {"I1", 20.50, 4.92, 4.79, 4.88}, {"I2", 50.79, 14.48, 12.39, 12.77},
    {"I3", 17.96, 2.70, 2.49, 2.57}, {"I4", 21.51, 5.70, 5.45, 5.62},
    {"I5", 54.21, 18.40, 14.61, 15.22},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace operon;
  const util::Cli cli(argc, argv);
  // --trace-out/--metrics-out/--ledger-out/--heartbeat-ms; with
  // --ledger-out each run below appends one record, keyed by the case id
  // and seed set via set_ledger_context.
  const obs::CliObservation observing(cli);
  const double ilp_limit = cli.get_double("ilp-limit", 20.0);
  // Whole-run wall-clock budget per case (<= 0: unlimited). A tripped
  // run completes on the degradation ladder and its row is marked.
  const double time_limit = cli.get_double("time-limit", 0.0);
  const std::uint64_t seed_offset =
      static_cast<std::uint64_t>(cli.get_int("seed-offset", 0));
  const std::size_t threads = cli.get_threads();
  // --scale N runs every case at ~N× instance size (scaled_spec); the
  // perf-gate CI job uses it to time the solvers on instances big enough
  // to expose regressions that the paper-sized cases hide in noise.
  const std::size_t scale =
      static_cast<std::size_t>(cli.get_int("scale", 1));
  // --cases I1,I3 restricts the run (default: all five).
  std::vector<std::string> cases = benchgen::table1_cases();
  if (const std::string filter = cli.get("cases", ""); !filter.empty()) {
    cases = util::split(filter, ',');
  }
  // --skip-ilp drops the exact-solver columns. The scaled perf-gate runs
  // use it: a TIME-LIMITED branch and bound explores a wall-clock-
  // dependent tree, so its semantic metrics (query counts) are not
  // comparable across runs — only complete solves are.
  const bool skip_ilp = cli.get_bool("skip-ilp", false);
  // --solver swaps the main per-case run (the paper's LR column) for
  // another registered solver; --solver portfolio races them
  // (--portfolio-order picks the members, --portfolio-lanes the
  // concurrency). The ILP comparison column is unaffected.
  const std::optional<core::SolverKind> main_solver =
      core::parse_solver_kind(cli.get("solver", "lr"));
  if (!main_solver.has_value()) {
    std::fprintf(stderr, "unknown --solver '%s' (lr|ilp|mip|portfolio)\n",
                 cli.get("solver", "lr").c_str());
    return 1;
  }
  const std::string main_label =
      *main_solver == core::SolverKind::Lr
          ? "LR"
          : std::string(core::to_string(*main_solver));
  const bool full_table = scale == 1 && cases.size() == 5 && !skip_ilp &&
                          *main_solver == core::SolverKind::Lr;

  std::printf("=== Table 1: Performance Comparisons among Different Designs ===\n");
  std::printf("(ILP time limit %.0f s; the paper used 3000 s on 8 cores; "
              "--threads %zu%s)\n\n",
              ilp_limit, threads,
              scale == 1 ? "" : ("; instance scale " + std::to_string(scale) + "x").c_str());

  util::Table table({"Bench", "#Net", "#HNet", "#HPin", "Elec[14]", "Opt[4]",
                     "ILP", "ILP CPU(s)", main_label, main_label + " CPU(s)"});
  // Per-stage wall-clock; when --threads != 1 each case is re-run at
  // threads=1 so the last columns report the parallel speedup (the
  // powers must match bit-identically — determinism is an invariant).
  util::Table stage_table(
      threads == 1
          ? std::vector<std::string>{"Bench", "Proc(s)", "Gen(s)", "Sel(s)"}
          : std::vector<std::string>{"Bench", "Proc(s)", "Gen(s)", "Sel(s)",
                                     "Gen@1(s)", "Sel@1(s)", "Speedup"});
  bool determinism_ok = true;

  double sum_e = 0, sum_g = 0, sum_ilp = 0, sum_lr = 0;
  double sum_ilp_cpu = 0, sum_lr_cpu = 0;
  bool any_ilp_timeout = false;

  for (const std::string& id : cases) {
    benchgen::BenchmarkSpec spec =
        benchgen::scaled_spec(benchgen::table1_spec(id), scale);
    spec.seed += seed_offset;
    const model::Design design = benchgen::generate_benchmark(spec);
    // Scaled runs are keyed by the suffixed name ("I1x10"), so their
    // ledger records never pair with unscaled ones in comparisons.
    obs::set_ledger_context(spec.name, spec.seed);

    core::OperonOptions options;
    options.solver = *main_solver;
    if (cli.has("portfolio-order")) {
      options.portfolio.members =
          core::parse_portfolio_members(cli.get("portfolio-order", ""));
    }
    options.portfolio.lanes =
        static_cast<std::size_t>(cli.get_int("portfolio-lanes", 0));
    // Only the exact main solvers consult the budget; leaving it at the
    // default for lr/portfolio keeps their ledger fingerprints free of
    // the --ilp-limit knob (portfolio lanes race on node budgets).
    if (*main_solver == core::SolverKind::IlpExact ||
        *main_solver == core::SolverKind::MipLiteral) {
      options.select.time_limit_s = ilp_limit;
    }
    options.run_wdm_stage = false;
    options.threads = threads;
    options.run_time_limit_s = time_limit;
    const core::OperonResult prep = core::run_operon(design, options);
    const double lr_cpu = prep.stats.times.selection_s;
    if (prep.stats.trip_checkpoint != 0) {
      std::printf("%s: run budget tripped at checkpoint %llu (stage %s); "
                  "row reflects the degraded plan\n",
                  id.c_str(),
                  static_cast<unsigned long long>(prep.stats.trip_checkpoint),
                  prep.stats.trip_stage.c_str());
    }

    if (threads == 1) {
      stage_table.add_row({id, util::fixed(prep.stats.times.processing_s, 2),
                           util::fixed(prep.stats.times.generation_s, 2),
                           util::fixed(prep.stats.times.selection_s, 2)});
    } else {
      core::OperonOptions serial = options;
      serial.threads = 1;
      // The determinism re-run is a check, not a result: route its
      // ledger record into a throwaway collector so --ledger-out holds
      // exactly one record per (case, solver) and downstream compares
      // never pair a case against its own serial shadow.
      obs::LedgerCollector scratch;
      scratch.set_context(spec.name, spec.seed);
      core::OperonResult ref;
      {
        obs::ScopedLedger suppress(scratch);
        ref = core::run_operon(design, serial);
      }
      determinism_ok = determinism_ok && ref.stats.power_pj == prep.stats.power_pj &&
                       ref.selection == prep.selection;
      const double par = prep.stats.times.generation_s + prep.stats.times.selection_s;
      stage_table.add_row(
          {id, util::fixed(prep.stats.times.processing_s, 2),
           util::fixed(prep.stats.times.generation_s, 2),
           util::fixed(prep.stats.times.selection_s, 2),
           util::fixed(ref.stats.times.generation_s, 2),
           util::fixed(ref.stats.times.selection_s, 2),
           par > 0 ? util::fixed(
                         (ref.stats.times.generation_s + ref.stats.times.selection_s) / par,
                         2) + "x"
                   : std::string("-")});
    }

    const auto electrical =
        baseline::route_electrical(prep.sets, options.params);
    const auto glow = baseline::route_optical_glow(prep.sets, options.params);

    std::string ilp_power = "-", ilp_cpu_cell = "-";
    if (!skip_ilp) {
      core::OperonOptions ilp_options = options;
      ilp_options.solver = core::SolverKind::IlpExact;
      ilp_options.select.time_limit_s = ilp_limit;
      util::Timer ilp_timer;
      const core::OperonResult ilp =
          core::run_selection_only(prep.sets, ilp_options);
      const double ilp_cpu = ilp_timer.seconds();
      ilp_power = util::fixed(ilp.stats.power_pj, 1);
      ilp_cpu_cell = ilp.stats.timed_out ? ("> " + util::fixed(ilp_limit, 0))
                                         : util::fixed(ilp_cpu, 1);
      sum_ilp += ilp.stats.power_pj;
      sum_ilp_cpu += ilp_cpu;
      any_ilp_timeout = any_ilp_timeout || ilp.stats.timed_out;
    }

    table.add_row(
        {id, std::to_string(design.num_bits()),
         std::to_string(prep.processing.num_hyper_nets()),
         std::to_string(prep.processing.num_hyper_pins()),
         util::fixed(electrical.total_power_pj, 1),
         util::fixed(glow.total_power_pj, 1), ilp_power, ilp_cpu_cell,
         util::fixed(prep.stats.power_pj, 1), util::fixed(lr_cpu, 1)});

    sum_e += electrical.total_power_pj;
    sum_g += glow.total_power_pj;
    sum_lr += prep.stats.power_pj;
    sum_lr_cpu += lr_cpu;
  }

  const double n = static_cast<double>(cases.size());
  table.add_row({"average", "-", "-", "-", util::fixed(sum_e / n, 1),
                 util::fixed(sum_g / n, 1),
                 skip_ilp ? "-" : util::fixed(sum_ilp / n, 1),
                 skip_ilp ? "-"
                          : (any_ilp_timeout
                                 ? ("> " + util::fixed(sum_ilp_cpu / n, 1))
                                 : util::fixed(sum_ilp_cpu / n, 1)),
                 util::fixed(sum_lr / n, 1), util::fixed(sum_lr_cpu / n, 1)});
  table.add_row({"ratio", "-", "-", "-", util::fixed(sum_e / sum_g, 3),
                 "1.000", skip_ilp ? "-" : util::fixed(sum_ilp / sum_g, 3), "-",
                 util::fixed(sum_lr / sum_g, 3), "-"});
  std::printf("%s\n", table.to_text().c_str());

  // Paper reference block for side-by-side comparison — only meaningful
  // for the full unscaled table (the calibrated ratios are tied to the
  // paper-sized instances).
  if (full_table) {
    util::Table paper({"Bench", "Elec[14]", "Opt[4]", "ILP", "LR"});
    double pe = 0, pg = 0, pi = 0, pl = 0;
    for (const PaperRow& row : kPaper) {
      paper.add_row({row.bench, util::fixed(row.electrical, 2),
                     util::fixed(row.optical, 2), util::fixed(row.ilp, 2),
                     util::fixed(row.lr, 2)});
      pe += row.electrical;
      pg += row.optical;
      pi += row.ilp;
      pl += row.lr;
    }
    paper.add_row({"ratio", util::fixed(pe / pg, 3), "1.000",
                   util::fixed(pi / pg, 3), util::fixed(pl / pg, 3)});
    std::printf("Paper reference (absolute units differ; compare ratios):\n%s\n",
                paper.to_text().c_str());

    std::printf(
        "Measured ratios vs paper: electrical %.3f (3.565), "
        "OPERON(ILP) %.3f (0.860), OPERON(LR) %.3f (0.889)\n\n",
        sum_e / sum_g, sum_ilp / sum_g, sum_lr / sum_g);
  }

  std::printf("Per-stage wall-clock (generation + LR selection)%s:\n%s\n",
              threads == 1 ? "" : ", speedup vs --threads 1",
              stage_table.to_text().c_str());
  if (threads != 1) {
    std::printf("Determinism check (threads=%zu vs 1): %s\n", threads,
                determinism_ok ? "bit-identical" : "MISMATCH — BUG");
    if (!determinism_ok) return 1;
  }
  return 0;
}
