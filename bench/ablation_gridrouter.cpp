// Ablation D: any-direction vs tile-grid optical routing. GLOW [4] is a
// tile-based global router; OPERON's optical baselines route in any
// direction (§2.3). This bench quantifies the difference on the Table 1
// cases: waveguide length (grid pays the Manhattan factor), bends,
// congestion rounds, optical admission, and total power, for the same
// candidate sets.

#include <cstdio>

#include "baseline/routers.hpp"
#include "benchgen/benchgen.hpp"
#include "core/flow.hpp"
#include "obs/sink.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace operon;
  const util::Cli cli(argc, argv);
  const obs::CliObservation observing(cli);  // --trace-out/--metrics-out

  std::printf("=== Ablation D: any-direction (GLOW-like) vs tile-grid maze "
              "optical routing ===\n\n");

  grid::GridOptions grid_options;
  grid_options.tiles = static_cast<std::size_t>(cli.get_int("tiles", 28));

  util::Table table({"Bench", "router", "waveguide (mm)", "bends",
                     "optical nets", "fallbacks", "power (pJ)", "rounds"});
  for (const std::string& id : benchgen::table1_cases()) {
    const model::Design design =
        benchgen::generate_benchmark(benchgen::table1_spec(id));
    core::OperonOptions options;
    options.solver = core::SolverKind::Lr;
    options.run_wdm_stage = false;
    const core::OperonResult prep = core::run_operon(design, options);

    const auto straight =
        baseline::route_optical_glow(prep.sets, options.params);
    double straight_wl = 0.0;
    for (const auto& cand : straight.chosen) straight_wl += cand.optical_wl_um;
    table.add_row({id, "any-direction", util::fixed(straight_wl / 1000.0, 1),
                   "-", std::to_string(straight.optical_nets),
                   std::to_string(straight.detection_fallbacks),
                   util::fixed(straight.total_power_pj, 1), "-"});

    const auto gridded =
        baseline::route_optical_grid(prep.sets, options.params, grid_options);
    double grid_wl = 0.0;
    for (const auto& cand : gridded.routing.chosen) {
      grid_wl += cand.optical_wl_um;
    }
    table.add_row({id, "tile-grid", util::fixed(grid_wl / 1000.0, 1),
                   std::to_string(gridded.total_bends),
                   std::to_string(gridded.routing.optical_nets),
                   std::to_string(gridded.routing.detection_fallbacks),
                   util::fixed(gridded.routing.total_power_pj, 1),
                   std::to_string(gridded.maze_stats.rounds)});
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf(
      "Reading the table: grid waveguides are ~1.4-1.8x longer (Manhattan "
      "factor + tile snapping) and pay hundreds of bends; yet the grid "
      "router admits MORE nets optically. That is corridor bundling: "
      "negotiated maze routes share tile corridors, so their segments "
      "become collinear, and collinear waveguides are parallel — they do "
      "not cross. The segment-level crossing model therefore sees far "
      "fewer crossings than the any-direction geometry. This is partly "
      "physical (bundled parallel waveguides really do not intersect) "
      "and partly an undercount (routes diverging from a shared corridor "
      "must weave past their bundle-mates, which tile-level congestion "
      "models capture but segment intersection tests do not). Treat the "
      "grid rows as a bound: real tile routers sit between the two.\n");
  return 0;
}
