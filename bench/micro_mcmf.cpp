// Microbenchmarks for the min-cost max-flow substrate on assignment-like
// networks shaped like the §4.2 WDM graph (source -> connections ->
// WDMs -> sink).

#include "obs/sink.hpp"
#include "util/cli.hpp"
#include <benchmark/benchmark.h>

#include "flow/mcmf.hpp"
#include "util/rng.hpp"

namespace {

void BM_WdmShapedAssignment(benchmark::State& state) {
  const std::size_t connections = static_cast<std::size_t>(state.range(0));
  const std::size_t wdms = connections / 3 + 1;
  operon::util::Rng rng(7);
  // Pre-generate topology data so each iteration builds + solves.
  std::vector<std::int64_t> bits(connections);
  for (auto& b : bits) b = rng.uniform_int(1, 24);
  std::vector<std::vector<std::pair<std::size_t, double>>> windows(connections);
  for (std::size_t c = 0; c < connections; ++c) {
    const std::size_t fan = 1 + static_cast<std::size_t>(rng.uniform_int(0, 3));
    for (std::size_t k = 0; k < fan; ++k) {
      windows[c].push_back(
          {static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(wdms) - 1)),
           rng.uniform(0.0, 1.0)});
    }
  }
  for (auto _ : state) {
    operon::flow::MinCostMaxFlow graph(2 + connections + wdms);
    std::int64_t demand = 0;
    for (std::size_t c = 0; c < connections; ++c) {
      graph.add_edge(0, 2 + c, bits[c], 0.0);
      demand += bits[c];
      for (const auto& [w, cost] : windows[c]) {
        graph.add_edge(2 + c, 2 + connections + w, bits[c], cost);
      }
    }
    for (std::size_t w = 0; w < wdms; ++w) {
      graph.add_edge(2 + connections + w, 1, 32,
                     10.0 + static_cast<double>(w));
    }
    benchmark::DoNotOptimize(graph.solve(0, 1, demand));
  }
}
BENCHMARK(BM_WdmShapedAssignment)->Arg(32)->Arg(128)->Arg(512);

void BM_DenseBipartite(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  operon::util::Rng rng(11);
  std::vector<double> costs(n * n);
  for (auto& c : costs) c = rng.uniform(0.0, 10.0);
  for (auto _ : state) {
    operon::flow::MinCostMaxFlow graph(2 + 2 * n);
    for (std::size_t i = 0; i < n; ++i) {
      graph.add_edge(0, 2 + i, 1, 0.0);
      graph.add_edge(2 + n + i, 1, 1, 0.0);
      for (std::size_t j = 0; j < n; ++j) {
        graph.add_edge(2 + i, 2 + n + j, 1, costs[i * n + j]);
      }
    }
    benchmark::DoNotOptimize(graph.solve(0, 1));
  }
}
BENCHMARK(BM_DenseBipartite)->Arg(8)->Arg(32)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  const operon::util::Cli cli(argc, argv);
  const operon::obs::CliObservation observing(cli);  // --trace-out/--metrics-out
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
