// Ablation C: Lagrangian-relaxation convergence (Algorithm 1). Prints
// the per-iteration trace (selected power, violated paths, total excess,
// multiplier magnitude) on each Table 1 case, the effect of the
// iteration cap, and the gap to the exact solver on a slice where the
// optimum can be proven.

#include <cstdio>

#include "benchgen/benchgen.hpp"
#include "cluster/hypernet_builder.hpp"
#include "codesign/generate.hpp"
#include "codesign/ilp_select.hpp"
#include "lr/lr.hpp"
#include "obs/sink.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace operon;
  const util::Cli cli(argc, argv);
  const obs::CliObservation observing(cli);  // --trace-out/--metrics-out

  std::printf("=== Ablation C: LR convergence (Algorithm 1) ===\n\n");
  const model::TechParams params = model::TechParams::dac18_defaults();

  for (const std::string& id : benchgen::table1_cases()) {
    const model::Design design =
        benchgen::generate_benchmark(benchgen::table1_spec(id));
    cluster::SignalProcessingOptions processing;
    processing.kmeans.capacity =
        static_cast<std::size_t>(params.optical.wdm_capacity);
    const auto nets = cluster::build_hyper_nets(design, processing);
    const auto sets = codesign::generate_candidates(design, nets.hyper_nets, params);

    lr::LrOptions options;
    options.repair_violations = true;
    const auto result = lr::solve_selection_lr(sets, params, options);

    std::printf("case %s: %zu iterations, final power %.1f pJ, runtime %.2f s\n",
                id.c_str(), result.iterations, result.power_pj,
                result.runtime_s);
    util::Table table({"iter", "power (pJ)", "violated paths", "excess (dB)",
                       "max multiplier"});
    for (std::size_t t = 0; t < result.trace.size(); ++t) {
      const auto& step = result.trace[t];
      table.add_row({std::to_string(t + 1), util::fixed(step.power_pj, 1),
                     std::to_string(step.violated_paths),
                     util::fixed(step.total_excess_db, 1),
                     util::fixed(step.max_multiplier, 4)});
    }
    std::printf("%s\n", table.to_text().c_str());
  }

  // Gap to a provable optimum on a small slice of I1.
  {
    const model::Design design =
        benchgen::generate_benchmark(benchgen::table1_spec("I1"));
    cluster::SignalProcessingOptions processing;
    processing.kmeans.capacity =
        static_cast<std::size_t>(params.optical.wdm_capacity);
    auto nets = cluster::build_hyper_nets(design, processing);
    nets.hyper_nets.resize(std::min<std::size_t>(nets.hyper_nets.size(), 40));
    const auto sets =
        codesign::generate_candidates(design, nets.hyper_nets, params);

    codesign::SelectOptions exact_options;
    exact_options.time_limit_s = 30.0;
    const auto exact = codesign::solve_selection_exact(sets, params, exact_options);
    const auto lr_result = lr::solve_selection_lr(sets, params);
    std::printf("40-net I1 slice: exact %.2f pJ (%s, %.2f s) vs LR %.2f pJ "
                "(%.3f s) -> LR/exact = %.4f\n",
                exact.power_pj, exact.proven_optimal ? "optimal" : "timeout",
                exact.runtime_s, lr_result.power_pj, lr_result.runtime_s,
                lr_result.power_pj / exact.power_pj);
  }
  return 0;
}
