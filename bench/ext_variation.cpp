// Extension E3 — variation-aware routing via detection guard bands.
//
// OPERON minimizes power subject to loss <= lm; the optimum rides the
// detection cliff (worst margins near zero), so under device variation
// the power-optimal design yields poorly. Routing against a *guard-
// banded* budget (lm - g) restores margin for a small power premium —
// the knob that turns OPERON into a variation-aware flow in the spirit
// of the paper's refs [4]/[6]. This bench sweeps g on one Table 1 case
// and prints the resulting power / margin / Monte-Carlo-yield trade-off
// plus the laser wall-plug budget — which is EXPONENTIAL in path loss,
// so guard bands that cost a few percent conversion power can CUT total
// laser power — and the unguarded comparison against GLOW.

#include <cstdio>

#include "baseline/routers.hpp"
#include "benchgen/benchgen.hpp"
#include "cluster/hypernet_builder.hpp"
#include "codesign/generate.hpp"
#include "codesign/variation.hpp"
#include "core/flow.hpp"
#include "lr/lr.hpp"
#include "obs/sink.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace operon;
  const util::Cli cli(argc, argv);
  const obs::CliObservation observing(cli);  // --trace-out/--metrics-out
  const std::string id = cli.get("bench", "I2");

  std::printf("=== E3: guard-banded routing vs Monte-Carlo yield (case %s) "
              "===\n\n",
              id.c_str());

  const model::Design design =
      benchgen::generate_benchmark(benchgen::table1_spec(id));
  const model::TechParams nominal = model::TechParams::dac18_defaults();
  const codesign::VariationParams variation;

  util::Table table({"guard band (dB)", "power (pJ)", "optical nets",
                     "worst margin (dB)", "design yield", "path yield",
                     "laser (mW)", "worst ch (mW)"});
  for (const double guard : {0.0, 1.0, 2.0, 4.0, 6.0}) {
    // Route against the tightened budget...
    model::TechParams guarded = nominal;
    guarded.optical.max_loss_db = nominal.optical.max_loss_db - guard;
    core::OperonOptions options;
    options.params = guarded;
    options.solver = core::SolverKind::Lr;
    options.run_wdm_stage = false;
    const core::OperonResult result = core::run_operon(design, options);

    // ...but judge margins and yield against the TRUE budget.
    codesign::SelectionEvaluator evaluator(result.sets, nominal);
    const auto yield =
        codesign::estimate_yield(evaluator, result.selection, variation);
    const auto laser = codesign::laser_budget(evaluator, result.selection);
    table.add_row({util::fixed(guard, 1), util::fixed(result.stats.power_pj, 1),
                   std::to_string(result.stats.optical_nets),
                   util::fixed(yield.worst_nominal_margin_db, 2),
                   util::fixed(yield.design_yield, 3),
                   util::fixed(yield.path_yield, 4),
                   util::fixed(laser.total_mw, 1),
                   util::fixed(laser.worst_channel_mw, 3)});
  }
  std::printf("%s\n", table.to_text().c_str());

  // Unguarded OPERON vs GLOW yield, same variation model.
  {
    core::OperonOptions options;
    options.params = nominal;
    options.solver = core::SolverKind::Lr;
    options.run_wdm_stage = false;
    const core::OperonResult result = core::run_operon(design, options);
    codesign::SelectionEvaluator evaluator(result.sets, nominal);
    const auto operon_yield =
        codesign::estimate_yield(evaluator, result.selection, variation);

    const auto glow = baseline::route_optical_glow(result.sets, nominal);
    // Express GLOW's choice as a selection where possible: nets it kept
    // optical use the all-optical candidate geometry it routed, which is
    // not in the option set; approximate with its own evaluator-free
    // margins through the selection of min-power vs electrical.
    std::printf("unguarded OPERON: design yield %.3f (worst nominal margin "
                "%.2f dB over %zu optical paths)\n",
                operon_yield.design_yield,
                operon_yield.worst_nominal_margin_db,
                operon_yield.optical_paths);
    std::printf("GLOW keeps %zu/%zu nets optical; its admission also rides "
                "the same budget, so both flows need the guard band — the "
                "table's point is that ~2 dB buys most of the yield back "
                "for a few percent power.\n",
                glow.optical_nets, result.sets.size());
  }
  return 0;
}
