// Scenario: processor-to-memory interface (the workload class the
// paper's introduction motivates — "memory access and processor
// communication"). Four CPU clusters each drive a 32-bit read bus and a
// 32-bit write bus to a memory-controller strip on the chip's east edge.
// Wide buses at centimeter distances are exactly where optical
// interconnect wins; the example compares the electrical, GLOW, and
// OPERON designs and shows the WDM sharing of the parallel buses.

#include <cstdio>

#include "baseline/routers.hpp"
#include "core/flow.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace operon;
  util::Rng rng(2024);

  model::Design design;
  design.name = "memory_interface";
  design.chip = geom::BBox::of({0, 0}, {20000, 20000});

  // Four CPU clusters on the west half; memory controllers on the east.
  const geom::Point cpu_sites[] = {
      {3000, 4000}, {3000, 9000}, {3000, 14000}, {7000, 7000}};
  const double mc_x = 17500.0;

  int group_id = 0;
  for (const geom::Point& cpu : cpu_sites) {
    for (const char* direction : {"rd", "wr"}) {
      model::SignalGroup bus;
      bus.name = std::string("cpu") + std::to_string(group_id / 2) + "_" +
                 direction;
      const double mc_y = 3000.0 + 1800.0 * group_id;
      for (int b = 0; b < 32; ++b) {
        model::SignalBit bit;
        const double jitter = rng.uniform(0, 120);
        if (std::string(direction) == "rd") {
          // Memory drives reads toward the CPU.
          bit.source = {{mc_x, mc_y + jitter}, model::PinRole::Source};
          bit.sinks.push_back({{cpu.x + jitter, cpu.y}, model::PinRole::Sink});
        } else {
          bit.source = {{cpu.x + jitter, cpu.y}, model::PinRole::Source};
          bit.sinks.push_back({{mc_x, mc_y + jitter}, model::PinRole::Sink});
        }
        bus.bits.push_back(std::move(bit));
      }
      design.groups.push_back(std::move(bus));
      ++group_id;
    }
  }

  core::OperonOptions options;
  options.solver = core::SolverKind::IlpExact;
  options.select.time_limit_s = 10.0;
  const core::OperonResult result = core::run_operon(design, options);

  const auto electrical = baseline::route_electrical(result.sets, options.params);
  const auto glow = baseline::route_optical_glow(result.sets, options.params);

  util::Table table({"design", "power (pJ/bit-cycle)", "vs electrical"});
  table.add_row({"Electrical (Streak-like RSMT)",
                 util::fixed(electrical.total_power_pj, 1), "1.00x"});
  table.add_row({"Optical (GLOW-like)", util::fixed(glow.total_power_pj, 1),
                 util::fixed(glow.total_power_pj / electrical.total_power_pj, 2) + "x"});
  table.add_row({"OPERON", util::fixed(result.stats.power_pj, 1),
                 util::fixed(result.stats.power_pj / electrical.total_power_pj, 2) + "x"});
  std::printf("=== 8x 32-bit CPU<->memory buses on a 2 cm chip ===\n\n%s\n",
              table.to_text().c_str());

  std::printf("OPERON selection: %zu optical nets, %zu electrical; worst "
              "path loss %.2f dB (budget %.1f dB); %s\n",
              result.stats.optical_nets, result.stats.electrical_nets,
              result.violations.worst_loss_db,
              options.params.optical.max_loss_db,
              result.stats.proven_optimal ? "proven optimal"
                                    : "time-limited incumbent");

  std::printf("\nWDM infrastructure: %zu point-to-point optical connections "
              "-> %zu WDM waveguides placed, %zu in use after the network-"
              "flow assignment (capacity %d channels each).\n",
              result.wdm_plan.connections.size(), result.wdm_plan.initial_wdms,
              result.wdm_plan.final_wdms, options.params.optical.wdm_capacity);
  for (std::size_t w = 0; w < result.wdm_plan.wdms.size(); ++w) {
    const auto& wdm = result.wdm_plan.wdms[w];
    std::printf("  WDM %zu: %s at %.0f um, span [%.0f, %.0f] um, %d/%d "
                "channels after placement\n",
                w, wdm.axis == wdm::Axis::Horizontal ? "horizontal" : "vertical",
                wdm.coord, wdm.lo, wdm.hi, wdm.used, wdm.capacity);
  }
  return 0;
}
