// Scenario: a 4x4 tile NoC-style traffic pattern with narrow
// crisscrossing links — the congested regime where crossing loss forces
// real optical-electrical trade-offs. East-west and north-south flows
// cross in the chip center; OPERON's detour baselines and the global
// selection keep more nets optical than the GLOW-like baseline, and the
// example prints which nets ended up hybrid or on copper and why.

#include <cstdio>

#include "baseline/routers.hpp"
#include "core/flow.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

int main() {
  using namespace operon;
  util::Rng rng(7);

  model::Design design;
  design.name = "noc_traffic";
  design.chip = geom::BBox::of({0, 0}, {20000, 20000});

  const auto tile_center = [](int tx, int ty) {
    return geom::Point{2500.0 + 5000.0 * tx, 2500.0 + 5000.0 * ty};
  };

  // Row streams (west->east) and column streams (south->north), 8 bits
  // each, plus a few random long-haul flows.
  int id = 0;
  const auto add_flow = [&](const geom::Point& src, const geom::Point& dst) {
    model::SignalGroup group;
    group.name = "flow" + std::to_string(id++);
    for (int b = 0; b < 8; ++b) {
      model::SignalBit bit;
      bit.source = {{src.x + rng.uniform(0, 100), src.y + rng.uniform(0, 100)},
                    model::PinRole::Source};
      bit.sinks.push_back(
          {{dst.x + rng.uniform(0, 100), dst.y + rng.uniform(0, 100)},
           model::PinRole::Sink});
      group.bits.push_back(std::move(bit));
    }
    design.groups.push_back(std::move(group));
  };
  for (int row = 0; row < 4; ++row) {
    add_flow(tile_center(0, row), tile_center(3, row));
    add_flow(tile_center(3, row), tile_center(0, row));
  }
  for (int col = 0; col < 4; ++col) {
    add_flow(tile_center(col, 0), tile_center(col, 3));
    add_flow(tile_center(col, 3), tile_center(col, 0));
  }
  for (int extra = 0; extra < 4; ++extra) {
    add_flow(tile_center(static_cast<int>(rng.uniform_int(0, 1)),
                         static_cast<int>(rng.uniform_int(0, 3))),
             tile_center(static_cast<int>(rng.uniform_int(2, 3)),
                         static_cast<int>(rng.uniform_int(0, 3))));
  }

  core::OperonOptions options;
  options.solver = core::SolverKind::IlpExact;
  options.select.time_limit_s = 15.0;
  // A tight detector budget makes the center congestion bite: streams
  // crossing the chip middle must detour, hybridize, or drop to copper.
  options.params.optical.max_loss_db = 7.0;
  const core::OperonResult result = core::run_operon(design, options);
  const auto glow = baseline::route_optical_glow(result.sets, options.params);
  const auto electrical = baseline::route_electrical(result.sets, options.params);

  std::printf("=== 4x4 tile NoC traffic (16 row/column streams + 4 random "
              "flows, 8 bits each, tight 7 dB budget) ===\n\n");
  std::printf("electrical: %.1f pJ | GLOW-like: %.1f pJ (%zu optical, %zu "
              "fallbacks) | OPERON: %.1f pJ (%zu optical)\n\n",
              electrical.total_power_pj, glow.total_power_pj,
              glow.optical_nets, glow.detection_fallbacks, result.stats.power_pj,
              result.stats.optical_nets);

  codesign::SelectionEvaluator evaluator(result.sets, options.params);
  for (std::size_t i = 0; i < result.sets.size(); ++i) {
    const auto& set = result.sets[i];
    const auto& cand = set.options[result.selection[i]];
    double worst = 0.0;
    for (std::size_t p = 0; p < cand.paths.size(); ++p) {
      worst = std::max(worst, evaluator.path_loss_db(result.selection, i,
                                                     result.selection[i], p));
    }
    const char* route_kind =
        cand.pure_electrical()
            ? "electrical"
            : (cand.electrical_wl_um > 0.0 ? "hybrid" : "optical");
    const bool detour = !cand.pure_electrical() && cand.baseline > 0;
    std::printf("  net %2zu: %-10s baseline %zu%s power %6.2f pJ, worst loss "
                "%5.2f dB, %zu crossings-sensitive paths\n",
                i, route_kind, cand.baseline, detour ? " (detour)" : "",
                cand.power_pj, worst, cand.paths.size());
  }
  std::printf("\nInterpretation: center-crossing streams accumulate "
              "crossing loss; the selection keeps them under the %.1f dB "
              "budget by detouring or converting parts of the tree to "
              "copper instead of abandoning optics entirely.\n",
              options.params.optical.max_loss_db);
  return 0;
}
