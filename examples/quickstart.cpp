// Quickstart: build a tiny design in code, run the full OPERON pipeline
// (Fig 2), and inspect the result. This is the 60-second tour of the
// public API.

#include <cstdio>

#include "core/flow.hpp"

int main() {
  using namespace operon;

  // 1. Describe the design: a 2 cm chip with two signal groups.
  //    Group "dbus": a 16-bit bus from a logic block near (2mm, 2mm) to a
  //    memory interface near (14mm, 12mm). Group "ctl": a 4-bit control
  //    bundle with two fan-out destinations.
  model::Design design;
  design.name = "quickstart";
  design.chip = geom::BBox::of({0, 0}, {20000, 20000});

  model::SignalGroup dbus;
  dbus.name = "dbus";
  for (int b = 0; b < 16; ++b) {
    model::SignalBit bit;
    bit.source = {{2000.0 + 10 * b, 2000.0}, model::PinRole::Source};
    bit.sinks.push_back({{14000.0 + 10 * b, 12000.0}, model::PinRole::Sink});
    dbus.bits.push_back(std::move(bit));
  }
  design.groups.push_back(std::move(dbus));

  model::SignalGroup ctl;
  ctl.name = "ctl";
  for (int b = 0; b < 4; ++b) {
    model::SignalBit bit;
    bit.source = {{3000.0 + 10 * b, 3000.0}, model::PinRole::Source};
    bit.sinks.push_back({{9000.0 + 10 * b, 15000.0}, model::PinRole::Sink});
    bit.sinks.push_back({{16000.0 + 10 * b, 5000.0}, model::PinRole::Sink});
    ctl.bits.push_back(std::move(bit));
  }
  design.groups.push_back(std::move(ctl));

  // 2. Run the flow with the paper's DAC'18 technology parameters and
  //    the LR solver (use SolverKind::IlpExact for the exact solver).
  core::OperonOptions options;  // defaults = TechParams::dac18_defaults()
  options.solver = core::SolverKind::Lr;
  const core::OperonResult result = core::run_operon(design, options);

  // 3. Inspect the result.
  std::printf("hyper nets: %zu, hyper pins: %zu\n",
              result.processing.num_hyper_nets(),
              result.processing.num_hyper_pins());
  std::printf("total power: %.2f pJ/bit-cycle (%zu optical nets, %zu "
              "electrical)\n",
              result.stats.power_pj, result.stats.optical_nets, result.stats.electrical_nets);
  std::printf("detection constraints: %s (worst path loss %.2f dB, budget "
              "%.1f dB)\n",
              result.violations.clean() ? "all satisfied" : "VIOLATED",
              result.violations.worst_loss_db,
              options.params.optical.max_loss_db);

  for (std::size_t i = 0; i < result.sets.size(); ++i) {
    const auto& cand = result.sets[i].options[result.selection[i]];
    std::printf("  hyper net %zu (%zu bits): %s — %d modulators, %d "
                "detectors, %.0f um optical, %.0f um electrical, %.2f pJ\n",
                i, result.sets[i].bit_count,
                cand.pure_electrical() ? "electrical" : "optical/hybrid",
                cand.num_modulators, cand.num_detectors, cand.optical_wl_um,
                cand.electrical_wl_um, cand.power_pj);
  }

  std::printf("WDM plan: %zu optical connections -> %zu WDMs placed -> %zu "
              "in use after flow assignment\n",
              result.wdm_plan.connections.size(), result.wdm_plan.initial_wdms,
              result.wdm_plan.final_wdms);
  std::printf("runtimes: processing %.3f s, candidates %.3f s, selection "
              "%.3f s, WDM %.3f s\n",
              result.stats.times.processing_s, result.stats.times.generation_s,
              result.stats.times.selection_s, result.stats.times.wdm_s);
  return 0;
}
