// Scenario: visual inspection. Routes a Table 1 case and writes three
// SVGs — the OPERON result, the same nets routed all-electrically, and
// the OPERON result with the WDM waveguide overlay — plus a JSON run
// report. Open the SVGs in any browser.
//
//   ./render_design [--case I1] [--prefix out]

#include <cstdio>
#include <fstream>

#include "baseline/routers.hpp"
#include "benchgen/benchgen.hpp"
#include "core/flow.hpp"
#include "core/report.hpp"
#include "util/cli.hpp"
#include "viz/render.hpp"

namespace {
void write_file(const std::string& path, const std::string& content) {
  std::ofstream os(path);
  os << content;
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
}
}  // namespace

int main(int argc, char** argv) {
  using namespace operon;
  const util::Cli cli(argc, argv);
  const std::string case_id = cli.get("case", "I1");
  const std::string prefix = cli.get("prefix", "render_" + case_id);

  const model::Design design =
      benchgen::generate_benchmark(benchgen::table1_spec(case_id));
  core::OperonOptions options;
  options.solver = core::SolverKind::Lr;
  const core::OperonResult result = core::run_operon(design, options);

  write_file(prefix + "_operon.svg",
             viz::render_routed_design(design.chip, result.sets,
                                       result.selection));

  const auto electrical = baseline::route_electrical(result.sets, options.params);
  write_file(prefix + "_electrical.svg",
             viz::render_candidates(design.chip, result.sets,
                                    electrical.chosen));

  write_file(prefix + "_wdm.svg",
             viz::render_with_wdms(design.chip, result.sets, result.selection,
                                   result.wdm_plan));

  core::write_report(prefix + "_report.json", design, result, options);
  std::printf("report: %s_report.json — %.1f pJ total (%zu optical / %zu "
              "electrical nets), %zu WDMs\n",
              prefix.c_str(), result.stats.power_pj, result.stats.optical_nets,
              result.stats.electrical_nets, result.wdm_plan.final_wdms);
  return 0;
}
