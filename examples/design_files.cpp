// Scenario: file-based workflow. Generates a synthetic benchmark, saves
// it in the text design format, loads it back, and runs the flow — the
// round trip an external user takes when bringing their own netlists.
//
//   ./design_files [--case I2] [--out my_design.txt] [--solver lr|ilp]

#include <cstdio>

#include "benchgen/benchgen.hpp"
#include "core/flow.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace operon;
  const util::Cli cli(argc, argv);
  const std::string case_id = cli.get("case", "I2");
  const std::string path = cli.get("out", "design_files_example.txt");
  const std::string solver = cli.get("solver", "lr");

  // 1. Generate and persist a design.
  const model::Design generated =
      benchgen::generate_benchmark(benchgen::table1_spec(case_id));
  model::save_design(path, generated);
  std::printf("wrote %s: %zu groups, %zu bits, %zu pins\n", path.c_str(),
              generated.groups.size(), generated.num_bits(),
              generated.num_pins());

  // 2. Load it back (what an external flow would do with its own file).
  const model::Design design = model::load_design(path);
  design.validate();
  std::printf("loaded %s back: %zu groups, chip %.0f x %.0f um\n",
              path.c_str(), design.groups.size(), design.chip.width(),
              design.chip.height());

  // 3. Route.
  core::OperonOptions options;
  options.solver = solver == "ilp" ? core::SolverKind::IlpExact
                                   : core::SolverKind::Lr;
  options.select.time_limit_s = cli.get_double("ilp-limit", 10.0);
  const core::OperonResult result = core::run_operon(design, options);
  std::printf("routed: %.1f pJ total, %zu/%zu hyper nets optical, "
              "violations: %zu, WDMs in use: %zu\n",
              result.stats.power_pj, result.stats.optical_nets,
              result.stats.optical_nets + result.stats.electrical_nets,
              result.violations.violated_paths, result.wdm_plan.final_wdms);
  return 0;
}
