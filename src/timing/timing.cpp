#include "timing/timing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "steiner/tree.hpp"
#include "util/check.hpp"

namespace operon::timing {

namespace {
// 1 fF * 1 Ohm = 1e-3 ps.
constexpr double kFfOhmToPs = 1e-3;
// Speed of light, um/ps.
constexpr double kC_umPerPs = 299.792458;
}  // namespace

double elmore_delay_ps(const ElectricalTimingParams& params,
                       double length_um) {
  OPERON_CHECK(length_um >= 0.0);
  const double wire_cap = params.capacitance_ff_per_um * length_um;
  const double driver_term = params.driver_resistance_ohm * wire_cap;
  const double wire_term = 0.5 * params.resistance_ohm_per_um * length_um *
                           wire_cap;
  return 0.69 * (driver_term + wire_term) * kFfOhmToPs;
}

double repeatered_delay_ps(const ElectricalTimingParams& params,
                           double length_um) {
  OPERON_CHECK(length_um >= 0.0);
  if (length_um == 0.0) return 0.0;
  // Optimal segment length: L* = sqrt(2 R_drv C_in / (r c)).
  const double rc =
      params.resistance_ohm_per_um * params.capacitance_ff_per_um;
  const double optimal_segment =
      std::sqrt(2.0 * params.driver_resistance_ohm *
                params.input_capacitance_ff / rc);
  const double stages =
      std::max(1.0, std::ceil(length_um / optimal_segment));
  const double per_stage =
      elmore_delay_ps(params, length_um / stages) +
      0.69 * params.driver_resistance_ohm * params.input_capacitance_ff *
          kFfOhmToPs +
      params.repeater_intrinsic_ps;
  return stages * per_stage;
}

double electrical_delay_ps(const ElectricalTimingParams& params,
                           double length_um) {
  return std::min(elmore_delay_ps(params, length_um),
                  repeatered_delay_ps(params, length_um));
}

double waveguide_tof_ps(const OpticalTimingParams& params, double length_um) {
  OPERON_CHECK(length_um >= 0.0);
  return length_um * params.group_index / kC_umPerPs;
}

double optical_link_delay_ps(const OpticalTimingParams& params,
                             double length_um) {
  return params.modulator_latency_ps + waveguide_tof_ps(params, length_um) +
         params.detector_latency_ps;
}

double delay_crossover_um(const TimingParams& params) {
  // Bisect on [1, 1e7] um; both curves are monotone increasing and the
  // optical one has a fixed offset, so a single crossover exists if any.
  double lo = 1.0, hi = 1e7;
  const auto optics_wins = [&](double length) {
    return optical_link_delay_ps(params.optical, length) <
           electrical_delay_ps(params.electrical, length);
  };
  if (!optics_wins(hi)) return std::numeric_limits<double>::infinity();
  if (optics_wins(lo)) return lo;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (optics_wins(mid)) hi = mid;
    else lo = mid;
  }
  return hi;
}

CandidateTiming analyze_candidate(const codesign::CandidateSet& set,
                                  const codesign::Candidate& candidate,
                                  const TimingParams& params) {
  OPERON_CHECK(candidate.baseline < set.baselines.size());
  const steiner::SteinerTree& tree = set.baselines[candidate.baseline];
  OPERON_CHECK(candidate.edge_kinds.size() == tree.num_points());
  const steiner::RootedTree rooted = steiner::RootedTree::build(tree, set.root);

  CandidateTiming timing;
  timing.best_sink_delay_ps = std::numeric_limits<double>::infinity();

  // Walk the tree from the root in preorder (reverse postorder),
  // accumulating arrival time per node. An optical edge whose parent edge
  // was electrical (or the root) pays the EO latency; converting back at
  // a node that needs the data electrically pays the OE latency — the
  // same component semantics as the power model.
  std::vector<double> arrival(tree.num_points(), 0.0);
  for (auto it = rooted.postorder.rbegin(); it != rooted.postorder.rend();
       ++it) {
    const std::size_t v = *it;
    if (v == rooted.root) continue;
    const std::size_t parent = rooted.parent[v];
    const geom::Point& a = tree.points[parent];
    const geom::Point& b = tree.points[v];
    double t = arrival[parent];

    const bool edge_optical =
        candidate.edge_kinds[v] == codesign::EdgeKind::Optical;
    const bool parent_edge_optical =
        parent != rooted.root &&
        candidate.edge_kinds[parent] == codesign::EdgeKind::Optical;

    if (edge_optical) {
      if (!parent_edge_optical) t += params.optical.modulator_latency_ps;
      t += waveguide_tof_ps(params.optical, geom::euclidean(a, b));
    } else {
      if (parent_edge_optical) t += params.optical.detector_latency_ps;
      t += electrical_delay_ps(params.electrical, geom::manhattan(a, b));
    }
    arrival[v] = t;
  }

  for (std::size_t v = 0; v < tree.num_points(); ++v) {
    if (!tree.is_terminal(v) || v == rooted.root) continue;
    double t = arrival[v];
    // A sink reached optically still needs its local OE conversion.
    if (candidate.edge_kinds[v] == codesign::EdgeKind::Optical) {
      t += params.optical.detector_latency_ps;
    }
    timing.worst_sink_delay_ps = std::max(timing.worst_sink_delay_ps, t);
    timing.best_sink_delay_ps = std::min(timing.best_sink_delay_ps, t);
    ++timing.sinks;
  }
  if (timing.sinks == 0) timing.best_sink_delay_ps = 0.0;
  return timing;
}

TimingReport analyze_selection(std::span<const codesign::CandidateSet> sets,
                               const codesign::Selection& selection,
                               const TimingParams& params) {
  OPERON_CHECK(sets.size() == selection.size());
  TimingReport report;
  double sum = 0.0;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    const CandidateTiming timing =
        analyze_candidate(sets[i], sets[i].options[selection[i]], params);
    sum += timing.worst_sink_delay_ps;
    if (timing.worst_sink_delay_ps > report.worst_delay_ps) {
      report.worst_delay_ps = timing.worst_sink_delay_ps;
      report.worst_net = i;
    }
  }
  report.mean_worst_delay_ps =
      sets.empty() ? 0.0 : sum / static_cast<double>(sets.size());
  return report;
}

}  // namespace operon::timing
