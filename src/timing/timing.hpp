#pragma once
// Interconnect delay models — the paper's motivation ("interconnect
// delay becomes a bottleneck towards timing closure") made quantitative.
// Not part of the paper's optimization objective, but the natural
// companion analysis for a routed design:
//
//  * Electrical wires: Elmore RC delay, quadratic in length when
//    unrepeated; optimally repeatered long wires are linear in length
//    with delay/µm = 0.7·sqrt(2·R_drv·C_in·r·c) (classic Bakoglu result).
//    The model picks whichever is smaller (repeaters are only inserted
//    when they help).
//  * Optical waveguides: time-of-flight at the group velocity c/n_g plus
//    fixed EO (modulator+driver) and OE (detector+amplifier) latencies.
//
// The crossover — optics wins delay beyond a few millimeters — mirrors
// the power crossover the routing optimizes.

#include <span>

#include "codesign/candidate.hpp"
#include "codesign/selection.hpp"

namespace operon::timing {

struct ElectricalTimingParams {
  double resistance_ohm_per_um = 1.0;   ///< unit wire resistance r
  double capacitance_ff_per_um = 0.2;   ///< unit wire capacitance c
  double driver_resistance_ohm = 1000.0;  ///< repeater drive resistance
  double input_capacitance_ff = 2.0;      ///< repeater input capacitance
  double repeater_intrinsic_ps = 5.0;     ///< per-stage intrinsic delay
};

struct OpticalTimingParams {
  double group_index = 4.2;      ///< silicon waveguide group index n_g
  double modulator_latency_ps = 10.0;  ///< EO conversion (driver+mod)
  double detector_latency_ps = 15.0;   ///< OE conversion (PD+TIA+amp)
};

struct TimingParams {
  ElectricalTimingParams electrical;
  OpticalTimingParams optical;

  static TimingParams defaults() { return {}; }
};

/// Unrepeated Elmore delay of a wire driven by a repeater-class driver:
/// 0.69·(R_drv·c·L + r·c·L²/2) in ps.
double elmore_delay_ps(const ElectricalTimingParams& params, double length_um);

/// Delay of the same wire with optimal repeater insertion (linear in L);
/// includes per-stage intrinsic delays.
double repeatered_delay_ps(const ElectricalTimingParams& params,
                           double length_um);

/// min(Elmore, repeatered): repeaters only get inserted when they help.
double electrical_delay_ps(const ElectricalTimingParams& params,
                           double length_um);

/// Time of flight through a waveguide (no conversions).
double waveguide_tof_ps(const OpticalTimingParams& params, double length_um);

/// Full optical hop: EO + flight + OE.
double optical_link_delay_ps(const OpticalTimingParams& params,
                             double length_um);

/// Wire length beyond which a full optical hop beats the repeatered wire
/// (computed numerically; returns +inf if optics never wins).
double delay_crossover_um(const TimingParams& params);

/// Source-to-sink delays of one routed candidate: walks the tree from
/// the root, accumulating electrical wire delay / optical flight and the
/// conversion latencies at every EO/OE boundary.
struct CandidateTiming {
  double worst_sink_delay_ps = 0.0;
  double best_sink_delay_ps = 0.0;
  std::size_t sinks = 0;
};

CandidateTiming analyze_candidate(const codesign::CandidateSet& set,
                                  const codesign::Candidate& candidate,
                                  const TimingParams& params);

/// Design-level summary over a selection.
struct TimingReport {
  double worst_delay_ps = 0.0;
  double mean_worst_delay_ps = 0.0;  ///< mean over nets of per-net worst
  std::size_t worst_net = 0;
};

TimingReport analyze_selection(std::span<const codesign::CandidateSet> sets,
                               const codesign::Selection& selection,
                               const TimingParams& params);

}  // namespace operon::timing
