#include "benchgen/benchgen.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace operon::benchgen {

namespace {

geom::Point jitter(util::Rng& rng, const geom::Point& center, double spread,
                   const geom::BBox& chip) {
  geom::Point p{center.x + rng.uniform(-spread, spread),
                center.y + rng.uniform(-spread, spread)};
  p.x = std::clamp(p.x, chip.xlo, chip.xhi);
  p.y = std::clamp(p.y, chip.ylo, chip.yhi);
  return p;
}

}  // namespace

model::Design generate_benchmark(const BenchmarkSpec& spec) {
  OPERON_CHECK(spec.bits_lo >= 1 && spec.bits_lo <= spec.bits_hi);
  OPERON_CHECK(spec.sink_blocks_lo >= 1 &&
               spec.sink_blocks_lo <= spec.sink_blocks_hi);
  OPERON_CHECK(spec.chip_um > 2.0 * spec.margin_um);
  OPERON_CHECK(spec.max_span_um > spec.min_span_um);

  util::Rng rng(spec.seed);
  model::Design design;
  design.name = spec.name;
  design.chip = geom::BBox::of({0.0, 0.0}, {spec.chip_um, spec.chip_um});
  geom::BBox placeable = design.chip.inflated(-spec.margin_um);
  if (spec.placement_region_um > 0.0) {
    const double inset =
        std::max(0.0, (spec.chip_um - spec.placement_region_um) * 0.5);
    placeable = design.chip.inflated(-std::max(inset, spec.margin_um));
  }

  const auto random_site = [&] {
    return geom::Point{rng.uniform(placeable.xlo, placeable.xhi),
                       rng.uniform(placeable.ylo, placeable.yhi)};
  };

  for (std::size_t g = 0; g < spec.num_groups; ++g) {
    model::SignalGroup group;
    group.name = spec.name + "_g" + std::to_string(g);

    const geom::Point source_block = random_site();
    const auto num_sink_blocks = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(spec.sink_blocks_lo),
        static_cast<std::int64_t>(spec.sink_blocks_hi)));
    std::vector<geom::Point> sink_blocks;
    std::size_t attempts = 0;
    while (sink_blocks.size() < num_sink_blocks) {
      OPERON_CHECK_MSG(++attempts <= 100000,
                       "cannot place sink blocks: span range ["
                           << spec.min_span_um << ", " << spec.max_span_um
                           << "] um is unsatisfiable within the placeable "
                              "region of a " << spec.chip_um << " um chip");
      // Uniform span in [min, max] at a uniform angle: net-length
      // distributions in placed designs are span-uniform-ish rather than
      // area-weighted toward the long end.
      const double span = rng.uniform(spec.min_span_um, spec.max_span_um);
      const double angle = rng.uniform(0.0, 2.0 * M_PI);
      const geom::Point candidate{source_block.x + span * std::cos(angle),
                                  source_block.y + span * std::sin(angle)};
      if (!placeable.contains(candidate)) continue;
      // Keep sink blocks apart from each other too, so they agglomerate
      // into distinct hyper pins.
      const bool far_enough = std::all_of(
          sink_blocks.begin(), sink_blocks.end(), [&](const geom::Point& b) {
            return geom::euclidean(candidate, b) >= spec.min_span_um * 0.5;
          });
      if (far_enough) sink_blocks.push_back(candidate);
    }

    std::size_t bits;
    if (spec.bit_choices.empty()) {
      bits = static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::int64_t>(spec.bits_lo),
                          static_cast<std::int64_t>(spec.bits_hi)));
    } else {
      bits = spec.bit_choices[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(spec.bit_choices.size()) - 1))];
    }
    for (std::size_t b = 0; b < bits; ++b) {
      model::SignalBit bit;
      bit.source = {jitter(rng, source_block, spec.block_size_um, design.chip),
                    model::PinRole::Source};
      for (const geom::Point& block : sink_blocks) {
        bit.sinks.push_back(
            {jitter(rng, block, spec.block_size_um, design.chip),
             model::PinRole::Sink});
      }
      group.bits.push_back(std::move(bit));
    }
    design.groups.push_back(std::move(group));
  }
  design.validate();
  return design;
}

BenchmarkSpec table1_spec(std::string_view id) {
  BenchmarkSpec spec;
  spec.name = std::string(id);
  if (id == "I1") {
    // 2660 nets / 356 hnets / 1306 hpins: mid-width buses, fan-out 2-3.
    spec.num_groups = 355;
    spec.bit_choices = {3, 5, 9, 13};  // mean 7.5 bits, fragmenting widths
    spec.sink_blocks_lo = 2;
    spec.sink_blocks_hi = 3;
    spec.min_span_um = 2000.0;
    spec.max_span_um = 4200.0;
    spec.seed = 101;
  } else if (id == "I2") {
    // 1782 / 837 / 1701: many narrow point-to-point buses.
    spec.num_groups = 860;
    spec.bit_choices = {1, 2, 2, 3};  // mean 2 bits
    spec.sink_blocks_lo = 1;
    spec.sink_blocks_hi = 1;
    spec.min_span_um = 2200.0;
    spec.max_span_um = 6200.0;
    spec.seed = 102;
  } else if (id == "I3") {
    // 5072 / 168 / 336: few wide (≈32-bit) point-to-point buses.
    spec.num_groups = 172;
    spec.bit_choices = {26, 29, 31};  // mean 28.7 bits
    spec.sink_blocks_lo = 1;
    spec.sink_blocks_hi = 1;
    spec.min_span_um = 6000.0;   // I3 is the long-haul case: the paper's
    spec.max_span_um = 11000.0;  // E/Optical ratio there is 6.65
    spec.seed = 103;
  } else if (id == "I4") {
    // 3224 / 403 / 1474: mid-width buses, fan-out 2-3.
    spec.num_groups = 395;
    spec.bit_choices = {2, 3, 5, 9, 13, 18};  // mean 8.3, incl. Fig 6-like 18
    spec.sink_blocks_lo = 2;
    spec.sink_blocks_hi = 3;
    spec.min_span_um = 1900.0;
    spec.max_span_um = 4000.0;
    spec.seed = 104;
  } else if (id == "I5") {
    // 1994 / 933 / 1897: the densest narrow-bus case.
    spec.num_groups = 960;
    spec.bit_choices = {1, 2, 2, 3};  // mean 2 bits
    spec.sink_blocks_lo = 1;
    spec.sink_blocks_hi = 1;
    spec.min_span_um = 2200.0;   // the short-haul, most congested case
    spec.max_span_um = 5800.0;
    spec.placement_region_um = 16500.0;
    spec.seed = 105;
  } else {
    OPERON_CHECK_MSG(false, "unknown Table 1 case '" << id << "'");
  }
  return spec;
}

BenchmarkSpec scaled_spec(BenchmarkSpec spec, std::size_t scale) {
  OPERON_CHECK_MSG(scale >= 1, "benchmark scale must be >= 1");
  if (scale == 1) return spec;
  const double f = std::sqrt(static_cast<double>(scale));
  spec.num_groups *= scale;
  spec.chip_um *= f;
  spec.margin_um *= f;
  if (spec.placement_region_um > 0.0) spec.placement_region_um *= f;
  spec.name += "x" + std::to_string(scale);
  return spec;
}

std::vector<std::string> table1_cases() {
  return {"I1", "I2", "I3", "I4", "I5"};
}

}  // namespace operon::benchgen
