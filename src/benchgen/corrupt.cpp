#include "benchgen/corrupt.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace operon::benchgen {

namespace {

struct BitPick {
  std::size_t group = 0;
  std::size_t bit = 0;
};

/// Uniform pick over every (group, bit) pair of the design.
BitPick pick_bit(const model::Design& design, util::Rng& rng) {
  std::size_t total = 0;
  for (const model::SignalGroup& group : design.groups) {
    total += group.bits.size();
  }
  OPERON_CHECK_MSG(total > 0,
                   "corrupt_design needs a design with at least one bit");
  std::size_t index = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(total) - 1));
  for (std::size_t g = 0; g < design.groups.size(); ++g) {
    if (index < design.groups[g].bits.size()) return {g, index};
    index -= design.groups[g].bits.size();
  }
  return {0, 0};  // unreachable
}

/// A pin of the picked bit: the source or one of the sinks.
model::Pin& pick_pin(model::SignalBit& bit, util::Rng& rng) {
  const std::int64_t which =
      rng.uniform_int(0, static_cast<std::int64_t>(bit.sinks.size()));
  if (which == 0) return bit.source;
  return bit.sinks[static_cast<std::size_t>(which - 1)];
}

}  // namespace

std::vector<FaultKind> all_fault_kinds() {
  return {FaultKind::NanCoordinate, FaultKind::InfCoordinate,
          FaultKind::OffChipPin,    FaultKind::SwapPinRoles,
          FaultKind::TruncateSinks, FaultKind::EmptyGroup,
          FaultKind::ShrinkChip,    FaultKind::DuplicatePin,
          FaultKind::GiantChip,     FaultKind::ZeroGroups};
}

std::string_view fault_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::NanCoordinate: return "nan-coordinate";
    case FaultKind::InfCoordinate: return "inf-coordinate";
    case FaultKind::OffChipPin: return "off-chip-pin";
    case FaultKind::SwapPinRoles: return "swap-pin-roles";
    case FaultKind::TruncateSinks: return "truncate-sinks";
    case FaultKind::EmptyGroup: return "empty-group";
    case FaultKind::ShrinkChip: return "shrink-chip";
    case FaultKind::DuplicatePin: return "duplicate-pin";
    case FaultKind::GiantChip: return "giant-chip";
    case FaultKind::ZeroGroups: return "zero-groups";
  }
  return "unknown";
}

FaultExpectation fault_expectation(FaultKind kind) {
  switch (kind) {
    case FaultKind::DuplicatePin:
    case FaultKind::GiantChip:
    case FaultKind::ZeroGroups:
      return FaultExpectation::Complete;
    default:
      return FaultExpectation::Reject;
  }
}

model::Design corrupt_design(const model::Design& design, FaultKind kind,
                             util::Rng& rng) {
  model::Design out = design;
  switch (kind) {
    case FaultKind::NanCoordinate: {
      const BitPick pick = pick_bit(out, rng);
      model::Pin& pin = pick_pin(out.groups[pick.group].bits[pick.bit], rng);
      (rng.bernoulli(0.5) ? pin.location.x : pin.location.y) =
          std::numeric_limits<double>::quiet_NaN();
      break;
    }
    case FaultKind::InfCoordinate: {
      const BitPick pick = pick_bit(out, rng);
      model::Pin& pin = pick_pin(out.groups[pick.group].bits[pick.bit], rng);
      (rng.bernoulli(0.5) ? pin.location.x : pin.location.y) =
          std::numeric_limits<double>::infinity();
      break;
    }
    case FaultKind::OffChipPin: {
      const BitPick pick = pick_bit(out, rng);
      model::Pin& pin = pick_pin(out.groups[pick.group].bits[pick.bit], rng);
      pin.location.x = out.chip.xhi + 10.0 * (out.chip.width() + 1.0);
      break;
    }
    case FaultKind::SwapPinRoles: {
      const BitPick pick = pick_bit(out, rng);
      model::SignalBit& bit = out.groups[pick.group].bits[pick.bit];
      bit.source.role = model::PinRole::Sink;
      for (model::Pin& sink : bit.sinks) sink.role = model::PinRole::Source;
      break;
    }
    case FaultKind::TruncateSinks: {
      const BitPick pick = pick_bit(out, rng);
      out.groups[pick.group].bits[pick.bit].sinks.clear();
      break;
    }
    case FaultKind::EmptyGroup: {
      OPERON_CHECK_MSG(!out.groups.empty(),
                       "corrupt_design needs at least one group");
      const std::size_t g = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(out.groups.size()) - 1));
      out.groups[g].bits.clear();
      break;
    }
    case FaultKind::ShrinkChip: {
      // Finite but inverted: is_empty() without tripping the finiteness
      // check, so "chip-empty" (not "chip-not-finite") is exercised.
      out.chip.xhi = out.chip.xlo - 1.0;
      out.chip.yhi = out.chip.ylo - 1.0;
      break;
    }
    case FaultKind::DuplicatePin: {
      const BitPick pick = pick_bit(out, rng);
      model::SignalBit& bit = out.groups[pick.group].bits[pick.bit];
      if (!bit.sinks.empty()) {
        bit.sinks.front().location = bit.source.location;
      }
      break;
    }
    case FaultKind::GiantChip: {
      out.chip = out.chip.inflated(
          1000.0 * (out.chip.half_perimeter() + 1.0));
      break;
    }
    case FaultKind::ZeroGroups: {
      out.groups.clear();
      break;
    }
  }
  return out;
}

namespace {

std::size_t pick_offset(const std::string& text, util::Rng& rng) {
  if (text.empty()) return 0;
  return static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(text.size()) - 1));
}

std::string truncate_at(const std::string& text, util::Rng& rng) {
  return text.substr(0, pick_offset(text, rng));
}

std::string delete_span(const std::string& text, util::Rng& rng) {
  if (text.empty()) return text;
  const std::size_t start = pick_offset(text, rng);
  const std::size_t len = static_cast<std::size_t>(rng.uniform_int(
      1, std::min<std::int64_t>(32, static_cast<std::int64_t>(
                                        text.size() - start))));
  std::string out = text;
  out.erase(start, len);
  return out;
}

std::string garble(const std::string& text, util::Rng& rng) {
  if (text.empty()) return text;
  std::string out = text;
  const std::size_t hits = static_cast<std::size_t>(rng.uniform_int(1, 8));
  for (std::size_t i = 0; i < hits; ++i) {
    out[pick_offset(out, rng)] =
        static_cast<char>(rng.uniform_int(1, 126));  // keep it NUL-free
  }
  return out;
}

/// Replace the first number token at/after a random offset with "NaN"
/// (exercises the strict parser's non-finite rejection). Falls back to
/// truncation when the text has no digits.
std::string inject_nan(const std::string& text, util::Rng& rng) {
  const std::size_t start = pick_offset(text, rng);
  std::size_t pos = std::string::npos;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const std::size_t p = (start + i) % text.size();
    if (std::isdigit(static_cast<unsigned char>(text[p]))) {
      pos = p;
      break;
    }
  }
  if (pos == std::string::npos) return truncate_at(text, rng);
  std::size_t lo = pos;
  while (lo > 0 && (std::isdigit(static_cast<unsigned char>(text[lo - 1])) ||
                    text[lo - 1] == '.' || text[lo - 1] == '-' ||
                    text[lo - 1] == '+' || text[lo - 1] == 'e' ||
                    text[lo - 1] == 'E')) {
    --lo;
  }
  std::size_t hi = pos;
  while (hi < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[hi])) ||
          text[hi] == '.' || text[hi] == '-' || text[hi] == '+' ||
          text[hi] == 'e' || text[hi] == 'E')) {
    ++hi;
  }
  return text.substr(0, lo) + "NaN" + text.substr(hi);
}

std::string swap_punctuation(const std::string& text, util::Rng& rng) {
  static constexpr std::string_view kPunct = "{}[],:\"";
  std::vector<std::size_t> spots;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (kPunct.find(text[i]) != std::string_view::npos) spots.push_back(i);
  }
  if (spots.empty()) return garble(text, rng);
  std::string out = text;
  const std::size_t spot = spots[static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(spots.size()) - 1))];
  char repl = out[spot];
  while (repl == out[spot]) {
    repl = kPunct[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(kPunct.size()) - 1))];
  }
  out[spot] = repl;
  return out;
}

}  // namespace

std::string corrupt_text(const std::string& text, util::Rng& rng) {
  switch (rng.uniform_int(0, 2)) {
    case 0: return truncate_at(text, rng);
    case 1: return delete_span(text, rng);
    default: return garble(text, rng);
  }
}

std::string corrupt_json(const std::string& text, util::Rng& rng) {
  switch (rng.uniform_int(0, 3)) {
    case 0: return truncate_at(text, rng);
    case 1: return inject_nan(text, rng);
    case 2: return swap_punctuation(text, rng);
    default: return garble(text, rng);
  }
}

namespace {

/// Pad past the frame-size limit with printable junk (still one line —
/// the transport must reject it on size, not on content).
std::string oversize(const std::string& text, std::size_t oversize_bytes,
                     util::Rng& rng) {
  std::string out = text;
  out.reserve(oversize_bytes);
  while (out.size() < oversize_bytes) {
    out.push_back(static_cast<char>(rng.uniform_int(32, 126)));
  }
  return out;
}

/// Split the frame with an embedded newline: the receiver sees two
/// frames, both almost certainly malformed.
std::string inject_newline(const std::string& text, util::Rng& rng) {
  std::string out = text;
  out.insert(pick_offset(out, rng), 1, '\n');
  return out;
}

/// Duplicate the first `"key":value` pair at/after a random offset (the
/// strict parser rejects duplicate members). Falls back to garbling
/// when no member is found.
std::string duplicate_member(const std::string& text, util::Rng& rng) {
  const std::size_t start = pick_offset(text, rng);
  for (std::size_t i = 0; i < text.size(); ++i) {
    const std::size_t quote = (start + i) % text.size();
    if (text[quote] != '"' || quote + 1 >= text.size()) continue;
    const std::size_t close = text.find('"', quote + 1);
    if (close == std::string::npos || close + 1 >= text.size() ||
        text[close + 1] != ':') {
      continue;
    }
    std::size_t end = close + 2;
    while (end < text.size() && text[end] != ',' && text[end] != '}') ++end;
    if (end >= text.size()) continue;
    const std::string member = text.substr(quote, end - quote);
    return text.substr(0, end) + "," + member + text.substr(end);
  }
  return garble(text, rng);
}

}  // namespace

std::string corrupt_frame(const std::string& line, std::size_t oversize_bytes,
                          util::Rng& rng) {
  switch (rng.uniform_int(0, 6)) {
    case 0: return truncate_at(line, rng);
    case 1: return inject_nan(line, rng);
    case 2: return swap_punctuation(line, rng);
    case 3: return garble(line, rng);
    case 4: return oversize(line, oversize_bytes, rng);
    case 5: return inject_newline(line, rng);
    default: return duplicate_member(line, rng);
  }
}

namespace {

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  OPERON_CHECK_MSG(is.good(), "cannot read '" << path << "'");
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void write_file(const std::string& path, std::string_view bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  os.flush();
  OPERON_CHECK_MSG(os.good(), "cannot write '" << path << "'");
}

/// Byte offset of the final non-empty line's first character.
std::size_t last_line_start(std::string_view bytes) {
  std::size_t end = bytes.size();
  while (end > 0 && bytes[end - 1] == '\n') --end;
  const std::size_t newline = bytes.rfind('\n', end == 0 ? 0 : end - 1);
  return newline == std::string_view::npos ? 0 : newline + 1;
}

}  // namespace

std::vector<CrashFaultKind> all_crash_fault_kinds() {
  return {CrashFaultKind::TornLedgerTail, CrashFaultKind::TruncatedJournal,
          CrashFaultKind::StaleStageFile, CrashFaultKind::HalfWrittenFrame};
}

std::string_view crash_fault_name(CrashFaultKind kind) {
  switch (kind) {
    case CrashFaultKind::TornLedgerTail: return "torn-ledger-tail";
    case CrashFaultKind::TruncatedJournal: return "truncated-journal";
    case CrashFaultKind::StaleStageFile: return "stale-stage-file";
    case CrashFaultKind::HalfWrittenFrame: return "half-written-frame";
  }
  return "unknown";
}

void inject_crash_fault(const std::string& path, CrashFaultKind kind,
                        util::Rng& rng) {
  switch (kind) {
    case CrashFaultKind::TornLedgerTail: {
      // Cut mid-way through the final line: what a crash between the
      // stream write's first byte and its newline leaves behind.
      const std::string bytes = read_file(path);
      OPERON_CHECK_MSG(!bytes.empty(),
                       "torn-ledger-tail needs a non-empty '" << path << "'");
      const std::size_t start = last_line_start(bytes);
      const std::size_t len = bytes.size() - start;
      const std::size_t keep =
          start + 1 +
          static_cast<std::size_t>(rng.uniform_int(
              0, std::max<std::int64_t>(static_cast<std::int64_t>(len) - 2,
                                        0)));
      write_file(path, std::string_view(bytes).substr(0, keep));
      return;
    }
    case CrashFaultKind::TruncatedJournal: {
      // Chop the tail at an arbitrary offset — may erase whole entries
      // plus a partial one, like a crash during a burst of appends.
      const std::string bytes = read_file(path);
      OPERON_CHECK_MSG(!bytes.empty(),
                       "truncated-journal needs a non-empty '" << path << "'");
      const std::size_t keep = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(bytes.size()) - 1));
      write_file(path, std::string_view(bytes).substr(0, keep));
      return;
    }
    case CrashFaultKind::StaleStageFile: {
      // A writer died between staging and appending: its uniquely-named
      // stage file survives, holding a complete-or-partial record.
      const std::string stage = util::format(
          "%s.tmp.%lld.%lld", path.c_str(),
          static_cast<long long>(rng.uniform_int(1, 99999)),
          static_cast<long long>(rng.uniform_int(0, 99)));
      std::string staged = "{\"schema\":3,\"case\":\"I1\"";
      if (rng.uniform_int(0, 1) == 1) staged += ",\"seed\":7}\n";
      write_file(stage, staged);
      return;
    }
    case CrashFaultKind::HalfWrittenFrame: {
      // Append a partial object with no newline: a torn concurrent
      // write or a crash mid-line as seen by any JSONL reader.
      std::string bytes = read_file(path);
      bytes += "{\"schema\":3,\"ca";
      write_file(path, bytes);
      return;
    }
  }
  OPERON_CHECK_MSG(false, "unknown crash fault kind");
}

}  // namespace operon::benchgen
