#pragma once
// Synthetic benchmark generation. The paper derives its test cases from
// industrial designs up-scaled to centimeter dimensions; those netlists
// are proprietary, so this generator reproduces their *structural
// regimes* instead: each signal group is a bus from one source block to
// 1..k distant sink blocks, with per-case group counts, bus widths, and
// fan-outs tuned so the resulting #Net / #HNet / #HPin statistics track
// Table 1's left columns (see DESIGN.md, substitutions).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "model/design.hpp"

namespace operon::benchgen {

struct BenchmarkSpec {
  std::string name = "synthetic";
  double chip_um = 20000.0;  ///< 2 cm square, per the paper's up-scaling
  double margin_um = 500.0;
  std::size_t num_groups = 100;
  std::size_t bits_lo = 2;   ///< bus width range (uniform)
  std::size_t bits_hi = 8;
  /// When non-empty, bus widths are drawn uniformly from this set instead
  /// of [bits_lo, bits_hi] (industrial designs mix a few stock widths).
  std::vector<std::size_t> bit_choices;
  std::size_t sink_blocks_lo = 1;  ///< sink fan-out block range
  std::size_t sink_blocks_hi = 1;
  double block_size_um = 150.0;    ///< pin jitter within a block
  double min_span_um = 2500.0;     ///< minimum source-to-sink distance
  /// Maximum source-to-sink distance. Industrial buses are mostly local;
  /// bounding the span keeps the crossing graph sparse (a cross-chip
  /// free-for-all would violate every detection budget, which no real
  /// up-scaled netlist does).
  double max_span_um = 4500.0;
  /// Side of the square region pins are placed in (0 = whole chip).
  /// Shrinking it raises congestion without changing span statistics.
  double placement_region_um = 0.0;
  std::uint64_t seed = 1;
};

/// Generate a random design per the spec. Deterministic for a seed.
model::Design generate_benchmark(const BenchmarkSpec& spec);

/// The five Table 1 cases. `id` is one of "I1".."I5".
BenchmarkSpec table1_spec(std::string_view id);

/// Scale a spec to ~`scale`× the instance: `scale`× the signal groups on
/// a √scale-larger chip (area grows with the group count, so pin density
/// and the per-net span statistics — and with them the crossing-degree
/// regime — are preserved). The name gains an "xN" suffix so ledger
/// records of scaled runs never pair with unscaled ones. scale == 1
/// returns the spec unchanged.
BenchmarkSpec scaled_spec(BenchmarkSpec spec, std::size_t scale);

/// All five Table 1 case ids, in order.
std::vector<std::string> table1_cases();

}  // namespace operon::benchgen
