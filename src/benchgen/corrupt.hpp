#pragma once
// Seeded fault injection for the robustness harness. Each FaultKind is
// one enumerable corruption of a well-formed design (or of its text /
// JSON serialization); the corruptors draw every random choice from a
// util::Rng so a (seed, kind) pair replays exactly. The contract under
// test: feeding a corrupted input to the pipeline must either raise a
// util::CheckError whose cause is enumerated by structured diagnostics
// (expectation Reject) or complete with a plan that passes
// core::verify_result (expectation Complete) — never crash, hang, or
// trip a sanitizer.

#include <string>
#include <string_view>
#include <vector>

#include "model/design.hpp"
#include "util/rng.hpp"

namespace operon::benchgen {

enum class FaultKind {
  // -- Reject: validation must flag these as Error --
  NanCoordinate,   ///< one pin coordinate becomes NaN
  InfCoordinate,   ///< one pin coordinate becomes +inf
  OffChipPin,      ///< one pin teleports far outside the chip outline
  SwapPinRoles,    ///< a bit's source/sink role labels are swapped
  TruncateSinks,   ///< one bit loses all of its sinks
  EmptyGroup,      ///< one group loses all of its bits
  ShrinkChip,      ///< chip outline collapses to an empty box
  // -- Complete: degenerate but processable --
  DuplicatePin,    ///< a sink is moved exactly onto its source
  GiantChip,       ///< chip outline inflated 1000x (pins stay legal)
  ZeroGroups,      ///< all groups removed (empty design routes trivially)
};

/// Every FaultKind, in declaration order (for harnesses that cycle).
std::vector<FaultKind> all_fault_kinds();

std::string_view fault_name(FaultKind kind);

enum class FaultExpectation { Reject, Complete };

FaultExpectation fault_expectation(FaultKind kind);

/// Apply one specific corruption. The design must be non-trivial (>= 1
/// group with >= 1 bit) for the pin-level kinds; the corruptor picks its
/// victims via `rng`.
model::Design corrupt_design(const model::Design& design, FaultKind kind,
                             util::Rng& rng);

/// Byte-level corruption of a serialized design (text or JSON): pick one
/// of truncate-at-random-offset / delete-a-span / garble-bytes. The
/// result may or may not still parse; the caller's contract is only that
/// parsing throws CheckError or yields a design that validates/rejects
/// cleanly.
std::string corrupt_text(const std::string& text, util::Rng& rng);

/// JSON-aware corruption: truncate, inject a NaN literal into a number,
/// swap a structural punctuation byte, or garble a span. Exercises the
/// strict parser's error paths.
std::string corrupt_json(const std::string& text, util::Rng& rng);

/// Serve-protocol frame corruption: everything corrupt_json does, plus
/// the transport-level faults a JSONL wire can see — a frame inflated
/// past the size limit (pad to `oversize_bytes`; pass the protocol's
/// kMaxFrameBytes + 1), an embedded newline splitting the frame in two,
/// and a duplicated object member (the strict parser rejects
/// duplicates). The contract under test (tests/serve_protocol_test.cpp):
/// the daemon answers every such frame with a structured error response
/// — it never crashes, hangs, or emits a malformed line.
std::string corrupt_frame(const std::string& line, std::size_t oversize_bytes,
                          util::Rng& rng);

/// Crash aftermaths for the serve chaos harness: each kind reproduces
/// the on-disk state a SIGKILL can leave behind, so recovery code
/// (read_ledger_salvage, JobJournal::replay, stale-stage cleanup) is
/// tested against exactly the wreckage it claims to survive.
enum class CrashFaultKind {
  TornLedgerTail,    ///< final line cut mid-record (died mid-append)
  TruncatedJournal,  ///< tail chopped at an arbitrary byte offset
  StaleStageFile,    ///< leftover <path>.tmp.<pid>.<n> from a dead writer
  HalfWrittenFrame,  ///< partial JSON object appended with no newline
};

/// Every CrashFaultKind, in declaration order.
std::vector<CrashFaultKind> all_crash_fault_kinds();

std::string_view crash_fault_name(CrashFaultKind kind);

/// Apply one crash aftermath to the file at `path`, in place
/// (StaleStageFile creates a sibling stage file instead). The
/// truncating kinds need a non-empty file; offsets come from `rng` so a
/// (seed, kind) pair replays exactly. Throws util::CheckError when the
/// file cannot be read or written.
void inject_crash_fault(const std::string& path, CrashFaultKind kind,
                        util::Rng& rng);

}  // namespace operon::benchgen
