#include "thermal/thermal.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace operon::thermal {

TemperatureField::TemperatureField(const core::PowerMap& power,
                                   const ThermalParams& params)
    : extent_(power.extent), cells_(power.cells) {
  OPERON_CHECK(cells_ >= 1);
  temperature_.assign(cells_ * cells_, params.ambient_c);

  // Separable Gaussian blur of (optical + electrical) dissipation.
  const double cw = std::max(extent_.width(), 1e-9) / static_cast<double>(cells_);
  const double sigma_cells = std::max(params.diffusion_um / cw, 1e-3);
  const int radius = std::max(1, static_cast<int>(std::ceil(3.0 * sigma_cells)));
  std::vector<double> kernel(static_cast<std::size_t>(2 * radius + 1));
  double kernel_sum = 0.0;
  for (int k = -radius; k <= radius; ++k) {
    const double w = std::exp(-0.5 * (k / sigma_cells) * (k / sigma_cells));
    kernel[static_cast<std::size_t>(k + radius)] = w;
    kernel_sum += w;
  }
  for (double& w : kernel) w /= kernel_sum;

  std::vector<double> combined(cells_ * cells_);
  for (std::size_t i = 0; i < combined.size(); ++i) {
    combined[i] = power.optical[i] + power.electrical[i];
  }
  const auto idx = [&](std::size_t x, std::size_t y) { return y * cells_ + x; };
  // Horizontal pass.
  std::vector<double> pass(cells_ * cells_, 0.0);
  for (std::size_t y = 0; y < cells_; ++y) {
    for (std::size_t x = 0; x < cells_; ++x) {
      double acc = 0.0;
      for (int k = -radius; k <= radius; ++k) {
        const long long xx = static_cast<long long>(x) + k;
        if (xx < 0 || xx >= static_cast<long long>(cells_)) continue;
        acc += combined[idx(static_cast<std::size_t>(xx), y)] *
               kernel[static_cast<std::size_t>(k + radius)];
      }
      pass[idx(x, y)] = acc;
    }
  }
  // Vertical pass + conversion to temperature.
  for (std::size_t y = 0; y < cells_; ++y) {
    for (std::size_t x = 0; x < cells_; ++x) {
      double acc = 0.0;
      for (int k = -radius; k <= radius; ++k) {
        const long long yy = static_cast<long long>(y) + k;
        if (yy < 0 || yy >= static_cast<long long>(cells_)) continue;
        acc += pass[idx(x, static_cast<std::size_t>(yy))] *
               kernel[static_cast<std::size_t>(k + radius)];
      }
      temperature_[idx(x, y)] = params.ambient_c + params.rise_c_per_pj * acc;
    }
  }
}

double TemperatureField::at(const geom::Point& location) const {
  const double cw =
      std::max(extent_.width(), 1e-9) / static_cast<double>(cells_);
  const double ch =
      std::max(extent_.height(), 1e-9) / static_cast<double>(cells_);
  const auto clamp_idx = [&](double v, double lo, double width) {
    const auto i = static_cast<long long>((v - lo) / width);
    return static_cast<std::size_t>(
        std::clamp<long long>(i, 0, static_cast<long long>(cells_) - 1));
  };
  return temperature_[clamp_idx(location.y, extent_.ylo, ch) * cells_ +
                      clamp_idx(location.x, extent_.xlo, cw)];
}

double TemperatureField::max_c() const {
  return *std::max_element(temperature_.begin(), temperature_.end());
}

double TemperatureField::min_c() const {
  return *std::min_element(temperature_.begin(), temperature_.end());
}

ThermalReport analyze(const geom::BBox& chip,
                      std::span<const codesign::CandidateSet> sets,
                      std::span<const codesign::Candidate> chosen,
                      const model::TechParams& tech,
                      const ThermalParams& params, std::size_t cells) {
  OPERON_CHECK(sets.size() == chosen.size());
  const core::PowerMap power =
      core::build_power_map(chip, sets, chosen, tech, cells);
  const TemperatureField field(power, params);

  ThermalReport report;
  report.max_temperature_c = field.max_c();
  for (std::size_t i = 0; i < sets.size(); ++i) {
    const codesign::Candidate& cand = chosen[i];
    const auto charge = [&](const geom::Point& site) {
      RingSite ring;
      ring.location = site;
      ring.bits = sets[i].bit_count;
      ring.temperature_c = field.at(site);
      const double offset = std::abs(ring.temperature_c - params.target_c);
      ring.tuning_pj = static_cast<double>(ring.bits) *
                       params.tuning_pj_per_bit_per_c * offset;
      report.total_tuning_pj += ring.tuning_pj;
      report.worst_ring_offset_c = std::max(report.worst_ring_offset_c, offset);
      report.rings.push_back(ring);
    };
    for (const geom::Point& site : cand.modulator_sites) charge(site);
    for (const geom::Point& site : cand.detector_sites) charge(site);
  }
  return report;
}

}  // namespace operon::thermal
