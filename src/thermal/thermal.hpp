#pragma once
// Thermal analysis of a routed design — the extension direction the
// paper's citations point at ([2]: resonant microring thermal tuning,
// [6]: power-efficient variation-aware photonic management). Resonant
// optical devices (modulator/detector rings) drift with temperature and
// must be tuned back on-channel; the tuning power grows with the local
// temperature offset. Electrical wiring heats the die, so a design with
// a cooler electrical layer (OPERON vs GLOW, Fig 9) also pays less ring
// tuning power — this module quantifies that coupling.
//
// Model: steady-state temperature field = ambient + thermal-resistance-
// scaled Gaussian diffusion of the per-cell dissipated power (both
// layers); per-ring tuning energy = efficiency * |T(site) - T_target|.

#include <span>
#include <vector>

#include "codesign/candidate.hpp"
#include "core/powermap.hpp"
#include "model/params.hpp"

namespace operon::thermal {

struct ThermalParams {
  double ambient_c = 45.0;          ///< die ambient under load
  /// Peak temperature rise per pJ/bit-cycle of cell power, °C (lumps the
  /// package thermal resistance and the activity/frequency scaling).
  double rise_c_per_pj = 0.08;
  /// Gaussian diffusion radius of heat in the die, µm.
  double diffusion_um = 1200.0;
  /// Ring resonance target temperature (tuned at design time), °C.
  /// Defaults to the ambient: tuning energy then measures exactly the
  /// local self-heating the routed design causes.
  double target_c = 45.0;
  /// Tuning energy per channel per °C of offset, pJ/bit/°C
  /// (thermo-optic heater efficiency folded into per-bit units).
  double tuning_pj_per_bit_per_c = 0.012;
};

/// Steady-state temperature field on the power-map grid.
class TemperatureField {
 public:
  TemperatureField(const core::PowerMap& power, const ThermalParams& params);

  double at(const geom::Point& location) const;
  double max_c() const;
  double min_c() const;
  std::size_t cells() const { return cells_; }

 private:
  geom::BBox extent_;
  std::size_t cells_ = 0;
  std::vector<double> temperature_;
};

struct RingSite {
  geom::Point location;
  std::size_t bits = 0;
  double temperature_c = 0.0;
  double tuning_pj = 0.0;
};

struct ThermalReport {
  double max_temperature_c = 0.0;
  double total_tuning_pj = 0.0;   ///< over all modulator/detector rings
  double worst_ring_offset_c = 0.0;
  std::vector<RingSite> rings;
};

/// Analyze a routed design: build the temperature field from its power
/// map and charge every EO/OE ring its tuning energy.
ThermalReport analyze(const geom::BBox& chip,
                      std::span<const codesign::CandidateSet> sets,
                      std::span<const codesign::Candidate> chosen,
                      const model::TechParams& tech,
                      const ThermalParams& params, std::size_t cells = 32);

}  // namespace operon::thermal
