#include "geom/segment.hpp"

#include <algorithm>
#include <cmath>

#include "geom/sweep.hpp"

namespace operon::geom {

namespace {
// Relative tolerance for orientation tests; geometry is in µm with chip
// extents up to ~1e5 µm, so 1e-9 relative keeps us well above double noise.
constexpr double kRelTol = 1e-9;
}  // namespace

int orientation(const Point& a, const Point& b, const Point& c) {
  const double v = cross(b - a, c - a);
  const double scale = std::max({std::abs(b.x - a.x), std::abs(b.y - a.y),
                                 std::abs(c.x - a.x), std::abs(c.y - a.y),
                                 1.0});
  if (std::abs(v) <= kRelTol * scale * scale) return 0;
  return v > 0 ? 1 : -1;
}

bool on_segment(const Segment& s, const Point& p) {
  if (orientation(s.a, s.b, p) != 0) return false;
  return p.x >= std::min(s.a.x, s.b.x) - kRelTol &&
         p.x <= std::max(s.a.x, s.b.x) + kRelTol &&
         p.y >= std::min(s.a.y, s.b.y) - kRelTol &&
         p.y <= std::max(s.a.y, s.b.y) + kRelTol;
}

bool segments_intersect(const Segment& s, const Segment& t) {
  const int o1 = orientation(s.a, s.b, t.a);
  const int o2 = orientation(s.a, s.b, t.b);
  const int o3 = orientation(t.a, t.b, s.a);
  const int o4 = orientation(t.a, t.b, s.b);
  if (o1 != o2 && o3 != o4) return true;
  if (o1 == 0 && on_segment(s, t.a)) return true;
  if (o2 == 0 && on_segment(s, t.b)) return true;
  if (o3 == 0 && on_segment(t, s.a)) return true;
  if (o4 == 0 && on_segment(t, s.b)) return true;
  return false;
}

bool segments_cross(const Segment& s, const Segment& t) {
  const int o1 = orientation(s.a, s.b, t.a);
  const int o2 = orientation(s.a, s.b, t.b);
  const int o3 = orientation(t.a, t.b, s.a);
  const int o4 = orientation(t.a, t.b, s.b);
  // Proper crossing requires strict straddling on both segments: each
  // segment's endpoints lie strictly on opposite sides of the other.
  return o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0 && o1 != o2 && o3 != o4;
}

std::size_t count_crossings(std::span<const Segment> lhs,
                            std::span<const Segment> rhs) {
  // Small products are cheaper as a direct pair loop than as an event
  // sort; both counters agree exactly (sweep_test pins this), so the
  // dispatch threshold is a pure performance knob.
  if (lhs.size() * rhs.size() <= 32 * (lhs.size() + rhs.size())) {
    return count_crossings_brute(lhs, rhs);
  }
  return count_crossings_sweep(lhs, rhs);
}

std::size_t count_crossings(const Segment& seg, std::span<const Segment> set) {
  return count_crossings(std::span<const Segment>{&seg, 1}, set);
}

double point_segment_distance(const Point& p, const Segment& s) {
  const Point d = s.b - s.a;
  const double len2 = dot(d, d);
  if (len2 == 0.0) return euclidean(p, s.a);
  const double t = std::clamp(dot(p - s.a, d) / len2, 0.0, 1.0);
  return euclidean(p, s.a + d * t);
}

double total_length(std::span<const Segment> segs) {
  double sum = 0.0;
  for (const Segment& s : segs) sum += s.length();
  return sum;
}

}  // namespace operon::geom
