#pragma once
// 2-D points in micrometers. Optical waveguides route in any direction
// (Euclidean metric); electrical wires are Manhattan.

#include <cmath>
#include <functional>
#include <ostream>

namespace operon::geom {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
  friend bool operator!=(const Point& a, const Point& b) { return !(a == b); }
  friend Point operator+(const Point& a, const Point& b) {
    return {a.x + b.x, a.y + b.y};
  }
  friend Point operator-(const Point& a, const Point& b) {
    return {a.x - b.x, a.y - b.y};
  }
  friend Point operator*(const Point& a, double s) { return {a.x * s, a.y * s}; }
  friend Point operator*(double s, const Point& a) { return a * s; }

  friend std::ostream& operator<<(std::ostream& os, const Point& p) {
    return os << '(' << p.x << ", " << p.y << ')';
  }
};

inline double dot(const Point& a, const Point& b) { return a.x * b.x + a.y * b.y; }

/// z-component of the 2-D cross product (a × b).
inline double cross(const Point& a, const Point& b) { return a.x * b.y - a.y * b.x; }

inline double euclidean(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

inline double manhattan(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

inline double squared_distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x, dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline Point midpoint(const Point& a, const Point& b) {
  return {(a.x + b.x) * 0.5, (a.y + b.y) * 0.5};
}

/// Lexicographic (x, then y) ordering, useful for canonicalization.
struct PointLess {
  bool operator()(const Point& a, const Point& b) const {
    if (a.x != b.x) return a.x < b.x;
    return a.y < b.y;
  }
};

}  // namespace operon::geom
