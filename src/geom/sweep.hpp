#pragma once
// Sweep-line crossing engine. Counting proper crossings between two
// segment sets is the geometry kernel behind every lx(i,j,m,n,p) term;
// the brute-force O(n·m) pair loop is replaced by a red/blue plane sweep
// over sorted bbox endpoints: a pair of segments is examined exactly once
// (when the later-starting one enters the sweep front) and only if their
// bounding boxes overlap on both axes. The crossing predicate applied to
// each surviving pair is the same `segments_cross` used by the brute
// force, so the two counters agree exactly on every input — including
// degenerate segments (zero length, collinear overlaps, shared
// endpoints), which the predicate rejects identically either way.
// `count_crossings_brute` is kept as the oracle for differential tests.
//
// Thread-safety: a CrossingSweep instance is single-threaded scratch
// (reusable across runs without reallocating); the free functions use a
// thread-local instance and are safe to call concurrently.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "geom/segment.hpp"

namespace operon::geom {

/// Reference O(n·m) counter (bbox-filtered pair loop). Oracle for the
/// sweep in differential tests; also the fastest choice for tiny inputs.
std::size_t count_crossings_brute(std::span<const Segment> lhs,
                                  std::span<const Segment> rhs);

/// Sweep-line counter; equals count_crossings_brute on every input.
std::size_t count_crossings_sweep(std::span<const Segment> lhs,
                                  std::span<const Segment> rhs);

/// Reusable red/blue sweep with per-group accumulation: lhs segments are
/// tagged with a group id (e.g. the candidate path they belong to) and
/// one run() distributes the pairwise crossing counts over the groups.
/// All scratch is retained across clear()/run() cycles, so a long-lived
/// instance performs no steady-state allocations.
class CrossingSweep {
 public:
  void clear();
  void add_lhs(std::uint32_t group, const Segment& segment);
  void add_rhs(const Segment& segment);

  std::size_t lhs_size() const { return lhs_.size(); }
  std::size_t rhs_size() const { return rhs_.size(); }

  /// Sweeps and returns the total number of proper crossings; when
  /// `group_counts` is non-empty it must cover every group id added and
  /// receives `group_counts[g] += crossings of lhs group g`.
  std::size_t run(std::span<int> group_counts = {});

 private:
  struct Item {
    Segment seg;
    double ylo, yhi;
    std::uint32_t group;
  };
  /// code packs (is_end, color, index): ascending order processes starts
  /// before ends at equal x, which makes touching bboxes overlap exactly
  /// as BBox::overlaps' closed intervals do.
  struct Event {
    double x;
    std::uint32_t code;
  };

  std::vector<Item> lhs_, rhs_;
  std::vector<Event> events_;
  /// Active item indices per color, kept sorted by (ylo, index).
  std::vector<std::uint32_t> active_lhs_, active_rhs_;
};

}  // namespace operon::geom
