#include "geom/sweep.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace operon::geom {

namespace {

constexpr std::uint32_t kEndBit = 1u << 31;
constexpr std::uint32_t kColorBit = 1u << 30;  // set = rhs
constexpr std::uint32_t kIndexMask = kColorBit - 1;

}  // namespace

void CrossingSweep::clear() {
  lhs_.clear();
  rhs_.clear();
}

void CrossingSweep::add_lhs(std::uint32_t group, const Segment& segment) {
  const BBox box = segment.bbox();
  lhs_.push_back({segment, box.ylo, box.yhi, group});
}

void CrossingSweep::add_rhs(const Segment& segment) {
  const BBox box = segment.bbox();
  rhs_.push_back({segment, box.ylo, box.yhi, 0});
}

std::size_t CrossingSweep::run(std::span<int> group_counts) {
  OPERON_DCHECK(lhs_.size() < kIndexMask && rhs_.size() < kIndexMask);
  if (lhs_.empty() || rhs_.empty()) return 0;

  events_.clear();
  events_.reserve(2 * (lhs_.size() + rhs_.size()));
  for (std::uint32_t i = 0; i < lhs_.size(); ++i) {
    const BBox box = lhs_[i].seg.bbox();
    events_.push_back({box.xlo, i});
    events_.push_back({box.xhi, i | kEndBit});
  }
  for (std::uint32_t i = 0; i < rhs_.size(); ++i) {
    const BBox box = rhs_[i].seg.bbox();
    events_.push_back({box.xlo, i | kColorBit});
    events_.push_back({box.xhi, i | kColorBit | kEndBit});
  }
  // Starts sort before ends at equal x (kEndBit is the top bit), so a
  // segment starting exactly where another ends still sees it active —
  // the same closed-interval overlap BBox::overlaps defines.
  std::sort(events_.begin(), events_.end(),
            [](const Event& a, const Event& b) {
              if (a.x != b.x) return a.x < b.x;
              return a.code < b.code;
            });

  active_lhs_.clear();
  active_rhs_.clear();
  std::size_t total = 0;

  // One color's event handler; `item_is_lhs` picks which side of the
  // enumerated pair carries the group tag.
  const auto handle = [&](const Event& event, const std::vector<Item>& items,
                          std::vector<std::uint32_t>& own,
                          const std::vector<Item>& other_items,
                          const std::vector<std::uint32_t>& other,
                          bool item_is_lhs) {
    const std::uint32_t index = event.code & kIndexMask;
    const Item& item = items[index];
    const auto less = [&items](std::uint32_t a, std::uint32_t b) {
      if (items[a].ylo != items[b].ylo) return items[a].ylo < items[b].ylo;
      return a < b;
    };

    if (event.code & kEndBit) {
      const auto it = std::lower_bound(own.begin(), own.end(), index, less);
      OPERON_DCHECK(it != own.end() && *it == index);
      own.erase(it);
      return;
    }

    // Scan the other color's sweep front: actives are x-overlapping by
    // construction, so the pair predicate reduces to the y-interval test
    // plus the proper-crossing check — identical to the brute force.
    for (const std::uint32_t o : other) {
      const Item& cand = other_items[o];
      if (cand.ylo > item.yhi) break;  // actives sorted by ylo
      if (cand.yhi < item.ylo) continue;
      if (!segments_cross(item.seg, cand.seg)) continue;
      ++total;
      if (!group_counts.empty()) {
        const std::uint32_t group = item_is_lhs ? item.group : cand.group;
        OPERON_DCHECK(group < group_counts.size());
        ++group_counts[group];
      }
    }
    own.insert(std::upper_bound(own.begin(), own.end(), index, less), index);
  };

  for (const Event& event : events_) {
    if (event.code & kColorBit) {
      handle(event, rhs_, active_rhs_, lhs_, active_lhs_, /*item_is_lhs=*/false);
    } else {
      handle(event, lhs_, active_lhs_, rhs_, active_rhs_, /*item_is_lhs=*/true);
    }
  }
  return total;
}

std::size_t count_crossings_brute(std::span<const Segment> lhs,
                                  std::span<const Segment> rhs) {
  std::size_t count = 0;
  for (const Segment& s : lhs) {
    const BBox sb = s.bbox();
    for (const Segment& t : rhs) {
      if (!sb.overlaps(t.bbox())) continue;
      if (segments_cross(s, t)) ++count;
    }
  }
  return count;
}

std::size_t count_crossings_sweep(std::span<const Segment> lhs,
                                  std::span<const Segment> rhs) {
  thread_local CrossingSweep sweep;
  sweep.clear();
  for (const Segment& s : lhs) sweep.add_lhs(0, s);
  for (const Segment& t : rhs) sweep.add_rhs(t);
  return sweep.run();
}

}  // namespace operon::geom
