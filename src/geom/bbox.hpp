#pragma once
// Axis-aligned bounding boxes. Used by the ILP variable-reduction
// speed-up (§3.3): hyper-net pairs whose bounding boxes do not overlap
// cannot contribute crossing-loss terms.

#include <algorithm>
#include <limits>

#include "geom/point.hpp"

namespace operon::geom {

struct BBox {
  double xlo = std::numeric_limits<double>::infinity();
  double ylo = std::numeric_limits<double>::infinity();
  double xhi = -std::numeric_limits<double>::infinity();
  double yhi = -std::numeric_limits<double>::infinity();

  /// Empty box (expand() to grow). Default-constructed boxes are empty.
  static BBox empty() { return {}; }

  static BBox of(const Point& a, const Point& b) {
    BBox box;
    box.expand(a);
    box.expand(b);
    return box;
  }

  bool is_empty() const { return xlo > xhi || ylo > yhi; }

  void expand(const Point& p) {
    xlo = std::min(xlo, p.x);
    ylo = std::min(ylo, p.y);
    xhi = std::max(xhi, p.x);
    yhi = std::max(yhi, p.y);
  }

  void expand(const BBox& other) {
    xlo = std::min(xlo, other.xlo);
    ylo = std::min(ylo, other.ylo);
    xhi = std::max(xhi, other.xhi);
    yhi = std::max(yhi, other.yhi);
  }

  /// Grow symmetrically by a margin on all four sides.
  BBox inflated(double margin) const {
    BBox box = *this;
    box.xlo -= margin;
    box.ylo -= margin;
    box.xhi += margin;
    box.yhi += margin;
    return box;
  }

  double width() const { return is_empty() ? 0.0 : xhi - xlo; }
  double height() const { return is_empty() ? 0.0 : yhi - ylo; }
  double half_perimeter() const { return width() + height(); }
  double area() const { return width() * height(); }
  Point center() const { return {(xlo + xhi) * 0.5, (ylo + yhi) * 0.5}; }

  bool contains(const Point& p) const {
    return p.x >= xlo && p.x <= xhi && p.y >= ylo && p.y <= yhi;
  }

  /// Closed-interval overlap (touching boxes overlap).
  bool overlaps(const BBox& other) const {
    if (is_empty() || other.is_empty()) return false;
    return xlo <= other.xhi && other.xlo <= xhi && ylo <= other.yhi &&
           other.ylo <= yhi;
  }

  friend bool operator==(const BBox& a, const BBox& b) {
    return a.xlo == b.xlo && a.ylo == b.ylo && a.xhi == b.xhi && a.yhi == b.yhi;
  }
};

}  // namespace operon::geom
