#pragma once
// Line segments and crossing predicates. Waveguide crossing loss (β per
// crossing, Eq. 2) is driven by counting proper intersections between
// optical segments of different routes; segments that merely share an
// endpoint (tree branching) do not count as crossings.

#include <cstddef>
#include <span>
#include <vector>

#include "geom/bbox.hpp"
#include "geom/point.hpp"

namespace operon::geom {

struct Segment {
  Point a;
  Point b;

  double length() const { return euclidean(a, b); }
  double manhattan_length() const { return manhattan(a, b); }
  BBox bbox() const { return BBox::of(a, b); }

  bool is_horizontal(double tol = 1e-9) const {
    return std::abs(a.y - b.y) <= tol;
  }
  bool is_vertical(double tol = 1e-9) const {
    return std::abs(a.x - b.x) <= tol;
  }

  friend bool operator==(const Segment& s, const Segment& t) {
    return s.a == t.a && s.b == t.b;
  }
};

/// Sign of the orientation of the triangle (a, b, c): +1 counter-clockwise,
/// -1 clockwise, 0 collinear (within tolerance scaled to the inputs).
int orientation(const Point& a, const Point& b, const Point& c);

/// True if point p lies on segment s (inclusive of endpoints).
bool on_segment(const Segment& s, const Point& p);

/// True if the segments intersect at all (shared endpoints count).
bool segments_intersect(const Segment& s, const Segment& t);

/// True if the segments cross *properly*: they intersect at a single point
/// interior to both. Shared endpoints, T-junctions at endpoints, and
/// collinear overlaps are NOT proper crossings.
bool segments_cross(const Segment& s, const Segment& t);

/// Number of proper crossings between two segment sets (bbox-filtered).
std::size_t count_crossings(std::span<const Segment> lhs,
                            std::span<const Segment> rhs);

/// Proper crossings of one segment against a set.
std::size_t count_crossings(const Segment& seg, std::span<const Segment> set);

/// Euclidean distance from point p to segment s.
double point_segment_distance(const Point& p, const Segment& s);

/// Total Euclidean length of a set of segments.
double total_length(std::span<const Segment> segs);

}  // namespace operon::geom
