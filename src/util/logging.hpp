#pragma once
// Minimal leveled logger. Global severity threshold; streams to stderr.
// Usage: OPERON_LOG(Info) << "placed " << n << " WDMs";

#include <ostream>
#include <sstream>
#include <string>

namespace operon::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide log threshold; messages below it are dropped.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

const char* to_string(LogLevel level);

/// One log statement; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace operon::util

#define OPERON_LOG(severity)                                               \
  if (::operon::util::LogLevel::severity < ::operon::util::log_threshold()) \
    ;                                                                      \
  else                                                                     \
    ::operon::util::LogMessage(::operon::util::LogLevel::severity,         \
                               __FILE__, __LINE__)                         \
        .stream()
