#pragma once
// Minimal leveled logger. Global severity threshold; streams to stderr.
// Usage: OPERON_LOG(Info) << "placed " << n << " WDMs";
//
// Besides stderr, every emitted message is forwarded to an optional
// process-wide sink hook (set_log_sink). The obs module installs a
// bridge there so OPERON_LOG lines become structured events in the
// ambient obs::EventLog — util stays dependency-free, obs subscribes.

#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>

namespace operon::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide log threshold; messages below it are dropped.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

const char* to_string(LogLevel level);

/// Parse a --log-level flag value ("debug" | "info" | "warn" | "error"
/// | "off", case-sensitive); nullopt on anything else.
std::optional<LogLevel> parse_log_level(std::string_view name);

/// Sink hook invoked (after the threshold gate) with the message body —
/// no "[LEVEL file:line]" prefix, no trailing newline. A plain function
/// pointer kept in an atomic, so emitting a log line never takes a
/// lock. The sink must not log (it would recurse).
using LogSink = void (*)(LogLevel level, const char* file, int line,
                         const std::string& body);
void set_log_sink(LogSink sink);

/// One log statement; flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;  ///< message body (prefix added at flush)
};

}  // namespace operon::util

#define OPERON_LOG(severity)                                               \
  if (::operon::util::LogLevel::severity < ::operon::util::log_threshold()) \
    ;                                                                      \
  else                                                                     \
    ::operon::util::LogMessage(::operon::util::LogLevel::severity,         \
                               __FILE__, __LINE__)                         \
        .stream()
