#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "util/check.hpp"

namespace operon::util {

namespace {
// Relaxed: the counters are telemetry read at sample points, never a
// synchronization mechanism.
std::atomic<std::uint64_t> g_pools{0};
std::atomic<std::uint64_t> g_workers_spawned{0};
std::atomic<std::uint64_t> g_jobs{0};
std::atomic<std::uint64_t> g_inline_runs{0};
std::atomic<std::uint64_t> g_indices{0};
}  // namespace

PoolTelemetry pool_telemetry() {
  PoolTelemetry telemetry;
  telemetry.pools = g_pools.load(std::memory_order_relaxed);
  telemetry.workers_spawned = g_workers_spawned.load(std::memory_order_relaxed);
  telemetry.jobs = g_jobs.load(std::memory_order_relaxed);
  telemetry.inline_runs = g_inline_runs.load(std::memory_order_relaxed);
  telemetry.indices = g_indices.load(std::memory_order_relaxed);
  return telemetry;
}

std::size_t resolve_threads(std::size_t threads) {
  if (threads != 0) return threads;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

std::vector<Rng> split_rngs(Rng& base, std::size_t n) {
  std::vector<Rng> children;
  children.reserve(n);
  for (std::size_t i = 0; i < n; ++i) children.push_back(base.split());
  return children;
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t total = resolve_threads(threads);
  g_pools.fetch_add(1, std::memory_order_relaxed);
  g_workers_spawned.fetch_add(total - 1, std::memory_order_relaxed);
  workers_.reserve(total - 1);
  for (std::size_t w = 1; w < total; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::run_chunk(std::size_t worker, std::size_t total_workers) {
  // Static index-ordered chunking: worker w owns the contiguous block
  // [w*n/T, (w+1)*n/T) and walks it in ascending order.
  const std::size_t n = job_n_;
  const std::size_t begin = worker * n / total_workers;
  const std::size_t end = (worker + 1) * n / total_workers;
  try {
    for (std::size_t i = begin; i < end; ++i) (*job_fn_)(i);
  } catch (...) {
    errors_[worker] = std::current_exception();
  }
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::size_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
    }
    run_chunk(worker, num_threads());
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--running_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  g_indices.fetch_add(n, std::memory_order_relaxed);
  const std::size_t total = num_threads();
  if (total == 1 || n == 1) {
    g_inline_runs.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  g_jobs.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    OPERON_CHECK_MSG(job_fn_ == nullptr,
                     "nested/concurrent parallel_for on one ThreadPool");
    job_n_ = n;
    job_fn_ = &fn;
    errors_.assign(total, nullptr);
    running_ = workers_.size();
    ++epoch_;
  }
  start_cv_.notify_all();
  run_chunk(0, total);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return running_ == 0; });
    job_fn_ = nullptr;
  }
  // Deterministic error propagation: lowest worker index wins.
  for (const std::exception_ptr& error : errors_) {
    if (error) std::rethrow_exception(error);
  }
}

void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& fn) {
  const std::size_t total = resolve_threads(threads);
  if (total == 1 || n <= 1) {
    if (n != 0) {
      g_indices.fetch_add(n, std::memory_order_relaxed);
      g_inline_runs.fetch_add(1, std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(total);
  pool.parallel_for(n, fn);
}

}  // namespace operon::util
