#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.hpp"

namespace operon::util {

void JsonWriter::comma_if_needed() {
  if (pending_key_) return;  // value follows "key":
  if (!stack_.empty()) {
    if (has_items_.back()) out_ << ',';
    has_items_.back() = true;
  }
}

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  pending_key_ = false;
  out_ << '{';
  stack_.push_back('{');
  has_items_.push_back(false);
  has_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  OPERON_CHECK_MSG(!stack_.empty() && stack_.back() == '{',
                   "end_object without matching begin_object");
  OPERON_CHECK_MSG(!pending_key_, "dangling key at end_object");
  out_ << '}';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  pending_key_ = false;
  out_ << '[';
  stack_.push_back('[');
  has_items_.push_back(false);
  has_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  OPERON_CHECK_MSG(!stack_.empty() && stack_.back() == '[',
                   "end_array without matching begin_array");
  out_ << ']';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  OPERON_CHECK_MSG(!stack_.empty() && stack_.back() == '{',
                   "key() outside an object");
  OPERON_CHECK_MSG(!pending_key_, "two keys in a row");
  comma_if_needed();
  out_ << '"' << escape(name) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  comma_if_needed();
  pending_key_ = false;
  out_ << '"' << escape(text) << '"';
  has_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string_view(text));
}

JsonWriter& JsonWriter::value(double number) {
  comma_if_needed();
  pending_key_ = false;
  if (std::isfinite(number)) {
    // Shortest round-trip-ish representation.
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.12g", number);
    out_ << buffer;
  } else {
    out_ << "null";  // JSON has no Inf/NaN
  }
  has_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value_exact(double number) {
  comma_if_needed();
  pending_key_ = false;
  if (std::isfinite(number)) {
    // Shortest representation that strtod parses back to the same bits;
    // 17 significant digits always round-trip a binary64.
    char buffer[40];
    for (int precision = 12; precision <= 17; ++precision) {
      std::snprintf(buffer, sizeof buffer, "%.*g", precision, number);
      if (std::strtod(buffer, nullptr) == number) break;
    }
    out_ << buffer;
  } else {
    out_ << "null";  // JSON has no Inf/NaN
  }
  has_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  comma_if_needed();
  pending_key_ = false;
  out_ << number;
  has_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  comma_if_needed();
  pending_key_ = false;
  out_ << number;
  has_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(int number) {
  return value(static_cast<std::int64_t>(number));
}

JsonWriter& JsonWriter::value(bool flag) {
  comma_if_needed();
  pending_key_ = false;
  out_ << (flag ? "true" : "false");
  has_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_if_needed();
  pending_key_ = false;
  out_ << "null";
  has_root_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  OPERON_CHECK_MSG(complete(), "JSON document has unclosed scopes");
  return out_.str();
}

// ---------------------------------------------------------------------------
// JsonValue

std::string_view to_string(JsonType type) {
  switch (type) {
    case JsonType::Null: return "null";
    case JsonType::Bool: return "bool";
    case JsonType::Number: return "number";
    case JsonType::String: return "string";
    case JsonType::Array: return "array";
    case JsonType::Object: return "object";
  }
  return "?";
}

JsonValue JsonValue::make_null() { return JsonValue(); }

JsonValue JsonValue::make_bool(bool flag) {
  JsonValue v;
  v.type_ = JsonType::Bool;
  v.bool_ = flag;
  return v;
}

JsonValue JsonValue::make_number(double number) {
  OPERON_CHECK_MSG(std::isfinite(number),
                   "JSON numbers must be finite (got " << number << ")");
  JsonValue v;
  v.type_ = JsonType::Number;
  v.number_ = number;
  return v;
}

JsonValue JsonValue::make_string(std::string text) {
  JsonValue v;
  v.type_ = JsonType::String;
  v.string_ = std::move(text);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.type_ = JsonType::Array;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(Members members) {
  JsonValue v;
  v.type_ = JsonType::Object;
  v.members_ = std::move(members);
  return v;
}

bool JsonValue::as_bool() const {
  OPERON_CHECK_MSG(type_ == JsonType::Bool,
                   "expected JSON bool, got " << to_string(type_));
  return bool_;
}

double JsonValue::as_number() const {
  OPERON_CHECK_MSG(type_ == JsonType::Number,
                   "expected JSON number, got " << to_string(type_));
  return number_;
}

const std::string& JsonValue::as_string() const {
  OPERON_CHECK_MSG(type_ == JsonType::String,
                   "expected JSON string, got " << to_string(type_));
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  OPERON_CHECK_MSG(type_ == JsonType::Array,
                   "expected JSON array, got " << to_string(type_));
  return items_;
}

const JsonValue::Members& JsonValue::members() const {
  OPERON_CHECK_MSG(type_ == JsonType::Object,
                   "expected JSON object, got " << to_string(type_));
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [name, value] : members()) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* value = find(key);
  OPERON_CHECK_MSG(value != nullptr, "missing JSON object key '" << key << "'");
  return *value;
}

const JsonValue& JsonValue::at(std::size_t index) const {
  const auto& elements = items();
  OPERON_CHECK_MSG(index < elements.size(),
                   "JSON array index " << index << " out of range (size "
                                       << elements.size() << ")");
  return elements[index];
}

// ---------------------------------------------------------------------------
// parse_json — strict recursive descent

namespace {

class Parser {
 public:
  Parser(std::string_view text, const JsonParseOptions& options)
      : text_(text), options_(options) {}

  JsonValue parse_document() {
    skip_whitespace();
    JsonValue value = parse_value(0);
    skip_whitespace();
    OPERON_CHECK_MSG(pos_ == text_.size(),
                     "trailing junk after JSON document at byte " << pos_);
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    OPERON_CHECK_MSG(false, "JSON parse error at byte " << pos_ << ": " << what);
    __builtin_unreachable();
  }

  bool at_end() const { return pos_ >= text_.size(); }

  char peek() const {
    if (at_end()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_whitespace() {
    while (!at_end()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect_literal(std::string_view word) {
    for (char c : word) {
      if (at_end() || text_[pos_] != c) {
        fail("invalid literal (expected '" + std::string(word) + "')");
      }
      ++pos_;
    }
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > options_.max_depth) fail("nesting too deep");
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue::make_string(parse_string());
      case 't': expect_literal("true"); return JsonValue::make_bool(true);
      case 'f': expect_literal("false"); return JsonValue::make_bool(false);
      case 'n': expect_literal("null"); return JsonValue::make_null();
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        // NaN / Infinity / unquoted words all land here with a clear error.
        fail("unexpected character");
    }
  }

  JsonValue parse_object(std::size_t depth) {
    expect('{');
    JsonValue::Members members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      for (const auto& [existing, value] : members) {
        if (existing == key) fail("duplicate object key '" + key + "'");
      }
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      const char c = take();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return JsonValue::make_object(std::move(members));
  }

  JsonValue parse_array(std::size_t depth) {
    expect('[');
    std::vector<JsonValue> items;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char c = take();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return JsonValue::make_array(std::move(items));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (at_end()) fail("unterminated string");
      const char c = take();
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_utf8(out, parse_hex4()); break;
        default:
          --pos_;
          fail("invalid escape sequence");
      }
    }
    return out;
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else {
        --pos_;
        fail("invalid \\u escape digit");
      }
    }
    return value;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    // BMP only; surrogate halves are encoded as-is (WTF-8-ish) rather
    // than rejected — design files never contain them, and round-tripping
    // beats guessing.
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    // Integer part: one zero, or a nonzero digit followed by digits.
    if (at_end()) fail("truncated number");
    if (peek() == '0') {
      ++pos_;
    } else if (peek() >= '1' && peek() <= '9') {
      while (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    } else {
      fail("invalid number");
    }
    if (!at_end() && text_[pos_] == '.') {
      ++pos_;
      if (at_end() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("digits required after decimal point");
      }
      while (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (!at_end() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (!at_end() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (at_end() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("digits required in exponent");
      }
      while (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    const double value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value)) fail("number out of range");
    return JsonValue::make_number(value);
  }

  std::string_view text_;
  JsonParseOptions options_;
  std::size_t pos_ = 0;
};

void write_value(std::string& out, const JsonValue& value);

void write_number(std::string& out, double number) {
  // Must match JsonWriter::value(double) exactly for byte-stable
  // round trips.
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.12g", number);
  out += buffer;
}

void write_string(std::string& out, const std::string& text) {
  JsonWriter writer;
  writer.value(text);
  out += writer.str();
}

void write_value(std::string& out, const JsonValue& value) {
  switch (value.type()) {
    case JsonType::Null: out += "null"; break;
    case JsonType::Bool: out += value.as_bool() ? "true" : "false"; break;
    case JsonType::Number: write_number(out, value.as_number()); break;
    case JsonType::String: write_string(out, value.as_string()); break;
    case JsonType::Array: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : value.items()) {
        if (!first) out += ',';
        first = false;
        write_value(out, item);
      }
      out += ']';
      break;
    }
    case JsonType::Object: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : value.members()) {
        if (!first) out += ',';
        first = false;
        write_string(out, key);
        out += ':';
        write_value(out, member);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

JsonValue parse_json(std::string_view text, const JsonParseOptions& options) {
  return Parser(text, options).parse_document();
}

std::string write_json(const JsonValue& value) {
  std::string out;
  write_value(out, value);
  return out;
}

}  // namespace operon::util
