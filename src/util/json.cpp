#include "util/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace operon::util {

void JsonWriter::comma_if_needed() {
  if (pending_key_) return;  // value follows "key":
  if (!stack_.empty()) {
    if (has_items_.back()) out_ << ',';
    has_items_.back() = true;
  }
}

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  pending_key_ = false;
  out_ << '{';
  stack_.push_back('{');
  has_items_.push_back(false);
  has_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  OPERON_CHECK_MSG(!stack_.empty() && stack_.back() == '{',
                   "end_object without matching begin_object");
  OPERON_CHECK_MSG(!pending_key_, "dangling key at end_object");
  out_ << '}';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  pending_key_ = false;
  out_ << '[';
  stack_.push_back('[');
  has_items_.push_back(false);
  has_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  OPERON_CHECK_MSG(!stack_.empty() && stack_.back() == '[',
                   "end_array without matching begin_array");
  out_ << ']';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  OPERON_CHECK_MSG(!stack_.empty() && stack_.back() == '{',
                   "key() outside an object");
  OPERON_CHECK_MSG(!pending_key_, "two keys in a row");
  comma_if_needed();
  out_ << '"' << escape(name) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  comma_if_needed();
  pending_key_ = false;
  out_ << '"' << escape(text) << '"';
  has_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string_view(text));
}

JsonWriter& JsonWriter::value(double number) {
  comma_if_needed();
  pending_key_ = false;
  if (std::isfinite(number)) {
    // Shortest round-trip-ish representation.
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.12g", number);
    out_ << buffer;
  } else {
    out_ << "null";  // JSON has no Inf/NaN
  }
  has_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  comma_if_needed();
  pending_key_ = false;
  out_ << number;
  has_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  comma_if_needed();
  pending_key_ = false;
  out_ << number;
  has_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(int number) {
  return value(static_cast<std::int64_t>(number));
}

JsonWriter& JsonWriter::value(bool flag) {
  comma_if_needed();
  pending_key_ = false;
  out_ << (flag ? "true" : "false");
  has_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_if_needed();
  pending_key_ = false;
  out_ << "null";
  has_root_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  OPERON_CHECK_MSG(complete(), "JSON document has unclosed scopes");
  return out_.str();
}

}  // namespace operon::util
