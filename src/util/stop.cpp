#include "util/stop.hpp"

#include <algorithm>

namespace operon::util {

std::string_view to_string(StopReason reason) {
  switch (reason) {
    case StopReason::None:
      return "none";
    case StopReason::TimeLimit:
      return "time-limit";
    case StopReason::Interrupt:
      return "interrupt";
    case StopReason::DebugCheckpoint:
      return "debug-checkpoint";
  }
  return "none";
}

namespace detail {

std::int64_t StopState::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

double StopState::elapsed_s() const {
  return static_cast<double>(now_ns() -
                             start_ns.load(std::memory_order_relaxed)) *
         1e-9;
}

bool StopState::deadline_expired() const {
  if (!armed.load(std::memory_order_relaxed)) return false;
  const double budget = budget_s.load(std::memory_order_relaxed);
  if (budget <= 0.0) return false;
  return elapsed_s() >= budget;
}

StopReason StopState::pending_reason(std::uint64_t next_checkpoint) const {
  // Priority order matters for replay: an external interrupt beats the
  // armed budget, and the deterministic stop_at replay beats the
  // wall-clock deadline so a replayed run never re-trips on time first.
  if (requested.load(std::memory_order_acquire)) {
    return static_cast<StopReason>(
        requested_reason.load(std::memory_order_relaxed));
  }
  for (const StopState* p = parent.get(); p != nullptr;
       p = p->parent.get()) {
    if (p->tripped_at.load(std::memory_order_acquire) != 0 ||
        p->requested.load(std::memory_order_acquire)) {
      return static_cast<StopReason>(
          p->requested.load(std::memory_order_acquire)
              ? p->requested_reason.load(std::memory_order_relaxed)
              : p->trip_reason.load(std::memory_order_relaxed));
    }
    if (p->deadline_expired()) return StopReason::TimeLimit;
  }
  const std::uint64_t stop_at_cp = stop_at.load(std::memory_order_relaxed);
  if (stop_at_cp != 0 && next_checkpoint >= stop_at_cp) {
    return StopReason::DebugCheckpoint;
  }
  if (deadline_expired()) return StopReason::TimeLimit;
  return StopReason::None;
}

void StopState::note_progress(const char* stage, std::int64_t now) {
  for (StopState* s = this; s != nullptr; s = s->parent.get()) {
    s->last_stage.store(stage, std::memory_order_relaxed);
    s->last_checkpoint_ns.store(now, std::memory_order_relaxed);
  }
}

}  // namespace detail

bool StopToken::checkpoint(const char* stage) {
  if (!state_) return false;
  detail::StopState& s = *state_;
  const std::uint64_t n =
      s.checkpoints.fetch_add(1, std::memory_order_relaxed) + 1;
  s.note_progress(stage, detail::StopState::now_ns());
  if (s.tripped_at.load(std::memory_order_relaxed) != 0) return true;
  const StopReason why = s.pending_reason(n);
  if (why == StopReason::None) return false;
  s.trip_reason.store(static_cast<int>(why), std::memory_order_relaxed);
  s.trip_stage.store(stage, std::memory_order_relaxed);
  s.tripped_at.store(n, std::memory_order_release);
  return true;
}

bool StopToken::stopped() const {
  return state_ != nullptr &&
         state_->tripped_at.load(std::memory_order_acquire) != 0;
}

std::uint64_t StopToken::trip_checkpoint() const {
  return state_ ? state_->tripped_at.load(std::memory_order_acquire) : 0;
}

StopReason StopToken::reason() const {
  if (!state_) return StopReason::None;
  return static_cast<StopReason>(
      state_->trip_reason.load(std::memory_order_acquire));
}

const char* StopToken::trip_stage() const {
  return state_ ? state_->trip_stage.load(std::memory_order_acquire) : "";
}

std::uint64_t StopToken::checkpoints() const {
  return state_ ? state_->checkpoints.load(std::memory_order_relaxed) : 0;
}

const char* StopToken::last_stage() const {
  return state_ ? state_->last_stage.load(std::memory_order_relaxed) : "";
}

double StopToken::seconds_since_checkpoint() const {
  if (!state_) return 0.0;
  const std::int64_t last =
      state_->last_checkpoint_ns.load(std::memory_order_relaxed);
  if (last == 0) return 0.0;
  return static_cast<double>(detail::StopState::now_ns() - last) * 1e-9;
}

Deadline StopToken::stage_deadline(double stage_limit_s) const {
  const double stage = stage_limit_s > 0.0 ? stage_limit_s : 0.0;
  double run = 0.0;  // 0 == unlimited throughout
  if (state_ && state_->armed.load(std::memory_order_relaxed)) {
    const double budget = state_->budget_s.load(std::memory_order_relaxed);
    if (budget > 0.0) {
      // Already past the run budget: the tightest expressible positive
      // deadline (Deadline(0) would mean unlimited, the opposite).
      run = std::max(budget - state_->elapsed_s(), 1e-9);
    }
  }
  if (stage <= 0.0) return Deadline(run);
  if (run <= 0.0) return Deadline(stage);
  return Deadline(std::min(stage, run));
}

StopSource::StopSource() : state_(std::make_shared<detail::StopState>()) {}

void StopSource::arm(double time_limit_s, std::uint64_t stop_at_checkpoint) {
  state_->budget_s.store(time_limit_s, std::memory_order_relaxed);
  state_->stop_at.store(stop_at_checkpoint, std::memory_order_relaxed);
  state_->start_ns.store(detail::StopState::now_ns(),
                         std::memory_order_relaxed);
  state_->last_checkpoint_ns.store(
      state_->start_ns.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  state_->armed.store(true, std::memory_order_release);
}

void StopSource::request_stop(StopReason reason) {
  state_->requested_reason.store(static_cast<int>(reason),
                                 std::memory_order_relaxed);
  state_->requested.store(true, std::memory_order_release);
}

void StopSource::chain(StopToken parent) {
  state_->parent = parent.state_;
}

}  // namespace operon::util
