#pragma once
// Deterministic fork-join parallelism. The invariant the whole repo
// relies on: a parallel_for produces BIT-IDENTICAL results at any thread
// count. That is achieved by construction, not by luck:
//
//  * static index-ordered chunking — worker w of T executes the
//    contiguous index block [w*n/T, (w+1)*n/T) in ascending order, so
//    which indices run where depends only on (n, T), never on timing;
//  * results are written by index (callers give each index its own
//    output slot; no shared accumulators inside the body);
//  * randomness, when a body needs it, comes from split_rngs(): child
//    generators derived per index from one seed, never from completion
//    order (see util::Rng::split()).
//
// Reductions that must stay bit-identical (e.g. floating-point sums)
// should write per-index partials and fold them serially in index order
// after the parallel_for returns.
//
// A ThreadPool of size 1 (and the n<=1 or T==1 fast path) runs the body
// inline on the caller with zero synchronization, so `threads = 1` is
// exactly the historical serial behavior.
//
// Exceptions thrown by the body are captured per worker and the one from
// the lowest worker index is rethrown on the caller — again independent
// of timing.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace operon::util {

/// Resolve a user-facing thread-count knob: 0 means "use all hardware
/// threads", anything else is taken literally (minimum 1).
std::size_t resolve_threads(std::size_t threads);

/// Process-wide cumulative thread-pool utilization counters, maintained
/// by ThreadPool/parallel_for with relaxed atomics. Read by the obs
/// resource layer (`pool.*` timing-flagged gauges) — NOT part of the
/// semantic determinism contract: `workers_spawned` depends on the
/// thread-count knob and `inline_runs`/`jobs` on which fast path fired.
struct PoolTelemetry {
  std::uint64_t pools = 0;           ///< ThreadPool instances constructed
  std::uint64_t workers_spawned = 0; ///< helper threads started (ex caller)
  std::uint64_t jobs = 0;            ///< parallel_for fan-outs (T>1, n>1)
  std::uint64_t inline_runs = 0;     ///< parallel_for serial fast paths
  std::uint64_t indices = 0;         ///< loop indices executed either way
};
PoolTelemetry pool_telemetry();

/// Deterministic per-index child generators for parallel loops: the i-th
/// stream depends only on the base generator's state and i, never on
/// which thread consumes it or when.
std::vector<Rng> split_rngs(Rng& base, std::size_t n);

/// Fork-join pool with `threads - 1` persistent workers; the calling
/// thread participates as worker 0. parallel_for calls must not be
/// nested or issued concurrently on the same pool.
class ThreadPool {
 public:
  /// `threads` is resolved via resolve_threads (0 = hardware).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers including the caller (always >= 1).
  std::size_t num_threads() const { return workers_.size() + 1; }

  /// Run fn(i) for every i in [0, n) under the determinism contract
  /// documented above. Blocks until every index has run.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop(std::size_t worker);
  void run_chunk(std::size_t worker, std::size_t total_workers);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::size_t epoch_ = 0;    ///< bumped once per parallel_for
  std::size_t running_ = 0;  ///< helper workers still in the current job
  bool stop_ = false;
  std::size_t job_n_ = 0;
  const std::function<void(std::size_t)>* job_fn_ = nullptr;
  std::vector<std::exception_ptr> errors_;
};

/// One-shot convenience: fn(i) for i in [0, n) on `threads` threads
/// (resolved; 1 = inline serial loop). Callers with repeated loops
/// should keep a ThreadPool alive instead of paying thread start-up per
/// call.
void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace operon::util
