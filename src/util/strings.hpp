#pragma once
// Small string utilities shared across the library.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace operon::util {

/// Split on a delimiter; empty fields are kept.
std::vector<std::string> split(std::string_view text, char delim);

/// Join with a delimiter; the inverse of split for non-empty fields.
std::string join(const std::vector<std::string>& parts,
                 std::string_view delim);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Fixed-precision double rendering ("12.34").
std::string fixed(double value, int digits);

/// Human-readable count with thousands separators ("12,345").
std::string with_commas(long long value);

/// FNV-1a 64-bit hash, platform-stable. Used for option fingerprints
/// (obs ledger) and output digests (the stress harness); chain calls by
/// passing the previous digest as `seed`.
std::uint64_t fnv1a(std::string_view text,
                    std::uint64_t seed = 1469598103934665603ULL);

/// 16-hex-digit rendering of a 64-bit hash ("00c0ffee00c0ffee").
std::string hex64(std::uint64_t value);

}  // namespace operon::util
