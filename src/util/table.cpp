#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace operon::util {

namespace {
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}
}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  OPERON_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  OPERON_CHECK_MSG(row.size() == header_.size(),
                   "row arity " << row.size() << " != header arity "
                                << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c], '-') << (c + 1 == header_.size() ? "\n" : "  ");
  }
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]) << (c + 1 == row.size() ? "\n" : ",");
    }
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_markdown() const {
  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << (c + 1 == row.size() ? " |\n" : " | ");
    }
  };
  emit_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) os << "---|";
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace operon::util
