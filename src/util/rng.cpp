#include "util/rng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace operon::util {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  OPERON_CHECK(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full 64-bit span
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t r = next();
  while (r >= limit) r = next();
  return lo + static_cast<std::int64_t>(r % range);
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    OPERON_CHECK(w >= 0.0);
    total += w;
  }
  OPERON_CHECK_MSG(total > 0.0, "weighted_index requires positive total weight");
  double pick = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    pick -= weights[i];
    if (pick < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: return last positive-able index
}

Rng Rng::split() { return Rng(next() ^ 0xd2b74407b1ce6e93ULL); }

}  // namespace operon::util
