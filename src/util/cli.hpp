#pragma once
// Tiny command-line flag parser for examples and bench harnesses.
// Supports --name=value, --name value, and boolean --flag.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace operon::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get(const std::string& name, const std::string& fallback) const;
  /// Numeric getters are strict: a present flag whose value is not fully
  /// a base-10 integer / floating-point literal (garbage, trailing junk,
  /// out-of-range, or a bare valueless flag) throws CheckError instead of
  /// silently returning 0. The fallback applies only when absent.
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Shared bench conventions: `--threads N` (default 1; 0 = all
  /// hardware threads) ...
  std::size_t get_threads() const;
  /// ... and `--outdir DIR` for artifact files (CSV/SVG/JSON). Returns
  /// `filename` prefixed with the --outdir value (default ".", i.e. the
  /// historical drop-in-CWD behavior).
  std::string out_path(const std::string& filename) const;

  /// Arguments that are not --flags, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace operon::util
