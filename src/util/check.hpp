#pragma once
// Runtime invariant checking. OPERON_CHECK is always on (cheap, guards
// library-boundary contracts); OPERON_DCHECK compiles out in release
// builds and guards internal loop invariants.

#include <sstream>
#include <stdexcept>
#include <string>

namespace operon::util {

/// Thrown when a checked invariant or precondition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace operon::util

#define OPERON_CHECK(expr)                                                \
  do {                                                                    \
    if (!(expr))                                                          \
      ::operon::util::check_failed(#expr, __FILE__, __LINE__, {});        \
  } while (0)

#define OPERON_CHECK_MSG(expr, ...)                                       \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream os_;                                             \
      os_ << __VA_ARGS__;                                                 \
      ::operon::util::check_failed(#expr, __FILE__, __LINE__, os_.str()); \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define OPERON_DCHECK(expr) \
  do {                      \
  } while (0)
#else
#define OPERON_DCHECK(expr) OPERON_CHECK(expr)
#endif
