#include "util/logging.hpp"

#include <atomic>
#include <cstring>
#include <iostream>

namespace operon::util {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::Info};
std::atomic<LogSink> g_sink{nullptr};

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

LogLevel log_threshold() { return g_threshold.load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::Debug;
  if (name == "info") return LogLevel::Info;
  if (name == "warn") return LogLevel::Warn;
  if (name == "error") return LogLevel::Error;
  if (name == "off") return LogLevel::Off;
  return std::nullopt;
}

void set_log_sink(LogSink sink) {
  g_sink.store(sink, std::memory_order_release);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  const std::string body = stream_.str();
  if (const LogSink sink = g_sink.load(std::memory_order_acquire)) {
    sink(level_, file_, line_, body);
  }
  // Compose the full line first so concurrent log statements cannot
  // interleave mid-line on stderr.
  std::ostringstream full;
  full << '[' << to_string(level_) << ' ' << basename_of(file_) << ':'
       << line_ << "] " << body << '\n';
  std::cerr << full.str();
  if (level_ >= LogLevel::Error) std::cerr.flush();
}

}  // namespace operon::util
