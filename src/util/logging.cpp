#include "util/logging.hpp"

#include <atomic>
#include <cstring>
#include <iostream>

namespace operon::util {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::Info};

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}
}  // namespace

LogLevel log_threshold() { return g_threshold.load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << '[' << to_string(level) << ' ' << basename_of(file) << ':' << line
          << "] ";
}

LogMessage::~LogMessage() {
  stream_ << '\n';
  std::cerr << stream_.str();
  if (level_ >= LogLevel::Error) std::cerr.flush();
}

}  // namespace operon::util
