#pragma once
// Deterministic random number generation for reproducible experiments.
// xoshiro256** (Blackman & Vigna) seeded via splitmix64; satisfies
// UniformRandomBitGenerator so it composes with <random> distributions,
// but we also provide direct helpers that are stable across libstdc++
// versions (std::uniform_*_distribution output is not portable).

#include <cstdint>
#include <limits>
#include <vector>

namespace operon::util {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (cached second variate).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Random index weighted by non-negative weights; requires sum > 0.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for parallel subtasks).
  Rng split();

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace operon::util
