#pragma once
// Run-wide budgets and deterministic cooperative cancellation.
//
// A StopSource owns the shared stop state for one run (or one CLI
// session); StopToken is the cheap handle the pipeline stages poll.
// Determinism is the design center: a stage may only stop at a
// *numbered checkpoint* — StopToken::checkpoint() is called exclusively
// from serial orchestration code (never from worker threads), so the
// checkpoint sequence is identical at any thread count, and the
// checkpoint at which a run tripped is recorded. Replaying that number
// through StopSource::arm(_, stop_at_checkpoint) reproduces the stopped
// run bit-identically, turning an inherently wall-clock event into a
// testable one (tests/cancel_test.cpp).
//
// Wall-clock state (time since the last checkpoint, last stage label)
// is tracked only for the watchdog (obs::Watchdog) and never feeds a
// stop decision by itself — the decision is always taken at the next
// checkpoint.
//
// Sources compose: StopSource::chain(parent) makes every checkpoint
// also honor the parent's stop request and deadline (the run budget
// caps stage budgets), and forwards checkpoint progress upward so a
// watchdog on the outermost source sees the active run's heartbeat.
// request_stop() touches only atomics and is async-signal-safe — the
// CLI's SIGINT/SIGTERM handlers call it directly.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <string_view>

#include "util/timer.hpp"

namespace operon::util {

/// Why a run (or stage) was asked to stop. TimeLimit and DebugCheckpoint
/// trips are deliberately reported identically downstream (same
/// DiagCode, same message) so a stop_at_checkpoint replay of a
/// wall-clock trip is bit-identical.
enum class StopReason : int {
  None = 0,
  TimeLimit,        ///< the armed wall-clock budget expired
  Interrupt,        ///< external request (SIGINT/SIGTERM, caller)
  DebugCheckpoint,  ///< the stop_at_checkpoint replay count was reached
};

std::string_view to_string(StopReason reason);

/// Deadline helper for time-limited solvers (previously in timer.hpp).
class Deadline {
 public:
  /// A non-positive budget means "no limit".
  explicit Deadline(double budget_seconds) : budget_(budget_seconds) {}

  bool expired() const {
    return budget_ > 0.0 && timer_.seconds() >= budget_;
  }

  double remaining() const {
    if (budget_ <= 0.0) return std::numeric_limits<double>::infinity();
    return budget_ - timer_.seconds();
  }

  double budget() const { return budget_; }

 private:
  double budget_;
  Timer timer_;
};

namespace detail {

/// Shared stop state. All fields the watchdog (a foreign thread) reads
/// are atomics; the checkpoint counter itself is only ever advanced
/// from the serial orchestration thread.
struct StopState {
  using Clock = std::chrono::steady_clock;

  // External stop request (signal handlers write these — atomics only).
  std::atomic<bool> requested{false};
  std::atomic<int> requested_reason{static_cast<int>(StopReason::Interrupt)};

  // Armed budget. Written by arm() before any checkpoint runs.
  std::atomic<bool> armed{false};
  std::atomic<double> budget_s{0.0};  ///< <= 0: unlimited
  std::atomic<std::int64_t> start_ns{0};
  std::atomic<std::uint64_t> stop_at{0};  ///< 0: disabled

  // Progress (watchdog-visible heartbeat).
  std::atomic<std::uint64_t> checkpoints{0};
  std::atomic<const char*> last_stage{""};
  std::atomic<std::int64_t> last_checkpoint_ns{0};

  // Trip record. 0 = not tripped; otherwise the checkpoint number.
  std::atomic<std::uint64_t> tripped_at{0};
  std::atomic<int> trip_reason{static_cast<int>(StopReason::None)};
  std::atomic<const char*> trip_stage{""};

  std::shared_ptr<StopState> parent;

  static std::int64_t now_ns();
  double elapsed_s() const;
  bool deadline_expired() const;
  /// First pending stop cause along the parent chain (None when none).
  StopReason pending_reason(std::uint64_t next_checkpoint) const;
  void note_progress(const char* stage, std::int64_t now);
};

}  // namespace detail

/// Cheap copyable handle to a StopSource's state. A default-constructed
/// token is *null*: checkpoint() always returns false and counts
/// nothing, so library code can poll unconditionally.
class StopToken {
 public:
  StopToken() = default;

  explicit operator bool() const { return state_ != nullptr; }

  /// Numbered poll — call ONLY from serial orchestration code (between
  /// parallel batches, per solver node/iteration), never from worker
  /// threads. Increments the checkpoint counter, then returns true when
  /// this run is (now or previously) stopped. The first true records
  /// the trip checkpoint, reason, and stage.
  bool checkpoint(const char* stage);

  /// Unnumbered peek at the trip flag (for guards after a trip — never
  /// advances the counter, never trips by itself).
  bool stopped() const;

  /// Trip record: checkpoint number (0 = not tripped), reason, stage.
  std::uint64_t trip_checkpoint() const;
  StopReason reason() const;
  const char* trip_stage() const;

  /// Progress accessors for the watchdog.
  std::uint64_t checkpoints() const;
  const char* last_stage() const;
  double seconds_since_checkpoint() const;

  /// Compose a stage time limit with the remaining run budget: the
  /// returned Deadline expires at min(stage limit, remaining run
  /// budget), where a non-positive stage limit means "stage unlimited"
  /// and a null/unarmed/unlimited token leaves the stage limit alone.
  /// Deadline(0) == unlimited semantics are preserved at every
  /// combination (tests/stop_test.cpp audits them).
  Deadline stage_deadline(double stage_limit_s) const;

 private:
  friend class StopSource;
  explicit StopToken(std::shared_ptr<detail::StopState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::StopState> state_;
};

/// Owner of one run's (or session's) stop state.
class StopSource {
 public:
  StopSource();

  StopToken token() const { return StopToken(state_); }

  /// Start the wall clock: a positive time limit trips the token at the
  /// first checkpoint past the budget; a non-zero stop_at_checkpoint
  /// trips deterministically at exactly that checkpoint (debug replay).
  void arm(double time_limit_s, std::uint64_t stop_at_checkpoint = 0);

  /// Ask the run to stop at its next checkpoint. Touches only atomics —
  /// async-signal-safe, callable from any thread or signal handler.
  void request_stop(StopReason reason = StopReason::Interrupt);

  /// Honor `parent`'s stop requests/deadline at every checkpoint and
  /// forward checkpoint progress to it (so a watchdog on the parent
  /// observes the child's heartbeat). A null parent is a no-op.
  void chain(StopToken parent);

 private:
  std::shared_ptr<detail::StopState> state_;
};

}  // namespace operon::util
