#pragma once
// Plain-text and CSV table rendering for benchmark harness output.
// The Table 1 / Fig 8 benches print through this so every harness has a
// consistent, diff-friendly format.

#include <string>
#include <vector>

namespace operon::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  std::size_t num_rows() const { return rows_.size(); }

  /// Render with aligned columns and a header separator.
  std::string to_text() const;

  /// Render as RFC-4180-ish CSV (fields with commas/quotes get quoted).
  std::string to_csv() const;

  /// Render as a GitHub-flavored markdown table.
  std::string to_markdown() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace operon::util
