#include "util/cli.hpp"

#include <cerrno>
#include <cstdlib>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace operon::util {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& text = it->second;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  OPERON_CHECK_MSG(end != text.c_str() && *end == '\0',
                   "--" << name << " expects an integer, got '" << text << "'");
  OPERON_CHECK_MSG(errno != ERANGE,
                   "--" << name << " value '" << text
                        << "' is out of integer range");
  return value;
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& text = it->second;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  OPERON_CHECK_MSG(end != text.c_str() && *end == '\0',
                   "--" << name << " expects a number, got '" << text << "'");
  OPERON_CHECK_MSG(errno != ERANGE,
                   "--" << name << " value '" << text
                        << "' is out of double range");
  return value;
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

std::size_t Cli::get_threads() const {
  return static_cast<std::size_t>(get_int("threads", 1));
}

std::string Cli::out_path(const std::string& filename) const {
  std::string dir = get("outdir", ".");
  if (dir.empty() || dir == ".") return filename;
  if (dir.back() != '/') dir += '/';
  return dir + filename;
}

}  // namespace operon::util
