#pragma once
// Minimal JSON writer for machine-readable run reports. Write-only by
// design (the library never consumes JSON); handles escaping, nesting,
// and number formatting. Not a general-purpose JSON library.

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace operon::util {

/// Streaming JSON writer with explicit begin/end nesting.
///
///   JsonWriter json;
///   json.begin_object();
///   json.key("power").value(12.5);
///   json.key("nets").begin_array();
///   json.value(1).value(2);
///   json.end_array();
///   json.end_object();
///   std::string text = json.str();
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit an object key (must be inside an object, before a value).
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(int number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// Finished document (valid once all scopes are closed).
  std::string str() const;

  /// True when every begin_* has a matching end_*.
  bool complete() const { return stack_.empty() && has_root_; }

 private:
  void comma_if_needed();
  static std::string escape(std::string_view text);

  std::ostringstream out_;
  std::vector<char> stack_;       ///< '{' or '['
  std::vector<bool> has_items_;   ///< per scope: needs a comma?
  bool pending_key_ = false;
  bool has_root_ = false;
};

}  // namespace operon::util
