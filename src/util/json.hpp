#pragma once
// Minimal JSON support for machine-readable run reports and JSON design
// files: a streaming writer (JsonWriter), a strict recursive-descent
// parser (parse_json -> JsonValue), and a canonical re-serializer
// (write_json). The parser is deliberately unforgiving — hostile input
// (truncation, duplicate keys, NaN/Infinity literals, trailing junk,
// absurd nesting) is rejected with a CheckError carrying the byte
// offset, never undefined behavior. write_json(parse_json(text)) is
// byte-stable for documents produced by JsonWriter (same number
// formatting, object key order preserved).

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace operon::util {

/// Streaming JSON writer with explicit begin/end nesting.
///
///   JsonWriter json;
///   json.begin_object();
///   json.key("power").value(12.5);
///   json.key("nets").begin_array();
///   json.value(1).value(2);
///   json.end_array();
///   json.end_object();
///   std::string text = json.str();
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit an object key (must be inside an object, before a value).
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);
  /// Like value(double) but with bit-exact round-trip formatting: the
  /// shortest precision in [12, 17] significant digits whose strtod
  /// parse returns the same binary64. Used where parsed-back equality
  /// is a contract (the run ledger), at the cost of occasionally longer
  /// literals than the display-oriented %.12g of value(double).
  JsonWriter& value_exact(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(int number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// Finished document (valid once all scopes are closed).
  std::string str() const;

  /// True when every begin_* has a matching end_*.
  bool complete() const { return stack_.empty() && has_root_; }

 private:
  void comma_if_needed();
  static std::string escape(std::string_view text);

  std::ostringstream out_;
  std::vector<char> stack_;       ///< '{' or '['
  std::vector<bool> has_items_;   ///< per scope: needs a comma?
  bool pending_key_ = false;
  bool has_root_ = false;
};

enum class JsonType { Null, Bool, Number, String, Array, Object };

std::string_view to_string(JsonType type);

/// Parsed JSON document node. Objects preserve member order (so a
/// parse -> write round trip is byte-stable); duplicate keys are a parse
/// error, so lookup by key is unambiguous. Accessors check the type and
/// throw CheckError on mismatch — malformed documents fail loudly.
class JsonValue {
 public:
  using Members = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;  ///< null
  static JsonValue make_null();
  static JsonValue make_bool(bool flag);
  static JsonValue make_number(double number);
  static JsonValue make_string(std::string text);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(Members members);

  JsonType type() const { return type_; }
  bool is(JsonType type) const { return type_ == type; }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;  ///< array elements
  const Members& members() const;               ///< object members, in order

  /// Object member lookup; nullptr when absent (throws if not an object).
  const JsonValue* find(std::string_view key) const;
  /// Object member lookup; throws CheckError when absent.
  const JsonValue& at(std::string_view key) const;
  /// Array element; throws CheckError when out of range.
  const JsonValue& at(std::size_t index) const;

 private:
  JsonType type_ = JsonType::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  Members members_;
};

struct JsonParseOptions {
  /// Maximum container nesting; deeper documents are rejected (guards
  /// against stack exhaustion on hostile input).
  std::size_t max_depth = 128;
};

/// Strict parse of exactly one JSON document (leading/trailing whitespace
/// allowed, nothing else). Throws CheckError with a byte offset on any
/// syntax error, duplicate object key, non-finite number literal,
/// unterminated string, truncation, or trailing junk.
JsonValue parse_json(std::string_view text,
                     const JsonParseOptions& options = {});

/// Compact canonical serialization: member order preserved, numbers
/// formatted exactly as JsonWriter::value(double) does.
std::string write_json(const JsonValue& value);

}  // namespace operon::util
