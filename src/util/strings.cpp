#include "util/strings.hpp"

#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace operon::util {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (const std::string& part : parts) {
    if (!out.empty()) out.append(delim);
    out.append(part);
  }
  return out;
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string fixed(double value, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << value;
  return os.str();
}

std::string with_commas(long long value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

std::uint64_t fnv1a(std::string_view text, std::uint64_t seed) {
  std::uint64_t digest = seed;
  for (const char c : text) {
    digest ^= static_cast<unsigned char>(c);
    digest *= 1099511628211ULL;
  }
  return digest;
}

std::string hex64(std::uint64_t value) {
  return format("%016llx", static_cast<unsigned long long>(value));
}

}  // namespace operon::util
