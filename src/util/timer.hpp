#pragma once
// Wall-clock stopwatch for runtime reporting (Table 1 CPU(s) columns).

#include <chrono>

namespace operon::util {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Deadline moved to util/stop.hpp (run-budget composition lives there).

}  // namespace operon::util
