#pragma once
// Wall-clock stopwatch for runtime reporting (Table 1 CPU(s) columns).

#include <chrono>
#include <limits>

namespace operon::util {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Deadline helper for time-limited solvers (ILP branch-and-bound).
class Deadline {
 public:
  /// A non-positive budget means "no limit".
  explicit Deadline(double budget_seconds) : budget_(budget_seconds) {}

  bool expired() const {
    return budget_ > 0.0 && timer_.seconds() >= budget_;
  }

  double remaining() const {
    if (budget_ <= 0.0) return std::numeric_limits<double>::infinity();
    return budget_ - timer_.seconds();
  }

  double budget() const { return budget_; }

 private:
  double budget_;
  Timer timer_;
};

}  // namespace operon::util
