#pragma once
// Chunked bump arena for trivially-destructible hot-path data (DP label
// kinds, sweep scratch). allocate() bumps a pointer inside the current
// chunk and chains a new chunk when full; reset() rewinds to empty while
// RETAINING every chunk, so a long-lived arena reaches a steady state
// with zero allocations. Pointers stay stable until reset() — chunks are
// never moved or freed before then — which is what lets labels hold raw
// spans into the arena across pruning.
//
// Ownership rules: the arena neither constructs nor destroys objects;
// callers may only place trivially-destructible types. Not thread-safe —
// one arena per thread (parallel DP runs derive one per work item).

#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

namespace operon::util {

class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = 1 << 16)
      : chunk_bytes_(chunk_bytes < 64 ? 64 : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage for `count` objects of T.
  template <typename T>
  T* allocate(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    const std::size_t bytes = count * sizeof(T);
    return static_cast<T*>(allocate_bytes(bytes, alignof(T)));
  }

  /// Rewind to empty, retaining all chunks for reuse.
  void reset() {
    current_ = 0;
    offset_ = 0;
  }

  /// Bytes handed out since the last reset (diagnostics; counts skipped
  /// chunk tails as used).
  std::size_t bytes_used() const {
    std::size_t total = offset_;
    for (std::size_t c = 0; c < current_ && c < chunks_.size(); ++c) {
      total += chunks_[c].size;
    }
    return total;
  }

  /// Bytes held across all chunks (diagnostics).
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Chunk& chunk : chunks_) total += chunk.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* allocate_bytes(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;  // distinct non-null results keep spans sane
    while (true) {
      if (current_ < chunks_.size()) {
        Chunk& chunk = chunks_[current_];
        const std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
        if (aligned + bytes <= chunk.size) {
          offset_ = aligned + bytes;
          return chunk.data.get() + aligned;
        }
        // Chunk exhausted: advance (reused chunks keep their storage).
        ++current_;
        offset_ = 0;
        continue;
      }
      const std::size_t size = bytes > chunk_bytes_ ? bytes : chunk_bytes_;
      chunks_.push_back({std::make_unique<std::byte[]>(size), size});
    }
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;  ///< chunk currently bumped into
  std::size_t offset_ = 0;   ///< bump offset within that chunk
};

}  // namespace operon::util
