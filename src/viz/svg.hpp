#pragma once
// Tiny SVG canvas: world coordinates in, one self-contained <svg> out.
// Enough vocabulary (lines, circles, rectangles, text, polylines,
// dashes, opacity) to draw routed designs; no external dependencies.

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "geom/bbox.hpp"
#include "geom/point.hpp"

namespace operon::viz {

class SvgCanvas {
 public:
  /// `world`: the region to draw (e.g. the chip bbox); `pixel_width`:
  /// output width in px (height keeps the aspect ratio). The Y axis is
  /// flipped so world +y is up, as in chip coordinates.
  SvgCanvas(const geom::BBox& world, double pixel_width = 800.0);

  void line(const geom::Point& a, const geom::Point& b,
            std::string_view color, double width_px = 1.0,
            double opacity = 1.0, bool dashed = false);
  void polyline(const std::vector<geom::Point>& points,
                std::string_view color, double width_px = 1.0,
                double opacity = 1.0);
  void circle(const geom::Point& center, double radius_px,
              std::string_view fill, double opacity = 1.0);
  void rect(const geom::BBox& box, std::string_view stroke,
            std::string_view fill = "none", double width_px = 1.0);
  void text(const geom::Point& anchor, std::string_view content,
            double size_px = 12.0, std::string_view color = "#333");

  /// Legend entry rendered in the top-left margin.
  void legend(std::string_view label, std::string_view color);

  std::string str() const;

  double width_px() const { return width_px_; }
  double height_px() const { return height_px_; }

 private:
  geom::Point to_px(const geom::Point& world_point) const;

  geom::BBox world_;
  double width_px_;
  double height_px_;
  double scale_;
  std::ostringstream body_;
  std::size_t legend_entries_ = 0;
};

}  // namespace operon::viz
