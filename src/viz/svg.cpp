#include "viz/svg.hpp"

#include "util/check.hpp"

namespace operon::viz {

namespace {
void append_escaped(std::ostringstream& out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '<': out << "&lt;"; break;
      case '>': out << "&gt;"; break;
      case '&': out << "&amp;"; break;
      default: out << c;
    }
  }
}
}  // namespace

SvgCanvas::SvgCanvas(const geom::BBox& world, double pixel_width)
    : world_(world), width_px_(pixel_width) {
  OPERON_CHECK(!world.is_empty());
  OPERON_CHECK(pixel_width > 0.0);
  const double w = std::max(world.width(), 1e-9);
  const double h = std::max(world.height(), 1e-9);
  scale_ = width_px_ / w;
  height_px_ = h * scale_;
}

geom::Point SvgCanvas::to_px(const geom::Point& world_point) const {
  return {(world_point.x - world_.xlo) * scale_,
          // Flip Y: world up = screen up.
          height_px_ - (world_point.y - world_.ylo) * scale_};
}

void SvgCanvas::line(const geom::Point& a, const geom::Point& b,
                     std::string_view color, double width_px, double opacity,
                     bool dashed) {
  const geom::Point pa = to_px(a), pb = to_px(b);
  body_ << "<line x1=\"" << pa.x << "\" y1=\"" << pa.y << "\" x2=\"" << pb.x
        << "\" y2=\"" << pb.y << "\" stroke=\"" << color
        << "\" stroke-width=\"" << width_px << "\" stroke-opacity=\""
        << opacity << "\"";
  if (dashed) body_ << " stroke-dasharray=\"6,4\"";
  body_ << "/>\n";
}

void SvgCanvas::polyline(const std::vector<geom::Point>& points,
                         std::string_view color, double width_px,
                         double opacity) {
  if (points.size() < 2) return;
  body_ << "<polyline fill=\"none\" stroke=\"" << color
        << "\" stroke-width=\"" << width_px << "\" stroke-opacity=\""
        << opacity << "\" points=\"";
  for (const geom::Point& p : points) {
    const geom::Point px = to_px(p);
    body_ << px.x << ',' << px.y << ' ';
  }
  body_ << "\"/>\n";
}

void SvgCanvas::circle(const geom::Point& center, double radius_px,
                       std::string_view fill, double opacity) {
  const geom::Point p = to_px(center);
  body_ << "<circle cx=\"" << p.x << "\" cy=\"" << p.y << "\" r=\""
        << radius_px << "\" fill=\"" << fill << "\" fill-opacity=\""
        << opacity << "\"/>\n";
}

void SvgCanvas::rect(const geom::BBox& box, std::string_view stroke,
                     std::string_view fill, double width_px) {
  const geom::Point lo = to_px({box.xlo, box.yhi});  // top-left after flip
  body_ << "<rect x=\"" << lo.x << "\" y=\"" << lo.y << "\" width=\""
        << box.width() * scale_ << "\" height=\"" << box.height() * scale_
        << "\" stroke=\"" << stroke << "\" fill=\"" << fill
        << "\" stroke-width=\"" << width_px << "\"/>\n";
}

void SvgCanvas::text(const geom::Point& anchor, std::string_view content,
                     double size_px, std::string_view color) {
  const geom::Point p = to_px(anchor);
  body_ << "<text x=\"" << p.x << "\" y=\"" << p.y << "\" font-size=\""
        << size_px << "\" fill=\"" << color
        << "\" font-family=\"monospace\">";
  append_escaped(body_, content);
  body_ << "</text>\n";
}

void SvgCanvas::legend(std::string_view label, std::string_view color) {
  const double y = 18.0 + 16.0 * static_cast<double>(legend_entries_++);
  body_ << "<rect x=\"8\" y=\"" << y - 9 << "\" width=\"12\" height=\"12\""
        << " fill=\"" << color << "\"/>\n";
  body_ << "<text x=\"26\" y=\"" << y + 2
        << "\" font-size=\"12\" font-family=\"monospace\" fill=\"#222\">";
  append_escaped(body_, label);
  body_ << "</text>\n";
}

std::string SvgCanvas::str() const {
  std::ostringstream out;
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_px_
      << "\" height=\"" << height_px_ << "\" viewBox=\"0 0 " << width_px_
      << ' ' << height_px_ << "\">\n"
      << "<rect width=\"100%\" height=\"100%\" fill=\"#fafafa\"/>\n"
      << body_.str() << "</svg>\n";
  return out.str();
}

}  // namespace operon::viz
