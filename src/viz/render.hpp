#pragma once
// High-level rendering of routed designs: electrical wires (copper),
// optical waveguides (blue), EO/OE conversion sites, hyper-pin centers,
// and optionally the placed WDM waveguides — the pictures Fig 1/4/6 of
// the paper sketch, generated from real routing results.

#include <string>

#include "codesign/candidate.hpp"
#include "codesign/selection.hpp"
#include "model/design.hpp"
#include "wdm/assign.hpp"

namespace operon::viz {

struct RenderOptions {
  double pixel_width = 900.0;
  bool draw_pins = true;
  bool draw_conversions = true;
  bool draw_wdms = false;
  bool draw_legend = true;
};

/// Render a selection over candidate sets (chosen = per-net candidate).
std::string render_routed_design(
    const geom::BBox& chip, std::span<const codesign::CandidateSet> sets,
    const codesign::Selection& selection, const RenderOptions& options = {});

/// Render explicit per-net candidates (e.g. a baseline router's choices).
std::string render_candidates(const geom::BBox& chip,
                              std::span<const codesign::CandidateSet> sets,
                              std::span<const codesign::Candidate> chosen,
                              const RenderOptions& options = {});

/// Render a WDM plan on top of a routed design.
std::string render_with_wdms(const geom::BBox& chip,
                             std::span<const codesign::CandidateSet> sets,
                             const codesign::Selection& selection,
                             const wdm::WdmPlan& plan,
                             const RenderOptions& options = {});

}  // namespace operon::viz
