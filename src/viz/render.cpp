#include "viz/render.hpp"

#include "util/check.hpp"
#include "viz/svg.hpp"

namespace operon::viz {

namespace {

constexpr const char* kElectricalColor = "#d97706";  // copper
constexpr const char* kOpticalColor = "#2563eb";     // waveguide blue
constexpr const char* kModulatorColor = "#16a34a";   // EO
constexpr const char* kDetectorColor = "#dc2626";    // OE
constexpr const char* kPinColor = "#475569";
constexpr const char* kWdmColor = "#7c3aed";

void draw_candidate(SvgCanvas& canvas, const codesign::Candidate& cand,
                    const RenderOptions& options) {
  for (const geom::Segment& seg : cand.electrical_segments) {
    canvas.line(seg.a, seg.b, kElectricalColor, 1.4, 0.85);
  }
  for (const geom::Segment& seg : cand.optical_segments) {
    canvas.line(seg.a, seg.b, kOpticalColor, 1.8, 0.85);
  }
  if (options.draw_conversions) {
    for (const geom::Point& site : cand.modulator_sites) {
      canvas.circle(site, 3.0, kModulatorColor);
    }
    for (const geom::Point& site : cand.detector_sites) {
      canvas.circle(site, 3.0, kDetectorColor);
    }
  }
}

void draw_common(SvgCanvas& canvas, const geom::BBox& chip,
                 std::span<const codesign::CandidateSet> sets,
                 const RenderOptions& options) {
  canvas.rect(chip, "#94a3b8", "none", 1.0);
  if (options.draw_pins) {
    for (const auto& set : sets) {
      for (const auto& tree : set.baselines) {
        for (std::size_t t = 0; t < tree.num_terminals; ++t) {
          canvas.circle(tree.points[t], 1.6, kPinColor, 0.7);
        }
        break;  // terminals are identical across baselines
      }
    }
  }
  if (options.draw_legend) {
    canvas.legend("electrical wire", kElectricalColor);
    canvas.legend("optical waveguide", kOpticalColor);
    if (options.draw_conversions) {
      canvas.legend("modulator (EO)", kModulatorColor);
      canvas.legend("detector (OE)", kDetectorColor);
    }
    if (options.draw_wdms) canvas.legend("WDM waveguide", kWdmColor);
  }
}

}  // namespace

std::string render_candidates(const geom::BBox& chip,
                              std::span<const codesign::CandidateSet> sets,
                              std::span<const codesign::Candidate> chosen,
                              const RenderOptions& options) {
  OPERON_CHECK(sets.size() == chosen.size());
  SvgCanvas canvas(chip, options.pixel_width);
  draw_common(canvas, chip, sets, options);
  for (const codesign::Candidate& cand : chosen) {
    draw_candidate(canvas, cand, options);
  }
  return canvas.str();
}

std::string render_routed_design(const geom::BBox& chip,
                                 std::span<const codesign::CandidateSet> sets,
                                 const codesign::Selection& selection,
                                 const RenderOptions& options) {
  OPERON_CHECK(sets.size() == selection.size());
  SvgCanvas canvas(chip, options.pixel_width);
  draw_common(canvas, chip, sets, options);
  for (std::size_t i = 0; i < sets.size(); ++i) {
    draw_candidate(canvas, sets[i].options[selection[i]], options);
  }
  return canvas.str();
}

std::string render_with_wdms(const geom::BBox& chip,
                             std::span<const codesign::CandidateSet> sets,
                             const codesign::Selection& selection,
                             const wdm::WdmPlan& plan,
                             const RenderOptions& options) {
  RenderOptions with_wdms = options;
  with_wdms.draw_wdms = true;
  SvgCanvas canvas(chip, with_wdms.pixel_width);
  draw_common(canvas, chip, sets, with_wdms);
  for (std::size_t i = 0; i < sets.size(); ++i) {
    draw_candidate(canvas, sets[i].options[selection[i]], with_wdms);
  }
  for (const wdm::Wdm& wdm : plan.wdms) {
    if (wdm.used <= 0) continue;
    if (wdm.axis == wdm::Axis::Horizontal) {
      canvas.line({wdm.lo, wdm.coord}, {wdm.hi, wdm.coord}, kWdmColor, 2.4,
                  0.5, /*dashed=*/true);
    } else {
      canvas.line({wdm.coord, wdm.lo}, {wdm.coord, wdm.hi}, kWdmColor, 2.4,
                  0.5, /*dashed=*/true);
    }
  }
  return canvas.str();
}

}  // namespace operon::viz
