#include "cluster/agglomerate.hpp"

#include <limits>

#include "util/check.hpp"

namespace operon::cluster {

std::vector<model::HyperPin> agglomerate_pins(std::vector<model::PinRef> pins,
                                              double distance_threshold_um) {
  OPERON_CHECK(distance_threshold_um >= 0.0);
  std::vector<model::HyperPin> clusters;
  clusters.reserve(pins.size());
  for (model::PinRef& pin : pins) {
    model::HyperPin hp;
    hp.center = pin.location;
    hp.pins.push_back(std::move(pin));
    clusters.push_back(std::move(hp));
  }

  while (clusters.size() >= 2) {
    // Closest pair by gravity-center distance.
    std::size_t best_i = 0, best_j = 1;
    double best_d2 = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      for (std::size_t j = i + 1; j < clusters.size(); ++j) {
        const double d2 =
            geom::squared_distance(clusters[i].center, clusters[j].center);
        if (d2 < best_d2) {
          best_d2 = d2;
          best_i = i;
          best_j = j;
        }
      }
    }
    if (best_d2 > distance_threshold_um * distance_threshold_um) break;

    // Merge j into i, recompute gravity center, drop j.
    auto& into = clusters[best_i];
    auto& from = clusters[best_j];
    into.pins.insert(into.pins.end(),
                     std::make_move_iterator(from.pins.begin()),
                     std::make_move_iterator(from.pins.end()));
    into.update_center();
    clusters.erase(clusters.begin() + static_cast<std::ptrdiff_t>(best_j));
  }
  return clusters;
}

}  // namespace operon::cluster
