#include "cluster/hypernet_builder.hpp"

#include <algorithm>

#include "cluster/agglomerate.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace operon::cluster {

namespace {

/// All electrical pins of the given bits as PinRefs.
std::vector<model::PinRef> collect_pins(const model::Design& design,
                                        std::size_t group,
                                        const std::vector<std::size_t>& bits) {
  std::vector<model::PinRef> pins;
  const model::SignalGroup& sg = design.groups[group];
  for (std::size_t bit : bits) {
    const model::SignalBit& sb = sg.bits[bit];
    pins.push_back({group, bit, -1, sb.source.location, model::PinRole::Source});
    for (int s = 0; s < static_cast<int>(sb.sinks.size()); ++s) {
      pins.push_back({group, bit, s, sb.sinks[static_cast<std::size_t>(s)].location,
                      model::PinRole::Sink});
    }
  }
  return pins;
}

/// When agglomeration collapses everything into one hyper pin the net has
/// no routing problem left; split sources back out so the net still has a
/// driver side and a sink side.
std::vector<model::HyperPin> split_single_cluster(model::HyperPin all) {
  model::HyperPin sources, sinks;
  for (model::PinRef& pin : all.pins) {
    (pin.role == model::PinRole::Source ? sources : sinks)
        .pins.push_back(std::move(pin));
  }
  std::vector<model::HyperPin> out;
  if (!sources.pins.empty()) {
    sources.update_center();
    out.push_back(std::move(sources));
  }
  if (!sinks.pins.empty()) {
    sinks.update_center();
    out.push_back(std::move(sinks));
  }
  return out;
}

}  // namespace

std::size_t SignalProcessingResult::num_hyper_pins() const {
  std::size_t count = 0;
  for (const model::HyperNet& net : hyper_nets) count += net.pins.size();
  return count;
}

SignalProcessingResult build_hyper_nets(
    const model::Design& design, const SignalProcessingOptions& options) {
  design.validate();  // boundary check: reject malformed designs up front
  OPERON_SPAN("cluster.build_hyper_nets");
  SignalProcessingResult result;

  util::StopToken stop = options.stop;
  for (std::size_t g = 0; g < design.groups.size(); ++g) {
    const model::SignalGroup& group = design.groups[g];

    // Per-group checkpoint: once the run budget trips, the remaining
    // groups take the index-order chunking rung below instead of
    // K-Means — full bit coverage, degraded cluster quality.
    const bool degraded = stop.checkpoint("cluster.group");

    std::vector<std::vector<std::size_t>> members;
    if (degraded) {
      const std::size_t capacity = std::max<std::size_t>(options.kmeans.capacity, 1);
      for (std::size_t bit = 0; bit < group.bits.size(); ++bit) {
        if (bit % capacity == 0) members.emplace_back();
        members.back().push_back(bit);
      }
    } else {
      // Top-down: partition the group's bits by centroid into
      // capacity-respecting clusters.
      std::vector<geom::Point> centroids;
      centroids.reserve(group.bits.size());
      for (const model::SignalBit& bit : group.bits) {
        centroids.push_back(bit.centroid());
      }
      KMeansOptions km = options.kmeans;
      km.seed = options.kmeans.seed + g * 7919;  // per-group deterministic seed
      const KMeansResult clusters = capacitated_kmeans(centroids, km);

      members.resize(clusters.num_clusters());
      for (std::size_t bit = 0; bit < group.bits.size(); ++bit) {
        members[clusters.assignment[bit]].push_back(bit);
      }
    }

    // Bottom-up: hyper pins per cluster, then assemble the hyper net.
    for (std::vector<std::size_t>& bits : members) {
      OPERON_CHECK(!bits.empty());
      model::HyperNet net;
      net.id = result.hyper_nets.size();
      net.group = g;
      net.bits = std::move(bits);

      std::vector<model::HyperPin> pins = agglomerate_pins(
          collect_pins(design, g, net.bits), options.pin_merge_threshold_um);
      if (pins.size() == 1) {
        pins = split_single_cluster(std::move(pins.front()));
      }
      if (pins.size() < 2) {
        // Degenerate: all pins coincide; nothing to route. Skip but log.
        OPERON_LOG(Warn) << "hyper net in group '" << group.name
                         << "' collapsed to a single location; skipping";
        continue;
      }
      net.pins = std::move(pins);
      net.select_root();
      net.validate(design);
      result.hyper_nets.push_back(std::move(net));
    }
  }
  obs::set_gauge("cluster.hyper_nets",
                 static_cast<double>(result.num_hyper_nets()));
  obs::set_gauge("cluster.hyper_pins",
                 static_cast<double>(result.num_hyper_pins()));
  return result;
}

}  // namespace operon::cluster
