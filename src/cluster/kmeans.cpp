#include "cluster/kmeans.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace operon::cluster {

std::vector<std::size_t> KMeansResult::cluster_sizes() const {
  std::vector<std::size_t> sizes(centers.size(), 0);
  for (std::size_t c : assignment) {
    OPERON_DCHECK(c < sizes.size());
    ++sizes[c];
  }
  return sizes;
}

namespace {

/// k-means++ style seeding: first center uniform, then proportional to
/// squared distance from the nearest chosen center.
std::vector<geom::Point> seed_centers(std::span<const geom::Point> points,
                                      std::size_t k, util::Rng& rng) {
  std::vector<geom::Point> centers;
  centers.reserve(k);
  centers.push_back(points[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(points.size()) - 1))]);
  std::vector<double> dist2(points.size());
  while (centers.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const geom::Point& c : centers) {
        best = std::min(best, geom::squared_distance(points[i], c));
      }
      dist2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      // All points coincide with existing centers; duplicate one.
      centers.push_back(centers.back());
      continue;
    }
    double pick = rng.uniform01() * total;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      pick -= dist2[i];
      if (pick < 0.0) {
        chosen = i;
        break;
      }
    }
    centers.push_back(points[chosen]);
  }
  return centers;
}

/// Assign every point to its nearest center, then repair capacity
/// violations by spilling the points farthest from an overfull center to
/// their next-closest center with remaining room (§3.1.1).
std::vector<std::size_t> assign_with_capacity(
    std::span<const geom::Point> points,
    const std::vector<geom::Point>& centers, std::size_t capacity) {
  const std::size_t n = points.size();
  const std::size_t k = centers.size();
  std::vector<std::size_t> assignment(n);
  std::vector<std::size_t> load(k, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < k; ++c) {
      const double d = geom::squared_distance(points[i], centers[c]);
      if (d < best_d) {
        best_d = d;
        best = c;
      }
    }
    assignment[i] = best;
    ++load[best];
  }

  // Spill overflow, farthest points first, to next-closest non-full cluster.
  for (std::size_t c = 0; c < k; ++c) {
    while (load[c] > capacity) {
      std::size_t worst = n;
      double worst_d = -1.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (assignment[i] != c) continue;
        const double d = geom::squared_distance(points[i], centers[c]);
        if (d > worst_d) {
          worst_d = d;
          worst = i;
        }
      }
      OPERON_CHECK(worst < n);
      // Rank other clusters by distance; take the first with room.
      std::vector<std::size_t> order(k);
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return geom::squared_distance(points[worst], centers[a]) <
               geom::squared_distance(points[worst], centers[b]);
      });
      bool moved = false;
      for (std::size_t cand : order) {
        if (cand == c || load[cand] >= capacity) continue;
        assignment[worst] = cand;
        --load[c];
        ++load[cand];
        moved = true;
        break;
      }
      OPERON_CHECK_MSG(moved, "capacity repair failed: total capacity "
                                  << k * capacity << " < points " << n);
    }
  }
  return assignment;
}

double compute_variance(std::span<const geom::Point> points,
                        const std::vector<std::size_t>& assignment,
                        const std::vector<geom::Point>& centers) {
  if (points.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    sum += geom::squared_distance(points[i], centers[assignment[i]]);
  }
  return sum / static_cast<double>(points.size());
}

}  // namespace

KMeansResult capacitated_kmeans(std::span<const geom::Point> points,
                                const KMeansOptions& options) {
  OPERON_CHECK(options.capacity >= 1);
  KMeansResult result;
  if (points.empty()) return result;

  const std::size_t n = points.size();
  const std::size_t k = (n + options.capacity - 1) / options.capacity;
  if (k == 1) {
    result.iterations = 1;
    result.assignment.assign(n, 0);
    geom::Point sum{0, 0};
    for (const auto& p : points) sum = sum + p;
    result.centers = {{sum.x / static_cast<double>(n),
                       sum.y / static_cast<double>(n)}};
    result.variance =
        compute_variance(points, result.assignment, result.centers);
    obs::add_counter("cluster.kmeans.runs");
    obs::add_counter("cluster.kmeans.iterations", result.iterations);
    return result;
  }

  util::Rng rng(options.seed);
  std::vector<geom::Point> centers = seed_centers(points, k, rng);
  std::vector<std::size_t> assignment;
  double prev_variance = std::numeric_limits<double>::infinity();

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    assignment = assign_with_capacity(points, centers, options.capacity);

    // Recompute gravity centers (empty clusters keep their position).
    std::vector<geom::Point> sums(k, {0, 0});
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      sums[assignment[i]] = sums[assignment[i]] + points[i];
      ++counts[assignment[i]];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] > 0) {
        centers[c] = {sums[c].x / static_cast<double>(counts[c]),
                      sums[c].y / static_cast<double>(counts[c])};
      }
    }

    const double variance = compute_variance(points, assignment, centers);
    if (prev_variance < std::numeric_limits<double>::infinity()) {
      const double denom = std::max(prev_variance, 1e-12);
      if ((prev_variance - variance) / denom < options.variance_threshold) {
        prev_variance = variance;
        break;
      }
    }
    prev_variance = variance;
  }

  // Compact away empty clusters.
  std::vector<std::size_t> counts(k, 0);
  for (std::size_t c : assignment) ++counts[c];
  std::vector<std::size_t> remap(k, k);
  std::size_t next = 0;
  for (std::size_t c = 0; c < k; ++c) {
    if (counts[c] > 0) {
      remap[c] = next++;
      result.centers.push_back(centers[c]);
    }
  }
  result.assignment.resize(n);
  for (std::size_t i = 0; i < n; ++i) result.assignment[i] = remap[assignment[i]];
  result.variance = prev_variance;
  obs::add_counter("cluster.kmeans.runs");
  obs::add_counter("cluster.kmeans.iterations", result.iterations);
  return result;
}

}  // namespace operon::cluster
