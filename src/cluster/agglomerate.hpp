#pragma once
// Bottom-up hyper-pin agglomeration (§3.1.2). Every electrical pin starts
// as its own hyper pin; each iteration merges the closest pair of hyper
// pins (by gravity-center Euclidean distance) while that distance stays
// below a threshold, updating the gravity center after each merge.

#include <vector>

#include "model/hyper.hpp"

namespace operon::cluster {

/// Greedy closest-pair agglomeration. Deterministic; O(n^2) per merge.
std::vector<model::HyperPin> agglomerate_pins(std::vector<model::PinRef> pins,
                                              double distance_threshold_um);

}  // namespace operon::cluster
