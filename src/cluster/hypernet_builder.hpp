#pragma once
// Signal-processing stage of Fig 2: partition each signal group into
// hyper nets (top-down capacitated K-Means over bit centroids) and build
// hyper pins (bottom-up pin agglomeration) for every hyper net.

#include <cstdint>
#include <vector>

#include "cluster/kmeans.hpp"
#include "model/design.hpp"
#include "model/hyper.hpp"
#include "util/stop.hpp"

namespace operon::cluster {

struct SignalProcessingOptions {
  KMeansOptions kmeans;
  /// Pins closer than this agglomerate into one hyper pin (§3.1.2).
  double pin_merge_threshold_um = 600.0;
  /// Run-wide budget: polled once per signal group (serial loop). On a
  /// trip the remaining groups skip K-Means and chunk bits in index
  /// order (capacity-respecting), keeping full bit coverage so every
  /// signal still gets routed — just with worse clusters.
  util::StopToken stop;
};

struct SignalProcessingResult {
  std::vector<model::HyperNet> hyper_nets;

  std::size_t num_hyper_nets() const { return hyper_nets.size(); }  ///< "#HNet"
  std::size_t num_hyper_pins() const;                               ///< "#HPin"
};

/// Build hyper nets for the whole design. Every bit of every group lands
/// in exactly one hyper net; every hyper net gets >= 2 hyper pins (source
/// pins are forced into their own hyper pin when agglomeration would
/// otherwise collapse a net to a single pin) and a selected root.
SignalProcessingResult build_hyper_nets(const model::Design& design,
                                        const SignalProcessingOptions& options);

}  // namespace operon::cluster
