#pragma once
// Capacity-constrained K-Means (§3.1.1). Signal bits are partitioned into
// K = ceil(#bits / WDM capacity) clusters; the vanilla Lloyd assignment is
// repaired each iteration so no cluster exceeds the capacity (overflow
// bits spill to their second-closest cluster, and so on). Iteration stops
// when the distance variance improves by less than a threshold; empty
// clusters are removed afterward.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "geom/point.hpp"

namespace operon::cluster {

struct KMeansOptions {
  std::size_t capacity = 32;
  double variance_threshold = 1e-3;  ///< relative improvement stop criterion
  std::size_t max_iterations = 50;
  std::uint64_t seed = 1;
};

struct KMeansResult {
  /// Cluster index per input point; indices are compacted (no empties).
  std::vector<std::size_t> assignment;
  std::vector<geom::Point> centers;
  std::size_t iterations = 0;
  /// Mean squared point-to-center distance at convergence.
  double variance = 0.0;

  std::size_t num_clusters() const { return centers.size(); }
  std::vector<std::size_t> cluster_sizes() const;
};

/// Partition `points` into capacity-respecting clusters. Deterministic for
/// a fixed seed. Requires capacity >= 1; handles n == 0 (empty result).
KMeansResult capacitated_kmeans(std::span<const geom::Point> points,
                                const KMeansOptions& options);

}  // namespace operon::cluster
