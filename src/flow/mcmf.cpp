#include "flow/mcmf.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace operon::flow {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

MinCostMaxFlow::MinCostMaxFlow(std::size_t num_nodes)
    : num_nodes_(num_nodes), adjacency_(num_nodes), potential_(num_nodes, 0.0) {}

std::size_t MinCostMaxFlow::add_edge(NodeId from, NodeId to,
                                     std::int64_t capacity, double cost) {
  OPERON_CHECK(from < num_nodes_);
  OPERON_CHECK(to < num_nodes_);
  OPERON_CHECK(capacity >= 0);
  OPERON_CHECK_MSG(capacity <= kMaxEdgeCapacity,
                   "edge capacity exceeds kMaxEdgeCapacity — residual "
                   "updates could overflow int64");
  OPERON_CHECK_MSG(std::isfinite(cost), "edge cost must be finite");
  if (cost < 0.0) has_negative_costs_ = true;

  const std::size_t fwd_pos = adjacency_[from].size();
  const std::size_t rev_pos = adjacency_[to].size() + (from == to ? 1 : 0);
  adjacency_[from].push_back({to, capacity, cost, rev_pos});
  adjacency_[to].push_back({from, 0, -cost, fwd_pos});

  edges_.push_back({from, to, capacity, cost, 0});
  edge_handles_.emplace_back(from, fwd_pos);
  return edges_.size() - 1;
}

const Edge& MinCostMaxFlow::edge(std::size_t index) const {
  OPERON_CHECK(index < edges_.size());
  return edges_[index];
}

void MinCostMaxFlow::clear_flow() {
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const auto [node, pos] = edge_handles_[i];
    InternalEdge& fwd = adjacency_[node][pos];
    InternalEdge& rev = adjacency_[fwd.to][fwd.reverse];
    fwd.capacity = edges_[i].capacity;
    rev.capacity = 0;
    edges_[i].flow = 0;
  }
  std::fill(potential_.begin(), potential_.end(), 0.0);
}

// SPFA (queue-driven Bellman–Ford) for the initial potentials when
// negative-cost edges exist. Deterministic: plain FIFO, nodes relaxed in
// arrival order. A node dequeued more than num_nodes_ times implies a
// reachable negative-cost cycle — that is a malformed network for the
// successive-shortest-path invariant, so it fails fast rather than
// spinning forever.
void MinCostMaxFlow::spfa(NodeId s) {
  std::vector<double> dist(num_nodes_, kInf);
  std::vector<char> in_queue(num_nodes_, 0);
  std::vector<std::size_t> dequeues(num_nodes_, 0);
  std::deque<NodeId> queue;
  dist[s] = 0.0;
  queue.push_back(s);
  in_queue[s] = 1;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    in_queue[u] = 0;
    OPERON_CHECK_MSG(++dequeues[u] <= num_nodes_,
                     "negative-cost cycle detected in flow network (SPFA "
                     "relaxation count exceeded node count)");
    for (const InternalEdge& e : adjacency_[u]) {
      if (e.capacity <= 0) continue;
      const double nd = dist[u] + e.cost;
      OPERON_CHECK_MSG(std::isfinite(nd),
                       "SPFA distance accumulation overflowed to non-finite");
      if (nd < dist[e.to] - 1e-12) {
        dist[e.to] = nd;
        if (!in_queue[e.to]) {
          queue.push_back(e.to);
          in_queue[e.to] = 1;
        }
      }
    }
  }
  for (NodeId u = 0; u < num_nodes_; ++u) {
    potential_[u] = dist[u] == kInf ? 0.0 : dist[u];
  }
}

bool MinCostMaxFlow::dijkstra(
    NodeId s, NodeId t, std::vector<double>& dist,
    std::vector<std::pair<NodeId, std::size_t>>& parent) const {
  dist.assign(num_nodes_, kInf);
  parent.assign(num_nodes_, {num_nodes_, 0});
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[s] = 0.0;
  heap.emplace(0.0, s);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u] + 1e-12) continue;
    for (std::size_t i = 0; i < adjacency_[u].size(); ++i) {
      const InternalEdge& e = adjacency_[u][i];
      if (e.capacity <= 0) continue;
      const double reduced = e.cost + potential_[u] - potential_[e.to];
      OPERON_DCHECK(reduced >= -1e-6);  // potentials keep costs non-negative
      const double nd = dist[u] + std::max(reduced, 0.0);
      if (nd < dist[e.to] - 1e-12) {
        dist[e.to] = nd;
        parent[e.to] = {u, i};
        heap.emplace(nd, e.to);
      }
    }
  }
  return dist[t] < kInf;
}

FlowResult MinCostMaxFlow::solve(NodeId s, NodeId t, std::int64_t limit,
                                 util::StopToken stop) {
  OPERON_CHECK(s < num_nodes_);
  OPERON_CHECK(t < num_nodes_);
  OPERON_CHECK(s != t);

  FlowResult result;
  if (has_negative_costs_) {
    spfa(s);
    ++result.potential_updates;
    obs::add_counter("flow.mcmf.spfa_runs");
  } else {
    std::fill(potential_.begin(), potential_.end(), 0.0);
  }

  std::vector<double> dist;
  std::vector<std::pair<NodeId, std::size_t>> parent;
  while (result.max_flow < limit) {
    // Per-augmentation checkpoint (serial loop — deterministic count).
    if (stop.checkpoint("flow.mcmf")) {
      result.stopped = true;
      break;
    }
    if (!dijkstra(s, t, dist, parent)) break;
    // Update potentials with the new shortest distances.
    ++result.augmenting_paths;
    ++result.potential_updates;
    for (NodeId u = 0; u < num_nodes_; ++u) {
      if (dist[u] < kInf) potential_[u] += dist[u];
    }
    // Bottleneck along the augmenting path.
    std::int64_t push = limit - result.max_flow;
    for (NodeId v = t; v != s;) {
      const auto [u, idx] = parent[v];
      push = std::min(push, adjacency_[u][idx].capacity);
      v = u;
    }
    OPERON_CHECK(push > 0);
    // Apply.
    for (NodeId v = t; v != s;) {
      const auto [u, idx] = parent[v];
      InternalEdge& fwd = adjacency_[u][idx];
      InternalEdge& rev = adjacency_[fwd.to][fwd.reverse];
      fwd.capacity -= push;
      OPERON_CHECK_MSG(rev.capacity <= kMaxEdgeCapacity - push,
                       "residual capacity would overflow int64");
      rev.capacity += push;
      result.total_cost += fwd.cost * static_cast<double>(push);
      v = u;
    }
    OPERON_CHECK_MSG(std::isfinite(result.total_cost),
                     "cost x flow accumulation overflowed to non-finite");
    result.max_flow += push;
  }

  // Mirror flows back to the user-facing edge list.
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const auto [node, pos] = edge_handles_[i];
    edges_[i].flow = edges_[i].capacity - adjacency_[node][pos].capacity;
  }
  obs::add_counter("flow.mcmf.solves");
  obs::add_counter("flow.mcmf.augmenting_paths", result.augmenting_paths);
  obs::add_counter("flow.mcmf.potential_updates", result.potential_updates);
  return result;
}

FlowResult MinCostMaxFlow::solve_with_demand(NodeId s, NodeId t,
                                             std::int64_t demand,
                                             util::StopToken stop) {
  FlowResult result = solve(s, t, demand, std::move(stop));
  result.feasible = result.max_flow >= demand;
  return result;
}

}  // namespace operon::flow
