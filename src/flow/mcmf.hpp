#pragma once
// Min-cost max-flow on directed graphs with integer capacities and real
// edge costs — the network substrate for the WDM assignment (§4.2,
// Fig 7), replacing LEMON. Successive shortest paths with Johnson
// potentials (Dijkstra); an initial Bellman–Ford pass establishes valid
// potentials when negative-cost edges are present. For networks with
// integral capacities the optimum is integral (total unimodularity),
// which is exactly the property §4.2 relies on.

#include <cstdint>
#include <limits>
#include <vector>

namespace operon::flow {

using NodeId = std::size_t;

struct Edge {
  NodeId from = 0;
  NodeId to = 0;
  std::int64_t capacity = 0;
  double cost = 0.0;
  std::int64_t flow = 0;  ///< filled in by solve()

  std::int64_t residual() const { return capacity - flow; }
};

struct FlowResult {
  std::int64_t max_flow = 0;
  double total_cost = 0.0;
  bool feasible = true;  ///< set by solve_with_demand when demand met
  std::size_t augmenting_paths = 0;
  /// Johnson-potential recomputations: the initial Bellman–Ford pass
  /// (when negative costs exist) plus one Dijkstra-driven update per
  /// augmentation.
  std::size_t potential_updates = 0;
};

class MinCostMaxFlow {
 public:
  explicit MinCostMaxFlow(std::size_t num_nodes);

  std::size_t num_nodes() const { return num_nodes_; }

  /// Returns the edge index (stable; use edge() to read back flow).
  std::size_t add_edge(NodeId from, NodeId to, std::int64_t capacity,
                       double cost);

  const Edge& edge(std::size_t index) const;
  std::size_t num_edges() const { return edges_.size(); }

  /// Push min-cost flow from s to t until max flow (or `limit` units).
  FlowResult solve(NodeId s, NodeId t,
                   std::int64_t limit = std::numeric_limits<std::int64_t>::max());

  /// Like solve() but marks the result infeasible when fewer than
  /// `demand` units could be routed.
  FlowResult solve_with_demand(NodeId s, NodeId t, std::int64_t demand);

  /// Reset all flows to zero (graph reusable).
  void clear_flow();

 private:
  struct InternalEdge {
    NodeId to;
    std::int64_t capacity;
    double cost;
    std::size_t reverse;  ///< index of reverse edge in adjacency of `to`
  };

  bool dijkstra(NodeId s, NodeId t, std::vector<double>& dist,
                std::vector<std::pair<NodeId, std::size_t>>& parent) const;
  void bellman_ford(NodeId s);

  std::size_t num_nodes_;
  std::vector<std::vector<InternalEdge>> adjacency_;
  std::vector<Edge> edges_;                     ///< user-facing mirror
  std::vector<std::pair<NodeId, std::size_t>> edge_handles_;
  std::vector<double> potential_;
  bool has_negative_costs_ = false;
};

}  // namespace operon::flow
