#pragma once
// Min-cost max-flow on directed graphs with integer capacities and real
// edge costs — the network substrate for the WDM assignment (§4.2,
// Fig 7), replacing LEMON. Successive shortest paths with Johnson
// potentials (Dijkstra); an initial SPFA pass establishes valid
// potentials when negative-cost edges are present. For networks with
// integral capacities the optimum is integral (total unimodularity),
// which is exactly the property §4.2 relies on.

#include <cstdint>
#include <limits>
#include <vector>

#include "util/stop.hpp"

namespace operon::flow {

using NodeId = std::size_t;

/// Hard cap on a single edge's capacity: keeps every residual update and
/// flow accumulation comfortably inside int64 (enforced in add_edge).
inline constexpr std::int64_t kMaxEdgeCapacity =
    std::numeric_limits<std::int64_t>::max() / 4;

struct Edge {
  NodeId from = 0;
  NodeId to = 0;
  std::int64_t capacity = 0;
  double cost = 0.0;
  std::int64_t flow = 0;  ///< filled in by solve()

  std::int64_t residual() const { return capacity - flow; }
};

struct FlowResult {
  std::int64_t max_flow = 0;
  double total_cost = 0.0;
  bool feasible = true;  ///< set by solve_with_demand when demand met
  std::size_t augmenting_paths = 0;
  /// Johnson-potential recomputations: the initial SPFA pass (when
  /// negative costs exist) plus one Dijkstra-driven update per
  /// augmentation.
  std::size_t potential_updates = 0;
  /// True when a run-budget stop token tripped before max flow was
  /// reached: the flows pushed so far are a valid (partial) min-cost
  /// flow, but max_flow may be short of the achievable maximum.
  bool stopped = false;
};

class MinCostMaxFlow {
 public:
  explicit MinCostMaxFlow(std::size_t num_nodes);

  std::size_t num_nodes() const { return num_nodes_; }

  /// Returns the edge index (stable; use edge() to read back flow).
  std::size_t add_edge(NodeId from, NodeId to, std::int64_t capacity,
                       double cost);

  const Edge& edge(std::size_t index) const;
  std::size_t num_edges() const { return edges_.size(); }

  /// Push min-cost flow from s to t until max flow (or `limit` units).
  /// The optional stop token is polled once per augmentation (serial
  /// loop — deterministic count); a trip sets FlowResult::stopped.
  FlowResult solve(NodeId s, NodeId t,
                   std::int64_t limit = std::numeric_limits<std::int64_t>::max(),
                   util::StopToken stop = {});

  /// Like solve() but marks the result infeasible when fewer than
  /// `demand` units could be routed.
  FlowResult solve_with_demand(NodeId s, NodeId t, std::int64_t demand,
                               util::StopToken stop = {});

  /// Reset all flows to zero (graph reusable).
  void clear_flow();

 private:
  struct InternalEdge {
    NodeId to;
    std::int64_t capacity;
    double cost;
    std::size_t reverse;  ///< index of reverse edge in adjacency of `to`
  };

  bool dijkstra(NodeId s, NodeId t, std::vector<double>& dist,
                std::vector<std::pair<NodeId, std::size_t>>& parent) const;
  void spfa(NodeId s);

  std::size_t num_nodes_;
  std::vector<std::vector<InternalEdge>> adjacency_;
  std::vector<Edge> edges_;                     ///< user-facing mirror
  std::vector<std::pair<NodeId, std::size_t>> edge_handles_;
  std::vector<double> potential_;
  bool has_negative_costs_ = false;
};

}  // namespace operon::flow
