#pragma once
// Comparison baselines of Table 1.
//
//  * Electrical [14] (Streak-like): every hyper net routed with its
//    pure-electrical RSMT alternative a_ie; power from Eq. 6.
//  * Optical [4] (GLOW-like): every hyper net routed all-optically on its
//    primary baseline topology. Faithful to GLOW's documented blind
//    spot, the *optimization* ignores splitting loss — a net goes optical
//    when its propagation + estimated crossing loss fits lm — but the
//    *evaluation* includes it, so over-split nets fail detection and
//    must fall back to electrical wires, "resulting in additional power
//    consumptions" (§5).

#include <span>
#include <vector>

#include "codesign/candidate.hpp"
#include "grid/maze.hpp"
#include "model/params.hpp"

namespace operon::baseline {

struct BaselineResult {
  /// Chosen route per net, aligned with the candidate-set span.
  std::vector<codesign::Candidate> chosen;
  double total_power_pj = 0.0;
  std::size_t optical_nets = 0;
  std::size_t electrical_nets = 0;
  /// Nets that went optical under GLOW's split-blind check but failed
  /// true detection and fell back (always 0 for the electrical router).
  std::size_t detection_fallbacks = 0;
};

BaselineResult route_electrical(std::span<const codesign::CandidateSet> sets,
                                const model::TechParams& params);

BaselineResult route_optical_glow(std::span<const codesign::CandidateSet> sets,
                                  const model::TechParams& params);

/// Grid (Manhattan) variant of the optical baseline: every hyper net is
/// maze-routed on a congestion-negotiated tile grid (GLOW [4] is a
/// tile-based global router), then the same split-blind admission and
/// true-detection fallback passes run on the resulting geometry. Longer
/// Manhattan waveguides and corridor-bundled routes trade propagation
/// loss against crossing count relative to the any-direction baseline.
struct GridBaselineResult {
  BaselineResult routing;
  grid::MazeRouter::Stats maze_stats;
  double total_waveguide_um = 0.0;
  int total_bends = 0;
};

GridBaselineResult route_optical_grid(
    std::span<const codesign::CandidateSet> sets,
    const model::TechParams& params, const grid::GridOptions& options = {});

}  // namespace operon::baseline
