#include "baseline/routers.hpp"

#include <algorithm>

#include "baseline/optical_common.hpp"
#include "codesign/assemble.hpp"
#include "util/check.hpp"

namespace operon::baseline {

using codesign::Candidate;
using codesign::CandidateSet;
using codesign::EdgeKind;

BaselineResult route_electrical(std::span<const CandidateSet> sets,
                                const model::TechParams& params) {
  (void)params;
  BaselineResult result;
  result.chosen.reserve(sets.size());
  for (const CandidateSet& set : sets) {
    result.chosen.push_back(set.electrical());
    result.total_power_pj += set.electrical().power_pj;
    ++result.electrical_nets;
  }
  return result;
}

namespace {

/// Sparse pairwise crossing structure between the all-optical routes:
/// for net i, per-path crossing counts against every net m that actually
/// crosses it.
struct CrossList {
  std::size_t other;
  std::vector<int> counts;  ///< per path of the owning net
};

std::vector<std::vector<CrossList>> build_crossings(
    const std::vector<Candidate>& routes) {
  const std::size_t n = routes.size();
  std::vector<geom::BBox> boxes(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const geom::Segment& seg : routes[i].optical_segments) {
      boxes[i].expand(seg.bbox());
    }
  }
  std::vector<std::vector<CrossList>> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t m = 0; m < n; ++m) {
      if (m == i || !boxes[i].overlaps(boxes[m])) continue;
      std::vector<int> counts(routes[i].paths.size(), 0);
      bool any = false;
      for (std::size_t p = 0; p < counts.size(); ++p) {
        counts[p] = static_cast<int>(geom::count_crossings(
            routes[i].paths[p].segments, routes[m].optical_segments));
        any = any || counts[p] != 0;
      }
      if (any) out[i].push_back({m, std::move(counts)});
    }
  }
  return out;
}

}  // namespace

namespace internal {

BaselineResult finalize_optical_routes(std::span<const CandidateSet> sets,
                                       std::vector<Candidate> routes,
                                       const model::TechParams& params) {
  OPERON_CHECK(routes.size() == sets.size());
  BaselineResult result;
  result.chosen.resize(sets.size());

  const double lm = params.optical.max_loss_db;
  const double beta = params.optical.beta_db_per_crossing;
  const auto crossings = build_crossings(routes);

  // Per-net per-path crossing loss among currently-optical nets, kept
  // incrementally as nets are demoted to copper.
  std::vector<char> optical(sets.size(), 1);
  std::vector<std::vector<double>> crossing_db(sets.size());
  for (std::size_t i = 0; i < sets.size(); ++i) {
    crossing_db[i].assign(routes[i].paths.size(), 0.0);
    for (const CrossList& entry : crossings[i]) {
      for (std::size_t p = 0; p < crossing_db[i].size(); ++p) {
        crossing_db[i][p] += beta * entry.counts[p];
      }
    }
  }
  const auto demote = [&](std::size_t victim) {
    optical[victim] = 0;
    for (std::size_t i = 0; i < sets.size(); ++i) {
      if (!optical[i]) continue;
      for (const CrossList& entry : crossings[i]) {
        if (entry.other != victim) continue;
        for (std::size_t p = 0; p < crossing_db[i].size(); ++p) {
          crossing_db[i][p] -= beta * entry.counts[p];
        }
      }
    }
  };
  // Worst loss of a net; `blind` drops the splitting term — GLOW's
  // documented blind spot during optimization.
  const auto worst_loss = [&](std::size_t i, bool blind) {
    double worst = 0.0;
    for (std::size_t p = 0; p < routes[i].paths.size(); ++p) {
      double loss = routes[i].paths[p].static_loss_db + crossing_db[i][p];
      if (blind) loss -= routes[i].paths[p].splitting_db;
      worst = std::max(worst, loss);
    }
    return worst;
  };
  const auto peel_phase = [&](bool blind) {
    std::size_t demoted = 0;
    while (true) {
      std::size_t victim = sets.size();
      double victim_loss = lm + 1e-9;
      for (std::size_t i = 0; i < sets.size(); ++i) {
        if (!optical[i]) continue;
        const double worst = worst_loss(i, blind);
        if (worst > victim_loss) {
          victim_loss = worst;
          victim = i;
        }
      }
      if (victim == sets.size()) return demoted;
      demote(victim);
      ++demoted;
    }
  };

  // Phase 1 — the router's own congestion control, split-blind: it
  // believes the result is detection-clean.
  peel_phase(/*blind=*/true);
  // Phase 2 — reality check with splitting loss: the nets it got wrong
  // fall back to electrical wires, paying the extra power (§5).
  result.detection_fallbacks = peel_phase(/*blind=*/false);

  for (std::size_t i = 0; i < sets.size(); ++i) {
    if (optical[i]) {
      result.chosen[i] = std::move(routes[i]);
      ++result.optical_nets;
    } else {
      result.chosen[i] = sets[i].electrical();
      ++result.electrical_nets;
    }
    result.total_power_pj += result.chosen[i].power_pj;
  }
  return result;
}

}  // namespace internal

BaselineResult route_optical_glow(std::span<const CandidateSet> sets,
                                  const model::TechParams& params) {
  OPERON_CHECK(params.valid());
  // All-optical labeling of every net's primary baseline — GLOW's route.
  std::vector<steiner::RootedTree> rooted(sets.size());
  std::vector<Candidate> routes(sets.size());
  for (std::size_t i = 0; i < sets.size(); ++i) {
    rooted[i] = steiner::RootedTree::build(sets[i].baselines[0], sets[i].root);
    codesign::AssembleContext ctx;
    ctx.tree = &sets[i].baselines[0];
    ctx.rooted = &rooted[i];
    ctx.bit_count = sets[i].bit_count;
    ctx.params = &params;
    ctx.net_id = sets[i].net;
    routes[i] = codesign::assemble_candidate(
        ctx,
        std::vector<EdgeKind>(sets[i].baselines[0].num_points(),
                              EdgeKind::Optical),
        0);
  }
  return internal::finalize_optical_routes(sets, std::move(routes), params);
}

}  // namespace operon::baseline
