#pragma once
// Internal to operon_baseline: shared admission/fallback evaluation for
// the optical baselines. Given one all-optical route (as an assembled
// Candidate) per hyper net, run GLOW's two phases: a split-blind
// congestion peel (its own optimization view) and the true detection
// check with splitting loss (reality), demoting failures to the
// electrical fallback.

#include <span>
#include <vector>

#include "baseline/routers.hpp"

namespace operon::baseline::internal {

BaselineResult finalize_optical_routes(
    std::span<const codesign::CandidateSet> sets,
    std::vector<codesign::Candidate> routes, const model::TechParams& params);

}  // namespace operon::baseline::internal
