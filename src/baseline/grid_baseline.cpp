#include <map>

#include "baseline/optical_common.hpp"
#include "baseline/routers.hpp"
#include "codesign/assemble.hpp"
#include "util/check.hpp"

namespace operon::baseline {

using codesign::Candidate;
using codesign::CandidateSet;
using codesign::EdgeKind;

namespace {

/// Convert a grid route into a SteinerTree whose terminals are the
/// hyper-pin centers (order preserved, root first at `set.root`) and
/// whose Steiner points are the tile centers the route passes through.
/// Each terminal attaches to its own tile's node with an escape edge.
steiner::SteinerTree tree_from_route(const grid::RoutingGrid& grid,
                                     const grid::GridRoute& route,
                                     const CandidateSet& set) {
  const steiner::SteinerTree& reference = set.baselines[0];
  steiner::SteinerTree tree;
  tree.num_terminals = reference.num_terminals;
  for (std::size_t t = 0; t < reference.num_terminals; ++t) {
    tree.points.push_back(reference.points[t]);
  }

  // Tile nodes referenced by the route or by terminal escapes.
  std::map<grid::TileId, std::size_t> tile_node;
  const auto node_of = [&](grid::TileId tile) {
    const auto it = tile_node.find(tile);
    if (it != tile_node.end()) return it->second;
    tree.points.push_back(grid.center(tile));
    return tile_node.emplace(tile, tree.points.size() - 1).first->second;
  };

  for (const auto& [a, b] : route.edges) {
    const std::size_t na = node_of(a);
    const std::size_t nb = node_of(b);
    tree.edges.emplace_back(na, nb);
  }
  for (std::size_t t = 0; t < tree.num_terminals; ++t) {
    tree.edges.emplace_back(t, node_of(grid.tile_of(tree.points[t])));
  }
  return tree;
}

}  // namespace

GridBaselineResult route_optical_grid(std::span<const CandidateSet> sets,
                                      const model::TechParams& params,
                                      const grid::GridOptions& options) {
  OPERON_CHECK(params.valid());
  GridBaselineResult result;

  // Maze-route every hyper net over its hyper-pin centers.
  grid::MazeRouter router(
      [&] {
        geom::BBox chip;
        for (const CandidateSet& set : sets) {
          for (const auto& tree : set.baselines) {
            for (const geom::Point& p : tree.points) chip.expand(p);
          }
        }
        return chip.inflated(1.0);
      }(),
      options);
  std::vector<std::vector<geom::Point>> nets(sets.size());
  for (std::size_t i = 0; i < sets.size(); ++i) {
    const steiner::SteinerTree& reference = sets[i].baselines[0];
    nets[i].push_back(reference.points[sets[i].root]);  // driver first
    for (std::size_t t = 0; t < reference.num_terminals; ++t) {
      if (t != sets[i].root) nets[i].push_back(reference.points[t]);
    }
  }
  const std::vector<grid::GridRoute> routes = router.route_all(nets);
  result.maze_stats = router.stats();

  // Assemble each route as an all-optical candidate with the usual
  // component/split/path semantics, then run the shared GLOW evaluation.
  std::vector<Candidate> candidates(sets.size());
  std::vector<steiner::SteinerTree> trees(sets.size());
  for (std::size_t i = 0; i < sets.size(); ++i) {
    trees[i] = tree_from_route(router.grid(), routes[i], sets[i]);
    OPERON_CHECK_MSG(trees[i].is_connected_tree(),
                     "grid route of net " << sets[i].net
                                          << " did not form a tree");
    const steiner::RootedTree rooted =
        steiner::RootedTree::build(trees[i], sets[i].root);
    codesign::AssembleContext ctx;
    ctx.tree = &trees[i];
    ctx.rooted = &rooted;
    ctx.bit_count = sets[i].bit_count;
    ctx.params = &params;
    ctx.net_id = sets[i].net;
    candidates[i] = codesign::assemble_candidate(
        ctx, std::vector<EdgeKind>(trees[i].num_points(), EdgeKind::Optical),
        0);
    result.total_waveguide_um += candidates[i].optical_wl_um;
    result.total_bends += routes[i].bends;
  }
  result.routing =
      internal::finalize_optical_routes(sets, std::move(candidates), params);
  return result;
}

}  // namespace operon::baseline
