#pragma once
// Minimum spanning trees over point sets (Prim, O(n^2)) — the base
// topology that BI1S iteratively improves with Steiner points.

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "geom/point.hpp"
#include "steiner/tree.hpp"

namespace operon::steiner {

/// MST edges over `points` under `metric`. Returns n-1 edges (empty for
/// n <= 1). Deterministic for fixed input.
std::vector<std::pair<std::size_t, std::size_t>> mst_edges(
    std::span<const geom::Point> points, Metric metric);

/// Total MST length.
double mst_length(std::span<const geom::Point> points, Metric metric);

/// Prim over an explicit pairwise distance matrix (row-major n×n,
/// symmetric). When dist[u*n+v] == edge_length(metric, points[u],
/// points[v]) the edges — and the length below, summed in edge order —
/// are bit-identical to the point-based overloads: the comparison and
/// accumulation sequences are the same, only the (pure, deterministic)
/// distance evaluations are hoisted out. Lets BI1S trial loops reuse the
/// unchanged working-set block instead of recomputing O(n²) distances
/// per candidate.
std::vector<std::pair<std::size_t, std::size_t>> mst_edges_dist(
    std::size_t n, const double* dist);
double mst_length_dist(std::size_t n, const double* dist);

/// MST as a SteinerTree (all points are terminals).
SteinerTree mst_tree(std::span<const geom::Point> points, Metric metric);

}  // namespace operon::steiner
