#pragma once
// Minimum spanning trees over point sets (Prim, O(n^2)) — the base
// topology that BI1S iteratively improves with Steiner points.

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "geom/point.hpp"
#include "steiner/tree.hpp"

namespace operon::steiner {

/// MST edges over `points` under `metric`. Returns n-1 edges (empty for
/// n <= 1). Deterministic for fixed input.
std::vector<std::pair<std::size_t, std::size_t>> mst_edges(
    std::span<const geom::Point> points, Metric metric);

/// Total MST length.
double mst_length(std::span<const geom::Point> points, Metric metric);

/// MST as a SteinerTree (all points are terminals).
SteinerTree mst_tree(std::span<const geom::Point> points, Metric metric);

}  // namespace operon::steiner
