#include "steiner/mst.hpp"

#include <limits>

#include "util/check.hpp"

namespace operon::steiner {

std::vector<std::pair<std::size_t, std::size_t>> mst_edges(
    std::span<const geom::Point> points, Metric metric) {
  const std::size_t n = points.size();
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  if (n <= 1) return edges;
  edges.reserve(n - 1);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best(n, kInf);
  std::vector<std::size_t> best_from(n, 0);
  std::vector<char> in_tree(n, 0);
  in_tree[0] = 1;
  for (std::size_t v = 1; v < n; ++v) {
    best[v] = edge_length(metric, points[0], points[v]);
    best_from[v] = 0;
  }
  for (std::size_t step = 1; step < n; ++step) {
    std::size_t pick = n;
    double pick_cost = kInf;
    for (std::size_t v = 0; v < n; ++v) {
      if (!in_tree[v] && best[v] < pick_cost) {
        pick_cost = best[v];
        pick = v;
      }
    }
    OPERON_CHECK(pick < n);
    in_tree[pick] = 1;
    edges.emplace_back(best_from[pick], pick);
    for (std::size_t v = 0; v < n; ++v) {
      if (in_tree[v]) continue;
      const double cost = edge_length(metric, points[pick], points[v]);
      if (cost < best[v]) {
        best[v] = cost;
        best_from[v] = pick;
      }
    }
  }
  return edges;
}

std::vector<std::pair<std::size_t, std::size_t>> mst_edges_dist(
    std::size_t n, const double* dist) {
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  if (n <= 1) return edges;
  edges.reserve(n - 1);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best(n, kInf);
  std::vector<std::size_t> best_from(n, 0);
  std::vector<char> in_tree(n, 0);
  in_tree[0] = 1;
  for (std::size_t v = 1; v < n; ++v) {
    best[v] = dist[v];  // row 0
    best_from[v] = 0;
  }
  for (std::size_t step = 1; step < n; ++step) {
    std::size_t pick = n;
    double pick_cost = kInf;
    for (std::size_t v = 0; v < n; ++v) {
      if (!in_tree[v] && best[v] < pick_cost) {
        pick_cost = best[v];
        pick = v;
      }
    }
    OPERON_CHECK(pick < n);
    in_tree[pick] = 1;
    edges.emplace_back(best_from[pick], pick);
    const double* row = dist + pick * n;
    for (std::size_t v = 0; v < n; ++v) {
      if (in_tree[v]) continue;
      const double cost = row[v];
      if (cost < best[v]) {
        best[v] = cost;
        best_from[v] = pick;
      }
    }
  }
  return edges;
}

double mst_length_dist(std::size_t n, const double* dist) {
  double sum = 0.0;
  for (const auto& [u, v] : mst_edges_dist(n, dist)) {
    sum += dist[u * n + v];
  }
  return sum;
}

double mst_length(std::span<const geom::Point> points, Metric metric) {
  double sum = 0.0;
  for (const auto& [u, v] : mst_edges(points, metric)) {
    sum += edge_length(metric, points[u], points[v]);
  }
  return sum;
}

SteinerTree mst_tree(std::span<const geom::Point> points, Metric metric) {
  SteinerTree tree;
  tree.points.assign(points.begin(), points.end());
  tree.num_terminals = points.size();
  tree.edges = mst_edges(points, metric);
  return tree;
}

}  // namespace operon::steiner
