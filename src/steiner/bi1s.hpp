#pragma once
// Batched Iterated 1-Steiner (BI1S), the baseline-topology generator of
// §3.2. Candidate Steiner points are Hanan-grid points (Rectilinear) or
// Fermat points of terminal triples (Euclidean — optical waveguides may
// route in any direction). Candidates are scored by induced gain minus a
// bending cost, and "various baselines are acquired by visiting different
// points" (visit stride/offset), exactly as the paper sketches.

#include <cstddef>
#include <span>
#include <vector>

#include "geom/point.hpp"
#include "steiner/tree.hpp"

namespace operon::steiner {

struct Bi1sOptions {
  Metric metric = Metric::Euclidean;
  /// Maximum batched rounds; each round re-evaluates all candidates.
  std::size_t max_rounds = 8;
  /// Keep only the top candidates by score each round (0 = all).
  std::size_t max_candidates = 256;
  /// Weight of the bending (turn-angle) cost when ordering candidates;
  /// expressed in length units per radian of induced turning.
  double bend_penalty = 0.0;
  /// Visit only candidates with (rank % stride) == offset — the paper's
  /// mechanism for generating alternative baselines.
  std::size_t visit_stride = 1;
  std::size_t visit_offset = 0;
};

/// Steiner points that could improve the tree over `points`.
std::vector<geom::Point> hanan_candidates(std::span<const geom::Point> points);

/// Geometric median of three points (Weiszfeld iteration; returns the
/// obtuse vertex when one angle >= 120°).
geom::Point fermat_point(const geom::Point& a, const geom::Point& b,
                         const geom::Point& c);

/// Fermat points of all point triples, deduplicated.
std::vector<geom::Point> fermat_candidates(std::span<const geom::Point> points);

/// Run BI1S over the terminals; the result spans all terminals plus the
/// accepted Steiner points, with redundant (degree <= 2) Steiner points
/// spliced out. Deterministic.
SteinerTree bi1s(std::span<const geom::Point> terminals,
                 const Bi1sOptions& options = {});

/// Up to `max_baselines` structurally distinct tree topologies for the
/// terminals: full BI1S, bend-averse BI1S, stride variants, plain MST.
/// The first entry is always the best-length tree found.
std::vector<SteinerTree> generate_baselines(
    std::span<const geom::Point> terminals, Metric metric,
    std::size_t max_baselines);

}  // namespace operon::steiner
