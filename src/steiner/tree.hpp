#pragma once
// Steiner tree container shared by the routing stages. Terminals (hyper
// pins) occupy indices [0, num_terminals); Steiner points follow. The
// tree may be viewed rooted at any terminal (the driver hyper pin) for
// the bottom-up co-design DP.

#include <cstddef>
#include <utility>
#include <vector>

#include "geom/point.hpp"
#include "geom/segment.hpp"

namespace operon::steiner {

enum class Metric { Euclidean, Rectilinear };

double edge_length(Metric metric, const geom::Point& a, const geom::Point& b);

struct SteinerTree {
  std::vector<geom::Point> points;  ///< terminals first, then Steiner points
  std::size_t num_terminals = 0;
  std::vector<std::pair<std::size_t, std::size_t>> edges;

  std::size_t num_points() const { return points.size(); }
  std::size_t num_steiner() const { return points.size() - num_terminals; }
  bool is_terminal(std::size_t v) const { return v < num_terminals; }

  double length(Metric metric) const;

  /// Geometry of each edge: Euclidean edges are direct segments; a
  /// Rectilinear edge becomes an L-route (horizontal leg first), so it may
  /// produce two segments. Degenerate edges produce none.
  std::vector<geom::Segment> segments(Metric metric) const;

  /// Geometry of a single edge under the metric (see segments()).
  std::vector<geom::Segment> edge_segments(Metric metric,
                                           std::size_t e) const;

  /// Node degrees.
  std::vector<int> degrees() const;

  /// True when edges form a spanning tree over all points.
  bool is_connected_tree() const;

  /// Drop Steiner points of degree <= 2, splicing their edges (degree-2)
  /// or removing them (degree <= 1). Repeats until fixpoint. Terminal
  /// indices are preserved.
  void remove_redundant_steiner();

  /// Throws util::CheckError if the tree is malformed.
  void validate() const;
};

/// Rooted adjacency view for bottom-up traversal.
struct RootedTree {
  std::size_t root = 0;
  std::vector<std::size_t> parent;             ///< parent[root] == root
  std::vector<std::vector<std::size_t>> children;
  std::vector<std::size_t> postorder;          ///< children before parents

  static RootedTree build(const SteinerTree& tree, std::size_t root);
};

}  // namespace operon::steiner
