#include "steiner/bi1s.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "steiner/mst.hpp"
#include "util/check.hpp"

namespace operon::steiner {

namespace {

constexpr double kGainEps = 1e-9;

/// Quantize a point for deduplication (1e-3 µm grid).
std::pair<long long, long long> quantize(const geom::Point& p) {
  return {static_cast<long long>(std::llround(p.x * 1e3)),
          static_cast<long long>(std::llround(p.y * 1e3))};
}

/// Total absolute turn angle at point `at` across its MST edges —
/// the "bending cost" used to order candidates (§3.2).
double bending_cost(const std::vector<geom::Point>& points,
                    const std::vector<std::pair<std::size_t, std::size_t>>& edges,
                    std::size_t at) {
  std::vector<double> angles;
  for (const auto& [u, v] : edges) {
    std::size_t other = points.size();
    if (u == at) other = v;
    else if (v == at) other = u;
    else continue;
    const geom::Point d = points[other] - points[at];
    if (d.x == 0.0 && d.y == 0.0) continue;
    angles.push_back(std::atan2(d.y, d.x));
  }
  if (angles.size() < 2) return 0.0;
  std::sort(angles.begin(), angles.end());
  // Sum of deviations from straight-through propagation: for each pair of
  // adjacent directions, the turn is pi minus the angular gap.
  double cost = 0.0;
  for (std::size_t i = 0; i < angles.size(); ++i) {
    const double next = (i + 1 < angles.size()) ? angles[i + 1]
                                                : angles[0] + 2.0 * M_PI;
    const double gap = next - angles[i];
    cost += std::abs(M_PI - gap);
  }
  return cost;
}

}  // namespace

std::vector<geom::Point> hanan_candidates(std::span<const geom::Point> points) {
  std::vector<double> xs, ys;
  xs.reserve(points.size());
  ys.reserve(points.size());
  for (const auto& p : points) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  std::set<std::pair<long long, long long>> existing;
  for (const auto& p : points) existing.insert(quantize(p));

  std::vector<geom::Point> out;
  for (double x : xs) {
    for (double y : ys) {
      const geom::Point p{x, y};
      if (!existing.count(quantize(p))) out.push_back(p);
    }
  }
  return out;
}

geom::Point fermat_point(const geom::Point& a, const geom::Point& b,
                         const geom::Point& c) {
  // If any vertex angle >= 120°, the Fermat point is that vertex.
  const auto vertex_angle = [](const geom::Point& at, const geom::Point& p,
                               const geom::Point& q) {
    const geom::Point u = p - at, v = q - at;
    const double lu = std::hypot(u.x, u.y), lv = std::hypot(v.x, v.y);
    if (lu == 0.0 || lv == 0.0) return 0.0;
    const double cosine = std::clamp(dot(u, v) / (lu * lv), -1.0, 1.0);
    return std::acos(cosine);
  };
  constexpr double kOneTwenty = 2.0 * M_PI / 3.0 - 1e-12;
  if (vertex_angle(a, b, c) >= kOneTwenty) return a;
  if (vertex_angle(b, a, c) >= kOneTwenty) return b;
  if (vertex_angle(c, a, b) >= kOneTwenty) return c;

  // Weiszfeld iteration from the centroid.
  geom::Point y{(a.x + b.x + c.x) / 3.0, (a.y + b.y + c.y) / 3.0};
  const geom::Point pts[3] = {a, b, c};
  for (int iter = 0; iter < 60; ++iter) {
    double wx = 0.0, wy = 0.0, wsum = 0.0;
    for (const auto& p : pts) {
      const double d = geom::euclidean(y, p);
      if (d < 1e-12) return p;  // converged onto a vertex
      const double w = 1.0 / d;
      wx += w * p.x;
      wy += w * p.y;
      wsum += w;
    }
    const geom::Point next{wx / wsum, wy / wsum};
    const double move = geom::euclidean(next, y);
    y = next;
    if (move < 1e-9) break;
  }
  return y;
}

std::vector<geom::Point> fermat_candidates(std::span<const geom::Point> points) {
  std::set<std::pair<long long, long long>> seen;
  for (const auto& p : points) seen.insert(quantize(p));
  std::vector<geom::Point> out;
  const std::size_t n = points.size();

  // All C(n,3) triples is fine for the hyper-net sizes the flow produces,
  // but degenerates cubically for many-pin nets (e.g. agglomeration turned
  // off). Beyond the threshold, only triples within each point's
  // neighborhood are considered — distant triples' Fermat points almost
  // never improve an MST edge anyway.
  constexpr std::size_t kExhaustiveLimit = 16;
  constexpr std::size_t kNeighbors = 6;
  if (n <= kExhaustiveLimit) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        for (std::size_t k = j + 1; k < n; ++k) {
          const geom::Point f = fermat_point(points[i], points[j], points[k]);
          if (seen.insert(quantize(f)).second) out.push_back(f);
        }
      }
    }
    return out;
  }

  for (std::size_t i = 0; i < n; ++i) {
    // The kNeighbors nearest points to i.
    std::vector<std::size_t> order;
    order.reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) order.push_back(j);
    }
    const std::size_t keep = std::min(kNeighbors, order.size());
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(keep),
                      order.end(), [&](std::size_t a, std::size_t b) {
                        return geom::squared_distance(points[i], points[a]) <
                               geom::squared_distance(points[i], points[b]);
                      });
    for (std::size_t a = 0; a < keep; ++a) {
      for (std::size_t b = a + 1; b < keep; ++b) {
        const geom::Point f =
            fermat_point(points[i], points[order[a]], points[order[b]]);
        if (seen.insert(quantize(f)).second) out.push_back(f);
      }
    }
  }
  return out;
}

SteinerTree bi1s(std::span<const geom::Point> terminals,
                 const Bi1sOptions& options) {
  OPERON_CHECK(options.visit_stride >= 1);
  OPERON_CHECK(options.visit_offset < options.visit_stride);
  std::vector<geom::Point> working(terminals.begin(), terminals.end());
  const std::size_t num_terminals = terminals.size();

  if (num_terminals >= 3) {
    for (std::size_t round = 0; round < options.max_rounds; ++round) {
      const double base_len = mst_length(working, options.metric);
      const std::vector<geom::Point> candidates =
          options.metric == Metric::Rectilinear ? hanan_candidates(working)
                                                : fermat_candidates(working);

      // Score every candidate: gain minus weighted bending cost.
      struct Scored {
        geom::Point point;
        double gain;
        double score;
      };
      std::vector<Scored> scored;
      scored.reserve(candidates.size());
      std::vector<geom::Point> trial = working;
      trial.emplace_back();
      for (const geom::Point& cand : candidates) {
        trial.back() = cand;
        const auto edges = mst_edges(trial, options.metric);
        double len = 0.0;
        for (const auto& [u, v] : edges)
          len += edge_length(options.metric, trial[u], trial[v]);
        const double gain = base_len - len;
        if (gain <= kGainEps) continue;
        double score = gain;
        if (options.bend_penalty > 0.0) {
          score -= options.bend_penalty *
                   bending_cost(trial, edges, trial.size() - 1);
        }
        scored.push_back({cand, gain, score});
      }
      std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
        if (a.score != b.score) return a.score > b.score;
        return geom::PointLess{}(a.point, b.point);
      });
      if (options.max_candidates > 0 && scored.size() > options.max_candidates)
        scored.resize(options.max_candidates);

      // Batched greedy accept, visiting candidates per stride/offset.
      bool accepted_any = false;
      double current_len = base_len;
      for (std::size_t rank = 0; rank < scored.size(); ++rank) {
        if (rank % options.visit_stride != options.visit_offset) continue;
        std::vector<geom::Point> with = working;
        with.push_back(scored[rank].point);
        const double len = mst_length(with, options.metric);
        if (current_len - len > kGainEps) {
          working = std::move(with);
          current_len = len;
          accepted_any = true;
        }
      }
      if (!accepted_any) break;
    }
  }

  SteinerTree tree;
  tree.points = std::move(working);
  tree.num_terminals = num_terminals;
  tree.edges = mst_edges(tree.points, options.metric);
  tree.remove_redundant_steiner();
  return tree;
}

std::vector<SteinerTree> generate_baselines(
    std::span<const geom::Point> terminals, Metric metric,
    std::size_t max_baselines) {
  OPERON_CHECK(max_baselines >= 1);
  std::vector<SteinerTree> out;
  std::set<std::vector<std::pair<long long, long long>>> shapes;

  const auto try_add = [&](SteinerTree tree) {
    if (out.size() >= max_baselines) return;
    // Canonical shape: quantized sorted endpoint pairs of all edges.
    std::vector<std::pair<long long, long long>> shape;
    for (const auto& [u, v] : tree.edges) {
      auto qa = quantize(tree.points[u]);
      auto qb = quantize(tree.points[v]);
      if (qb < qa) std::swap(qa, qb);
      shape.push_back(qa);
      shape.push_back(qb);
    }
    std::sort(shape.begin(), shape.end());
    if (shapes.insert(std::move(shape)).second) out.push_back(std::move(tree));
  };

  Bi1sOptions options;
  options.metric = metric;
  try_add(bi1s(terminals, options));  // full BI1S first (best length)

  options.bend_penalty = 50.0;  // bend-averse candidate ordering
  try_add(bi1s(terminals, options));

  options.bend_penalty = 0.0;
  for (std::size_t stride = 2; stride <= 3 && out.size() < max_baselines;
       ++stride) {
    for (std::size_t offset = 0; offset < stride && out.size() < max_baselines;
         ++offset) {
      options.visit_stride = stride;
      options.visit_offset = offset;
      try_add(bi1s(terminals, options));
    }
  }

  try_add(mst_tree(terminals, metric));  // plain MST as the simplest baseline
  OPERON_CHECK(!out.empty());
  return out;
}

}  // namespace operon::steiner
