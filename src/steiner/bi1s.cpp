#include "steiner/bi1s.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <set>
#include <unordered_map>

#include "steiner/mst.hpp"
#include "util/check.hpp"

namespace operon::steiner {

namespace {

constexpr double kGainEps = 1e-9;

/// Memo of fermat_point results keyed by the EXACT coordinates of the
/// triple (bit patterns, not a quantized grid — two distinct inputs must
/// never alias). The Fermat point is a pure function of the triple, so
/// memoization only removes repeated Weiszfeld iterations; results are
/// bit-identical.
struct FermatKey {
  double ax, ay, bx, by, cx, cy;
  bool operator==(const FermatKey&) const = default;
};
struct FermatKeyHash {
  std::size_t operator()(const FermatKey& k) const {
    std::uint64_t h = 0xcbf29ce484222325ull;
    const auto mix = [&h](double d) {
      std::uint64_t bits;
      std::memcpy(&bits, &d, sizeof bits);
      h = (h ^ bits) * 0x100000001b3ull;
    };
    mix(k.ax);
    mix(k.ay);
    mix(k.bx);
    mix(k.by);
    mix(k.cx);
    mix(k.cy);
    return static_cast<std::size_t>(h);
  }
};
using FermatMemo = std::unordered_map<FermatKey, geom::Point, FermatKeyHash>;

struct ScoredCandidate {
  geom::Point point;
  double gain;
  double score;
};

/// Caches shared across the bi1s variant calls of one generate_baselines
/// invocation (single-threaded use). Every variant's first round scores
/// the same working set — the terminals — with the same metric and
/// candidate cap, differing only in bend_penalty, so the sorted scored
/// list is computed once per bend weight; Fermat triples recur heavily
/// across rounds and variants and are memoized by exact coordinates.
/// Results are bit-identical with or without the caches.
struct Bi1sShared {
  FermatMemo fermat;
  std::map<double, std::vector<ScoredCandidate>> round1_by_bend;
};

/// Quantize a point for deduplication (1e-3 µm grid).
std::pair<long long, long long> quantize(const geom::Point& p) {
  return {static_cast<long long>(std::llround(p.x * 1e3)),
          static_cast<long long>(std::llround(p.y * 1e3))};
}

/// Total absolute turn angle at point `at` across its MST edges —
/// the "bending cost" used to order candidates (§3.2).
double bending_cost(const std::vector<geom::Point>& points,
                    const std::vector<std::pair<std::size_t, std::size_t>>& edges,
                    std::size_t at) {
  std::vector<double> angles;
  for (const auto& [u, v] : edges) {
    std::size_t other = points.size();
    if (u == at) other = v;
    else if (v == at) other = u;
    else continue;
    const geom::Point d = points[other] - points[at];
    if (d.x == 0.0 && d.y == 0.0) continue;
    angles.push_back(std::atan2(d.y, d.x));
  }
  if (angles.size() < 2) return 0.0;
  std::sort(angles.begin(), angles.end());
  // Sum of deviations from straight-through propagation: for each pair of
  // adjacent directions, the turn is pi minus the angular gap.
  double cost = 0.0;
  for (std::size_t i = 0; i < angles.size(); ++i) {
    const double next = (i + 1 < angles.size()) ? angles[i + 1]
                                                : angles[0] + 2.0 * M_PI;
    const double gap = next - angles[i];
    cost += std::abs(M_PI - gap);
  }
  return cost;
}

}  // namespace

std::vector<geom::Point> hanan_candidates(std::span<const geom::Point> points) {
  std::vector<double> xs, ys;
  xs.reserve(points.size());
  ys.reserve(points.size());
  for (const auto& p : points) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  std::set<std::pair<long long, long long>> existing;
  for (const auto& p : points) existing.insert(quantize(p));

  std::vector<geom::Point> out;
  for (double x : xs) {
    for (double y : ys) {
      const geom::Point p{x, y};
      if (!existing.count(quantize(p))) out.push_back(p);
    }
  }
  return out;
}

geom::Point fermat_point(const geom::Point& a, const geom::Point& b,
                         const geom::Point& c) {
  // If any vertex angle >= 120°, the Fermat point is that vertex.
  const auto vertex_angle = [](const geom::Point& at, const geom::Point& p,
                               const geom::Point& q) {
    const geom::Point u = p - at, v = q - at;
    const double lu = std::hypot(u.x, u.y), lv = std::hypot(v.x, v.y);
    if (lu == 0.0 || lv == 0.0) return 0.0;
    const double cosine = std::clamp(dot(u, v) / (lu * lv), -1.0, 1.0);
    return std::acos(cosine);
  };
  constexpr double kOneTwenty = 2.0 * M_PI / 3.0 - 1e-12;
  if (vertex_angle(a, b, c) >= kOneTwenty) return a;
  if (vertex_angle(b, a, c) >= kOneTwenty) return b;
  if (vertex_angle(c, a, b) >= kOneTwenty) return c;

  // Weiszfeld iteration from the centroid.
  geom::Point y{(a.x + b.x + c.x) / 3.0, (a.y + b.y + c.y) / 3.0};
  const geom::Point pts[3] = {a, b, c};
  for (int iter = 0; iter < 60; ++iter) {
    double wx = 0.0, wy = 0.0, wsum = 0.0;
    for (const auto& p : pts) {
      const double d = geom::euclidean(y, p);
      if (d < 1e-12) return p;  // converged onto a vertex
      const double w = 1.0 / d;
      wx += w * p.x;
      wy += w * p.y;
      wsum += w;
    }
    const geom::Point next{wx / wsum, wy / wsum};
    const double move = geom::euclidean(next, y);
    y = next;
    if (move < 1e-9) break;
  }
  return y;
}

namespace {

geom::Point fermat_point_memo(FermatMemo* memo, const geom::Point& a,
                              const geom::Point& b, const geom::Point& c) {
  if (memo == nullptr) return fermat_point(a, b, c);
  const FermatKey key{a.x, a.y, b.x, b.y, c.x, c.y};
  const auto it = memo->find(key);
  if (it != memo->end()) return it->second;
  const geom::Point f = fermat_point(a, b, c);
  memo->emplace(key, f);
  return f;
}

std::vector<geom::Point> fermat_candidates_impl(
    std::span<const geom::Point> points, FermatMemo* memo) {
  std::set<std::pair<long long, long long>> seen;
  for (const auto& p : points) seen.insert(quantize(p));
  std::vector<geom::Point> out;
  const std::size_t n = points.size();

  // All C(n,3) triples is fine for the hyper-net sizes the flow produces,
  // but degenerates cubically for many-pin nets (e.g. agglomeration turned
  // off). Beyond the threshold, only triples within each point's
  // neighborhood are considered — distant triples' Fermat points almost
  // never improve an MST edge anyway.
  constexpr std::size_t kExhaustiveLimit = 16;
  constexpr std::size_t kNeighbors = 6;
  if (n <= kExhaustiveLimit) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        for (std::size_t k = j + 1; k < n; ++k) {
          const geom::Point f =
              fermat_point_memo(memo, points[i], points[j], points[k]);
          if (seen.insert(quantize(f)).second) out.push_back(f);
        }
      }
    }
    return out;
  }

  for (std::size_t i = 0; i < n; ++i) {
    // The kNeighbors nearest points to i.
    std::vector<std::size_t> order;
    order.reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) order.push_back(j);
    }
    const std::size_t keep = std::min(kNeighbors, order.size());
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(keep),
                      order.end(), [&](std::size_t a, std::size_t b) {
                        return geom::squared_distance(points[i], points[a]) <
                               geom::squared_distance(points[i], points[b]);
                      });
    for (std::size_t a = 0; a < keep; ++a) {
      for (std::size_t b = a + 1; b < keep; ++b) {
        const geom::Point f =
            fermat_point_memo(memo, points[i], points[order[a]], points[order[b]]);
        if (seen.insert(quantize(f)).second) out.push_back(f);
      }
    }
  }
  return out;
}

}  // namespace

std::vector<geom::Point> fermat_candidates(std::span<const geom::Point> points) {
  return fermat_candidates_impl(points, nullptr);
}

namespace {

/// Row-major symmetric pairwise distance matrix of `pts`. Entries are
/// edge_length values, which are bit-symmetric in their argument order
/// (|dx|, |dy| are exact), so one evaluation serves both directions.
std::vector<double> dist_matrix(const std::vector<geom::Point>& pts,
                                Metric metric) {
  const std::size_t n = pts.size();
  std::vector<double> d(n * n, 0.0);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      d[u * n + v] = d[v * n + u] = edge_length(metric, pts[u], pts[v]);
    }
  }
  return d;
}

/// Copy the nw×nw matrix `wd` into `out` at the wider stride n1 = nw+1,
/// leaving the last row/column to be filled per trial point.
void widen_dist(const std::vector<double>& wd, std::size_t nw,
                std::vector<double>& out) {
  const std::size_t n1 = nw + 1;
  out.assign(n1 * n1, 0.0);
  for (std::size_t u = 0; u < nw; ++u) {
    std::memcpy(out.data() + u * n1, wd.data() + u * nw, nw * sizeof(double));
  }
}

/// Fill the last row/column of the widened matrix with distances to `p`.
void fill_trial_point(std::vector<double>& td, std::size_t nw,
                      const std::vector<geom::Point>& working,
                      const geom::Point& p, Metric metric) {
  const std::size_t n1 = nw + 1;
  for (std::size_t u = 0; u < nw; ++u) {
    const double e = edge_length(metric, working[u], p);
    td[u * n1 + nw] = e;
    td[nw * n1 + u] = e;
  }
  td[nw * n1 + nw] = 0.0;
}

/// Score every candidate Steiner point against `working`: MST gain minus
/// weighted bending cost, sorted best-first. `wd` is working's distance
/// matrix; each trial MST reuses it and adds only the candidate's row,
/// so the per-candidate cost drops from O(n²) to O(n) distance
/// evaluations with bit-identical gains.
std::vector<ScoredCandidate> score_round(
    const std::vector<geom::Point>& working, const std::vector<double>& wd,
    double base_len, const Bi1sOptions& options, FermatMemo* memo) {
  const std::vector<geom::Point> candidates =
      options.metric == Metric::Rectilinear
          ? hanan_candidates(working)
          : fermat_candidates_impl(working, memo);

  const std::size_t nw = working.size();
  const std::size_t n1 = nw + 1;
  std::vector<double> td;
  widen_dist(wd, nw, td);

  std::vector<ScoredCandidate> scored;
  scored.reserve(candidates.size());
  std::vector<geom::Point> trial = working;
  trial.emplace_back();
  for (const geom::Point& cand : candidates) {
    trial.back() = cand;
    fill_trial_point(td, nw, working, cand, options.metric);
    const auto edges = mst_edges_dist(n1, td.data());
    double len = 0.0;
    for (const auto& [u, v] : edges) len += td[u * n1 + v];
    const double gain = base_len - len;
    if (gain <= kGainEps) continue;
    double score = gain;
    if (options.bend_penalty > 0.0) {
      score -= options.bend_penalty * bending_cost(trial, edges, nw);
    }
    scored.push_back({cand, gain, score});
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredCandidate& a, const ScoredCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return geom::PointLess{}(a.point, b.point);
            });
  return scored;
}

SteinerTree bi1s_impl(std::span<const geom::Point> terminals,
                      const Bi1sOptions& options, Bi1sShared* shared) {
  OPERON_CHECK(options.visit_stride >= 1);
  OPERON_CHECK(options.visit_offset < options.visit_stride);
  std::vector<geom::Point> working(terminals.begin(), terminals.end());
  const std::size_t num_terminals = terminals.size();

  if (num_terminals >= 3) {
    // Working-set distance matrix, kept in sync with `working` across
    // rounds and acceptances so trial MSTs never recompute it.
    std::vector<double> wd = dist_matrix(working, options.metric);
    std::vector<double> ad;
    for (std::size_t round = 0; round < options.max_rounds; ++round) {
      const double base_len = mst_length_dist(working.size(), wd.data());

      std::vector<ScoredCandidate> scored;
      FermatMemo* memo = shared != nullptr ? &shared->fermat : nullptr;
      if (round == 0 && shared != nullptr) {
        // Round 1 is identical across the generate_baselines variants
        // for a given bend weight (working == terminals): reuse it.
        auto it = shared->round1_by_bend.find(options.bend_penalty);
        if (it == shared->round1_by_bend.end()) {
          it = shared->round1_by_bend
                   .emplace(options.bend_penalty,
                            score_round(working, wd, base_len, options, memo))
                   .first;
        }
        scored = it->second;
      } else {
        scored = score_round(working, wd, base_len, options, memo);
      }
      if (options.max_candidates > 0 && scored.size() > options.max_candidates)
        scored.resize(options.max_candidates);

      // Batched greedy accept, visiting candidates per stride/offset.
      bool accepted_any = false;
      double current_len = base_len;
      for (std::size_t rank = 0; rank < scored.size(); ++rank) {
        if (rank % options.visit_stride != options.visit_offset) continue;
        const std::size_t nw = working.size();
        widen_dist(wd, nw, ad);
        fill_trial_point(ad, nw, working, scored[rank].point, options.metric);
        const double len = mst_length_dist(nw + 1, ad.data());
        if (current_len - len > kGainEps) {
          working.push_back(scored[rank].point);
          wd = std::move(ad);
          ad = {};
          current_len = len;
          accepted_any = true;
        }
      }
      if (!accepted_any) break;
    }
  }

  SteinerTree tree;
  tree.points = std::move(working);
  tree.num_terminals = num_terminals;
  tree.edges = mst_edges(tree.points, options.metric);
  tree.remove_redundant_steiner();
  return tree;
}

}  // namespace

SteinerTree bi1s(std::span<const geom::Point> terminals,
                 const Bi1sOptions& options) {
  return bi1s_impl(terminals, options, nullptr);
}

std::vector<SteinerTree> generate_baselines(
    std::span<const geom::Point> terminals, Metric metric,
    std::size_t max_baselines) {
  OPERON_CHECK(max_baselines >= 1);
  std::vector<SteinerTree> out;
  std::set<std::vector<std::pair<long long, long long>>> shapes;

  const auto try_add = [&](SteinerTree tree) {
    if (out.size() >= max_baselines) return;
    // Canonical shape: quantized sorted endpoint pairs of all edges.
    std::vector<std::pair<long long, long long>> shape;
    for (const auto& [u, v] : tree.edges) {
      auto qa = quantize(tree.points[u]);
      auto qb = quantize(tree.points[v]);
      if (qb < qa) std::swap(qa, qb);
      shape.push_back(qa);
      shape.push_back(qb);
    }
    std::sort(shape.begin(), shape.end());
    if (shapes.insert(std::move(shape)).second) out.push_back(std::move(tree));
  };

  // The variant calls below differ only in bend weight and visit
  // stride/offset; their first rounds and most Fermat triples coincide,
  // so they share one cache (results are bit-identical to independent
  // bi1s() calls — see Bi1sShared).
  Bi1sShared shared;
  Bi1sOptions options;
  options.metric = metric;
  try_add(bi1s_impl(terminals, options, &shared));  // full BI1S first (best length)

  options.bend_penalty = 50.0;  // bend-averse candidate ordering
  try_add(bi1s_impl(terminals, options, &shared));

  options.bend_penalty = 0.0;
  for (std::size_t stride = 2; stride <= 3 && out.size() < max_baselines;
       ++stride) {
    for (std::size_t offset = 0; offset < stride && out.size() < max_baselines;
         ++offset) {
      options.visit_stride = stride;
      options.visit_offset = offset;
      try_add(bi1s_impl(terminals, options, &shared));
    }
  }

  try_add(mst_tree(terminals, metric));  // plain MST as the simplest baseline
  OPERON_CHECK(!out.empty());
  return out;
}

}  // namespace operon::steiner
