#include "steiner/tree.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace operon::steiner {

double edge_length(Metric metric, const geom::Point& a, const geom::Point& b) {
  return metric == Metric::Euclidean ? geom::euclidean(a, b)
                                     : geom::manhattan(a, b);
}

double SteinerTree::length(Metric metric) const {
  double sum = 0.0;
  for (const auto& [u, v] : edges) sum += edge_length(metric, points[u], points[v]);
  return sum;
}

std::vector<geom::Segment> SteinerTree::edge_segments(Metric metric,
                                                      std::size_t e) const {
  OPERON_DCHECK(e < edges.size());
  const geom::Point& a = points[edges[e].first];
  const geom::Point& b = points[edges[e].second];
  std::vector<geom::Segment> out;
  if (a == b) return out;
  if (metric == Metric::Euclidean) {
    out.push_back({a, b});
    return out;
  }
  // L-route, horizontal leg first: a -> (b.x, a.y) -> b.
  const geom::Point corner{b.x, a.y};
  if (corner != a) out.push_back({a, corner});
  if (corner != b) out.push_back({corner, b});
  return out;
}

std::vector<geom::Segment> SteinerTree::segments(Metric metric) const {
  std::vector<geom::Segment> out;
  out.reserve(edges.size() * (metric == Metric::Euclidean ? 1 : 2));
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto segs = edge_segments(metric, e);
    out.insert(out.end(), segs.begin(), segs.end());
  }
  return out;
}

std::vector<int> SteinerTree::degrees() const {
  std::vector<int> deg(points.size(), 0);
  for (const auto& [u, v] : edges) {
    ++deg[u];
    ++deg[v];
  }
  return deg;
}

bool SteinerTree::is_connected_tree() const {
  if (points.empty()) return false;
  if (edges.size() + 1 != points.size()) return false;
  std::vector<std::vector<std::size_t>> adj(points.size());
  for (const auto& [u, v] : edges) {
    if (u >= points.size() || v >= points.size() || u == v) return false;
    adj[u].push_back(v);
    adj[v].push_back(u);
  }
  std::vector<char> seen(points.size(), 0);
  std::vector<std::size_t> stack{0};
  seen[0] = 1;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    for (std::size_t v : adj[u]) {
      if (!seen[v]) {
        seen[v] = 1;
        ++visited;
        stack.push_back(v);
      }
    }
  }
  return visited == points.size();
}

void SteinerTree::remove_redundant_steiner() {
  bool changed = true;
  while (changed) {
    changed = false;
    const std::vector<int> deg = degrees();
    for (std::size_t v = num_terminals; v < points.size(); ++v) {
      if (deg[v] >= 3) continue;
      // Collect incident edges.
      std::vector<std::size_t> incident;
      for (std::size_t e = 0; e < edges.size(); ++e) {
        if (edges[e].first == v || edges[e].second == v) incident.push_back(e);
      }
      if (incident.size() == 2) {
        // Splice: connect the two neighbors directly.
        const std::size_t e0 = incident[0], e1 = incident[1];
        const std::size_t n0 =
            edges[e0].first == v ? edges[e0].second : edges[e0].first;
        const std::size_t n1 =
            edges[e1].first == v ? edges[e1].second : edges[e1].first;
        edges[e0] = {n0, n1};
        edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(e1));
      } else if (incident.size() == 1) {
        edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(incident[0]));
      } else if (incident.empty()) {
        // fallthrough to removal below
      } else {
        continue;
      }
      // Remove point v; re-index edges above v.
      points.erase(points.begin() + static_cast<std::ptrdiff_t>(v));
      for (auto& [a, b] : edges) {
        if (a > v) --a;
        if (b > v) --b;
      }
      changed = true;
      break;  // degrees are stale; restart scan
    }
  }
}

void SteinerTree::validate() const {
  OPERON_CHECK(num_terminals >= 1);
  OPERON_CHECK(num_terminals <= points.size());
  OPERON_CHECK_MSG(is_connected_tree(), "Steiner tree is not a spanning tree");
}

RootedTree RootedTree::build(const SteinerTree& tree, std::size_t root) {
  OPERON_CHECK(root < tree.num_points());
  RootedTree rooted;
  rooted.root = root;
  const std::size_t n = tree.num_points();
  rooted.parent.assign(n, n);
  rooted.children.assign(n, {});
  std::vector<std::vector<std::size_t>> adj(n);
  for (const auto& [u, v] : tree.edges) {
    adj[u].push_back(v);
    adj[v].push_back(u);
  }
  // Iterative DFS from root; record preorder, reverse for postorder.
  std::vector<std::size_t> preorder;
  preorder.reserve(n);
  std::vector<std::size_t> stack{root};
  rooted.parent[root] = root;
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    preorder.push_back(u);
    for (std::size_t v : adj[u]) {
      if (v == rooted.parent[u] && v != u) continue;
      if (rooted.parent[v] != n) continue;  // already visited
      rooted.parent[v] = u;
      rooted.children[u].push_back(v);
      stack.push_back(v);
    }
  }
  OPERON_CHECK_MSG(preorder.size() == n, "tree is disconnected");
  rooted.postorder.assign(preorder.rbegin(), preorder.rend());
  return rooted;
}

}  // namespace operon::steiner
