#include "serve/cache.hpp"

#include <filesystem>
#include <utility>
#include <vector>

namespace operon::serve {

void LedgerWriter::append(const obs::LedgerRecord& record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!path_.empty()) obs::append_ledger_record(path_, record);
  ++appended_;
}

std::size_t LedgerWriter::appended() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return appended_;
}

std::size_t ResultCache::prime_from_ledger(const std::string& path,
                                           obs::LedgerSalvage* salvage) {
  if (path.empty() || !std::filesystem::exists(path)) {
    if (salvage != nullptr) salvage->missing = !path.empty();
    return 0;
  }
  obs::LedgerSalvage read = obs::read_ledger_salvage(path);
  const std::vector<obs::LedgerRecord> records = std::move(read.records);
  if (salvage != nullptr) {
    salvage->skipped = read.skipped;
    salvage->findings = std::move(read.findings);
    salvage->missing = read.missing;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t primed = 0;
  for (const obs::LedgerRecord& record : records) {
    const std::string key = obs::ledger_key(record);
    // A completed run is always the entry to keep; a tripped record
    // only fills an empty slot (it is servable iff its trip matches
    // the key's fingerprinted stop_at_checkpoint, which lookup checks).
    const auto it = done_.find(key);
    if (it != done_.end() && it->second.trip_checkpoint == 0 &&
        record.trip_checkpoint != 0) {
      continue;
    }
    if (it == done_.end()) ++primed;
    done_[key] = record;
  }
  return primed;
}

bool ResultCache::lookup(const std::string& key, std::uint64_t expected_trip,
                         obs::LedgerRecord* record) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = done_.find(key);
  if (it == done_.end() || it->second.trip_checkpoint != expected_trip) {
    return false;
  }
  *record = it->second;
  return true;
}

ResultCache::Outcome ResultCache::acquire(const std::string& key,
                                          std::uint64_t expected_trip,
                                          obs::LedgerRecord* record) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const auto it = done_.find(key);
    if (it != done_.end() && it->second.trip_checkpoint == expected_trip) {
      *record = it->second;
      return Outcome::Hit;
    }
    if (pending_.insert(key).second) return Outcome::Owner;
    pending_cv_.wait(lock);
  }
}

void ResultCache::fulfill(const std::string& key,
                          const obs::LedgerRecord& record, bool cacheable) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    pending_.erase(key);
    if (cacheable) done_[key] = record;
  }
  pending_cv_.notify_all();
}

void ResultCache::abandon(const std::string& key) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    pending_.erase(key);
  }
  pending_cv_.notify_all();
}

std::size_t ResultCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return done_.size();
}

}  // namespace operon::serve
