#pragma once
// Durable job journal: the crash-recovery half of the serve daemon's
// persistence story. The ledger remembers *results*; the journal
// remembers *obligations* — every admitted job appends an `accepted`
// entry (carrying the full submit spec), and every settle appends a
// `completed` / `failed` / `canceled` entry referencing it. After a
// crash, replay() pairs the two streams: an accepted entry with no
// settle is a job the daemon still owes, and the server re-enqueues
// those in journal-sequence order (deterministic re-admission), relying
// on the ledger-backed ResultCache to answer any that actually finished
// before the crash (the append to the ledger happens before the settle
// entry, so a completed-but-unsettled job is a cache hit, not a rerun).
//
// Each re-admission is journaled as a `recovered` entry for the old
// sequence plus a fresh `accepted`, so a second crash mid-recovery
// replays correctly instead of duplicating jobs.
//
// One JSONL line per entry, schema-tagged:
//   {"journal":1,"seq":N,"event":"accepted","spec":{"op":"submit",...}}
//   {"journal":1,"seq":M,"event":"completed","of":N}
// The spec member is a verbatim submit request line, so replay reuses
// the strict protocol parser. Appends share the ledger discipline: one
// serialized append point per file (the journal's own mutex), plain
// append + flush, so a crash tears at most the final line — which
// replay() skips and counts, never throws on (the salvage rule).

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "serve/protocol.hpp"

namespace operon::serve {

inline constexpr int kJournalSchemaVersion = 1;

class JobJournal {
 public:
  /// Empty path = journaling disabled (every append is a no-op).
  /// `next_seq` continues the numbering of an existing journal — pass
  /// replay().max_seq + 1 when reopening after a restart.
  explicit JobJournal(std::string path, std::uint64_t next_seq = 1)
      : path_(std::move(path)), next_seq_(next_seq == 0 ? 1 : next_seq) {}

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  /// Continue numbering after an existing journal's highest sequence
  /// (replay().max_seq). Call before any append — sequence reuse across
  /// restarts would make `of` references ambiguous.
  void start_from(std::uint64_t max_seq) { next_seq_ = max_seq + 1; }

  /// Journal a job's admission. Returns the entry's sequence number
  /// (0 when disabled). Throws util::CheckError on I/O failure.
  std::uint64_t accepted(const JobSpec& spec);

  /// Journal the settle of accepted entry `of`: outcome is
  /// "completed", "failed", or "canceled". No-op when disabled or when
  /// `of` is 0 (a job admitted without a journal entry).
  void settled(std::uint64_t of, std::string_view outcome);

  /// Journal that recovery re-admitted (and re-journaled) accepted
  /// entry `of`, so a crash mid-recovery cannot duplicate it.
  void recovered(std::uint64_t of);

  struct PendingJob {
    std::uint64_t seq = 0;
    JobSpec spec;
  };
  struct Replay {
    /// Accepted but never settled or recovered, in sequence order —
    /// the deterministic re-admission order.
    std::vector<PendingJob> pending;
    std::size_t entries = 0;  ///< well-formed entries read
    std::size_t skipped = 0;  ///< malformed lines skipped (torn tail)
    std::uint64_t max_seq = 0;
    bool missing = false;  ///< file absent (a cold start, not an error)
  };

  /// Salvage-tolerant replay of a journal file: malformed lines are
  /// skipped and counted, never thrown on. A missing file yields
  /// missing=true and no pending jobs.
  static Replay replay(const std::string& path);

 private:
  void append_event(std::string_view event, std::uint64_t seq,
                    std::uint64_t of, const JobSpec* spec);

  std::string path_;
  std::mutex mutex_;
  std::uint64_t next_seq_;
};

}  // namespace operon::serve
