#include "serve/socket.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "serve/server.hpp"
#include "util/check.hpp"

namespace operon::serve {

namespace {

/// A run of garbage longer than a frame plus its newline is
/// unrecoverable — there is no resync point in a JSONL stream.
constexpr std::size_t kMaxBufferedBytes = kMaxFrameBytes + 1;

bool send_all(int fd, std::string_view bytes) {
  // MSG_NOSIGNAL: a client that hung up must not SIGPIPE the daemon;
  // the failed send just ends this connection's loop. EINTR is not a
  // failure — a signal landing mid-send must not tear the frame.
  while (!bytes.empty()) {
    const ssize_t sent =
        ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (sent < 0 && errno == EINTR) continue;
    if (sent <= 0) return false;
    bytes.remove_prefix(static_cast<std::size_t>(sent));
  }
  return true;
}

/// recv that retries EINTR: a stray signal must look like "no bytes
/// yet", never like a peer disconnect.
ssize_t recv_retry(int fd, char* chunk, std::size_t size) {
  for (;;) {
    const ssize_t got = ::recv(fd, chunk, size, 0);
    if (got < 0 && errno == EINTR) continue;
    return got;
  }
}

sockaddr_un socket_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  OPERON_CHECK_MSG(path.size() < sizeof(address.sun_path),
                   "socket path '" << path << "' exceeds the "
                   << sizeof(address.sun_path) - 1 << "-byte sun_path limit");
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

}  // namespace

SocketServer::SocketServer(Server& server, std::string path)
    : server_(server), path_(std::move(path)) {
  const sockaddr_un address = socket_address(path_);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  OPERON_CHECK_MSG(listen_fd_ >= 0,
                   "socket() failed: " << std::strerror(errno));
  ::unlink(path_.c_str());  // the daemon owns its path; drop stale sockets
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    const int bind_errno = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    OPERON_CHECK_MSG(false, "bind('" << path_ << "') failed: "
                                     << std::strerror(bind_errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int listen_errno = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(path_.c_str());
    OPERON_CHECK_MSG(false, "listen('" << path_ << "') failed: "
                                       << std::strerror(listen_errno));
  }
}

SocketServer::~SocketServer() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(path_.c_str());
}

void SocketServer::run() {
  for (;;) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
    }
    if (server_.draining()) return;
    pollfd poller{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&poller, 1, /*timeout_ms=*/200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    connection_fds_.push_back(fd);
    connections_.emplace_back(&SocketServer::connection_loop, this, fd);
  }
}

void SocketServer::stop() {
  std::vector<std::thread> to_join;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    for (const int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
    to_join.swap(connections_);
  }
  for (std::thread& connection : to_join) connection.join();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const int fd : connection_fds_) ::close(fd);
    connection_fds_.clear();
  }
}

void SocketServer::connection_loop(int fd) {
  // Close + deregister under the registry mutex, so stop()'s shutdown
  // sweep can never hit a recycled fd number.
  const auto finish = [&] {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it =
        std::find(connection_fds_.begin(), connection_fds_.end(), fd);
    if (it != connection_fds_.end()) {
      connection_fds_.erase(it);
      ::close(fd);
    }
  };
  std::string pending;
  char chunk[4096];
  bool overflow = false;
  while (!overflow) {
    const ssize_t got = recv_retry(fd, chunk, sizeof(chunk));
    if (got <= 0) break;  // EOF, reset, or shutdown(fd)
    pending.append(chunk, static_cast<std::size_t>(got));
    for (;;) {
      const std::size_t newline = pending.find('\n');
      if (newline == std::string::npos) {
        // An unterminated run longer than a frame can never become a
        // valid line — don't buffer it further.
        overflow = pending.size() > kMaxBufferedBytes;
        break;
      }
      // A terminated line over the limit is equally unrecoverable: the
      // sender's framing is broken, not just one request.
      if (newline > kMaxFrameBytes) {
        overflow = true;
        break;
      }
      std::string line = pending.substr(0, newline);
      pending.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      send_all(fd, server_.handle_line(line) + "\n");
    }
  }
  if (overflow) {
    send_all(fd, to_json_line(error_response(
                     "frame-too-large",
                     "no line within the frame size limit")) +
                     "\n");
  }
  finish();
}

int Client::try_connect() {
  const sockaddr_un address = socket_address(path_);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  OPERON_CHECK_MSG(fd >= 0, "socket() failed: " << std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    const int connect_errno = errno;
    ::close(fd);
    return connect_errno == 0 ? EIO : connect_errno;
  }
  fd_ = fd;
  return 0;
}

Client::Client(const std::string& path, RetryPolicy policy)
    : path_(path), policy_(policy) {
  int delay_ms = std::max(policy_.backoff_ms, 1);
  for (std::size_t attempt = 0;; ++attempt) {
    const int error = try_connect();
    if (error == 0) return;
    if (attempt >= policy_.retries) {
      OPERON_CHECK_MSG(false, "connect('" << path_ << "') failed after "
                                          << attempt + 1 << " attempt(s): "
                                          << std::strerror(error)
                                          << " (is operon_serve running?)");
    }
    ++retries_used_;
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    delay_ms = std::min(delay_ms * 2, std::max(policy_.backoff_max_ms, 1));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Response Client::call(const Request& request) {
  return parse_response(call_line(to_json_line(request)));
}

std::string Client::call_line(std::string_view line) {
  std::string frame(line);
  frame.push_back('\n');
  int delay_ms = std::max(policy_.backoff_ms, 1);
  for (std::size_t attempt = 0;; ++attempt) {
    bool received = false;
    if (fd_ >= 0 && send_all(fd_, frame)) {
      for (;;) {
        const std::size_t newline = buffer_.find('\n');
        if (newline != std::string::npos) {
          std::string response = buffer_.substr(0, newline);
          buffer_.erase(0, newline + 1);
          return response;
        }
        OPERON_CHECK_MSG(buffer_.size() <= kMaxBufferedBytes,
                         "daemon response exceeds the frame size limit");
        char chunk[4096];
        const ssize_t got = recv_retry(fd_, chunk, sizeof(chunk));
        if (got <= 0) break;  // disconnect — maybe retryable, see below
        received = true;
        buffer_.append(chunk, static_cast<std::size_t>(got));
      }
    }
    // The connection died (or the send failed). Re-sending is sound
    // ONLY before the first byte of this request's response: a partial
    // response means the daemon executed the request, and re-sending a
    // non-idempotent op (shutdown, cancel) would double-apply it.
    OPERON_CHECK_MSG(!received && buffer_.empty(),
                     "daemon closed the connection mid-response");
    OPERON_CHECK_MSG(attempt < policy_.retries,
                     "daemon closed the connection before responding ("
                         << attempt + 1 << " attempt(s))");
    ++retries_used_;
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    delay_ms = std::min(delay_ms * 2, std::max(policy_.backoff_max_ms, 1));
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    // A refused reconnect just consumes the next attempt: fd_ stays -1
    // and the loop falls straight back here after the next backoff.
    (void)try_connect();
  }
}

}  // namespace operon::serve
