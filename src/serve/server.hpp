#pragma once
// Serve daemon core: deterministic job queue + executor pool + ledger
// result store, behind a transport-agnostic request handler. The Unix
// socket front end (serve/socket.hpp) and tests both drive the same
// handle() entry point, so every protocol behavior is testable without
// a socket.
//
// Determinism contract (tests/serve_determinism_test.cpp): for a fixed
// job set, the *set* of semantic ledger records is bit-identical
// regardless of submission order, executor count, scheduling
// interleaving, or per-job --threads. Three mechanisms carry it:
//   1. each job's outcome depends only on (case, seed, options) — the
//      pipeline's own determinism invariant;
//   2. duplicate keys are deduplicated (ResultCache::acquire), so a
//      record is computed once no matter how submissions interleave;
//   3. every record reaches the ledger through one serialized
//      LedgerWriter — concurrent appends cannot interleave lines.
//
// Job lifecycle: queued -> running -> done | failed | canceled.
// A submit whose key is already cached settles as done immediately
// (cached=true) without entering the queue. Cancel of a queued job
// removes it from the queue; cancel of a running job requests its
// StopSource, which the pipeline honors at its next numbered checkpoint
// and degrades (run-interrupted record — appended, never cached).
//
// Serve-side metrics live in the server's OWN registry (serve.* names:
// queue depth, in-flight, cache hits, rejections), never in the ambient
// observation — the executors install thread-scoped observations for
// their jobs, and mixing daemon bookkeeping into a job's per-run
// snapshot would break record pairing across runs.

#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/flow.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "serve/cache.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "util/stop.hpp"

namespace operon::serve {

struct ServerConfig {
  /// Persistent result store (JSONL ledger). Warmed into the cache at
  /// startup; every completed job appends. Empty = no persistence.
  std::string ledger_path;
  /// Executor threads draining the queue.
  std::size_t workers = 1;
  /// OperonOptions::threads for each job (0 = all cores). Excluded from
  /// the options fingerprint, so the cache key is identical at any
  /// value.
  std::size_t job_threads = 1;
  /// Admission bound: submits beyond this many queued jobs get a
  /// structured `backpressure` rejection (0 = unbounded).
  std::size_t queue_limit = 64;
  /// Per-job stall guard: abort (default Watchdog action) when a
  /// running job goes this long without a checkpoint (0 = off).
  int watchdog_ms = 0;
  /// When set, one Chrome-trace file per computed job is written here
  /// as job-<id>.json, tagged (metadata) with job/tenant/case/seed/key.
  std::string trace_dir;
  /// When set, every daemon event is appended to this JSONL file as it
  /// is emitted (the durable twin of the in-memory flight recorder).
  std::string events_path;
  /// Flight-recorder ring size: how many recent events the daemon
  /// retains in memory for the `events` op, the watchdog stall report,
  /// and the SIGTERM dump (0 = unbounded).
  std::size_t events_capacity = 256;
  /// Durable job journal (JSONL, see serve/journal.hpp): every admitted
  /// job appends an `accepted` entry, every settle a matching one, so a
  /// crash leaves a replayable account of what the daemon still owes.
  /// Empty = no journal.
  std::string journal_path;
  /// Replay `journal_path` at startup and re-enqueue jobs that were
  /// accepted but never settled, in journal-sequence order, before any
  /// client submit is admitted. Already-cached keys settle instantly
  /// from the ledger-primed cache (zero recompute).
  bool recover = false;
  /// Per-tenant admission quotas (0 = unlimited): a submit is rejected
  /// with `quota-exceeded` when the tenant already has this many jobs
  /// queued...
  std::size_t tenant_max_queued = 0;
  /// ...or this many outstanding (queued + running). Cache-served
  /// submits never count — they consume no executor.
  std::size_t tenant_max_inflight = 0;
  /// Daemon session stop (SIGINT/SIGTERM chain). Every job's
  /// StopSource chains to it, so a session interrupt stops all running
  /// jobs at their next checkpoint.
  util::StopToken session_stop;
};

class Server {
 public:
  /// Primes the cache from `ledger_path` (a salvage read: a torn tail
  /// from a crashed writer is skipped and reported as an event, never
  /// fatal — a daemon must always be able to restart on its own
  /// ledger), removes stale ledger stage files, replays the job
  /// journal when configured, and starts the executor threads.
  explicit Server(ServerConfig config);
  ~Server();  ///< implies shutdown(false)
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Handle one parsed request. Blocking only for wait=true
  /// submit/result. Throws only on internal invariant violations;
  /// protocol-level problems come back as ok=false responses.
  Response handle(const Request& request);

  /// Transport entry point: parse one JSONL frame, dispatch, serialize.
  /// NEVER throws — malformed frames become structured error responses
  /// (tests/serve_protocol_test.cpp holds it to that under mangled
  /// input).
  std::string handle_line(std::string_view line);

  /// Drain: stop admitting, finish queued + running jobs (or cancel
  /// them when `cancel_running`), join the executors. Idempotent.
  void shutdown(bool cancel_running);

  /// True once a shutdown request was seen (the socket loop's exit
  /// signal).
  bool draining() const;

  /// Serve-side bookkeeping (queue depth, cache hits, ...).
  obs::MetricsSnapshot metrics() const;
  std::size_t cache_size() const;
  std::size_t records_appended() const;

  /// The daemon's event log / flight recorder. Lifecycle events and
  /// per-job run events land here; the socket front end installs it as
  /// the ambient event log so OPERON_LOG lines join the stream.
  obs::EventLog& events_log() { return events_; }

  /// Flight-recorder dump (recent events + open spans) for the SIGTERM
  /// handler and operator tooling.
  std::string flight_recorder(std::size_t tail = 0) const;

 private:
  struct Job {
    std::uint64_t id = 0;
    JobSpec spec;
    std::string case_label;  ///< design/case id as recorded in the ledger
    std::string key;         ///< case / seed / options fingerprint
    std::string state = "queued";
    bool cached = false;
    bool has_record = false;
    obs::LedgerRecord record;
    std::string error;  ///< failure detail when state == "failed"
    /// Per-job observability payloads, rendered once when the job
    /// computes (empty for cache-served jobs): the run's metric points
    /// (write_metric_points, exact doubles) and span summary.
    std::string metrics_json;
    std::string spans_json;
    util::StopSource stop;
    /// Journal sequence of this job's `accepted` entry (0 = not
    /// journaled: journaling off, or a cache-served submit).
    std::uint64_t journal_seq = 0;
    /// Re-admitted by journal replay rather than a client submit.
    bool recovered = false;
    /// Admission-time wall-clock deadline (spec.deadline_s > 0); armed
    /// onto `stop` when the job starts executing so the run degrades at
    /// its next checkpoint once the deadline passes.
    bool has_deadline = false;
    util::Deadline deadline{0.0};
  };

  Response submit(const Request& request);
  Response status(const Request& request);
  Response result(const Request& request);
  Response cancel(const Request& request);
  Response stats(const Request& request) const;
  Response events(const Request& request) const;

  void worker_loop();
  void execute(Job& job);
  void settle(Job& job, std::string_view state);
  /// Journal replay at startup: continue the sequence numbering and,
  /// when config_.recover, re-admit every pending job in journal order.
  void recover_from_journal();
  /// Internal re-admission for one replayed job: bypasses draining,
  /// quota, and backpressure checks (the daemon already owes the job),
  /// settling instantly from the cache when the key is already stored.
  void recover_job(const JobSpec& spec, std::uint64_t old_seq);

  Job* find_job(std::uint64_t id);
  bool settled(const Job& job) const;
  void update_gauges_locked();
  void fill_job_fields(const Job& job, Response* response) const;
  /// Lifecycle event with the job's full context on the daemon log.
  void emit_job_event(const Job& job, util::LogLevel level,
                      std::string_view name, std::string_view message = {});
  /// Serialize, shedding optional payloads (prom, spans, metrics,
  /// stats, events) with truncated=true until the line fits in
  /// kMaxFrameBytes — the framing must survive any payload size.
  static std::string serialize_clamped(Response response);

  ServerConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;  ///< executors wait here
  std::condition_variable done_cv_;   ///< wait=true requests wait here
  FairQueue queue_;
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_sequence_ = 1;
  std::size_t inflight_ = 0;
  bool draining_ = false;
  bool joined_ = false;
  /// Queued + running jobs per tenant (the max-inflight quota input).
  /// Incremented at queue admission, decremented at settle; cache-
  /// served submits never enter it.
  std::map<std::string, std::size_t> tenant_outstanding_;

  ResultCache cache_;
  LedgerWriter writer_;
  JobJournal journal_;
  mutable obs::MetricsRegistry metrics_;
  /// Daemon event log (bounded flight-recorder ring). Declared after
  /// the mutex-guarded state it reports on; its own mutex serializes
  /// emission, and the optional --events-out sink writes from inside
  /// that lock (see obs::EventLog::set_sink).
  obs::EventLog events_;
  std::ofstream events_file_;
  std::vector<std::thread> workers_;
};

/// Build the OperonOptions a job spec denotes — shared by the server
/// (execution + fingerprint) and by anything that needs the cache key
/// for a spec without running it. Thread count and stop token are NOT
/// set here (both are execution details outside the fingerprint).
core::OperonOptions options_for(const JobSpec& spec);

/// The ledger case label for a spec: the Table 1 id, or a canonical
/// "custom-g<groups>-b<lo>-<hi>" name for generator jobs.
std::string case_label_for(const JobSpec& spec);

/// The full cache/ledger identity key for a spec.
std::string job_key(const JobSpec& spec);

}  // namespace operon::serve
