#include "serve/journal.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>

#include "util/check.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace operon::serve {

namespace {

using util::JsonType;
using util::JsonValue;

/// Sequence numbers ride the JSON double representation like ledger
/// seeds do; reject anything that would round.
std::uint64_t seq_member(const JsonValue& object, std::string_view key) {
  const JsonValue& value = object.at(key);
  OPERON_CHECK_MSG(value.is(JsonType::Number),
                   "journal field '" << key << "' must be a number");
  const double number = value.as_number();
  OPERON_CHECK_MSG(number >= 0.0 && number <= 9007199254740992.0 &&
                       number == std::floor(number),
                   "journal field '" << key << "' must be an exact integer");
  return static_cast<std::uint64_t>(number);
}

}  // namespace

std::uint64_t JobJournal::accepted(const JobSpec& spec) {
  if (!enabled()) return 0;
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t seq = next_seq_++;
  append_event("accepted", seq, /*of=*/0, &spec);
  return seq;
}

void JobJournal::settled(std::uint64_t of, std::string_view outcome) {
  if (!enabled() || of == 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  append_event(outcome, next_seq_++, of, /*spec=*/nullptr);
}

void JobJournal::recovered(std::uint64_t of) {
  if (!enabled() || of == 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  append_event("recovered", next_seq_++, of, /*spec=*/nullptr);
}

void JobJournal::append_event(std::string_view event, std::uint64_t seq,
                              std::uint64_t of, const JobSpec* spec) {
  JsonValue::Members members;
  members.emplace_back(
      "journal",
      JsonValue::make_number(static_cast<double>(kJournalSchemaVersion)));
  members.emplace_back("seq",
                       JsonValue::make_number(static_cast<double>(seq)));
  members.emplace_back("event", JsonValue::make_string(std::string(event)));
  if (of != 0) {
    members.emplace_back("of",
                         JsonValue::make_number(static_cast<double>(of)));
  }
  if (spec != nullptr) {
    // Embed the spec as a verbatim submit request, so replay goes back
    // through the strict protocol parser instead of a second schema.
    Request request;
    request.op = Op::Submit;
    request.spec = *spec;
    members.emplace_back("spec", util::parse_json(to_json_line(request)));
  }
  const std::string line =
      util::write_json(JsonValue::make_object(std::move(members)));
  std::ofstream os(path_, std::ios::app);
  os << line << "\n";
  os.flush();
  OPERON_CHECK_MSG(os.good(),
                   "cannot append journal entry to '" << path_ << "'");
}

JobJournal::Replay JobJournal::replay(const std::string& path) {
  Replay replay;
  std::ifstream is(path);
  if (!is.good()) {
    replay.missing = true;
    return replay;
  }
  // seq -> spec for accepted entries still awaiting a settle; the map
  // order IS the re-admission order.
  std::map<std::uint64_t, JobSpec> open;
  std::string line;
  while (std::getline(is, line)) {
    if (util::trim(line).empty()) continue;
    try {
      const JsonValue doc = util::parse_json(line);
      OPERON_CHECK_MSG(doc.is(JsonType::Object),
                       "journal entry must be a JSON object");
      for (const auto& [key, value] : doc.members()) {
        OPERON_CHECK_MSG(key == "journal" || key == "seq" || key == "event" ||
                             key == "of" || key == "spec",
                         "unknown journal member '" << key << "'");
      }
      const auto schema = static_cast<int>(seq_member(doc, "journal"));
      OPERON_CHECK_MSG(schema == kJournalSchemaVersion,
                       "journal schema " << schema << " unsupported");
      const std::uint64_t seq = seq_member(doc, "seq");
      const std::string& event = doc.at("event").as_string();
      if (event == "accepted") {
        const Request request =
            parse_request(util::write_json(doc.at("spec")));
        OPERON_CHECK_MSG(request.op == Op::Submit,
                         "journaled spec must be a submit request");
        open[seq] = request.spec;
      } else if (event == "completed" || event == "failed" ||
                 event == "canceled" || event == "recovered") {
        open.erase(seq_member(doc, "of"));
      } else {
        OPERON_CHECK_MSG(false, "unknown journal event '" << event << "'");
      }
      ++replay.entries;
      replay.max_seq = std::max(replay.max_seq, seq);
    } catch (const util::CheckError&) {
      // Torn tail or garbage line: recoverable by construction — count
      // it and keep going (the salvage rule).
      ++replay.skipped;
    }
  }
  replay.pending.reserve(open.size());
  for (auto& [seq, spec] : open) {
    replay.pending.push_back({seq, std::move(spec)});
  }
  return replay;
}

}  // namespace operon::serve
