#pragma once
// Deterministic bounded job queue with priority classes and per-tenant
// fair share. Pop order is a pure function of the push/pop history —
// never of wall-clock or thread timing — so a queue drained serially
// replays identically (tests/serve_test.cpp pins the order):
//
//  1. highest priority class first (priority is global: an urgent job
//     beats every backlog);
//  2. within a class, the tenant that has been *started* least often so
//     far (the fair share — a tenant streaming hundreds of jobs cannot
//     starve one that submits occasionally), ties broken by tenant name;
//  3. within a tenant, submission order (sequence number).
//
// The queue is NOT internally synchronized: the Server drives it under
// its own mutex (admission, cancel-while-queued, and the executor pop
// all need the same lock anyway). Capacity is enforced at push — a full
// queue is the admission-control signal the server turns into a
// structured `backpressure` rejection.

#include <cstdint>
#include <deque>
#include <map>
#include <string>

namespace operon::serve {

struct QueuedJob {
  std::uint64_t id = 0;
  std::string tenant;
  int priority = 0;
  std::uint64_t sequence = 0;  ///< admission order, assigned by the server
};

class FairQueue {
 public:
  /// `capacity` == 0 means unbounded (tests); otherwise push rejects
  /// once `size() == capacity`.
  explicit FairQueue(std::size_t capacity) : capacity_(capacity) {}

  /// False when the queue is full (backpressure) — the job was NOT
  /// admitted. `force` bypasses the capacity bound: recovery re-admits
  /// journaled jobs the daemon already accepted, so backpressure does
  /// not apply to them.
  bool push(const QueuedJob& job, bool force = false);

  /// Pop the next job per the deterministic order above; false when
  /// empty. Charges one "started" credit to the popped job's tenant.
  bool pop(QueuedJob* out);

  /// Remove a still-queued job by id (cancel); false when not queued.
  bool remove(std::uint64_t id);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Jobs started so far for `tenant` (fair-share credits).
  std::uint64_t started(const std::string& tenant) const;

  /// Jobs currently queued for `tenant` (the per-tenant quota input —
  /// the server's admission control checks it before push).
  std::size_t queued(const std::string& tenant) const;

 private:
  struct TenantQueue {
    /// Per-priority FIFO lanes, keyed descending so begin() is the
    /// tenant's best class. Sequence order within a lane is push order.
    std::map<int, std::deque<QueuedJob>, std::greater<int>> lanes;
    std::uint64_t started = 0;
  };

  std::size_t capacity_;
  std::size_t size_ = 0;
  std::map<std::string, TenantQueue> tenants_;
};

}  // namespace operon::serve
