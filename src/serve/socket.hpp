#pragma once
// Unix-domain-socket transport for the serve daemon: line-delimited
// JSONL frames, one request per line, one response line per request.
// All protocol behavior lives in Server::handle_line — this layer only
// frames bytes, so it can be (and is) tested with raw garbage streams
// (tests/serve_protocol_test.cpp) without touching job semantics.
//
// Framing rules, enforced per connection:
//   - a frame is the bytes up to '\n' (the newline is not part of it);
//   - a connection that accumulates more than kMaxFrameBytes without a
//     newline gets one `frame-too-large` error response and is closed
//     (the stream is unrecoverable — there is no resync point);
//   - responses always end in exactly one '\n'.
//
// Shutdown order matters: drain the Server first (settles every job, so
// blocked wait=true requests complete), then stop() the socket loop —
// it shuts down live connection fds, which unblocks their readers.

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"

namespace operon::serve {

class Server;

class SocketServer {
 public:
  /// Bind + listen on `path` (an existing socket file is unlinked
  /// first — the daemon owns its path). Throws util::CheckError on any
  /// socket failure or an over-long path (sun_path limit).
  SocketServer(Server& server, std::string path);
  ~SocketServer();  ///< implies stop()
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Accept loop: spawns one thread per connection, returns once the
  /// Server reports draining() (polled) or stop() is called.
  void run();

  /// Wake the accept loop and unblock every live connection reader.
  /// Idempotent; joins connection threads.
  void stop();

  const std::string& path() const { return path_; }

 private:
  void connection_loop(int fd);

  Server& server_;
  std::string path_;
  int listen_fd_ = -1;

  std::mutex mutex_;
  bool stopping_ = false;
  std::vector<int> connection_fds_;
  std::vector<std::thread> connections_;
};

/// Deterministic, seedless capped-exponential retry for Client: up to
/// `retries` extra attempts after the first, waiting backoff_ms,
/// 2*backoff_ms, 4*backoff_ms, ... (capped at backoff_max_ms) between
/// them. No jitter by design — client behavior must be reproducible.
struct RetryPolicy {
  std::size_t retries = 0;    ///< extra attempts (0 = fail fast, the default)
  int backoff_ms = 100;       ///< wait before the first retry; doubles
  int backoff_max_ms = 2000;  ///< backoff ceiling
};

/// Blocking JSONL client for the daemon socket (operon_cli submit and
/// the serve tests).
///
/// Retry idempotency rule: a request is re-sent ONLY when the failure
/// provably happened before the daemon produced any of this request's
/// response — connect refused, send failure, or a disconnect before the
/// first response byte. Once a single response byte has arrived the
/// request was executed, and a blind re-send could double-apply a
/// non-idempotent op (shutdown, cancel); the client fails instead.
/// Re-sent submits are safe on top of this: the result cache dedups by
/// job key, so a duplicate admission recomputes nothing.
class Client {
 public:
  /// Connect to the daemon at `path`, retrying per `policy`; throws
  /// util::CheckError when the daemon is not there after all attempts.
  explicit Client(const std::string& path, RetryPolicy policy = {});
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One request/response round trip.
  Response call(const Request& request);

  /// Raw round trip: send `line` + '\n', return the response line
  /// (without the newline). Used by protocol tests to send frames the
  /// typed API could never produce. Reconnects + re-sends per the
  /// retry policy when the connection dies before the first response
  /// byte; throws once a partial response has been seen.
  std::string call_line(std::string_view line);

  /// Retries consumed so far (connect + re-send), for client-side
  /// serve.retry.* reporting.
  std::size_t retries_used() const { return retries_used_; }

 private:
  /// One connect attempt; returns 0 or the connect errno. Leaves fd_
  /// at -1 on failure.
  int try_connect();

  int fd_ = -1;
  std::string path_;
  RetryPolicy policy_;
  std::size_t retries_used_ = 0;
  std::string buffer_;  ///< bytes read past the last response line
};

}  // namespace operon::serve
