#pragma once
// serve protocol: line-delimited JSON (one request per line, one
// response line per request) spoken over the operon_serve Unix socket.
//
// Requests name an op — submit / status / result / cancel / stats /
// events / shutdown — plus the op's payload; parse_request is strict in
// the
// json.hpp tradition: unknown ops, unknown members, mistyped or
// out-of-range fields, NaN budgets, oversized frames, and trailing junk
// all raise util::CheckError with a message, which the server turns
// into a structured {"ok":false,"error":...} response — never a crash
// or a hung connection (tests/serve_protocol_test.cpp holds it to
// that, with the benchgen frame manglers as the adversary).
//
// A submit payload is a *job spec*, not a design: the daemon builds the
// design deterministically through benchgen (a Table 1 case id or a
// custom generator regime) so the job's identity is exactly the ledger
// identity key (case, seed, options fingerprint) and the result cache
// can answer repeats without recomputing. See DESIGN.md "Service
// architecture" for the op semantics and the cache contract.

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/ledger.hpp"

namespace operon::serve {

/// Hard cap on one protocol frame (request or response line), newline
/// included. Longer frames are rejected with a structured error before
/// any parse work happens — the strict JSON parser never sees them.
inline constexpr std::size_t kMaxFrameBytes = 64 * 1024;

enum class Op {
  Submit,    ///< enqueue (or cache-answer) one route job
  Status,    ///< one job's state, or the server totals when job == 0
  Result,    ///< fetch a completed job's ledger record (optionally wait)
  Cancel,    ///< stop a queued or running job at its next checkpoint
  Stats,     ///< serve metrics registry snapshot (queue/cache/jobs)
  Events,    ///< recent structured events (the daemon's flight recorder)
  Shutdown,  ///< stop admitting, drain (or cancel) in-flight, exit
};

std::string_view to_string(Op op);

/// What to route, built deterministically on the server. Either a
/// Table 1 case (`case_id`, groups == 0) or a custom benchgen regime
/// (groups > 0). Everything here except `tenant` and `priority` is
/// semantic: it feeds the design generator or the options fingerprint,
/// so two specs with equal fields share one ledger identity key.
struct JobSpec {
  std::string case_id = "I1";  ///< "I1".."I5" (ignored when groups > 0)
  std::uint64_t seed = 1;
  std::size_t groups = 0;  ///< > 0: custom generator with this many groups
  std::size_t bits_lo = 2;
  std::size_t bits_hi = 8;
  std::string tenant = "default";  ///< fair-share bucket, not semantic
  int priority = 0;                ///< higher pops first, not semantic
  std::string solver = "lr";       ///< lr | ilp | mip | portfolio (+aliases)
  /// Portfolio member list, canonical comma-joined ("" = portfolio
  /// defaults). Semantic: it selects the raced solver set.
  std::string portfolio_order;
  /// Portfolio lane concurrency (0 = one lane per member). Wall-clock
  /// only — excluded from the options fingerprint like threads.
  std::size_t portfolio_lanes = 0;
  double ilp_limit_s = 20.0;       ///< exact-solver budget
  double max_loss_db = 0.0;        ///< 0 = tech default (lm)
  double time_limit_s = 0.0;       ///< whole-run budget; 0 = unlimited
  std::uint64_t stop_at_checkpoint = 0;  ///< deterministic trip replay
  /// Per-job wall-clock deadline counted from admission (queue wait
  /// included); 0 = none. Wall-clock only, like tenant/priority: it
  /// arms the job's StopSource, never the options fingerprint, so a
  /// deadline trip degrades onto the run-time-limit rung and its
  /// (timing-dependent) record is never cached.
  double deadline_s = 0.0;
};

struct Request {
  Op op = Op::Status;
  std::uint64_t job = 0;  ///< status/result/cancel target (0 = server)
  bool wait = false;      ///< result/submit: block until the job settles
  bool cancel_running = false;  ///< shutdown: cancel instead of drain
  /// events: return only the newest `tail` events (0 = all retained).
  std::uint64_t tail = 0;
  /// stats: include Prometheus text exposition in the response.
  bool prom = false;
  /// status/result: include the job's per-run metrics + span summary.
  bool with_metrics = false;
  JobSpec spec;  ///< submit payload
};

/// Strict parse of one request line. Throws util::CheckError on any
/// malformed frame: not a JSON object, unknown op, unknown member,
/// mistyped/mis-ranged field, non-finite budget, or a frame longer than
/// kMaxFrameBytes.
Request parse_request(std::string_view line);

/// One-line serialization (no trailing newline) — the client half.
std::string to_json_line(const Request& request);

struct Response {
  bool ok = false;
  std::string op;      ///< echoed op name ("" when the op never parsed)
  std::string error;   ///< machine-readable slug when !ok (see DESIGN.md)
  std::string detail;  ///< human-readable elaboration
  std::uint64_t job = 0;
  std::string state;   ///< queued | running | done | failed | canceled
  bool cached = false; ///< submit/result: answered from the result cache
  std::string key;     ///< ledger identity key (case/seed/fingerprint)
  bool has_record = false;
  obs::LedgerRecord record;  ///< result payload when has_record
  std::string stats_json;    ///< stats payload: metrics registry document
  /// stats: Prometheus text exposition (newlines JSON-escaped on the
  /// wire) when the request asked for `prom`.
  std::string prom;
  /// status/result with_metrics: the job's per-run metric points (a
  /// write_metric_points array document) and aggregated span summary
  /// (array of {"name","count","total_us"}). Empty for cache-served
  /// jobs — a cached answer ran nothing.
  std::string job_metrics_json;
  std::string spans_json;
  /// events: JSON array of event objects (obs::to_json_array).
  std::string events_json;
  /// Set when an oversized payload was shed/shortened to keep the
  /// response line within kMaxFrameBytes (the structured flag the
  /// 64 KiB frame fix reports instead of breaking the framing).
  bool truncated = false;
};

/// One-line serialization (no trailing newline). Always a single line —
/// every embedded string is JSON-escaped, so the line framing cannot be
/// broken by job/tenant names.
std::string to_json_line(const Response& response);

/// Strict parse of one response line (the client half). Throws
/// util::CheckError on malformed input.
Response parse_response(std::string_view line);

/// Shorthand for a failed response (op left empty when unknown).
Response error_response(std::string_view error, std::string_view detail);

}  // namespace operon::serve
