#pragma once
// Ledger-backed result store for the serve daemon.
//
// ResultCache maps the ledger identity key (case / seed / options
// fingerprint — obs::ledger_key) to the completed run's LedgerRecord.
// Determinism makes this sound: two jobs with the same key MUST produce
// semantically identical records, so serving the stored one is
// indistinguishable from recomputing. A stored record is only served
// when its trip checkpoint equals the requester's expected trip —
// spec.stop_at_checkpoint, which is itself folded into the options
// fingerprint, so the expectation is a pure function of the key. A
// clean run (trip 0) serves specs with no stop request; a deterministic
// replay trip (stop_at_checkpoint == N, tripped at N) serves identical
// replay specs. A wall-clock budget trip or a mid-run cancel yields a
// record whose trip checkpoint depends on timing — it is appended to
// the ledger (real run history) but fails the trip match, so a fresh
// submit recomputes.
//
// In-flight duplicates are deduplicated through acquire(): the first
// job for a key becomes the owner and computes; concurrent jobs with
// the same key block until the owner fulfills (then return the record)
// or abandons (then the next waiter becomes the owner and recomputes).
// This keeps the ledger record *set* for a job batch independent of
// scheduling interleaving — the serve determinism contract.
//
// LedgerWriter is the single serialized append point for the daemon:
// obs::append_ledger_record is crash-safe per call but stages through a
// sibling temp file, so concurrent appenders from overlapping jobs
// could interleave partial lines or clobber each other's stage file.
// Every serve-side record goes through one LedgerWriter
// (tests/serve_test.cpp hammers it from many threads and re-parses the
// file; scripts/check_ledger.py validates it in CI).

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "obs/ledger.hpp"

namespace operon::serve {

class LedgerWriter {
 public:
  /// Empty path = discard (tests that only need the cache).
  explicit LedgerWriter(std::string path) : path_(std::move(path)) {}

  /// Append one record (crash-safe, serialized). Throws
  /// util::CheckError on I/O failure.
  void append(const obs::LedgerRecord& record);

  std::size_t appended() const;
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  mutable std::mutex mutex_;
  std::size_t appended_ = 0;
};

class ResultCache {
 public:
  enum class Outcome {
    Hit,    ///< record filled from the cache
    Owner,  ///< caller must compute and then fulfill() or abandon()
  };

  /// Warm the cache from an existing ledger file: one entry per key, a
  /// completed run (trip_checkpoint == 0) always preferred over a
  /// tripped one, last occurrence winning within each class (append
  /// order). Tripped records are kept because a deterministic replay
  /// trip IS the servable result for its key — lookup's trip match
  /// keeps timing-dependent trips (wall-clock, cancel) from ever being
  /// served. Returns the number of entries primed; a missing file
  /// primes nothing. The read is a salvage (obs::read_ledger_salvage):
  /// a torn or garbage line — the normal aftermath of a crash mid-
  /// append — is skipped, never fatal, so a daemon can always restart
  /// on its own ledger. `salvage`, when non-null, receives the skip
  /// account for the startup diagnostic.
  std::size_t prime_from_ledger(const std::string& path,
                                obs::LedgerSalvage* salvage = nullptr);

  /// Non-blocking probe (the submit-time fast path). Hits only when the
  /// stored record's trip checkpoint equals `expected_trip` (the
  /// requesting spec's stop_at_checkpoint; 0 = ran to completion).
  bool lookup(const std::string& key, std::uint64_t expected_trip,
              obs::LedgerRecord* record) const;

  /// Blocking probe-or-own: Hit fills `record`; Owner means the caller
  /// holds the pending slot for `key` and MUST call fulfill or abandon.
  /// Blocks while another owner is computing the same key. A stored
  /// record whose trip mismatches `expected_trip` counts as a miss (the
  /// owner's fulfill overwrites it).
  Outcome acquire(const std::string& key, std::uint64_t expected_trip,
                  obs::LedgerRecord* record);

  /// Owner completed: store the record when `cacheable` (deterministic
  /// outcome), release the pending slot, wake waiters.
  void fulfill(const std::string& key, const obs::LedgerRecord& record,
               bool cacheable);

  /// Owner failed or produced an uncacheable record: release the
  /// pending slot so the next waiter recomputes.
  void abandon(const std::string& key);

  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable pending_cv_;
  std::map<std::string, obs::LedgerRecord> done_;
  std::set<std::string> pending_;
};

}  // namespace operon::serve
