#include "serve/scheduler.hpp"

namespace operon::serve {

bool FairQueue::push(const QueuedJob& job, bool force) {
  if (!force && capacity_ != 0 && size_ >= capacity_) return false;
  tenants_[job.tenant].lanes[job.priority].push_back(job);
  ++size_;
  return true;
}

bool FairQueue::pop(QueuedJob* out) {
  if (size_ == 0) return false;
  // Best candidate: (priority desc, started asc, tenant asc). Each
  // tenant's own best is its highest non-empty lane's front; the map
  // iteration order makes every tie-break deterministic.
  TenantQueue* best_tenant = nullptr;
  const QueuedJob* best = nullptr;
  for (auto& [name, tenant] : tenants_) {
    if (tenant.lanes.empty()) continue;
    const QueuedJob& head = tenant.lanes.begin()->second.front();
    if (best == nullptr || head.priority > best->priority ||
        (head.priority == best->priority &&
         tenant.started < best_tenant->started)) {
      best_tenant = &tenant;
      best = &head;
    }
  }
  if (best == nullptr) return false;
  *out = *best;
  auto lane = best_tenant->lanes.begin();
  lane->second.pop_front();
  if (lane->second.empty()) best_tenant->lanes.erase(lane);
  ++best_tenant->started;
  --size_;
  return true;
}

bool FairQueue::remove(std::uint64_t id) {
  for (auto& [name, tenant] : tenants_) {
    for (auto lane = tenant.lanes.begin(); lane != tenant.lanes.end();
         ++lane) {
      for (auto it = lane->second.begin(); it != lane->second.end(); ++it) {
        if (it->id != id) continue;
        lane->second.erase(it);
        if (lane->second.empty()) tenant.lanes.erase(lane);
        --size_;
        return true;
      }
    }
  }
  return false;
}

std::uint64_t FairQueue::started(const std::string& tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.started;
}

std::size_t FairQueue::queued(const std::string& tenant) const {
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return 0;
  std::size_t total = 0;
  for (const auto& [priority, lane] : it->second.lanes) total += lane.size();
  return total;
}

}  // namespace operon::serve
