#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "benchgen/benchgen.hpp"
#include "model/design.hpp"
#include "obs/obs.hpp"
#include "obs/resource.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace operon::serve {

core::OperonOptions options_for(const JobSpec& spec) {
  core::OperonOptions options;
  const std::optional<core::SolverKind> kind =
      core::parse_solver_kind(spec.solver);
  OPERON_CHECK_MSG(kind.has_value(),
                   "unknown solver '" << spec.solver << "'");
  options.solver = *kind;
  if (!spec.portfolio_order.empty()) {
    options.portfolio.members =
        core::parse_portfolio_members(spec.portfolio_order);
  }
  options.portfolio.lanes = spec.portfolio_lanes;
  options.select.time_limit_s = spec.ilp_limit_s;
  if (spec.max_loss_db > 0.0) {
    options.params.optical.max_loss_db = spec.max_loss_db;
  }
  options.run_time_limit_s = spec.time_limit_s;
  options.stop_at_checkpoint = spec.stop_at_checkpoint;
  return options;
}

std::string case_label_for(const JobSpec& spec) {
  if (spec.groups == 0) return spec.case_id;
  return util::format("custom-g%zu-b%zu-%zu", spec.groups, spec.bits_lo,
                      spec.bits_hi);
}

std::string job_key(const JobSpec& spec) {
  return util::format("%s/%llu/%s", case_label_for(spec).c_str(),
                      static_cast<unsigned long long>(spec.seed),
                      core::options_fingerprint(options_for(spec)).c_str());
}

namespace {

benchgen::BenchmarkSpec benchmark_for(const JobSpec& spec,
                                      const std::string& case_label) {
  benchgen::BenchmarkSpec bench;
  if (spec.groups == 0) {
    bench = benchgen::table1_spec(spec.case_id);
  } else {
    bench.name = case_label;
    bench.num_groups = spec.groups;
    bench.bits_lo = spec.bits_lo;
    bench.bits_hi = spec.bits_hi;
  }
  bench.seed = spec.seed;
  return bench;
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      queue_(config_.queue_limit),
      writer_(config_.ledger_path),
      journal_(config_.journal_path),
      events_(config_.events_capacity) {
  if (!config_.events_path.empty()) {
    events_file_.open(config_.events_path, std::ios::app);
    OPERON_CHECK_MSG(events_file_.good(), "cannot open events file '"
                                              << config_.events_path << "'");
    // Runs under the log's emission mutex, so appends are serialized
    // and ordered exactly as emitted; flushed per line so a live tail
    // (the CI smoke, check_events.py) sees events promptly.
    events_.set_sink([this](const obs::Event& event) {
      events_file_ << obs::to_json_line(event) << '\n';
      events_file_.flush();
    });
  }
  if (!config_.ledger_path.empty()) {
    // A crashed writer leaves its uniquely-named stage file behind; the
    // ledger itself is intact (the staged line was never appended), so
    // cleanup is a notice, not an error.
    const std::size_t stale =
        obs::remove_stale_ledger_stages(config_.ledger_path);
    if (stale != 0) {
      events_.emit(util::LogLevel::Warn, "serve.ledger.stale_stage_removed",
                   util::format("removed %zu stale ledger stage file(s) "
                                "left by a crashed writer",
                                stale));
    }
    // An unterminated tail must go BEFORE this daemon's first append,
    // or the next record would weld onto the garbage. The torn job is
    // still owed by the journal (its settle never happened), so the
    // truncation loses bytes, not work.
    const std::size_t torn =
        obs::truncate_torn_ledger_tail(config_.ledger_path);
    if (torn != 0) {
      metrics_.add_counter("serve.ledger.torn_tail_truncated");
      events_.emit(util::LogLevel::Warn, "serve.ledger.repaired",
                   util::format("truncated a torn final line (%zu byte(s)) "
                                "left by a crashed append",
                                torn));
    }
  }
  obs::LedgerSalvage salvage;
  const std::size_t primed =
      cache_.prime_from_ledger(config_.ledger_path, &salvage);
  if (salvage.skipped != 0) {
    // Torn tail from a crash mid-append: skip and report, never refuse
    // to start — the parseable records still prime the cache.
    metrics_.add_counter("serve.ledger.salvage_skipped", salvage.skipped);
    events_.emit(
        util::LogLevel::Warn, "serve.ledger.salvaged",
        util::format("skipped %zu unparseable ledger line(s) (first: %s)",
                     salvage.skipped,
                     salvage.findings.empty() ? "?"
                                              : salvage.findings[0].c_str()));
  }
  if (primed != 0) metrics_.add_counter("serve.cache.primed", primed);
  metrics_.set_gauge("serve.cache.size", static_cast<double>(cache_.size()));
  recover_from_journal();
  std::size_t workers = config_.workers;
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back(&Server::worker_loop, this);
  }
}

Server::~Server() { shutdown(false); }

void Server::recover_from_journal() {
  if (!journal_.enabled()) return;
  // Same torn-tail rule as the ledger: repair before this daemon's
  // first append. The replay below would skip the torn line anyway;
  // truncating keeps the file strictly parseable going forward.
  const std::size_t torn = obs::truncate_torn_ledger_tail(journal_.path());
  if (torn != 0) {
    events_.emit(util::LogLevel::Warn, "serve.journal.repaired",
                 util::format("truncated a torn final line (%zu byte(s)) "
                              "left by a crashed append",
                              torn));
  }
  const JobJournal::Replay replay = JobJournal::replay(journal_.path());
  // Even without --recover the numbering must continue past the old
  // entries, or `of` references would become ambiguous.
  journal_.start_from(replay.max_seq);
  if (replay.skipped != 0) {
    metrics_.add_counter("serve.journal.salvage_skipped", replay.skipped);
    events_.emit(util::LogLevel::Warn, "serve.journal.salvaged",
                 util::format("skipped %zu unparseable journal line(s)",
                              replay.skipped));
  }
  if (!config_.recover) return;
  for (const JobJournal::PendingJob& pending : replay.pending) {
    recover_job(pending.spec, pending.seq);
  }
  if (!replay.pending.empty()) {
    metrics_.add_counter("serve.recovered", replay.pending.size());
    events_.emit(util::LogLevel::Info, "serve.recovered",
                 util::format("re-admitted %zu journaled job(s)",
                              replay.pending.size()));
  }
}

void Server::recover_job(const JobSpec& spec, std::uint64_t old_seq) {
  // The spec passed submit-time validation once, but the binary may
  // have changed across the restart: a case id that no longer exists is
  // dropped with a notice instead of poisoning the queue.
  if (spec.groups == 0) {
    const std::vector<std::string> cases = benchgen::table1_cases();
    if (std::find(cases.begin(), cases.end(), spec.case_id) == cases.end()) {
      journal_.recovered(old_seq);
      events_.emit(util::LogLevel::Warn, "serve.job.recover_dropped",
                   util::format("journaled case '%s' is no longer known",
                                spec.case_id.c_str()));
      return;
    }
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  auto owned = std::make_unique<Job>();
  Job& job = *owned;
  job.id = next_id_++;
  job.spec = spec;
  job.case_label = case_label_for(spec);
  job.key = job_key(spec);
  job.recovered = true;

  obs::LedgerRecord cached_record;
  if (cache_.lookup(job.key, spec.stop_at_checkpoint, &cached_record)) {
    // The run finished before the crash (its ledger append precedes the
    // settle entry by construction); only the settle entry was lost.
    // Serve the stored record — zero recompute.
    journal_.recovered(old_seq);
    metrics_.add_counter("serve.cache.hit");
    job.record = std::move(cached_record);
    job.has_record = true;
    job.cached = true;
    job.state = "done";
    emit_job_event(job, util::LogLevel::Info, "serve.job.recovered",
                   "served from cache");
    jobs_.emplace(job.id, std::move(owned));
    return;
  }

  // New accepted entry FIRST, recovered marker second: a crash between
  // the two replays as a duplicate (deduplicated by the cache at
  // execute time), never as a lost job.
  job.journal_seq = journal_.accepted(spec);
  journal_.recovered(old_seq);
  if (spec.deadline_s > 0.0) {
    // The original admission clock died with the old daemon; the
    // deadline restarts from re-admission.
    job.has_deadline = true;
    job.deadline = util::Deadline(spec.deadline_s);
  }
  QueuedJob queued;
  queued.id = job.id;
  queued.tenant = spec.tenant;
  queued.priority = spec.priority;
  queued.sequence = next_sequence_++;
  OPERON_CHECK_MSG(queue_.push(queued, /*force=*/true),
                   "forced queue push failed for recovered job " << job.id);
  ++tenant_outstanding_[spec.tenant];
  if (config_.session_stop) job.stop.chain(config_.session_stop);
  emit_job_event(job, util::LogLevel::Info, "serve.job.recovered");
  jobs_.emplace(job.id, std::move(owned));
  update_gauges_locked();
}

bool Server::draining() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

obs::MetricsSnapshot Server::metrics() const { return metrics_.snapshot(); }

std::size_t Server::cache_size() const { return cache_.size(); }

std::size_t Server::records_appended() const { return writer_.appended(); }

Response Server::handle(const Request& request) {
  switch (request.op) {
    case Op::Submit: return submit(request);
    case Op::Status: return status(request);
    case Op::Result: return result(request);
    case Op::Cancel: return cancel(request);
    case Op::Stats: return stats(request);
    case Op::Events: return events(request);
    case Op::Shutdown: {
      events_.emit(util::LogLevel::Info, "serve.shutdown",
                   request.cancel_running ? "cancel" : "drain");
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        draining_ = true;
        if (request.cancel_running) {
          QueuedJob queued;
          while (queue_.pop(&queued)) {
            Job* job = find_job(queued.id);
            if (job == nullptr) continue;
            settle(*job, "canceled");
            emit_job_event(*job, util::LogLevel::Warn, "serve.job.canceled",
                           "canceled at shutdown");
            metrics_.add_counter("serve.jobs.canceled");
          }
          for (auto& [id, job] : jobs_) {
            if (job->state == "running") {
              job->stop.request_stop(util::StopReason::Interrupt);
            }
          }
          update_gauges_locked();
        }
      }
      queue_cv_.notify_all();
      done_cv_.notify_all();
      Response response;
      response.ok = true;
      response.state = "draining";
      return response;
    }
  }
  return error_response("internal-error", "unhandled op");
}

std::string Server::handle_line(std::string_view line) {
  Response response;
  std::string op_name;
  try {
    const Request request = parse_request(line);
    op_name = std::string(to_string(request.op));
    response = handle(request);
  } catch (const util::CheckError& error) {
    response = error_response("bad-request", error.what());
  } catch (const std::exception& error) {  // never let a frame kill the daemon
    response = error_response("internal-error", error.what());
  }
  if (response.op.empty()) response.op = op_name;
  return serialize_clamped(std::move(response));
}

std::string Server::serialize_clamped(Response response) {
  std::string line = to_json_line(response);
  if (line.size() <= kMaxFrameBytes) return line;
  response.truncated = true;
  // Shed optional payloads, least essential first, until the line fits.
  for (std::string* payload :
       {&response.prom, &response.spans_json, &response.job_metrics_json,
        &response.stats_json, &response.events_json}) {
    if (payload->empty()) continue;
    payload->clear();
    line = to_json_line(response);
    if (line.size() <= kMaxFrameBytes) return line;
  }
  // Even the mandatory members overflow (a pathological record): keep
  // the framing intact with a structured error instead.
  Response fallback = error_response(
      "response-too-large",
      "response exceeded the frame limit even after shedding payloads");
  fallback.op = response.op;
  fallback.job = response.job;
  fallback.truncated = true;
  return to_json_line(fallback);
}

Response Server::submit(const Request& request) {
  const JobSpec& spec = request.spec;
  if (spec.groups == 0) {
    const std::vector<std::string> cases = benchgen::table1_cases();
    if (std::find(cases.begin(), cases.end(), spec.case_id) == cases.end()) {
      return error_response(
          "unknown-case",
          util::format("case '%s' is not a Table 1 id and no 'groups' "
                       "was given",
                       spec.case_id.c_str()));
    }
  }
  const std::string case_label = case_label_for(spec);
  const std::string key = job_key(spec);

  std::uint64_t id = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (draining_) {
      return error_response("shutting-down",
                            "server is draining; submit rejected");
    }
    metrics_.add_counter("serve.submitted");

    auto owned = std::make_unique<Job>();
    Job& job = *owned;
    job.id = next_id_;
    job.spec = spec;
    job.case_label = case_label;
    job.key = key;

    // Fast path: a cached key settles as done without queueing — the
    // warm-resubmission contract (second pass recomputes nothing).
    obs::LedgerRecord cached_record;
    if (cache_.lookup(key, spec.stop_at_checkpoint, &cached_record)) {
      metrics_.add_counter("serve.cache.hit");
      job.record = std::move(cached_record);
      job.has_record = true;
      job.cached = true;
      job.state = "done";
      id = job.id;
      ++next_id_;
      emit_job_event(job, util::LogLevel::Info, "serve.job.submitted");
      emit_job_event(job, util::LogLevel::Info, "serve.job.cache_hit");
      jobs_.emplace(id, std::move(owned));
      Response response;
      response.ok = true;
      fill_job_fields(job, &response);
      return response;
    }

    // Per-tenant admission quotas, checked before the global bound so
    // the rejection names the binding cause. Both are pure functions of
    // the queue/jobs state under this mutex — deterministic for a fixed
    // submission order.
    const std::size_t tenant_queued = queue_.queued(spec.tenant);
    const auto outstanding_it = tenant_outstanding_.find(spec.tenant);
    const std::size_t tenant_outstanding =
        outstanding_it == tenant_outstanding_.end() ? 0
                                                    : outstanding_it->second;
    const bool over_queued = config_.tenant_max_queued != 0 &&
                             tenant_queued >= config_.tenant_max_queued;
    const bool over_inflight =
        config_.tenant_max_inflight != 0 &&
        tenant_outstanding >= config_.tenant_max_inflight;
    if (over_queued || over_inflight) {
      metrics_.add_counter("serve.quota_rejected");
      update_gauges_locked();
      obs::EventContext context;
      context.source = key;
      context.case_id = case_label;
      context.seed = spec.seed;
      context.tenant = spec.tenant;
      events_.emit(util::LogLevel::Warn, "serve.job.quota_rejected",
                   over_queued ? "tenant max-queued quota reached"
                               : "tenant max-inflight quota reached",
                   context);
      return error_response(
          "quota-exceeded",
          over_queued
              ? util::format("tenant '%s' has %zu job(s) queued (max %zu)",
                             spec.tenant.c_str(), tenant_queued,
                             config_.tenant_max_queued)
              : util::format(
                    "tenant '%s' has %zu job(s) outstanding (max %zu)",
                    spec.tenant.c_str(), tenant_outstanding,
                    config_.tenant_max_inflight));
    }

    QueuedJob queued;
    queued.id = job.id;
    queued.tenant = spec.tenant;
    queued.priority = spec.priority;
    queued.sequence = next_sequence_;
    if (!queue_.push(queued)) {
      metrics_.add_counter("serve.rejected.backpressure");
      update_gauges_locked();
      // No id was assigned (next_id_ is untouched), so the context
      // carries job = 0: the submission never became a job.
      obs::EventContext context;
      context.source = key;
      context.case_id = case_label;
      context.seed = spec.seed;
      context.tenant = spec.tenant;
      events_.emit(util::LogLevel::Warn, "serve.job.backpressure",
                   "queue full; submit rejected", context);
      return error_response(
          "backpressure",
          util::format("queue is full (%zu jobs); retry later",
                       queue_.size()));
    }
    ++next_sequence_;
    id = job.id;
    ++next_id_;
    ++tenant_outstanding_[spec.tenant];
    // Admission is the durability point: once the accepted entry is on
    // disk, a crashed daemon owes this job to --recover.
    job.journal_seq = journal_.accepted(spec);
    if (spec.deadline_s > 0.0) {
      // The clock starts at admission, so queue wait counts against the
      // deadline (the quota story's other half: a tenant cannot park
      // unbounded work behind a deep queue).
      job.has_deadline = true;
      job.deadline = util::Deadline(spec.deadline_s);
    }
    if (config_.session_stop) job.stop.chain(config_.session_stop);
    emit_job_event(job, util::LogLevel::Info, "serve.job.submitted");
    jobs_.emplace(id, std::move(owned));
    update_gauges_locked();

    if (request.wait) {
      queue_cv_.notify_one();
      Job* waiting = find_job(id);
      done_cv_.wait(lock, [&] { return settled(*waiting); });
      Response response;
      response.ok = waiting->state != "failed";
      fill_job_fields(*waiting, &response);
      if (waiting->state == "failed") {
        response.error = "job-failed";
        response.detail = waiting->error;
      }
      return response;
    }
  }
  queue_cv_.notify_one();
  Response response;
  response.ok = true;
  response.job = id;
  response.state = "queued";
  response.key = key;
  return response;
}

Response Server::status(const Request& request) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Response response;
  if (request.job == 0) {
    response.ok = true;
    response.state = draining_ ? "draining" : "serving";
    response.detail = util::format(
        "%zu queued, %zu running, %zu jobs, %zu cached", queue_.size(),
        inflight_, jobs_.size(), cache_.size());
    return response;
  }
  const Job* job = find_job(request.job);
  if (job == nullptr) {
    return error_response("unknown-job",
                          util::format("no job %llu",
                                       static_cast<unsigned long long>(
                                           request.job)));
  }
  response.ok = true;
  fill_job_fields(*job, &response);
  response.has_record = false;  // records only travel on `result`
  if (request.with_metrics) {
    response.job_metrics_json = job->metrics_json;
    response.spans_json = job->spans_json;
  }
  return response;
}

Response Server::result(const Request& request) {
  std::unique_lock<std::mutex> lock(mutex_);
  Job* job = find_job(request.job);
  if (job == nullptr) {
    return error_response("unknown-job",
                          util::format("no job %llu",
                                       static_cast<unsigned long long>(
                                           request.job)));
  }
  if (request.wait) {
    done_cv_.wait(lock, [&] { return settled(*job); });
  }
  if (!settled(*job)) {
    Response response = error_response(
        "not-done", "job has not settled yet; pass \"wait\": true to block");
    fill_job_fields(*job, &response);
    response.has_record = false;
    return response;
  }
  Response response;
  response.ok = job->state != "failed";
  fill_job_fields(*job, &response);
  if (request.with_metrics) {
    response.job_metrics_json = job->metrics_json;
    response.spans_json = job->spans_json;
  }
  if (job->state == "failed") {
    response.error = "job-failed";
    response.detail = job->error;
  }
  return response;
}

Response Server::cancel(const Request& request) {
  Response response;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    Job* job = find_job(request.job);
    if (job == nullptr) {
      return error_response("unknown-job",
                            util::format("no job %llu",
                                         static_cast<unsigned long long>(
                                             request.job)));
    }
    if (job->state == "queued") {
      OPERON_CHECK_MSG(queue_.remove(job->id),
                       "queued job " << job->id << " missing from the queue");
      settle(*job, "canceled");
      emit_job_event(*job, util::LogLevel::Warn, "serve.job.canceled",
                     "canceled while queued");
      metrics_.add_counter("serve.jobs.canceled");
      update_gauges_locked();
    } else if (job->state == "running") {
      // Honored at the pipeline's next numbered checkpoint; the job
      // settles with a degraded run-interrupted record.
      job->stop.request_stop(util::StopReason::Interrupt);
    }
    response.ok = true;
    fill_job_fields(*job, &response);
    response.has_record = false;
  }
  done_cv_.notify_all();
  return response;
}

Response Server::stats(const Request& request) const {
  Response response;
  response.ok = true;
  response.stats_json = metrics_.to_json();
  if (request.prom) response.prom = metrics_.to_prometheus();
  return response;
}

Response Server::events(const Request& request) const {
  Response response;
  response.ok = true;
  std::vector<obs::Event> recent =
      events_.events(static_cast<std::size_t>(request.tail));
  std::string payload = obs::to_json_array(recent);
  // Pre-truncate oldest-first so the envelope (ok/op members) always
  // fits the frame; serialize_clamped stays as the backstop.
  constexpr std::size_t kBudget = kMaxFrameBytes - 256;
  while (payload.size() > kBudget && !recent.empty()) {
    recent.erase(recent.begin(),
                 recent.begin() +
                     static_cast<std::ptrdiff_t>((recent.size() + 1) / 2));
    response.truncated = true;
    payload = obs::to_json_array(recent);
  }
  response.events_json = std::move(payload);
  return response;
}

std::string Server::flight_recorder(std::size_t tail) const {
  return obs::flight_recorder_dump(events_, tail);
}

void Server::shutdown(bool cancel_running) {
  Request request;
  request.op = Op::Shutdown;
  request.cancel_running = cancel_running;
  (void)handle(request);
  std::vector<std::thread> to_join;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!joined_) {
      joined_ = true;
      to_join.swap(workers_);
    }
  }
  for (std::thread& worker : to_join) worker.join();
}

void Server::worker_loop() {
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [&] { return draining_ || !queue_.empty(); });
      QueuedJob queued;
      if (!queue_.pop(&queued)) {
        if (draining_) return;
        continue;
      }
      job = find_job(queued.id);
      OPERON_CHECK_MSG(job != nullptr,
                       "popped job " << queued.id << " has no record");
      job->state = "running";
      ++inflight_;
      update_gauges_locked();
      emit_job_event(*job, util::LogLevel::Info, "serve.job.started");
    }
    execute(*job);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --inflight_;
      update_gauges_locked();
    }
    done_cv_.notify_all();
  }
}

void Server::execute(Job& job) {
  obs::LedgerRecord hit;
  if (cache_.acquire(job.key, job.spec.stop_at_checkpoint, &hit) ==
      ResultCache::Outcome::Hit) {
    metrics_.add_counter("serve.cache.hit");
    emit_job_event(job, util::LogLevel::Info, "serve.job.cache_hit");
    const std::lock_guard<std::mutex> lock(mutex_);
    job.record = std::move(hit);
    job.has_record = true;
    job.cached = true;
    settle(job, "done");
    return;
  }
  metrics_.add_counter("serve.cache.miss");
  try {
    const model::Design design =
        benchgen::generate_benchmark(benchmark_for(job.spec, job.case_label));
    core::OperonOptions options = options_for(job.spec);
    options.threads = config_.job_threads;
    options.stop = job.stop.token();
    if (job.has_deadline) {
      // Wall-clock only: the deadline arms the job-level StopSource the
      // run chains to, never the semantic options, so the record's
      // fingerprint (and the cache key) is untouched. An already-
      // expired deadline keeps a hair of budget so the run trips at its
      // FIRST checkpoint and degrades onto the run-time-limit rung —
      // arm(<=0) would mean unlimited.
      job.stop.arm(std::max(job.deadline.remaining(), 1e-9));
    }

    obs::Observation job_obs;
    obs::LedgerCollector collector;
    collector.set_context(job.case_label, job.spec.seed);
    std::optional<obs::Watchdog> watchdog;
    if (config_.watchdog_ms > 0) {
      watchdog.emplace(options.stop,
                       std::chrono::milliseconds(config_.watchdog_ms));
    }
    {
      // Per-job observation: the run's own thread-scoped observation
      // absorbs into job_obs (the nearest ambient scope on this
      // thread), so job_obs holds exactly this job's metrics/spans.
      // The event scopes route the run's emit_event/OPERON_LOG lines
      // onto the daemon log, stamped with this job's context.
      const obs::ScopedThreadObservation obs_scope(job_obs);
      const obs::ScopedThreadEventLog events_scope(events_);
      obs::EventContext context;
      context.source = job.key;
      context.job = job.id;
      context.case_id = job.case_label;
      context.seed = job.spec.seed;
      context.tenant = job.spec.tenant;
      const obs::ScopedEventContext context_scope(context);
      const obs::ScopedThreadLedger scope(collector);
      (void)core::run_operon(design, options);
    }
    watchdog.reset();

    // Pre-render the job's observability payloads (status/result
    // with_metrics) and fold stage timings into the serve registry's
    // live histograms (serve.job.time.*, scraped by `operon_cli top`).
    const obs::MetricsSnapshot job_metrics = job_obs.metrics.snapshot();
    util::JsonWriter metrics_writer;
    obs::write_metric_points(metrics_writer, job_metrics.points,
                             /*include_timing=*/true, /*exact=*/true);
    std::map<std::string, std::pair<std::uint64_t, double>> span_totals;
    for (const obs::TraceEvent& event : job_obs.trace.events()) {
      if (event.phase != 'X') continue;
      auto& slot = span_totals[event.name];
      ++slot.first;
      slot.second += event.dur_us;
    }
    util::JsonWriter spans_writer;
    spans_writer.begin_array();
    for (const auto& [name, totals] : span_totals) {
      spans_writer.begin_object();
      spans_writer.key("name").value(name);
      spans_writer.key("count").value(totals.first);
      spans_writer.key("total_us").value(totals.second);
      spans_writer.end_object();
    }
    spans_writer.end_array();
    for (const obs::MetricPoint& point : job_metrics.points) {
      if (point.kind == obs::MetricKind::Gauge && point.timing &&
          point.name.rfind("time.", 0) == 0) {
        metrics_.observe("serve.job." + point.name, point.value);
      }
    }
    if (!config_.trace_dir.empty()) {
      const std::string path =
          config_.trace_dir + "/job-" + std::to_string(job.id) + ".json";
      std::ofstream trace_file(path);
      if (trace_file.good()) {
        trace_file << job_obs.trace.to_chrome_json(
                          {{"job", std::to_string(job.id)},
                           {"tenant", job.spec.tenant},
                           {"case", job.case_label},
                           {"seed", std::to_string(job.spec.seed)},
                           {"key", job.key}})
                   << "\n";
      }
      if (!trace_file.good()) {
        OPERON_LOG(Warn) << "failed to write job trace to '" << path << "'";
      }
    }

    const std::vector<obs::LedgerRecord> records = collector.records();
    OPERON_CHECK_MSG(records.size() == 1,
                     "run emitted " << records.size()
                                    << " ledger records, expected 1");
    const obs::LedgerRecord& record = records.front();
    writer_.append(record);
    // A deterministic outcome — the trip is exactly what the spec asked
    // for (0 = clean completion, N = a stop_at_checkpoint replay that
    // reached its checkpoint) — is cacheable; a wall-clock trip or a
    // cancel is real run history but must never be served back (see
    // serve/cache.hpp).
    const bool cacheable =
        record.trip_checkpoint == job.spec.stop_at_checkpoint;
    cache_.fulfill(job.key, record, cacheable);
    metrics_.set_gauge("serve.cache.size", static_cast<double>(cache_.size()));

    // The job-level source never trips itself — the run's chained
    // source does, and reports the interrupt in the diagnostics.
    bool canceled = false;
    bool time_limited = false;
    for (const auto& [diag, count] : record.diagnostics) {
      if (diag == "run-interrupted" && count > 0) canceled = true;
      if (diag == "run-time-limit" && count > 0) time_limited = true;
    }
    if (job.has_deadline && time_limited && job.deadline.expired()) {
      metrics_.add_counter("serve.deadline.tripped");
      emit_job_event(job, util::LogLevel::Warn, "serve.job.deadline_tripped",
                     "per-job deadline expired; run degraded at its next "
                     "checkpoint");
    }
    metrics_.add_counter(canceled ? "serve.jobs.canceled"
                                  : "serve.jobs.completed");
    emit_job_event(job,
                   canceled ? util::LogLevel::Warn : util::LogLevel::Info,
                   canceled ? "serve.job.canceled" : "serve.job.completed");
    const std::lock_guard<std::mutex> lock(mutex_);
    job.record = record;
    job.has_record = true;
    job.metrics_json = metrics_writer.str();
    job.spans_json = spans_writer.str();
    settle(job, canceled ? "canceled" : "done");
  } catch (const util::CheckError& error) {
    cache_.abandon(job.key);
    metrics_.add_counter("serve.jobs.failed");
    emit_job_event(job, util::LogLevel::Error, "serve.job.failed",
                   error.what());
    const std::lock_guard<std::mutex> lock(mutex_);
    job.error = error.what();
    settle(job, "failed");
  }
}

void Server::settle(Job& job, std::string_view state) {
  job.state = std::string(state);
  // Only queue-admitted jobs reach settle (cache-served submits set
  // their state directly), so the quota count and the journal entry
  // unwind exactly once per admission. The ledger append (in execute)
  // precedes this settle entry — recovery relies on that order.
  const auto it = tenant_outstanding_.find(job.spec.tenant);
  if (it != tenant_outstanding_.end() && it->second > 0) {
    if (--it->second == 0) tenant_outstanding_.erase(it);
  }
  journal_.settled(job.journal_seq, state == "done" ? "completed" : state);
}

void Server::emit_job_event(const Job& job, util::LogLevel level,
                            std::string_view name, std::string_view message) {
  obs::EventContext context;
  context.source = job.key;
  context.job = job.id;
  context.case_id = job.case_label;
  context.seed = job.spec.seed;
  context.tenant = job.spec.tenant;
  events_.emit(level, name, message, context);
}

Server::Job* Server::find_job(std::uint64_t id) {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second.get();
}

bool Server::settled(const Job& job) const {
  return job.state == "done" || job.state == "failed" ||
         job.state == "canceled";
}

void Server::update_gauges_locked() {
  metrics_.set_gauge("serve.queue.depth", static_cast<double>(queue_.size()));
  metrics_.set_gauge("serve.jobs.inflight", static_cast<double>(inflight_));
}

void Server::fill_job_fields(const Job& job, Response* response) const {
  response->job = job.id;
  response->state = job.state;
  response->cached = job.cached;
  response->key = job.key;
  if (job.has_record) {
    response->has_record = true;
    response->record = job.record;
  }
}

}  // namespace operon::serve
