#include "serve/protocol.hpp"

#include <cmath>
#include <optional>
#include <utility>
#include <vector>

#include "core/flow.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace operon::serve {

namespace {

using util::JsonType;
using util::JsonValue;

/// Seeds above 2^53 would silently round through the JSON double
/// representation; reject them instead of corrupting the identity key.
constexpr std::uint64_t kMaxExactUint = 1ULL << 53;

std::uint64_t as_uint(const JsonValue& value, const char* where,
                      std::uint64_t max = kMaxExactUint) {
  OPERON_CHECK_MSG(value.is(JsonType::Number), "'" << where
                   << "' must be a number");
  const double number = value.as_number();
  OPERON_CHECK_MSG(number >= 0.0 && number <= static_cast<double>(max) &&
                   number == std::floor(number),
                   "'" << where << "' must be an integer in [0, " << max
                       << "], got " << number);
  return static_cast<std::uint64_t>(number);
}

double as_budget(const JsonValue& value, const char* where) {
  OPERON_CHECK_MSG(value.is(JsonType::Number), "'" << where
                   << "' must be a number");
  const double number = value.as_number();
  OPERON_CHECK_MSG(std::isfinite(number) && number >= 0.0 &&
                   number <= 1e9,
                   "'" << where << "' must be a finite non-negative budget");
  return number;
}

bool as_bool(const JsonValue& value, const char* where) {
  OPERON_CHECK_MSG(value.is(JsonType::Bool), "'" << where
                   << "' must be a boolean");
  return value.as_bool();
}

std::string as_name(const JsonValue& value, const char* where,
                    std::size_t max_bytes) {
  OPERON_CHECK_MSG(value.is(JsonType::String), "'" << where
                   << "' must be a string");
  const std::string& text = value.as_string();
  OPERON_CHECK_MSG(!text.empty() && text.size() <= max_bytes,
                   "'" << where << "' must be 1.." << max_bytes << " bytes");
  for (const char c : text) {
    OPERON_CHECK_MSG(c >= 0x20 && c != 0x7f,
                     "'" << where << "' must not contain control characters");
  }
  return text;
}

void check_frame_size(std::string_view line) {
  OPERON_CHECK_MSG(line.size() <= kMaxFrameBytes,
                   "frame of " << line.size() << " bytes exceeds the "
                   << kMaxFrameBytes << "-byte protocol limit");
}

Op op_from_name(std::string_view name) {
  if (name == "submit") return Op::Submit;
  if (name == "status") return Op::Status;
  if (name == "result") return Op::Result;
  if (name == "cancel") return Op::Cancel;
  if (name == "stats") return Op::Stats;
  if (name == "events") return Op::Events;
  if (name == "shutdown") return Op::Shutdown;
  OPERON_CHECK_MSG(false, "unknown op '" << name << "'");
  return Op::Status;  // unreachable
}

}  // namespace

std::string_view to_string(Op op) {
  switch (op) {
    case Op::Submit: return "submit";
    case Op::Status: return "status";
    case Op::Result: return "result";
    case Op::Cancel: return "cancel";
    case Op::Stats: return "stats";
    case Op::Events: return "events";
    case Op::Shutdown: return "shutdown";
  }
  return "unknown";
}

Request parse_request(std::string_view line) {
  check_frame_size(line);
  const JsonValue doc = util::parse_json(line);
  OPERON_CHECK_MSG(doc.is(JsonType::Object), "request must be a JSON object");
  const JsonValue* op_member = doc.find("op");
  OPERON_CHECK_MSG(op_member != nullptr && op_member->is(JsonType::String),
                   "request must carry a string 'op'");
  Request request;
  request.op = op_from_name(op_member->as_string());

  const bool is_submit = request.op == Op::Submit;
  for (const auto& [key, value] : doc.members()) {
    if (key == "op") continue;
    if (key == "job" &&
        (request.op == Op::Status || request.op == Op::Result ||
         request.op == Op::Cancel)) {
      request.job = as_uint(value, "job");
    } else if (key == "wait" && (is_submit || request.op == Op::Result)) {
      request.wait = as_bool(value, "wait");
    } else if (key == "cancel_running" && request.op == Op::Shutdown) {
      request.cancel_running = as_bool(value, "cancel_running");
    } else if (key == "tail" && request.op == Op::Events) {
      request.tail = as_uint(value, "tail", 1000000);
    } else if (key == "prom" && request.op == Op::Stats) {
      request.prom = as_bool(value, "prom");
    } else if (key == "with_metrics" &&
               (request.op == Op::Status || request.op == Op::Result)) {
      request.with_metrics = as_bool(value, "with_metrics");
    } else if (key == "case" && is_submit) {
      request.spec.case_id = as_name(value, "case", 32);
    } else if (key == "seed" && is_submit) {
      request.spec.seed = as_uint(value, "seed");
    } else if (key == "groups" && is_submit) {
      request.spec.groups =
          static_cast<std::size_t>(as_uint(value, "groups", 1000000));
    } else if (key == "bits_lo" && is_submit) {
      request.spec.bits_lo =
          static_cast<std::size_t>(as_uint(value, "bits_lo", 64));
    } else if (key == "bits_hi" && is_submit) {
      request.spec.bits_hi =
          static_cast<std::size_t>(as_uint(value, "bits_hi", 64));
    } else if (key == "tenant" && is_submit) {
      request.spec.tenant = as_name(value, "tenant", 64);
    } else if (key == "priority" && is_submit) {
      OPERON_CHECK_MSG(value.is(JsonType::Number),
                       "'priority' must be a number");
      const double p = value.as_number();
      OPERON_CHECK_MSG(p >= -1e6 && p <= 1e6 && p == std::floor(p),
                       "'priority' must be an integer in [-1e6, 1e6]");
      request.spec.priority = static_cast<int>(p);
    } else if (key == "solver" && is_submit) {
      const std::string solver = as_name(value, "solver", 24);
      const std::optional<core::SolverKind> kind =
          core::parse_solver_kind(solver);
      OPERON_CHECK_MSG(kind.has_value(),
                       "'solver' must be one of lr|ilp|mip|portfolio");
      // Store the canonical name so aliased submits share one identity.
      request.spec.solver = std::string(core::to_string(*kind));
    } else if (key == "portfolio_order" && is_submit) {
      const std::string order = as_name(value, "portfolio_order", 128);
      // Canonicalize through the core parser (throws CheckError on
      // unknown members or duplicates — a malformed frame).
      request.spec.portfolio_order =
          util::join(core::parse_portfolio_members(order), ",");
    } else if (key == "portfolio_lanes" && is_submit) {
      request.spec.portfolio_lanes =
          static_cast<std::size_t>(as_uint(value, "portfolio_lanes", 1024));
    } else if (key == "ilp_limit_s" && is_submit) {
      request.spec.ilp_limit_s = as_budget(value, "ilp_limit_s");
    } else if (key == "max_loss_db" && is_submit) {
      request.spec.max_loss_db = as_budget(value, "max_loss_db");
    } else if (key == "time_limit_s" && is_submit) {
      request.spec.time_limit_s = as_budget(value, "time_limit_s");
    } else if (key == "stop_at_checkpoint" && is_submit) {
      request.spec.stop_at_checkpoint = as_uint(value, "stop_at_checkpoint");
    } else if (key == "deadline_s" && is_submit) {
      request.spec.deadline_s = as_budget(value, "deadline_s");
    } else {
      OPERON_CHECK_MSG(false, "unknown member '" << key << "' for op '"
                              << to_string(request.op) << "'");
    }
  }
  if (is_submit) {
    OPERON_CHECK_MSG(request.spec.bits_lo >= 1 &&
                     request.spec.bits_lo <= request.spec.bits_hi,
                     "'bits_lo'/'bits_hi' must satisfy 1 <= lo <= hi");
  }
  return request;
}

std::string to_json_line(const Request& request) {
  util::JsonWriter json;
  json.begin_object();
  json.key("op").value(to_string(request.op));
  switch (request.op) {
    case Op::Submit: {
      const JobSpec& spec = request.spec;
      if (spec.groups > 0) {
        json.key("groups").value(static_cast<std::uint64_t>(spec.groups));
        json.key("bits_lo").value(static_cast<std::uint64_t>(spec.bits_lo));
        json.key("bits_hi").value(static_cast<std::uint64_t>(spec.bits_hi));
      } else {
        json.key("case").value(spec.case_id);
      }
      json.key("seed").value(spec.seed);
      json.key("tenant").value(spec.tenant);
      json.key("priority").value(spec.priority);
      json.key("solver").value(spec.solver);
      if (!spec.portfolio_order.empty()) {
        json.key("portfolio_order").value(spec.portfolio_order);
      }
      if (spec.portfolio_lanes != 0) {
        json.key("portfolio_lanes")
            .value(static_cast<std::uint64_t>(spec.portfolio_lanes));
      }
      json.key("ilp_limit_s").value(spec.ilp_limit_s);
      if (spec.max_loss_db > 0.0) {
        json.key("max_loss_db").value(spec.max_loss_db);
      }
      if (spec.time_limit_s > 0.0) {
        json.key("time_limit_s").value(spec.time_limit_s);
      }
      if (spec.stop_at_checkpoint != 0) {
        json.key("stop_at_checkpoint").value(spec.stop_at_checkpoint);
      }
      if (spec.deadline_s > 0.0) {
        json.key("deadline_s").value(spec.deadline_s);
      }
      if (request.wait) json.key("wait").value(true);
      break;
    }
    case Op::Status:
    case Op::Cancel:
      json.key("job").value(request.job);
      if (request.op == Op::Status && request.with_metrics) {
        json.key("with_metrics").value(true);
      }
      break;
    case Op::Result:
      json.key("job").value(request.job);
      if (request.wait) json.key("wait").value(true);
      if (request.with_metrics) json.key("with_metrics").value(true);
      break;
    case Op::Shutdown:
      if (request.cancel_running) json.key("cancel_running").value(true);
      break;
    case Op::Stats:
      if (request.prom) json.key("prom").value(true);
      break;
    case Op::Events:
      if (request.tail != 0) json.key("tail").value(request.tail);
      break;
  }
  json.end_object();
  return json.str();
}

std::string to_json_line(const Response& response) {
  // The record and stats payloads are themselves canonical JSON
  // documents (ledger line, metrics registry); embedding goes through
  // parse_json so the result is one well-formed tree, not string
  // splicing.
  JsonValue::Members members;
  members.emplace_back("ok", JsonValue::make_bool(response.ok));
  if (!response.op.empty()) {
    members.emplace_back("op", JsonValue::make_string(response.op));
  }
  if (!response.error.empty()) {
    members.emplace_back("error", JsonValue::make_string(response.error));
  }
  if (!response.detail.empty()) {
    members.emplace_back("detail", JsonValue::make_string(response.detail));
  }
  if (response.job != 0) {
    members.emplace_back(
        "job", JsonValue::make_number(static_cast<double>(response.job)));
  }
  if (!response.state.empty()) {
    members.emplace_back("state", JsonValue::make_string(response.state));
  }
  if (response.cached) {
    members.emplace_back("cached", JsonValue::make_bool(true));
  }
  if (!response.key.empty()) {
    members.emplace_back("key", JsonValue::make_string(response.key));
  }
  if (response.has_record) {
    members.emplace_back("record",
                         util::parse_json(obs::to_json_line(response.record)));
  }
  if (!response.stats_json.empty()) {
    members.emplace_back("stats", util::parse_json(response.stats_json));
  }
  if (!response.prom.empty()) {
    members.emplace_back("prom", JsonValue::make_string(response.prom));
  }
  if (!response.job_metrics_json.empty()) {
    members.emplace_back("metrics",
                         util::parse_json(response.job_metrics_json));
  }
  if (!response.spans_json.empty()) {
    members.emplace_back("spans", util::parse_json(response.spans_json));
  }
  if (!response.events_json.empty()) {
    members.emplace_back("events", util::parse_json(response.events_json));
  }
  if (response.truncated) {
    members.emplace_back("truncated", JsonValue::make_bool(true));
  }
  return util::write_json(JsonValue::make_object(std::move(members)));
}

Response parse_response(std::string_view line) {
  check_frame_size(line);
  const JsonValue doc = util::parse_json(line);
  OPERON_CHECK_MSG(doc.is(JsonType::Object), "response must be a JSON object");
  Response response;
  bool saw_ok = false;
  for (const auto& [key, value] : doc.members()) {
    if (key == "ok") {
      response.ok = as_bool(value, "ok");
      saw_ok = true;
    } else if (key == "op") {
      response.op = as_name(value, "op", 16);
    } else if (key == "error") {
      response.error = as_name(value, "error", 64);
    } else if (key == "detail") {
      OPERON_CHECK_MSG(value.is(JsonType::String),
                       "'detail' must be a string");
      response.detail = value.as_string();
    } else if (key == "job") {
      response.job = as_uint(value, "job");
    } else if (key == "state") {
      response.state = as_name(value, "state", 16);
    } else if (key == "cached") {
      response.cached = as_bool(value, "cached");
    } else if (key == "key") {
      response.key = as_name(value, "key", 256);
    } else if (key == "record") {
      response.record = obs::ledger_record_from_json(value);
      response.has_record = true;
    } else if (key == "stats") {
      response.stats_json = util::write_json(value);
    } else if (key == "prom") {
      OPERON_CHECK_MSG(value.is(JsonType::String), "'prom' must be a string");
      response.prom = value.as_string();
    } else if (key == "metrics") {
      OPERON_CHECK_MSG(value.is(JsonType::Array), "'metrics' must be an array");
      response.job_metrics_json = util::write_json(value);
    } else if (key == "spans") {
      OPERON_CHECK_MSG(value.is(JsonType::Array), "'spans' must be an array");
      response.spans_json = util::write_json(value);
    } else if (key == "events") {
      OPERON_CHECK_MSG(value.is(JsonType::Array), "'events' must be an array");
      response.events_json = util::write_json(value);
    } else if (key == "truncated") {
      response.truncated = as_bool(value, "truncated");
    } else {
      OPERON_CHECK_MSG(false, "unknown response member '" << key << "'");
    }
  }
  OPERON_CHECK_MSG(saw_ok, "response must carry 'ok'");
  return response;
}

Response error_response(std::string_view error, std::string_view detail) {
  Response response;
  response.ok = false;
  response.error = std::string(error);
  response.detail = std::string(detail);
  return response;
}

}  // namespace operon::serve
