#include "ilp/model.hpp"

#include <cmath>

#include "util/check.hpp"

namespace operon::ilp {

std::size_t Model::add_variable(double lower, double upper, bool integral,
                                std::string name) {
  OPERON_CHECK_MSG(lower <= upper, "variable '" << name << "' has lb > ub");
  variables_.push_back({lower, upper, integral, std::move(name)});
  return variables_.size() - 1;
}

std::size_t Model::add_binary(std::string name) {
  return add_variable(0.0, 1.0, true, std::move(name));
}

std::size_t Model::add_continuous(double lower, double upper,
                                  std::string name) {
  return add_variable(lower, upper, false, std::move(name));
}

void Model::add_constraint(LinearExpr expr, Relation relation, double rhs,
                           std::string name) {
  constraints_.push_back({std::move(expr), relation, rhs, std::move(name)});
}

void Model::set_objective(LinearExpr expr, Sense sense) {
  objective_ = std::move(expr);
  sense_ = sense;
}

double Model::evaluate_expr(const LinearExpr& expr,
                            const std::vector<double>& values) const {
  double sum = 0.0;
  for (const LinearTerm& term : expr) {
    OPERON_DCHECK(term.var < values.size());
    sum += term.coeff * values[term.var];
  }
  return sum;
}

double Model::evaluate_objective(const std::vector<double>& values) const {
  return evaluate_expr(objective_, values);
}

bool Model::is_feasible(const std::vector<double>& values, double tol) const {
  if (values.size() != variables_.size()) return false;
  for (std::size_t v = 0; v < variables_.size(); ++v) {
    const Variable& var = variables_[v];
    if (values[v] < var.lower - tol || values[v] > var.upper + tol) return false;
    if (var.integral &&
        std::abs(values[v] - std::round(values[v])) > tol) {
      return false;
    }
  }
  for (const Constraint& con : constraints_) {
    const double lhs = evaluate_expr(con.expr, values);
    switch (con.relation) {
      case Relation::LessEq:
        if (lhs > con.rhs + tol) return false;
        break;
      case Relation::GreaterEq:
        if (lhs < con.rhs - tol) return false;
        break;
      case Relation::Equal:
        if (std::abs(lhs - con.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

void Model::validate() const {
  for (const Variable& var : variables_) {
    OPERON_CHECK(var.lower <= var.upper);
    OPERON_CHECK(std::isfinite(var.lower) && std::isfinite(var.upper));
  }
  const auto check_expr = [&](const LinearExpr& expr) {
    for (const LinearTerm& term : expr) {
      OPERON_CHECK_MSG(term.var < variables_.size(),
                       "expression references unknown variable " << term.var);
      OPERON_CHECK(std::isfinite(term.coeff));
    }
  };
  check_expr(objective_);
  for (const Constraint& con : constraints_) {
    check_expr(con.expr);
    OPERON_CHECK(std::isfinite(con.rhs));
  }
}

}  // namespace operon::ilp
