#include "ilp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace operon::ilp {

namespace {

// Dense tableau over columns [structural y_j | slacks | artificials | rhs].
// Structural variables are the model's, shifted so y_j = x_j - lb_j >= 0.
class Tableau {
 public:
  Tableau(const Model& model, const std::vector<double>& lower,
          const std::vector<double>& upper, const LpOptions& options)
      : model_(model), lower_(lower), upper_(upper), options_(options) {}

  LpResult run() {
    build_rows();
    if (infeasible_bounds_) return {LpStatus::Infeasible, 0.0, {}};
    assemble();
    // Phase 1: drive artificials to zero.
    if (num_artificials_ > 0) {
      set_phase1_objective();
      const LpStatus status = iterate();
      if (status != LpStatus::Optimal) return {status, 0.0, {}};
      if (-obj_[cols_] > 1e-7) return {LpStatus::Infeasible, 0.0, {}};
      expel_artificials();
    }
    // Phase 2: optimize the real objective.
    set_phase2_objective();
    const LpStatus status = iterate();
    if (status != LpStatus::Optimal) return {status, 0.0, {}};
    return extract();
  }

 private:
  struct Row {
    std::vector<double> coeff;  ///< per structural variable
    double rhs = 0.0;
    Relation relation = Relation::LessEq;
  };

  void build_rows() {
    const std::size_t n = model_.num_variables();
    for (std::size_t v = 0; v < n; ++v) {
      if (upper_[v] < lower_[v] - 1e-12) {
        infeasible_bounds_ = true;
        return;
      }
    }
    // Model constraints, shifted by lower bounds.
    for (std::size_t c = 0; c < model_.num_constraints(); ++c) {
      const Constraint& con = model_.constraint(c);
      Row row;
      row.coeff.assign(n, 0.0);
      for (const LinearTerm& term : con.expr) row.coeff[term.var] += term.coeff;
      double shift = 0.0;
      for (std::size_t v = 0; v < n; ++v) shift += row.coeff[v] * lower_[v];
      row.rhs = con.rhs - shift;
      row.relation = con.relation;
      rows_.push_back(std::move(row));
    }
    // Finite upper bounds become y_v <= ub - lb rows.
    for (std::size_t v = 0; v < n; ++v) {
      const double span = upper_[v] - lower_[v];
      if (span < 1e14) {
        Row row;
        row.coeff.assign(n, 0.0);
        row.coeff[v] = 1.0;
        row.rhs = span;
        row.relation = Relation::LessEq;
        rows_.push_back(std::move(row));
      }
    }
  }

  void assemble() {
    const std::size_t n = model_.num_variables();
    const std::size_t m = rows_.size();
    // Normalize rhs >= 0 and count slacks/artificials.
    std::size_t num_slacks = 0;
    for (Row& row : rows_) {
      if (row.rhs < 0.0) {
        for (double& a : row.coeff) a = -a;
        row.rhs = -row.rhs;
        if (row.relation == Relation::LessEq) row.relation = Relation::GreaterEq;
        else if (row.relation == Relation::GreaterEq) row.relation = Relation::LessEq;
      }
      if (row.relation != Relation::Equal) ++num_slacks;
    }
    // Artificials: GreaterEq and Equal rows need one (their slack, if any,
    // enters with -1 so it cannot seed the basis).
    num_artificials_ = 0;
    for (const Row& row : rows_) {
      if (row.relation != Relation::LessEq) ++num_artificials_;
    }
    slack_begin_ = n;
    artificial_begin_ = n + num_slacks;
    cols_ = n + num_slacks + num_artificials_;

    a_.assign(m, std::vector<double>(cols_ + 1, 0.0));
    basis_.assign(m, 0);
    std::size_t slack = slack_begin_;
    std::size_t artificial = artificial_begin_;
    for (std::size_t r = 0; r < m; ++r) {
      const Row& row = rows_[r];
      for (std::size_t v = 0; v < n; ++v) a_[r][v] = row.coeff[v];
      a_[r][cols_] = row.rhs;
      switch (row.relation) {
        case Relation::LessEq:
          a_[r][slack] = 1.0;
          basis_[r] = slack++;
          break;
        case Relation::GreaterEq:
          a_[r][slack] = -1.0;
          ++slack;
          a_[r][artificial] = 1.0;
          basis_[r] = artificial++;
          break;
        case Relation::Equal:
          a_[r][artificial] = 1.0;
          basis_[r] = artificial++;
          break;
      }
    }
  }

  void set_phase1_objective() {
    obj_.assign(cols_ + 1, 0.0);
    for (std::size_t c = artificial_begin_; c < cols_; ++c) obj_[c] = 1.0;
    price_out();
    phase1_ = true;
  }

  void set_phase2_objective() {
    obj_.assign(cols_ + 1, 0.0);
    const double sign = model_.sense() == Sense::Minimize ? 1.0 : -1.0;
    for (const LinearTerm& term : model_.objective()) {
      obj_[term.var] += sign * term.coeff;
    }
    price_out();
    phase1_ = false;
  }

  /// Subtract basic rows so reduced costs of basic columns become zero.
  void price_out() {
    for (std::size_t r = 0; r < a_.size(); ++r) {
      const double c = obj_[basis_[r]];
      if (std::abs(c) < 1e-15) continue;
      for (std::size_t j = 0; j <= cols_; ++j) obj_[j] -= c * a_[r][j];
    }
  }

  LpStatus iterate() {
    for (std::size_t iter = 0; iter < options_.max_iterations; ++iter) {
      // Bland's rule: entering = lowest-index column with negative reduced
      // cost (artificials may not re-enter in phase 2).
      const std::size_t limit = phase1_ ? cols_ : artificial_begin_;
      std::size_t enter = limit;
      for (std::size_t j = 0; j < limit; ++j) {
        if (obj_[j] < -options_.eps) {
          enter = j;
          break;
        }
      }
      if (enter == limit) return LpStatus::Optimal;

      // Leaving: min ratio, ties by lowest basis index (Bland).
      std::size_t leave = a_.size();
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < a_.size(); ++r) {
        if (a_[r][enter] <= options_.eps) continue;
        const double ratio = a_[r][cols_] / a_[r][enter];
        if (ratio < best_ratio - 1e-12 ||
            (ratio < best_ratio + 1e-12 &&
             (leave == a_.size() || basis_[r] < basis_[leave]))) {
          best_ratio = ratio;
          leave = r;
        }
      }
      if (leave == a_.size()) return LpStatus::Unbounded;
      pivot(leave, enter);
    }
    return LpStatus::IterationLimit;
  }

  void pivot(std::size_t row, std::size_t col) {
    const double inv = 1.0 / a_[row][col];
    for (std::size_t j = 0; j <= cols_; ++j) a_[row][j] *= inv;
    a_[row][col] = 1.0;  // exact
    for (std::size_t r = 0; r < a_.size(); ++r) {
      if (r == row) continue;
      const double factor = a_[r][col];
      if (std::abs(factor) < 1e-15) continue;
      for (std::size_t j = 0; j <= cols_; ++j) a_[r][j] -= factor * a_[row][j];
      a_[r][col] = 0.0;
    }
    const double factor = obj_[col];
    if (std::abs(factor) > 1e-15) {
      for (std::size_t j = 0; j <= cols_; ++j) obj_[j] -= factor * a_[row][j];
      obj_[col] = 0.0;
    }
    basis_[row] = col;
  }

  /// After phase 1, pivot basic artificials out (or drop redundant rows).
  void expel_artificials() {
    for (std::size_t r = 0; r < a_.size();) {
      if (basis_[r] < artificial_begin_) {
        ++r;
        continue;
      }
      std::size_t enter = artificial_begin_;
      for (std::size_t j = 0; j < artificial_begin_; ++j) {
        if (std::abs(a_[r][j]) > 1e-9) {
          enter = j;
          break;
        }
      }
      if (enter < artificial_begin_) {
        pivot(r, enter);
        ++r;
      } else {
        // Redundant row: remove it.
        a_.erase(a_.begin() + static_cast<std::ptrdiff_t>(r));
        basis_.erase(basis_.begin() + static_cast<std::ptrdiff_t>(r));
      }
    }
    // Zero out artificial columns so they can never re-enter.
    for (auto& row : a_) {
      for (std::size_t j = artificial_begin_; j < cols_; ++j) row[j] = 0.0;
    }
  }

  LpResult extract() const {
    const std::size_t n = model_.num_variables();
    LpResult result;
    result.status = LpStatus::Optimal;
    result.values.assign(n, 0.0);
    for (std::size_t r = 0; r < a_.size(); ++r) {
      if (basis_[r] < n) result.values[basis_[r]] = a_[r][cols_];
    }
    for (std::size_t v = 0; v < n; ++v) {
      result.values[v] += lower_[v];
      // Clamp tiny numeric drift back into bounds.
      result.values[v] = std::clamp(result.values[v], lower_[v], upper_[v]);
    }
    result.objective = model_.evaluate_objective(result.values);
    return result;
  }

  const Model& model_;
  const std::vector<double>& lower_;
  const std::vector<double>& upper_;
  LpOptions options_;

  std::vector<Row> rows_;
  std::vector<std::vector<double>> a_;
  std::vector<double> obj_;
  std::vector<std::size_t> basis_;
  std::size_t cols_ = 0;
  std::size_t slack_begin_ = 0;
  std::size_t artificial_begin_ = 0;
  std::size_t num_artificials_ = 0;
  bool phase1_ = false;
  bool infeasible_bounds_ = false;
};

}  // namespace

LpResult solve_lp(const Model& model, const LpOptions& options) {
  std::vector<double> lower(model.num_variables());
  std::vector<double> upper(model.num_variables());
  for (std::size_t v = 0; v < model.num_variables(); ++v) {
    lower[v] = model.variable(v).lower;
    upper[v] = model.variable(v).upper;
  }
  return solve_lp_with_bounds(model, lower, upper, options);
}

LpResult solve_lp_with_bounds(const Model& model,
                              const std::vector<double>& lower,
                              const std::vector<double>& upper,
                              const LpOptions& options) {
  OPERON_CHECK(lower.size() == model.num_variables());
  OPERON_CHECK(upper.size() == model.num_variables());
  model.validate();
  for (double lb : lower) OPERON_CHECK(std::isfinite(lb));
  Tableau tableau(model, lower, upper, options);
  return tableau.run();
}

}  // namespace operon::ilp
