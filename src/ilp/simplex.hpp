#pragma once
// Two-phase dense tableau primal simplex for the LP relaxation of a
// Model. Variable bounds are materialized (lower bounds shifted to zero,
// finite upper bounds added as rows); Bland's rule guards against
// cycling. Intended for the small/medium LPs arising in branch-and-bound
// nodes and unit tests — O(m·n) memory per tableau.

#include <vector>

#include "ilp/model.hpp"

namespace operon::ilp {

enum class LpStatus { Optimal, Infeasible, Unbounded, IterationLimit };

struct LpResult {
  LpStatus status = LpStatus::Infeasible;
  double objective = 0.0;
  std::vector<double> values;  ///< per original model variable
};

struct LpOptions {
  std::size_t max_iterations = 100000;
  double eps = 1e-9;
};

/// Solve the continuous relaxation (integrality flags ignored).
LpResult solve_lp(const Model& model, const LpOptions& options = {});

/// Solve with temporary variable-bound overrides (used by branch-and-
/// bound to fix branching variables without copying the model).
LpResult solve_lp_with_bounds(const Model& model,
                              const std::vector<double>& lower,
                              const std::vector<double>& upper,
                              const LpOptions& options = {});

}  // namespace operon::ilp
