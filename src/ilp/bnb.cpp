#include "ilp/bnb.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/stop.hpp"
#include "util/timer.hpp"

namespace operon::ilp {

namespace {

struct Node {
  std::vector<double> lower;
  std::vector<double> upper;
  double bound;  ///< parent LP objective (minimization sense)
};

/// Index of the most fractional integral variable, or size() if none.
std::size_t most_fractional(const Model& model,
                            const std::vector<double>& values, double tol) {
  std::size_t best = values.size();
  double best_frac = tol;
  for (std::size_t v = 0; v < values.size(); ++v) {
    if (!model.variable(v).integral) continue;
    const double frac = std::abs(values[v] - std::round(values[v]));
    if (frac > best_frac) {
      best_frac = frac;
      best = v;
    }
  }
  return best;
}

}  // namespace

MipResult solve_mip(const Model& model, const MipOptions& options) {
  model.validate();
  // Run budget caps the stage budget; a null/unarmed token degenerates
  // to the plain stage deadline.
  util::StopToken stop = options.stop;
  util::Deadline deadline = stop.stage_deadline(options.time_limit_s);
  MipResult result;

  // Minimization sense internally; flip at the end for Maximize.
  const double sense = model.sense() == Sense::Minimize ? 1.0 : -1.0;

  std::vector<double> root_lower(model.num_variables());
  std::vector<double> root_upper(model.num_variables());
  for (std::size_t v = 0; v < model.num_variables(); ++v) {
    const Variable& var = model.variable(v);
    root_lower[v] = var.lower;
    root_upper[v] = var.upper;
    // Tighten integral bounds immediately.
    if (var.integral) {
      root_lower[v] = std::ceil(root_lower[v] - 1e-9);
      root_upper[v] = std::floor(root_upper[v] + 1e-9);
    }
  }

  std::vector<Node> stack;
  stack.push_back({std::move(root_lower), std::move(root_upper),
                   -std::numeric_limits<double>::infinity()});

  double incumbent_obj = std::numeric_limits<double>::infinity();
  std::vector<double> incumbent;
  bool hit_time = false;
  bool hit_nodes = false;

  while (!stack.empty()) {
    // Per-node checkpoint: the DFS loop is serial, so the poll count is
    // deterministic; a tripped run token reads as a time limit here and
    // the incumbent (if any) is returned exactly as on a stage timeout.
    if (stop.checkpoint("ilp.bnb") || deadline.expired()) {
      hit_time = true;
      break;
    }
    if (options.max_nodes > 0 && result.nodes_explored >= options.max_nodes) {
      hit_nodes = true;
      break;
    }
    Node node = std::move(stack.back());
    stack.pop_back();
    if (node.bound >= incumbent_obj - options.gap_tol) {
      ++result.nodes_pruned;
      continue;
    }

    ++result.nodes_explored;
    const LpResult lp =
        solve_lp_with_bounds(model, node.lower, node.upper, options.lp);
    if (lp.status == LpStatus::Infeasible) {
      ++result.nodes_pruned;
      continue;
    }
    OPERON_CHECK_MSG(lp.status == LpStatus::Optimal,
                     "LP relaxation unbounded or hit iteration limit in B&B");
    const double lp_obj = sense * lp.objective;
    if (lp_obj >= incumbent_obj - options.gap_tol) {
      ++result.nodes_pruned;
      continue;
    }

    const std::size_t branch_var =
        most_fractional(model, lp.values, options.integrality_tol);
    if (branch_var == lp.values.size()) {
      // Integral solution: new incumbent.
      ++result.incumbent_updates;
      incumbent_obj = lp_obj;
      incumbent = lp.values;
      // Snap integral values exactly.
      for (std::size_t v = 0; v < incumbent.size(); ++v) {
        if (model.variable(v).integral) incumbent[v] = std::round(incumbent[v]);
      }
      continue;
    }

    // Branch: floor side and ceil side. Push the side closer to the LP
    // value last so DFS dives toward it first.
    const double value = lp.values[branch_var];
    Node down = node;
    down.upper[branch_var] = std::floor(value);
    down.bound = lp_obj;
    Node up = std::move(node);
    up.lower[branch_var] = std::ceil(value);
    up.bound = lp_obj;
    const bool prefer_up = (value - std::floor(value)) > 0.5;
    if (prefer_up) {
      stack.push_back(std::move(down));
      stack.push_back(std::move(up));
    } else {
      stack.push_back(std::move(up));
      stack.push_back(std::move(down));
    }
  }

  obs::add_counter("ilp.bnb.solves");
  obs::add_counter("ilp.bnb.nodes_explored", result.nodes_explored);
  obs::add_counter("ilp.bnb.nodes_pruned", result.nodes_pruned);
  obs::add_counter("ilp.bnb.incumbent_updates", result.incumbent_updates);

  result.has_incumbent = !incumbent.empty();
  if (result.has_incumbent) {
    result.objective = sense * incumbent_obj;
    result.values = std::move(incumbent);
    if (hit_time) result.status = MipStatus::TimeLimit;
    else if (hit_nodes) result.status = MipStatus::NodeLimit;
    else result.status = MipStatus::Optimal;
  } else {
    if (hit_time) result.status = MipStatus::TimeLimit;
    else if (hit_nodes) result.status = MipStatus::NodeLimit;
    else result.status = MipStatus::Infeasible;
  }
  return result;
}

}  // namespace operon::ilp
