#pragma once
// Linear / integer-linear model description, the input language of the
// simplex and branch-and-bound solvers (the repo's GUROBI substitute).
// Variables carry bounds and an integrality flag; constraints are sparse
// linear expressions compared against a right-hand side.

#include <cstddef>
#include <string>
#include <vector>

namespace operon::ilp {

enum class Sense { Minimize, Maximize };
enum class Relation { LessEq, GreaterEq, Equal };

struct LinearTerm {
  std::size_t var = 0;
  double coeff = 0.0;
};

/// Sparse linear expression; duplicate variables are allowed and summed.
using LinearExpr = std::vector<LinearTerm>;

struct Variable {
  double lower = 0.0;
  double upper = 1.0;
  bool integral = false;
  std::string name;
};

struct Constraint {
  LinearExpr expr;
  Relation relation = Relation::LessEq;
  double rhs = 0.0;
  std::string name;
};

class Model {
 public:
  std::size_t add_variable(double lower, double upper, bool integral,
                           std::string name = {});
  /// Convenience: binary decision variable.
  std::size_t add_binary(std::string name = {});
  /// Convenience: continuous non-negative variable.
  std::size_t add_continuous(double lower, double upper, std::string name = {});

  void add_constraint(LinearExpr expr, Relation relation, double rhs,
                      std::string name = {});

  void set_objective(LinearExpr expr, Sense sense);

  std::size_t num_variables() const { return variables_.size(); }
  std::size_t num_constraints() const { return constraints_.size(); }
  const Variable& variable(std::size_t v) const { return variables_[v]; }
  const Constraint& constraint(std::size_t c) const { return constraints_[c]; }
  const LinearExpr& objective() const { return objective_; }
  Sense sense() const { return sense_; }

  double evaluate_objective(const std::vector<double>& values) const;
  double evaluate_expr(const LinearExpr& expr,
                       const std::vector<double>& values) const;

  /// True when `values` satisfies all bounds, integrality, and constraints
  /// within `tol`.
  bool is_feasible(const std::vector<double>& values, double tol = 1e-6) const;

  /// Throws util::CheckError on malformed models (bad indices, lb > ub).
  void validate() const;

 private:
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
  LinearExpr objective_;
  Sense sense_ = Sense::Minimize;
};

}  // namespace operon::ilp
