#pragma once
// Branch-and-bound MIP solver over the LP relaxation — the exact solver
// behind "OPERON (ILP)". Depth-first with best-bound tie-breaking,
// most-fractional branching, and a wall-clock deadline: when the deadline
// trips, the incumbent (if any) is returned with status TimeLimit, which
// is how Table 1's "> 3000" rows arise.

#include <cstddef>
#include <vector>

#include "ilp/model.hpp"
#include "ilp/simplex.hpp"
#include "util/stop.hpp"

namespace operon::ilp {

enum class MipStatus { Optimal, Feasible, Infeasible, TimeLimit, NodeLimit };

struct MipOptions {
  double time_limit_s = 0.0;    ///< <= 0 means unlimited
  std::size_t max_nodes = 0;    ///< 0 means unlimited
  double integrality_tol = 1e-6;
  double gap_tol = 1e-9;        ///< absolute objective gap to prune with
  LpOptions lp;
  /// Run-wide budget: polled once per node (the node loop is serial, so
  /// the poll is a numbered checkpoint); caps time_limit_s via
  /// stage_deadline(). Null token = stage deadline only.
  util::StopToken stop;
};

struct MipResult {
  MipStatus status = MipStatus::Infeasible;
  double objective = 0.0;
  std::vector<double> values;
  std::size_t nodes_explored = 0;
  /// Nodes discarded without branching: bound-pruned at pop, LP
  /// infeasible, or LP objective no better than the incumbent.
  std::size_t nodes_pruned = 0;
  std::size_t incumbent_updates = 0;
  bool has_incumbent = false;
};

MipResult solve_mip(const Model& model, const MipOptions& options = {});

}  // namespace operon::ilp
