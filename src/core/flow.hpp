#pragma once
// OperonFlow — the end-to-end pipeline of Fig 2: signal processing
// (hyper nets) -> optical-electrical co-design (candidates) -> solution
// determination (exact ILP-style branch-and-bound, or the LR speed-up)
// -> WDM placement + network-flow assignment.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/hypernet_builder.hpp"
#include "codesign/generate.hpp"
#include "codesign/ilp_select.hpp"
#include "codesign/portfolio.hpp"
#include "core/stats.hpp"
#include "lr/lr.hpp"
#include "model/design.hpp"
#include "model/diagnostic.hpp"
#include "util/stop.hpp"
#include "wdm/assign.hpp"

namespace operon::core {

enum class SolverKind {
  IlpExact,   ///< "OPERON (ILP)": exact branch-and-bound, time-limited
  Lr,         ///< "OPERON (LR)": Lagrangian-relaxation speed-up
  MipLiteral, ///< literal Formulation-(3) MIP via simplex B&B (small cases)
  Portfolio   ///< deterministic race of registered solvers (see
              ///< codesign/portfolio.hpp)
};

/// Canonical identifier ("ilp-exact", "lr", "mip-literal", "portfolio")
/// used in ledger records, CLI flags, the serve protocol, and
/// SelectionSolver::name(). The single source of truth for solver
/// naming — report_solver_name below is the one display-only variant.
std::string_view to_string(SolverKind solver);

/// Display name for run reports: identical to to_string except Lr,
/// which reports as "lagrangian-relaxation" (a report-JSON golden and
/// downstream consumers pin the historical string).
std::string_view report_solver_name(SolverKind solver);

/// Round-trip parse of to_string plus the historical CLI/serve aliases
/// ("ilp", "mip", "lagrangian-relaxation"); nullopt on unknown names.
std::optional<SolverKind> parse_solver_kind(std::string_view name);

/// Parse and canonicalize a comma-separated portfolio member list
/// ("lr,ilp" -> {"lr", "ilp-exact"}). Throws util::CheckError on an
/// empty list, unknown names, "portfolio" itself, or duplicates —
/// malformed configuration, rejected at the boundary.
std::vector<std::string> parse_portfolio_members(std::string_view csv);

struct OperonOptions {
  model::TechParams params = model::TechParams::dac18_defaults();
  cluster::SignalProcessingOptions processing;
  codesign::GenerationOptions generation;
  codesign::SelectOptions select;
  lr::LrOptions lr;
  wdm::AssignOptions wdm;
  /// Portfolio-solver configuration (members, lanes, race node budget,
  /// selector history); only consulted when solver == Portfolio.
  /// members/race_max_nodes are semantic (fingerprinted); lanes and
  /// history are wall-clock knobs and are not.
  codesign::PortfolioOptions portfolio;
  SolverKind solver = SolverKind::Lr;
  bool run_wdm_stage = true;
  /// Worker threads for the parallel stages (candidate generation,
  /// crossing precomputation, LR scans): 1 = serial (historical
  /// behavior), 0 = hardware concurrency. Propagated into
  /// generation.threads / lr.threads / select.threads by run_operon and
  /// run_selection_only — this is the single user-facing knob, and those
  /// per-stage fields should not be set directly. Results are
  /// bit-identical at any value; only wall-clock changes.
  std::size_t threads = 1;
  /// Whole-run wall-clock budget in seconds (<= 0: unlimited). When it
  /// trips, the current stage stops at its next checkpoint and every
  /// later stage runs on its degradation rung; the run reports
  /// DiagCode::RunTimeLimit with the trip checkpoint and sets
  /// `degraded` instead of throwing.
  double run_time_limit_s = 0.0;
  /// Debug replay: trip the run deterministically at exactly this
  /// checkpoint number (0: disabled). Replays a wall-clock trip
  /// bit-identically at any thread count — the trip checkpoint of a
  /// timed-out run is in its diagnostics and ledger record.
  std::uint64_t stop_at_checkpoint = 0;
  /// Optional external stop parent (e.g. the CLI's SIGINT/SIGTERM
  /// source). The run's own budget source chains to it, so an external
  /// request stops the run at its next checkpoint with
  /// DiagCode::RunInterrupted. Do not pass per-stage tokens here; the
  /// per-stage option `stop` fields are populated by run_operon itself.
  util::StopToken stop;
};

struct OperonResult {
  cluster::SignalProcessingResult processing;
  std::vector<codesign::CandidateSet> sets;
  codesign::Selection selection;
  codesign::ViolationStats violations;
  wdm::WdmPlan wdm_plan;
  /// Structured run report: summary scalars (power, net counts, solver
  /// outcome, stage times) plus the full metrics snapshot from the
  /// per-run observation. See core/stats.hpp.
  RunStats stats;
  /// Warnings accumulated along the run: degenerate-but-processable input
  /// findings from model::validate, per-net infeasible loss budgets, and
  /// degradation events (solver time limit, LR non-convergence, fallback
  /// to the pure-electrical selection). Never contains Error-severity
  /// entries — those throw at the boundary instead.
  std::vector<model::Diagnostic> diagnostics;
  /// True when any degradation rung fired (the selection came from a
  /// weaker solver or fallback than the one requested).
  bool degraded = false;

  // Deprecated accessors for the pre-RunStats field names; new code
  // should read `stats` directly. Kept as methods (not fields) so stale
  // writes fail to compile instead of silently diverging from stats.
  double power_pj() const { return stats.power_pj; }
  bool timed_out() const { return stats.timed_out; }
  bool proven_optimal() const { return stats.proven_optimal; }
  std::size_t lr_iterations() const { return stats.lr_iterations; }
  std::size_t optical_nets() const { return stats.optical_nets; }
  std::size_t electrical_nets() const { return stats.electrical_nets; }
  const StageTimes& times() const { return stats.times; }
};

/// Deterministic fingerprint of the semantically-relevant options:
/// every field that can change the selected plan (tech parameters,
/// stage options, solver, WDM toggle) folded into an FNV-1a hash,
/// rendered as "<solver>-<16 hex digits>". Thread counts are excluded
/// by design — results are bit-identical at any --threads value, so
/// ledger records from different thread counts must pair up and agree
/// (see obs/ledger.hpp). Changing any semantic default or adding a
/// semantic field changes the fingerprint, which conservatively splits
/// ledger histories instead of silently comparing unlike runs.
std::string options_fingerprint(const OperonOptions& options);

/// Run the full OPERON pipeline on a design.
///
/// Degradation ladder instead of mid-run throws: an ILP time limit keeps
/// the incumbent (warm-started from LR, so never worse than the
/// surrogate), a non-converged LR keeps its repaired selection, and if
/// the chosen selection still violates a detection constraint the flow
/// falls back to the always-feasible pure-electrical selection a_ie.
/// Each rung appends a Warning to OperonResult::diagnostics and sets
/// `degraded`. Only malformed inputs (Error-severity validation
/// findings) throw util::CheckError, at the boundary, before any stage
/// runs.
OperonResult run_operon(const model::Design& design,
                        const OperonOptions& options = {});

/// Re-run only the selection stage on prepared candidate sets (used by
/// benches that compare solvers on identical candidates).
OperonResult run_selection_only(std::vector<codesign::CandidateSet> sets,
                                const OperonOptions& options);

}  // namespace operon::core
