#pragma once
// OperonFlow — the end-to-end pipeline of Fig 2: signal processing
// (hyper nets) -> optical-electrical co-design (candidates) -> solution
// determination (exact ILP-style branch-and-bound, or the LR speed-up)
// -> WDM placement + network-flow assignment.

#include <vector>

#include "cluster/hypernet_builder.hpp"
#include "codesign/generate.hpp"
#include "codesign/ilp_select.hpp"
#include "lr/lr.hpp"
#include "model/design.hpp"
#include "wdm/assign.hpp"

namespace operon::core {

enum class SolverKind {
  IlpExact,   ///< "OPERON (ILP)": exact branch-and-bound, time-limited
  Lr,         ///< "OPERON (LR)": Lagrangian-relaxation speed-up
  MipLiteral  ///< literal Formulation-(3) MIP via simplex B&B (small cases)
};

struct OperonOptions {
  model::TechParams params = model::TechParams::dac18_defaults();
  cluster::SignalProcessingOptions processing;
  codesign::GenerationOptions generation;
  codesign::SelectOptions select;
  lr::LrOptions lr;
  wdm::AssignOptions wdm;
  SolverKind solver = SolverKind::Lr;
  bool run_wdm_stage = true;
  /// Worker threads for the parallel stages (candidate generation,
  /// crossing precomputation, LR scans): 1 = serial (historical
  /// behavior), 0 = hardware concurrency. Propagated into
  /// generation.threads / lr.threads / select.threads by run_operon and
  /// run_selection_only — this is the single user-facing knob, and those
  /// per-stage fields should not be set directly. Results are
  /// bit-identical at any value; only wall-clock changes.
  std::size_t threads = 1;
};

struct StageTimes {
  double processing_s = 0.0;
  double generation_s = 0.0;
  double selection_s = 0.0;
  double wdm_s = 0.0;

  double total_s() const {
    return processing_s + generation_s + selection_s + wdm_s;
  }
};

struct OperonResult {
  cluster::SignalProcessingResult processing;
  std::vector<codesign::CandidateSet> sets;
  codesign::Selection selection;
  double power_pj = 0.0;
  codesign::ViolationStats violations;
  bool timed_out = false;
  bool proven_optimal = false;
  std::size_t lr_iterations = 0;
  std::size_t optical_nets = 0;
  std::size_t electrical_nets = 0;
  wdm::WdmPlan wdm_plan;
  StageTimes times;
};

/// Run the full OPERON pipeline on a design.
OperonResult run_operon(const model::Design& design,
                        const OperonOptions& options = {});

/// Re-run only the selection stage on prepared candidate sets (used by
/// benches that compare solvers on identical candidates).
OperonResult run_selection_only(std::vector<codesign::CandidateSet> sets,
                                const OperonOptions& options);

}  // namespace operon::core
