#include "core/report.hpp"

#include <fstream>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace operon::core {

std::string report_json(const model::Design& design,
                        const OperonResult& result,
                        const OperonOptions& options,
                        const ReportOptions& report) {
  const RunStats& stats = result.stats;
  util::JsonWriter json;
  json.begin_object();

  json.key("design").begin_object();
  json.key("name").value(design.name);
  json.key("groups").value(design.groups.size());
  json.key("bits").value(design.num_bits());
  json.key("pins").value(design.num_pins());
  json.key("chip_um").begin_array();
  json.value(design.chip.width()).value(design.chip.height());
  json.end_array();
  json.end_object();

  json.key("processing").begin_object();
  json.key("hyper_nets").value(result.processing.num_hyper_nets());
  json.key("hyper_pins").value(result.processing.num_hyper_pins());
  json.end_object();

  json.key("solver").begin_object();
  json.key("kind").value(report_solver_name(options.solver));
  json.key("timed_out").value(stats.timed_out);
  json.key("proven_optimal").value(stats.proven_optimal);
  json.key("lr_iterations").value(stats.lr_iterations);
  // Portfolio runs only, so plain-solver reports stay byte-identical.
  if (!stats.winning_solver.empty()) {
    json.key("winning_solver").value(stats.winning_solver);
    json.key("portfolio_order").value(stats.portfolio_order);
  }
  json.end_object();

  json.key("result").begin_object();
  json.key("power_pj").value(stats.power_pj);
  json.key("optical_nets").value(stats.optical_nets);
  json.key("electrical_nets").value(stats.electrical_nets);
  json.key("violated_paths").value(result.violations.violated_paths);
  json.key("worst_loss_db").value(result.violations.worst_loss_db);
  json.key("loss_budget_db").value(options.params.optical.max_loss_db);
  json.key("degraded").value(result.degraded);
  json.key("diagnostics").begin_array();
  for (const model::Diagnostic& diagnostic : result.diagnostics) {
    json.begin_object();
    json.key("severity").value(model::to_string(diagnostic.severity));
    json.key("code").value(model::to_string(diagnostic.code));
    json.key("message").value(diagnostic.message);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  json.key("wdm").begin_object();
  json.key("connections").value(result.wdm_plan.connections.size());
  json.key("initial_wdms").value(result.wdm_plan.initial_wdms);
  json.key("final_wdms").value(result.wdm_plan.final_wdms);
  json.key("feasible").value(result.wdm_plan.feasible);
  json.end_object();

  if (report.timings) {
    json.key("runtimes_s").begin_object();
    json.key("processing").value(stats.times.processing_s);
    json.key("generation").value(stats.times.generation_s);
    json.key("selection").value(stats.times.selection_s);
    json.key("wdm").value(stats.times.wdm_s);
    json.key("total").value(stats.times.total_s());
    json.end_object();
  }

  json.key("stats").begin_object();
  json.key("metrics");
  obs::write_metric_points(json, stats.metrics.points,
                           /*include_timing=*/report.timings);
  json.end_object();

  if (report.per_net) {
    json.key("nets").begin_array();
    for (std::size_t i = 0; i < result.sets.size(); ++i) {
      const auto& set = result.sets[i];
      const auto& cand = set.options[result.selection[i]];
      json.begin_object();
      json.key("id").value(set.net);
      json.key("bits").value(set.bit_count);
      json.key("kind").value(cand.pure_electrical()
                                 ? "electrical"
                                 : (cand.electrical_wl_um > 0.0 ? "hybrid"
                                                                : "optical"));
      json.key("baseline").value(cand.baseline);
      json.key("power_pj").value(cand.power_pj);
      json.key("modulators").value(cand.num_modulators);
      json.key("detectors").value(cand.num_detectors);
      json.key("optical_um").value(cand.optical_wl_um);
      json.key("electrical_um").value(cand.electrical_wl_um);
      json.end_object();
    }
    json.end_array();
  }

  json.end_object();
  return json.str();
}

std::string report_json(const model::Design& design,
                        const OperonResult& result,
                        const OperonOptions& options, bool include_per_net) {
  ReportOptions report;
  report.per_net = include_per_net;
  return report_json(design, result, options, report);
}

void write_report(const std::string& path, const model::Design& design,
                  const OperonResult& result, const OperonOptions& options,
                  const ReportOptions& report) {
  std::ofstream os(path);
  OPERON_CHECK_MSG(os.good(), "cannot open '" << path << "' for writing");
  os << report_json(design, result, options, report) << "\n";
  OPERON_CHECK_MSG(os.good(), "write failed for '" << path << "'");
}

}  // namespace operon::core
