#include "core/verify.hpp"

#include <cmath>

#include "codesign/selection.hpp"
#include "util/strings.hpp"
#include "wdm/wdm.hpp"

namespace operon::core {

namespace {

void fail(std::vector<model::Diagnostic>& out, model::DiagCode code,
          std::string message) {
  if (out.size() >= model::kMaxDiagnostics) return;
  out.push_back({model::Severity::Error, code, std::move(message)});
}

void verify_wdm_plan(std::vector<model::Diagnostic>& out,
                     const OperonResult& result) {
  const wdm::WdmPlan& plan = result.wdm_plan;
  if (plan.final_wdms > plan.initial_wdms) {
    fail(out, model::DiagCode::WdmCounterMismatch,
         util::format("final_wdms (%zu) exceeds initial_wdms (%zu)",
                      plan.final_wdms, plan.initial_wdms));
  }
  if (plan.final_wdms > plan.wdms.size()) {
    fail(out, model::DiagCode::WdmCounterMismatch,
         util::format("final_wdms (%zu) exceeds placed WDM count (%zu)",
                      plan.final_wdms, plan.wdms.size()));
  }
  if (!std::isfinite(plan.total_move_um) || plan.total_move_um < 0) {
    fail(out, model::DiagCode::WdmMoveInvalid,
         util::format("total_move_um = %g is invalid", plan.total_move_um));
  }

  // Each allocation must reference a real connection and WDM; per-WDM
  // load must respect capacity; and when the plan claims feasibility,
  // every connection's channels must be fully allocated.
  std::vector<std::size_t> allocated(plan.connections.size(), 0);
  std::vector<std::size_t> load(plan.wdms.size(), 0);
  for (const wdm::ChannelAllocation& alloc : plan.allocations) {
    if (alloc.connection >= plan.connections.size() ||
        alloc.wdm >= plan.wdms.size()) {
      fail(out, model::DiagCode::WdmAllocationOutOfRange,
           util::format("allocation references connection %zu / wdm %zu "
                        "(have %zu connections, %zu wdms)",
                        alloc.connection, alloc.wdm, plan.connections.size(),
                        plan.wdms.size()));
      return;  // further indexing would be UB
    }
    allocated[alloc.connection] += alloc.bits;
    load[alloc.wdm] += alloc.bits;
  }
  for (std::size_t w = 0; w < plan.wdms.size(); ++w) {
    if (load[w] > static_cast<std::size_t>(plan.wdms[w].capacity)) {
      fail(out, model::DiagCode::WdmOverCapacity,
           util::format("wdm %zu carries %zu channels, capacity %d", w,
                        load[w], plan.wdms[w].capacity));
    }
  }
  if (plan.feasible) {
    for (std::size_t c = 0; c < plan.connections.size(); ++c) {
      if (allocated[c] != plan.connections[c].bits) {
        fail(out, model::DiagCode::WdmAllocationIncomplete,
             util::format("connection %zu allocated %zu of %zu channels", c,
                          allocated[c], plan.connections[c].bits));
      }
    }
  }
}

}  // namespace

std::vector<model::Diagnostic> verify_result(const OperonResult& result,
                                             const OperonOptions& options) {
  std::vector<model::Diagnostic> out;

  if (result.selection.size() != result.sets.size()) {
    fail(out, model::DiagCode::SelectionSizeMismatch,
         util::format("selection has %zu entries for %zu candidate sets",
                      result.selection.size(), result.sets.size()));
    return out;  // everything below indexes selection per set
  }
  for (std::size_t i = 0; i < result.sets.size(); ++i) {
    if (result.selection[i] >= result.sets[i].options.size()) {
      fail(out, model::DiagCode::SelectionOutOfRange,
           util::format("net %zu selects candidate %zu of %zu", i,
                        result.selection[i], result.sets[i].options.size()));
      return out;
    }
  }

  codesign::SelectionEvaluator evaluator(result.sets, options.params);
  const double power = evaluator.total_power(result.selection);
  const double scale = std::max({std::abs(power), std::abs(result.stats.power_pj),
                                 1.0});
  if (!std::isfinite(result.stats.power_pj) ||
      std::abs(power - result.stats.power_pj) > 1e-9 * scale) {
    fail(out, model::DiagCode::PowerMismatch,
         util::format("reported power %.12g pJ, evaluator says %.12g pJ",
                      result.stats.power_pj, power));
  }
  const codesign::ViolationStats stats = evaluator.violations(result.selection);
  if (!stats.clean()) {
    fail(out, model::DiagCode::PlanViolatesDetection,
         util::format("%zu detection path(s) exceed the loss budget "
                      "(worst %.3f dB)",
                      stats.violated_paths, stats.worst_loss_db));
  }

  std::size_t optical = 0;
  std::size_t electrical = 0;
  for (std::size_t i = 0; i < result.sets.size(); ++i) {
    if (result.sets[i].options[result.selection[i]].pure_electrical()) {
      ++electrical;
    } else {
      ++optical;
    }
  }
  if (optical != result.stats.optical_nets || electrical != result.stats.electrical_nets) {
    fail(out, model::DiagCode::NetCounterMismatch,
         util::format("reported %zu optical / %zu electrical nets, "
                      "recomputed %zu / %zu",
                      result.stats.optical_nets, result.stats.electrical_nets, optical,
                      electrical));
  }

  if (options.run_wdm_stage) verify_wdm_plan(out, result);
  return out;
}

}  // namespace operon::core
