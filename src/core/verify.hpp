#pragma once
// Independent post-hoc verification of an OperonResult. The fault-
// injection harness (and any caller that cares) re-derives the plan's
// invariants from the candidate sets instead of trusting the fields the
// pipeline filled in: every net has a selection within range, the
// reported power matches a fresh evaluator, the detection constraints
// hold, the net classification counters add up, and the WDM plan's
// counters are internally consistent. Violations come back as Error
// diagnostics; an empty list means the plan checks out.

#include <vector>

#include "core/flow.hpp"
#include "model/diagnostic.hpp"

namespace operon::core {

std::vector<model::Diagnostic> verify_result(const OperonResult& result,
                                             const OperonOptions& options);

}  // namespace operon::core
