#pragma once
// Grid-binned power-density maps of the optical and electrical layers —
// the data behind Fig 9's hotspot plots. Optical energy is deposited at
// EO/OE conversion sites (drivers/amplifiers dominate, per §2.2);
// electrical energy is spread uniformly along each wire.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "codesign/candidate.hpp"
#include "geom/bbox.hpp"
#include "model/params.hpp"

namespace operon::core {

struct PowerMap {
  std::size_t cells = 0;       ///< grid is cells x cells
  geom::BBox extent;
  std::vector<double> optical;     ///< row-major, pJ per cell
  std::vector<double> electrical;

  double& optical_at(std::size_t x, std::size_t y);
  double& electrical_at(std::size_t x, std::size_t y);
  double optical_at(std::size_t x, std::size_t y) const;
  double electrical_at(std::size_t x, std::size_t y) const;

  double total_optical() const;
  double total_electrical() const;
  double max_optical() const;
  double max_electrical() const;

  /// Fraction of total layer energy inside the hottest `top_cells` cells —
  /// the hotspot-concentration metric used by the Fig 9 bench.
  double optical_hotspot_share(std::size_t top_cells) const;
  double electrical_hotspot_share(std::size_t top_cells) const;

  /// CSV: x,y,optical,electrical rows (for external plotting).
  std::string to_csv() const;

  /// Coarse ASCII rendering of one layer (normalized 0-9 digits).
  std::string ascii(bool optical_layer, std::size_t downsample = 1) const;
};

/// Build a power map from per-net chosen candidates (same alignment as
/// `sets`).
PowerMap build_power_map(const geom::BBox& chip,
                         std::span<const codesign::CandidateSet> sets,
                         std::span<const codesign::Candidate> chosen,
                         const model::TechParams& params, std::size_t cells);

}  // namespace operon::core
