#pragma once
// RunStats — the structured run-report surface of an OPERON run. The
// scalar summary fields that used to live loose on OperonResult
// (power, net counts, solver outcome flags, stage times) live here,
// together with the run's full metrics snapshot taken from the per-run
// obs::Observation that core's pipeline driver installs around every
// run. `metrics` is the source of truth for anything a report wants to
// say beyond the summary scalars; report_json renders it additively.
//
// Determinism contract: everything in RunStats except `times` and the
// metric points flagged `timing` is bit-identical at any
// OperonOptions::threads value (tests/parallel_test.cpp enforces it).

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace operon::core {

/// Wall-clock stage runtimes (Table 1 CPU(s) columns). Never part of
/// determinism comparisons.
struct StageTimes {
  double processing_s = 0.0;
  double generation_s = 0.0;
  double selection_s = 0.0;
  double wdm_s = 0.0;

  double total_s() const {
    return processing_s + generation_s + selection_s + wdm_s;
  }
};

struct RunStats {
  /// Total selected power, pJ/bit-cycle (Formulation (3) objective).
  double power_pj = 0.0;
  /// Nets whose selected candidate uses any optical segment / none.
  std::size_t optical_nets = 0;
  std::size_t electrical_nets = 0;
  /// Exact solvers only: hit the time limit / proved optimality.
  bool timed_out = false;
  bool proven_optimal = false;
  /// LR solver only: iterations until convergence or the cap.
  std::size_t lr_iterations = 0;
  /// Portfolio solver only: canonical name of the member whose result
  /// won the deterministic fold, and the comma-joined race start order
  /// the selector chose. Empty for plain solvers. winning_solver is
  /// deterministic; the order can shift with accumulated ledger history
  /// (wall-clock concern — it never changes the folded result).
  std::string winning_solver;
  std::string portfolio_order;
  /// Run-budget trip record: the numbered checkpoint at which the run
  /// stopped (0 = ran to completion) and the stage label that polled it.
  /// Replaying trip_checkpoint via OperonOptions::stop_at_checkpoint
  /// reproduces the stopped run bit-identically.
  std::uint64_t trip_checkpoint = 0;
  std::string trip_stage;
  StageTimes times;
  /// Every metric the run's instrumentation registered, in registration
  /// order: solver node counts, LR trajectory histograms, MCMF
  /// augmentations, crossing-cache counters, k-means iterations, stage
  /// runtimes (flagged timing)... See DESIGN.md "Observability" for the
  /// name vocabulary.
  obs::MetricsSnapshot metrics;
};

}  // namespace operon::core
