#pragma once
// Machine-readable run reports: serialize an OperonResult (and the
// design/solver context) as JSON for external tooling and regression
// tracking.

#include <string>

#include "core/flow.hpp"

namespace operon::core {

/// JSON document summarizing a run: design stats, per-stage runtimes,
/// power breakdown, violation stats, WDM plan counters, and per-net
/// routing decisions (kind, power, conversions).
std::string report_json(const model::Design& design,
                        const OperonResult& result,
                        const OperonOptions& options,
                        bool include_per_net = true);

/// Convenience: write report_json to a file (throws on I/O failure).
void write_report(const std::string& path, const model::Design& design,
                  const OperonResult& result, const OperonOptions& options,
                  bool include_per_net = true);

}  // namespace operon::core
