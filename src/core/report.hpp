#pragma once
// Machine-readable run reports: serialize an OperonResult (and the
// design/solver context) as JSON for external tooling and regression
// tracking. The summary values come from OperonResult::stats (the
// structured RunStats surface); the additive "stats" block renders the
// run's full metrics snapshot.

#include <string>

#include "core/flow.hpp"

namespace operon::core {

struct ReportOptions {
  /// Emit the per-net routing-decision array (can dominate the document
  /// on large designs).
  bool per_net = true;
  /// Emit wall-clock data: the "runtimes_s" block and timing-flagged
  /// metric points. Off = byte-stable output across identical runs
  /// (CI-diffable); the CLI flag is --no-timings.
  bool timings = true;
};

/// JSON document summarizing a run: design stats, per-stage runtimes,
/// power breakdown, violation stats, WDM plan counters, the metrics
/// snapshot, and per-net routing decisions (kind, power, conversions).
std::string report_json(const model::Design& design,
                        const OperonResult& result,
                        const OperonOptions& options,
                        const ReportOptions& report = {});

/// Deprecated compatibility overload (pre-ReportOptions signature).
std::string report_json(const model::Design& design,
                        const OperonResult& result,
                        const OperonOptions& options, bool include_per_net);

/// Convenience: write report_json to a file (throws on I/O failure).
void write_report(const std::string& path, const model::Design& design,
                  const OperonResult& result, const OperonOptions& options,
                  const ReportOptions& report = {});

}  // namespace operon::core
