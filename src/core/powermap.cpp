#include "core/powermap.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/check.hpp"

namespace operon::core {

namespace {

std::size_t clamp_index(double v, double lo, double width, std::size_t cells) {
  const auto idx = static_cast<long long>((v - lo) / width);
  return static_cast<std::size_t>(
      std::clamp<long long>(idx, 0, static_cast<long long>(cells) - 1));
}

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

double hotspot_share(std::vector<double> values, std::size_t top_cells) {
  const double total = sum(values);
  if (total <= 0.0) return 0.0;
  top_cells = std::min(top_cells, values.size());
  std::partial_sort(values.begin(),
                    values.begin() + static_cast<std::ptrdiff_t>(top_cells),
                    values.end(), std::greater<>());
  double top = 0.0;
  for (std::size_t i = 0; i < top_cells; ++i) top += values[i];
  return top / total;
}

}  // namespace

double& PowerMap::optical_at(std::size_t x, std::size_t y) {
  return optical[y * cells + x];
}
double& PowerMap::electrical_at(std::size_t x, std::size_t y) {
  return electrical[y * cells + x];
}
double PowerMap::optical_at(std::size_t x, std::size_t y) const {
  return optical[y * cells + x];
}
double PowerMap::electrical_at(std::size_t x, std::size_t y) const {
  return electrical[y * cells + x];
}

double PowerMap::total_optical() const { return sum(optical); }
double PowerMap::total_electrical() const { return sum(electrical); }
double PowerMap::max_optical() const {
  return optical.empty() ? 0.0 : *std::max_element(optical.begin(), optical.end());
}
double PowerMap::max_electrical() const {
  return electrical.empty()
             ? 0.0
             : *std::max_element(electrical.begin(), electrical.end());
}

double PowerMap::optical_hotspot_share(std::size_t top_cells) const {
  return hotspot_share(optical, top_cells);
}
double PowerMap::electrical_hotspot_share(std::size_t top_cells) const {
  return hotspot_share(electrical, top_cells);
}

std::string PowerMap::to_csv() const {
  std::ostringstream os;
  os << "x,y,optical_pj,electrical_pj\n";
  for (std::size_t y = 0; y < cells; ++y) {
    for (std::size_t x = 0; x < cells; ++x) {
      os << x << ',' << y << ',' << optical_at(x, y) << ','
         << electrical_at(x, y) << "\n";
    }
  }
  return os.str();
}

std::string PowerMap::ascii(bool optical_layer, std::size_t downsample) const {
  OPERON_CHECK(downsample >= 1);
  const std::vector<double>& layer = optical_layer ? optical : electrical;
  const double peak = optical_layer ? max_optical() : max_electrical();
  std::ostringstream os;
  for (std::size_t y = 0; y < cells; y += downsample) {
    for (std::size_t x = 0; x < cells; x += downsample) {
      // Aggregate the downsampled block.
      double block = 0.0;
      for (std::size_t dy = 0; dy < downsample && y + dy < cells; ++dy) {
        for (std::size_t dx = 0; dx < downsample && x + dx < cells; ++dx) {
          block = std::max(block, layer[(y + dy) * cells + (x + dx)]);
        }
      }
      if (peak <= 0.0 || block <= 0.0) {
        os << '.';
      } else {
        const int level =
            std::min(9, static_cast<int>(std::floor(10.0 * block / peak)));
        os << level;
      }
    }
    os << "\n";
  }
  return os.str();
}

PowerMap build_power_map(const geom::BBox& chip,
                         std::span<const codesign::CandidateSet> sets,
                         std::span<const codesign::Candidate> chosen,
                         const model::TechParams& params, std::size_t cells) {
  OPERON_CHECK(cells >= 1);
  OPERON_CHECK(sets.size() == chosen.size());
  OPERON_CHECK(!chip.is_empty());

  PowerMap map;
  map.cells = cells;
  map.extent = chip;
  map.optical.assign(cells * cells, 0.0);
  map.electrical.assign(cells * cells, 0.0);

  const double cw = std::max(chip.width(), 1e-9) / static_cast<double>(cells);
  const double ch = std::max(chip.height(), 1e-9) / static_cast<double>(cells);
  const auto deposit = [&](std::vector<double>& layer, const geom::Point& p,
                           double energy) {
    const std::size_t x = clamp_index(p.x, chip.xlo, cw, cells);
    const std::size_t y = clamp_index(p.y, chip.ylo, ch, cells);
    layer[y * cells + x] += energy;
  };

  for (std::size_t i = 0; i < sets.size(); ++i) {
    const codesign::Candidate& cand = chosen[i];
    const double bits = static_cast<double>(sets[i].bit_count);

    // Optical layer: conversion energy at EO/OE sites.
    for (const geom::Point& site : cand.modulator_sites) {
      deposit(map.optical, site, bits * params.optical.pmod_pj_per_bit);
    }
    for (const geom::Point& site : cand.detector_sites) {
      deposit(map.optical, site, bits * params.optical.pdet_pj_per_bit);
    }

    // Electrical layer: wire energy spread along each segment.
    for (const geom::Segment& seg : cand.electrical_segments) {
      const double energy =
          bits * params.electrical.energy_pj_per_bit(seg.manhattan_length());
      const double step = std::min(cw, ch) * 0.5;
      const int samples =
          std::max(1, static_cast<int>(std::ceil(seg.length() / step)));
      const double share = energy / static_cast<double>(samples);
      for (int k = 0; k < samples; ++k) {
        const double t = (static_cast<double>(k) + 0.5) /
                         static_cast<double>(samples);
        deposit(map.electrical, {seg.a.x + t * (seg.b.x - seg.a.x),
                                 seg.a.y + t * (seg.b.y - seg.a.y)},
                share);
      }
    }
  }
  return map;
}

}  // namespace operon::core
