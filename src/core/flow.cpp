#include "core/flow.hpp"

#include <iterator>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace operon::core {

namespace {

/// Fan the single user-facing `threads` knob out to the per-stage option
/// structs (which exist so the stages stay independently testable).
OperonOptions with_threads(const OperonOptions& options) {
  OperonOptions propagated = options;
  propagated.generation.threads = options.threads;
  propagated.lr.threads = options.threads;
  propagated.select.threads = options.threads;
  return propagated;
}

void add_warning(OperonResult& result, model::DiagCode code,
                 std::string message) {
  if (result.diagnostics.size() >= model::kMaxDiagnostics) return;
  result.diagnostics.push_back(
      {model::Severity::Warning, code, std::move(message)});
}

/// Boundary validation: Error-severity findings throw (the input is
/// malformed); Warning-severity findings flow into result.diagnostics so
/// callers see what was degenerate about an accepted input.
void validate_inputs(OperonResult& result, const model::Design& design,
                     const model::TechParams& params) {
  std::vector<model::Diagnostic> found = model::validate(design);
  OPERON_CHECK_MSG(!model::has_errors(found),
                   "design '" << design.name << "' rejected:\n"
                              << model::describe_errors(found));
  std::vector<model::Diagnostic> param_found = model::validate(params);
  OPERON_CHECK_MSG(!model::has_errors(param_found),
                   "invalid technology parameters:\n"
                       << model::describe_errors(param_found));
  found.insert(found.end(), std::make_move_iterator(param_found.begin()),
               std::make_move_iterator(param_found.end()));
  for (model::Diagnostic& diagnostic : found) {
    add_warning(result, diagnostic.code, std::move(diagnostic.message));
  }
}

/// Per-net infeasible loss budgets: a candidate set whose only option is
/// the pure-electrical fallback means generation pruned every optical
/// labeling (static loss alone exceeds lm). Reported as warnings — the
/// run proceeds with those nets electrical — capped so a hostile budget
/// cannot flood the list. A set with NO options at all is a breach of
/// the generation contract (assemble always emits the electrical
/// fallback) and throws before the solver can index out of bounds.
void report_budget_infeasible_nets(OperonResult& result) {
  constexpr std::size_t kMaxPerNet = 8;
  std::size_t count = 0;
  for (const codesign::CandidateSet& set : result.sets) {
    OPERON_CHECK_MSG(!set.options.empty(),
                     "candidate set for hyper net "
                         << set.net
                         << " has no options; generation must always "
                            "include the pure-electrical fallback");
    if (set.options.size() > 1) continue;
    if (count < kMaxPerNet) {
      add_warning(result, model::DiagCode::NetLossBudgetInfeasible,
                  util::format("hyper net %zu: every optical labeling exceeds "
                               "the loss budget; only the electrical fallback "
                               "remains",
                               set.net));
    }
    ++count;
  }
  if (count > kMaxPerNet) {
    add_warning(result, model::DiagCode::NetLossBudgetInfeasible,
                util::format("%zu further hyper nets have no feasible optical "
                             "labeling (suppressed)",
                             count - kMaxPerNet));
  }
}

void run_selection_stage(OperonResult& result, const OperonOptions& options) {
  codesign::SelectionEvaluator evaluator(result.sets, options.params);
  switch (options.solver) {
    case SolverKind::IlpExact: {
      // Warm-start the branch-and-bound with a quick LR pass so a
      // time-limited run is never worse than the heuristic — this IS the
      // "timeout falls back to the LR surrogate" rung: the surrogate's
      // selection seeds the incumbent, and the search only ever replaces
      // it with something better.
      codesign::SelectOptions select = options.select;
      if (select.warm_start.empty()) {
        select.warm_start =
            lr::solve_selection_lr(result.sets, options.params, options.lr)
                .selection;
      }
      const codesign::SelectResult solved = codesign::solve_selection_exact(
          result.sets, options.params, select);
      result.selection = solved.selection;
      result.stats.timed_out = solved.timed_out;
      result.stats.proven_optimal = solved.proven_optimal;
      if (solved.timed_out) {
        result.degraded = true;
        add_warning(result, model::DiagCode::SolverTimeLimit,
                    "exact branch-and-bound hit its time limit; returning "
                    "the incumbent (no worse than the LR warm start)");
      }
      break;
    }
    case SolverKind::MipLiteral: {
      const codesign::SelectResult solved = codesign::solve_selection_mip(
          result.sets, options.params, options.select);
      result.selection = solved.selection;
      result.stats.timed_out = solved.timed_out;
      result.stats.proven_optimal = solved.proven_optimal;
      if (solved.timed_out) {
        result.degraded = true;
        add_warning(result, model::DiagCode::SolverTimeLimit,
                    "literal MIP hit its time limit; returning the incumbent");
      }
      break;
    }
    case SolverKind::Lr: {
      const lr::LrResult solved =
          lr::solve_selection_lr(result.sets, options.params, options.lr);
      result.selection = solved.selection;
      result.stats.lr_iterations = solved.iterations;
      if (!solved.converged) {
        result.degraded = true;
        add_warning(result, model::DiagCode::LrNoConvergence,
                    util::format("LR did not converge within %zu iterations; "
                                 "keeping the repaired final selection",
                                 solved.iterations));
      }
      break;
    }
  }
  // Last rung of the ladder: whatever the solver produced, a selection
  // that still violates a detection constraint is replaced by the
  // always-feasible pure-electrical selection a_ie instead of escaping
  // as an invalid plan.
  result.violations = evaluator.violations(result.selection);
  if (!result.violations.clean()) {
    result.degraded = true;
    add_warning(result, model::DiagCode::SelectionInfeasibleFallback,
                util::format("solver selection violates %zu detection "
                             "path(s); falling back to the pure-electrical "
                             "selection",
                             result.violations.violated_paths));
    result.selection = evaluator.all_electrical();
    result.violations = evaluator.violations(result.selection);
  }
  result.stats.power_pj = evaluator.total_power(result.selection);
  result.stats.optical_nets = 0;
  result.stats.electrical_nets = 0;
  for (std::size_t i = 0; i < result.sets.size(); ++i) {
    const codesign::Candidate& cand =
        result.sets[i].options[result.selection[i]];
    if (cand.pure_electrical()) ++result.stats.electrical_nets;
    else ++result.stats.optical_nets;
  }
}

/// Shared tail of both entry points — candidate-set sanity + selection
/// + WDM, with timing and spans — so run_operon and run_selection_only
/// cannot drift apart.
void run_pipeline_tail(OperonResult& result, const OperonOptions& options) {
  report_budget_infeasible_nets(result);

  // Stage 3: solution determination (§3.3 / §3.4).
  util::Timer timer;
  {
    OPERON_SPAN("core.selection");
    run_selection_stage(result, options);
  }
  result.stats.times.selection_s = timer.seconds();

  // Stage 4: WDM placement + assignment (§4).
  if (options.run_wdm_stage) {
    timer.reset();
    OPERON_SPAN("core.wdm");
    result.wdm_plan = wdm::plan_wdm_assignment(
        result.sets, result.selection, options.params.optical, options.wdm);
    result.stats.times.wdm_s = timer.seconds();
  }
}

/// Summary gauges + timing gauges, then the run's metrics snapshot into
/// result.stats. Runs inside the per-run observation scope so the
/// snapshot is exactly this run's registry.
void finalize_stats(OperonResult& result, obs::Observation& run_obs) {
  obs::add_counter("core.runs");
  obs::set_gauge("core.power_pj", result.stats.power_pj);
  obs::set_gauge("core.optical_nets",
                 static_cast<double>(result.stats.optical_nets));
  obs::set_gauge("core.electrical_nets",
                 static_cast<double>(result.stats.electrical_nets));
  obs::set_gauge("core.violated_paths",
                 static_cast<double>(result.violations.violated_paths));
  obs::set_gauge("core.degraded", result.degraded ? 1.0 : 0.0);
  obs::set_gauge("core.diagnostics",
                 static_cast<double>(result.diagnostics.size()));
  const StageTimes& times = result.stats.times;
  obs::set_gauge("time.processing_s", times.processing_s, /*timing=*/true);
  obs::set_gauge("time.generation_s", times.generation_s, /*timing=*/true);
  obs::set_gauge("time.selection_s", times.selection_s, /*timing=*/true);
  obs::set_gauge("time.wdm_s", times.wdm_s, /*timing=*/true);
  obs::set_gauge("time.total_s", times.total_s(), /*timing=*/true);
  result.stats.metrics = run_obs.metrics.snapshot();
}

/// Roll the finished run up into whatever observation enclosed it (the
/// CLI/bench session sink, or a test's Observation).
void absorb_into_ambient(const obs::Observation& run_obs) {
  if (obs::Observation* ambient = obs::current()) ambient->absorb(run_obs);
}

}  // namespace

OperonResult run_operon(const model::Design& design,
                        const OperonOptions& raw_options) {
  const OperonOptions options = with_threads(raw_options);
  obs::Observation run_obs;
  OperonResult result;
  {
    const obs::ScopedObservation scope(run_obs);
    OPERON_SPAN("core.run_operon");
    validate_inputs(result, design, options.params);
    util::Timer timer;

    // Stage 1: signal processing (Fig 2, §3.1).
    {
      OPERON_SPAN("core.processing");
      cluster::SignalProcessingOptions processing = options.processing;
      processing.kmeans.capacity =
          static_cast<std::size_t>(options.params.optical.wdm_capacity);
      result.processing = cluster::build_hyper_nets(design, processing);
    }
    result.stats.times.processing_s = timer.seconds();
    OPERON_LOG(Info) << design.name << ": " << design.num_bits() << " bits -> "
                     << result.processing.num_hyper_nets() << " hyper nets, "
                     << result.processing.num_hyper_pins() << " hyper pins";

    // Stage 2: co-design candidate generation (§3.2).
    timer.reset();
    {
      OPERON_SPAN("core.generation");
      result.sets = codesign::generate_candidates(design,
                                                  result.processing.hyper_nets,
                                                  options.params,
                                                  options.generation);
    }
    result.stats.times.generation_s = timer.seconds();

    run_pipeline_tail(result, options);
    finalize_stats(result, run_obs);
  }
  absorb_into_ambient(run_obs);
  return result;
}

OperonResult run_selection_only(std::vector<codesign::CandidateSet> sets,
                                const OperonOptions& raw_options) {
  const OperonOptions options = with_threads(raw_options);
  obs::Observation run_obs;
  OperonResult result;
  result.sets = std::move(sets);
  {
    const obs::ScopedObservation scope(run_obs);
    OPERON_SPAN("core.run_selection_only");
    run_pipeline_tail(result, options);
    finalize_stats(result, run_obs);
  }
  absorb_into_ambient(run_obs);
  return result;
}

}  // namespace operon::core
