#include "core/flow.hpp"

#include <iterator>
#include <map>
#include <memory>
#include <utility>

#include "lr/lr_solver.hpp"
#include "obs/events.hpp"
#include "obs/ledger.hpp"
#include "obs/obs.hpp"
#include "obs/resource.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace operon::core {

namespace {

/// Fan the single user-facing `threads` knob out to the per-stage option
/// structs (which exist so the stages stay independently testable).
OperonOptions with_threads(const OperonOptions& options) {
  OperonOptions propagated = options;
  propagated.generation.threads = options.threads;
  propagated.lr.threads = options.threads;
  propagated.select.threads = options.threads;
  return propagated;
}

/// Fan the run's stop token into every stage options struct (mirror of
/// with_threads for the cancellation knob).
void with_stop(OperonOptions& options, util::StopToken token) {
  options.processing.stop = token;
  options.generation.stop = token;
  options.select.stop = token;
  options.lr.stop = token;
  options.wdm.stop = std::move(token);
}

/// Create, chain (to any external CLI/session token), and arm this run's
/// budget source, then distribute its token into the stage options.
util::StopSource arm_run_budget(OperonOptions& options) {
  util::StopSource source;
  if (options.stop) source.chain(options.stop);
  source.arm(options.run_time_limit_s, options.stop_at_checkpoint);
  with_stop(options, source.token());
  return source;
}

void add_warning(OperonResult& result, model::DiagCode code,
                 std::string message) {
  if (result.diagnostics.size() >= model::kMaxDiagnostics) return;
  result.diagnostics.push_back(
      {model::Severity::Warning, code, std::move(message)});
}

/// Boundary validation: Error-severity findings throw (the input is
/// malformed); Warning-severity findings flow into result.diagnostics so
/// callers see what was degenerate about an accepted input.
void validate_inputs(OperonResult& result, const model::Design& design,
                     const model::TechParams& params) {
  std::vector<model::Diagnostic> found = model::validate(design);
  OPERON_CHECK_MSG(!model::has_errors(found),
                   "design '" << design.name << "' rejected:\n"
                              << model::describe_errors(found));
  std::vector<model::Diagnostic> param_found = model::validate(params);
  OPERON_CHECK_MSG(!model::has_errors(param_found),
                   "invalid technology parameters:\n"
                       << model::describe_errors(param_found));
  found.insert(found.end(), std::make_move_iterator(param_found.begin()),
               std::make_move_iterator(param_found.end()));
  for (model::Diagnostic& diagnostic : found) {
    add_warning(result, diagnostic.code, std::move(diagnostic.message));
  }
}

/// Per-net infeasible loss budgets: a candidate set whose only option is
/// the pure-electrical fallback means generation pruned every optical
/// labeling (static loss alone exceeds lm). Reported as warnings — the
/// run proceeds with those nets electrical — capped so a hostile budget
/// cannot flood the list. A set with NO options at all is a breach of
/// the generation contract (assemble always emits the electrical
/// fallback) and throws before the solver can index out of bounds.
void report_budget_infeasible_nets(OperonResult& result) {
  constexpr std::size_t kMaxPerNet = 8;
  std::size_t count = 0;
  for (const codesign::CandidateSet& set : result.sets) {
    OPERON_CHECK_MSG(!set.options.empty(),
                     "candidate set for hyper net "
                         << set.net
                         << " has no options; generation must always "
                            "include the pure-electrical fallback");
    if (set.options.size() > 1) continue;
    if (count < kMaxPerNet) {
      add_warning(result, model::DiagCode::NetLossBudgetInfeasible,
                  util::format("hyper net %zu: every optical labeling exceeds "
                               "the loss budget; only the electrical fallback "
                               "remains",
                               set.net));
    }
    ++count;
  }
  if (count > kMaxPerNet) {
    add_warning(result, model::DiagCode::NetLossBudgetInfeasible,
                util::format("%zu further hyper nets have no feasible optical "
                             "labeling (suppressed)",
                             count - kMaxPerNet));
  }
}

/// The per-run solver registry: every solver the flow can run, keyed by
/// canonical name. Adapters capture their stage options here; the
/// SolverContext only carries per-run state, so a new solver registers
/// below (or via a future extension hook) and core needs no other
/// change — run_selection_stage has no per-solver switch.
codesign::SolverRegistry build_solver_registry(const OperonOptions& options) {
  codesign::SolverRegistry registry;
  // The LR adapter doubles as the exact solver's warm-start: a
  // time-limited exact run is never worse than the heuristic — the
  // surrogate's selection seeds the incumbent, and the search only
  // ever replaces it with something better.
  const auto lr_solver = std::make_shared<lr::LrSelectionSolver>(options.lr);
  registry.register_solver(
      std::make_shared<codesign::ExactSelectionSolver>(options.select,
                                                       lr_solver));
  registry.register_solver(lr_solver);
  registry.register_solver(
      std::make_shared<codesign::MipSelectionSolver>(options.select));
  registry.register_solver(std::make_shared<codesign::PortfolioSolver>(
      options.portfolio, registry.resolve(options.portfolio.members)));
  return registry;
}

void run_selection_stage(OperonResult& result, const OperonOptions& options) {
  codesign::SelectionEvaluator evaluator(result.sets, options.params);
  const codesign::SolverRegistry registry = build_solver_registry(options);
  const std::shared_ptr<const codesign::SelectionSolver> solver =
      registry.find(to_string(options.solver));
  OPERON_CHECK_MSG(solver != nullptr, "no registered solver named '"
                                          << to_string(options.solver) << "'");
  codesign::SolverContext ctx;
  ctx.sets = result.sets;
  ctx.params = &options.params;
  ctx.evaluator = &evaluator;
  ctx.stop = options.select.stop;  // the run token, fanned by with_stop
  ctx.threads = options.threads;
  codesign::SolverOutcome solved = solver->solve(ctx);
  result.selection = std::move(solved.selection);
  result.stats.timed_out = solved.timed_out;
  result.stats.proven_optimal = solved.proven_optimal;
  result.stats.lr_iterations = solved.lr_iterations;
  result.stats.winning_solver = std::move(solved.winning_solver);
  result.stats.portfolio_order = std::move(solved.race_order);
  if (solved.degraded) result.degraded = true;
  for (model::Diagnostic& warning : solved.warnings) {
    add_warning(result, warning.code, std::move(warning.message));
  }
  // Last rung of the ladder: whatever the solver produced, a selection
  // that still violates a detection constraint is replaced by the
  // always-feasible pure-electrical selection a_ie instead of escaping
  // as an invalid plan.
  result.violations = evaluator.violations(result.selection);
  if (!result.violations.clean()) {
    result.degraded = true;
    add_warning(result, model::DiagCode::SelectionInfeasibleFallback,
                util::format("solver selection violates %zu detection "
                             "path(s); falling back to the pure-electrical "
                             "selection",
                             result.violations.violated_paths));
    result.selection = evaluator.all_electrical();
    result.violations = evaluator.violations(result.selection);
  }
  result.stats.power_pj = evaluator.total_power(result.selection);
  result.stats.optical_nets = 0;
  result.stats.electrical_nets = 0;
  for (std::size_t i = 0; i < result.sets.size(); ++i) {
    const codesign::Candidate& cand =
        result.sets[i].options[result.selection[i]];
    if (cand.pure_electrical()) ++result.stats.electrical_nets;
    else ++result.stats.optical_nets;
  }
}

/// Shared tail of both entry points — candidate-set sanity + selection
/// + WDM, with timing and spans — so run_operon and run_selection_only
/// cannot drift apart.
void run_pipeline_tail(OperonResult& result, const OperonOptions& options) {
  report_budget_infeasible_nets(result);

  // Stage 3: solution determination (§3.3 / §3.4).
  util::Timer timer;
  {
    OPERON_SPAN("core.selection");
    run_selection_stage(result, options);
  }
  result.stats.times.selection_s = timer.seconds();

  // Stage 4: WDM placement + assignment (§4).
  if (options.run_wdm_stage) {
    timer.reset();
    OPERON_SPAN("core.wdm");
    result.wdm_plan = wdm::plan_wdm_assignment(
        result.sets, result.selection, options.params.optical, options.wdm);
    result.stats.times.wdm_s = timer.seconds();
  }
}

/// Record a run-budget trip: degraded result, trip checkpoint + stage in
/// the stats, and a RunTimeLimit / RunInterrupted warning. The message
/// names the checkpoint and stage but deliberately NOT the trip reason,
/// so a stop_at_checkpoint replay of a wall-clock trip produces
/// byte-identical diagnostics (an Interrupt differs by DiagCode only).
void note_run_trip(OperonResult& result, const util::StopToken& token) {
  const std::uint64_t checkpoint = token.trip_checkpoint();
  if (checkpoint == 0) return;
  result.degraded = true;
  result.stats.trip_checkpoint = checkpoint;
  result.stats.trip_stage = token.trip_stage();
  const bool interrupted = token.reason() == util::StopReason::Interrupt;
  add_warning(
      result,
      interrupted ? model::DiagCode::RunInterrupted
                  : model::DiagCode::RunTimeLimit,
      util::format("run budget tripped at checkpoint %llu (stage %s); later "
                   "stages completed on their degradation rungs",
                   static_cast<unsigned long long>(checkpoint),
                   result.stats.trip_stage.c_str()));
}

/// Summary gauges + timing gauges, then the run's metrics snapshot into
/// result.stats. Runs inside the per-run observation scope so the
/// snapshot is exactly this run's registry.
void finalize_stats(OperonResult& result, obs::Observation& run_obs) {
  obs::add_counter("core.runs");
  obs::set_gauge("core.power_pj", result.stats.power_pj);
  obs::set_gauge("core.optical_nets",
                 static_cast<double>(result.stats.optical_nets));
  obs::set_gauge("core.electrical_nets",
                 static_cast<double>(result.stats.electrical_nets));
  obs::set_gauge("core.violated_paths",
                 static_cast<double>(result.violations.violated_paths));
  obs::set_gauge("core.degraded", result.degraded ? 1.0 : 0.0);
  obs::set_gauge("core.trip_checkpoint",
                 static_cast<double>(result.stats.trip_checkpoint));
  obs::set_gauge("core.diagnostics",
                 static_cast<double>(result.diagnostics.size()));
  const StageTimes& times = result.stats.times;
  obs::set_gauge("time.processing_s", times.processing_s, /*timing=*/true);
  obs::set_gauge("time.generation_s", times.generation_s, /*timing=*/true);
  obs::set_gauge("time.selection_s", times.selection_s, /*timing=*/true);
  obs::set_gauge("time.wdm_s", times.wdm_s, /*timing=*/true);
  obs::set_gauge("time.total_s", times.total_s(), /*timing=*/true);
  obs::publish_resource_gauges();
  result.stats.metrics = run_obs.metrics.snapshot();
}

/// Roll the finished run up into whatever observation enclosed it (the
/// CLI/bench session sink, or a test's Observation).
void absorb_into_ambient(const obs::Observation& run_obs) {
  if (obs::Observation* ambient = obs::current()) ambient->absorb(run_obs);
}

/// Build this run's LedgerRecord and hand it to the ambient collector
/// (no-op when none is installed). Case id and seed come from the
/// front-end context (obs::set_ledger_context); a run without context
/// falls back to `fallback_case` with seed 0.
void emit_run_record(const OperonResult& result, const OperonOptions& options,
                     const std::string& fallback_case) {
  obs::LedgerCollector* ledger = obs::current_ledger();
  if (ledger == nullptr) return;
  obs::LedgerRecord record;
  record.case_id = ledger->context_case();
  if (record.case_id.empty()) record.case_id = fallback_case;
  record.seed = ledger->context_seed();
  record.options = options_fingerprint(options);
  record.solver = std::string(to_string(options.solver));
  record.threads = options.threads;
  record.degraded = result.degraded;
  record.trip_checkpoint = result.stats.trip_checkpoint;
  record.winning_solver = result.stats.winning_solver;
  record.portfolio_order = result.stats.portfolio_order;
  std::map<std::string, std::uint64_t> counts;
  for (const model::Diagnostic& diagnostic : result.diagnostics) {
    ++counts[std::string(model::to_string(diagnostic.code))];
  }
  record.diagnostics.assign(counts.begin(), counts.end());
  for (const obs::MetricPoint& point : result.stats.metrics.points) {
    (point.timing ? record.timings : record.metrics).push_back(point);
  }
  obs::emit_ledger_record(std::move(record));
}

}  // namespace

std::string_view to_string(SolverKind solver) {
  switch (solver) {
    case SolverKind::IlpExact: return "ilp-exact";
    case SolverKind::Lr: return "lr";
    case SolverKind::MipLiteral: return "mip-literal";
    case SolverKind::Portfolio: return "portfolio";
  }
  return "unknown";
}

std::string_view report_solver_name(SolverKind solver) {
  return solver == SolverKind::Lr ? "lagrangian-relaxation"
                                  : to_string(solver);
}

std::optional<SolverKind> parse_solver_kind(std::string_view name) {
  if (name == "lr" || name == "lagrangian-relaxation") return SolverKind::Lr;
  if (name == "ilp" || name == "ilp-exact") return SolverKind::IlpExact;
  if (name == "mip" || name == "mip-literal") return SolverKind::MipLiteral;
  if (name == "portfolio") return SolverKind::Portfolio;
  return std::nullopt;
}

std::vector<std::string> parse_portfolio_members(std::string_view csv) {
  std::vector<std::string> members;
  for (const std::string& token : util::split(csv, ',')) {
    const std::string_view trimmed = util::trim(token);
    if (trimmed.empty()) continue;
    const std::optional<SolverKind> kind = parse_solver_kind(trimmed);
    OPERON_CHECK_MSG(kind.has_value() && *kind != SolverKind::Portfolio,
                     "unknown portfolio member '"
                         << trimmed << "' (expected lr, ilp, or mip)");
    const std::string canonical(to_string(*kind));
    for (const std::string& existing : members) {
      OPERON_CHECK_MSG(existing != canonical, "portfolio member '"
                                                  << canonical
                                                  << "' listed twice");
    }
    members.push_back(canonical);
  }
  OPERON_CHECK_MSG(!members.empty(), "portfolio member list is empty");
  return members;
}

std::string options_fingerprint(const OperonOptions& options) {
  // Canonical key=value rendering of every semantic field, hashed.
  // Doubles print at %.17g so distinct values never collide through
  // formatting; thread counts and the warm-start vector's storage are
  // deliberately NOT free-form — warm starts fold in value-by-value.
  std::string canon;
  canon.reserve(1024);
  const auto field = [&canon](const char* key, std::string_view value) {
    canon.append(key);
    canon.push_back('=');
    canon.append(value);
    canon.push_back(';');
  };
  const auto num = [&field](const char* key, double value) {
    field(key, util::format("%.17g", value));
  };
  const auto count = [&field](const char* key, std::uint64_t value) {
    field(key, util::format("%llu", static_cast<unsigned long long>(value)));
  };
  const auto flag = [&field](const char* key, bool value) {
    field(key, value ? "1" : "0");
  };

  const model::OpticalParams& opt = options.params.optical;
  num("optical.alpha_db_per_um", opt.alpha_db_per_um);
  num("optical.beta_db_per_crossing", opt.beta_db_per_crossing);
  num("optical.splitter_excess_db", opt.splitter_excess_db);
  num("optical.pmod_pj_per_bit", opt.pmod_pj_per_bit);
  num("optical.pdet_pj_per_bit", opt.pdet_pj_per_bit);
  num("optical.max_loss_db", opt.max_loss_db);
  count("optical.wdm_capacity", static_cast<std::uint64_t>(opt.wdm_capacity));
  num("optical.dis_lower_um", opt.dis_lower_um);
  num("optical.dis_upper_um", opt.dis_upper_um);
  const model::ElectricalParams& ele = options.params.electrical;
  num("electrical.switching_factor", ele.switching_factor);
  num("electrical.frequency_ghz", ele.frequency_ghz);
  num("electrical.voltage_v", ele.voltage_v);
  num("electrical.cap_ff_per_um", ele.cap_ff_per_um);

  const cluster::SignalProcessingOptions& proc = options.processing;
  count("processing.kmeans.capacity", proc.kmeans.capacity);
  num("processing.kmeans.variance_threshold", proc.kmeans.variance_threshold);
  count("processing.kmeans.max_iterations", proc.kmeans.max_iterations);
  count("processing.kmeans.seed", proc.kmeans.seed);
  num("processing.pin_merge_threshold_um", proc.pin_merge_threshold_um);

  const codesign::GenerationOptions& gen = options.generation;
  count("generation.max_baselines", gen.max_baselines);
  count("generation.dp.max_labels", gen.dp.max_labels);
  flag("generation.dp.prune_infeasible", gen.dp.prune_infeasible);
  flag("generation.dp.prune_dominated", gen.dp.prune_dominated);
  count("generation.grid_cells", gen.grid_cells);
  flag("generation.estimate_crossings", gen.estimate_crossings);
  count("generation.max_candidates_per_net", gen.max_candidates_per_net);
  flag("generation.detour_baselines", gen.detour_baselines);

  num("select.time_limit_s", options.select.time_limit_s);
  count("select.max_nodes", options.select.max_nodes);
  flag("select.reduce_variables", options.select.reduce_variables);
  std::uint64_t warm = 1469598103934665603ULL;
  for (const std::size_t choice : options.select.warm_start) {
    warm = util::fnv1a(util::format("%zu,", choice), warm);
  }
  field("select.warm_start", util::hex64(warm));

  count("lr.max_iterations", options.lr.max_iterations);
  num("lr.init_scale", options.lr.init_scale);
  num("lr.step_scale", options.lr.step_scale);
  num("lr.convergence_ratio", options.lr.convergence_ratio);
  flag("lr.repair_violations", options.lr.repair_violations);

  num("wdm.usage_cost", options.wdm.usage_cost);
  num("wdm.usage_rank_cost", options.wdm.usage_rank_cost);
  num("wdm.move_cost_weight", options.wdm.move_cost_weight);

  // Portfolio semantics: the member SET and the deterministic race node
  // budget shape the folded result. Lane count and ledger history only
  // move wall clock (concurrency / start order) and stay out, exactly
  // like threads.
  {
    std::string members;
    for (const std::string& member : options.portfolio.members) {
      members.append(member);
      members.push_back(',');
    }
    field("portfolio.members", members);
  }
  count("portfolio.race_max_nodes", options.portfolio.race_max_nodes);

  field("solver", to_string(options.solver));
  flag("run_wdm_stage", options.run_wdm_stage);
  // Budget knobs are semantic: a budget-limited run can legitimately
  // produce a different (degraded) plan, so its ledger history must not
  // pair with unlimited runs. The stop token itself is runtime state,
  // not configuration, and stays out.
  num("run_time_limit_s", options.run_time_limit_s);
  count("stop_at_checkpoint", options.stop_at_checkpoint);

  std::string out(to_string(options.solver));
  out.push_back('-');
  out.append(util::hex64(util::fnv1a(canon)));
  return out;
}

OperonResult run_operon(const model::Design& design,
                        const OperonOptions& raw_options) {
  OperonOptions options = with_threads(raw_options);
  const util::StopSource run_budget = arm_run_budget(options);
  const util::StopToken run_token = run_budget.token();
  obs::Observation run_obs;
  OperonResult result;
  {
    // Thread-scoped install: runs orchestrated concurrently on
    // different threads (the serve daemon's executors) each feed their
    // own per-run registry; a session-wide ScopedObservation sink stays
    // visible to observer threads and receives this run via
    // absorb_into_ambient below.
    const obs::ScopedThreadObservation scope(run_obs);
    OPERON_SPAN("core.run_operon");
    obs::emit_event(util::LogLevel::Info, "core.run.start", design.name);
    validate_inputs(result, design, options.params);
    util::Timer timer;

    // Stage 1: signal processing (Fig 2, §3.1).
    {
      OPERON_SPAN("core.processing");
      cluster::SignalProcessingOptions processing = options.processing;
      processing.kmeans.capacity =
          static_cast<std::size_t>(options.params.optical.wdm_capacity);
      result.processing = cluster::build_hyper_nets(design, processing);
    }
    result.stats.times.processing_s = timer.seconds();
    OPERON_LOG(Info) << design.name << ": " << design.num_bits() << " bits -> "
                     << result.processing.num_hyper_nets() << " hyper nets, "
                     << result.processing.num_hyper_pins() << " hyper pins";

    // Stage 2: co-design candidate generation (§3.2).
    timer.reset();
    {
      OPERON_SPAN("core.generation");
      result.sets = codesign::generate_candidates(design,
                                                  result.processing.hyper_nets,
                                                  options.params,
                                                  options.generation);
    }
    result.stats.times.generation_s = timer.seconds();

    run_pipeline_tail(result, options);
    note_run_trip(result, run_token);
    finalize_stats(result, run_obs);
    obs::emit_event(result.degraded ? util::LogLevel::Warn
                                    : util::LogLevel::Info,
                    "core.run.completed",
                    result.degraded ? "degraded" : "clean");
  }
  absorb_into_ambient(run_obs);
  emit_run_record(result, options, design.name);
  return result;
}

OperonResult run_selection_only(std::vector<codesign::CandidateSet> sets,
                                const OperonOptions& raw_options) {
  OperonOptions options = with_threads(raw_options);
  const util::StopSource run_budget = arm_run_budget(options);
  const util::StopToken run_token = run_budget.token();
  obs::Observation run_obs;
  OperonResult result;
  result.sets = std::move(sets);
  {
    const obs::ScopedThreadObservation scope(run_obs);
    OPERON_SPAN("core.run_selection_only");
    obs::emit_event(util::LogLevel::Info, "core.run.start", "selection-only");
    run_pipeline_tail(result, options);
    note_run_trip(result, run_token);
    finalize_stats(result, run_obs);
    obs::emit_event(result.degraded ? util::LogLevel::Warn
                                    : util::LogLevel::Info,
                    "core.run.completed",
                    result.degraded ? "degraded" : "clean");
  }
  absorb_into_ambient(run_obs);
  emit_run_record(result, options, "selection-only");
  return result;
}

}  // namespace operon::core
