#include "core/flow.hpp"

#include <iterator>

#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace operon::core {

namespace {

/// Fan the single user-facing `threads` knob out to the per-stage option
/// structs (which exist so the stages stay independently testable).
OperonOptions with_threads(const OperonOptions& options) {
  OperonOptions propagated = options;
  propagated.generation.threads = options.threads;
  propagated.lr.threads = options.threads;
  propagated.select.threads = options.threads;
  return propagated;
}

void add_warning(OperonResult& result, std::string code, std::string message) {
  if (result.diagnostics.size() >= model::kMaxDiagnostics) return;
  result.diagnostics.push_back({model::Severity::Warning, std::move(code),
                                std::move(message)});
}

/// Boundary validation: Error-severity findings throw (the input is
/// malformed); Warning-severity findings flow into result.diagnostics so
/// callers see what was degenerate about an accepted input.
void validate_inputs(OperonResult& result, const model::Design& design,
                     const model::TechParams& params) {
  std::vector<model::Diagnostic> found = model::validate(design);
  OPERON_CHECK_MSG(!model::has_errors(found),
                   "design '" << design.name << "' rejected:\n"
                              << model::describe_errors(found));
  std::vector<model::Diagnostic> param_found = model::validate(params);
  OPERON_CHECK_MSG(!model::has_errors(param_found),
                   "invalid technology parameters:\n"
                       << model::describe_errors(param_found));
  found.insert(found.end(), std::make_move_iterator(param_found.begin()),
               std::make_move_iterator(param_found.end()));
  for (model::Diagnostic& diagnostic : found) {
    add_warning(result, std::move(diagnostic.code),
                std::move(diagnostic.message));
  }
}

/// Per-net infeasible loss budgets: a candidate set whose only option is
/// the pure-electrical fallback means generation pruned every optical
/// labeling (static loss alone exceeds lm). Reported as warnings — the
/// run proceeds with those nets electrical — capped so a hostile budget
/// cannot flood the list.
void report_budget_infeasible_nets(OperonResult& result) {
  constexpr std::size_t kMaxPerNet = 8;
  std::size_t count = 0;
  for (const codesign::CandidateSet& set : result.sets) {
    if (set.options.size() > 1) continue;
    if (count < kMaxPerNet) {
      add_warning(result, "net-loss-budget-infeasible",
                  util::format("hyper net %zu: every optical labeling exceeds "
                               "the loss budget; only the electrical fallback "
                               "remains",
                               set.net));
    }
    ++count;
  }
  if (count > kMaxPerNet) {
    add_warning(result, "net-loss-budget-infeasible",
                util::format("%zu further hyper nets have no feasible optical "
                             "labeling (suppressed)",
                             count - kMaxPerNet));
  }
}

void run_selection_stage(OperonResult& result, const OperonOptions& options) {
  codesign::SelectionEvaluator evaluator(result.sets, options.params);
  switch (options.solver) {
    case SolverKind::IlpExact: {
      // Warm-start the branch-and-bound with a quick LR pass so a
      // time-limited run is never worse than the heuristic — this IS the
      // "timeout falls back to the LR surrogate" rung: the surrogate's
      // selection seeds the incumbent, and the search only ever replaces
      // it with something better.
      codesign::SelectOptions select = options.select;
      if (select.warm_start.empty()) {
        select.warm_start =
            lr::solve_selection_lr(result.sets, options.params, options.lr)
                .selection;
      }
      const codesign::SelectResult solved = codesign::solve_selection_exact(
          result.sets, options.params, select);
      result.selection = solved.selection;
      result.timed_out = solved.timed_out;
      result.proven_optimal = solved.proven_optimal;
      if (solved.timed_out) {
        result.degraded = true;
        add_warning(result, "solver-time-limit",
                    "exact branch-and-bound hit its time limit; returning "
                    "the incumbent (no worse than the LR warm start)");
      }
      break;
    }
    case SolverKind::MipLiteral: {
      const codesign::SelectResult solved = codesign::solve_selection_mip(
          result.sets, options.params, options.select);
      result.selection = solved.selection;
      result.timed_out = solved.timed_out;
      result.proven_optimal = solved.proven_optimal;
      if (solved.timed_out) {
        result.degraded = true;
        add_warning(result, "solver-time-limit",
                    "literal MIP hit its time limit; returning the incumbent");
      }
      break;
    }
    case SolverKind::Lr: {
      const lr::LrResult solved =
          lr::solve_selection_lr(result.sets, options.params, options.lr);
      result.selection = solved.selection;
      result.lr_iterations = solved.iterations;
      if (!solved.converged) {
        result.degraded = true;
        add_warning(result, "lr-no-convergence",
                    util::format("LR did not converge within %zu iterations; "
                                 "keeping the repaired final selection",
                                 solved.iterations));
      }
      break;
    }
  }
  // Last rung of the ladder: whatever the solver produced, a selection
  // that still violates a detection constraint is replaced by the
  // always-feasible pure-electrical selection a_ie instead of escaping
  // as an invalid plan.
  result.violations = evaluator.violations(result.selection);
  if (!result.violations.clean()) {
    result.degraded = true;
    add_warning(result, "selection-infeasible-fallback",
                util::format("solver selection violates %zu detection "
                             "path(s); falling back to the pure-electrical "
                             "selection",
                             result.violations.violated_paths));
    result.selection = evaluator.all_electrical();
    result.violations = evaluator.violations(result.selection);
  }
  result.power_pj = evaluator.total_power(result.selection);
  result.optical_nets = 0;
  result.electrical_nets = 0;
  for (std::size_t i = 0; i < result.sets.size(); ++i) {
    const codesign::Candidate& cand =
        result.sets[i].options[result.selection[i]];
    if (cand.pure_electrical()) ++result.electrical_nets;
    else ++result.optical_nets;
  }
}

}  // namespace

OperonResult run_operon(const model::Design& design,
                        const OperonOptions& raw_options) {
  const OperonOptions options = with_threads(raw_options);
  OperonResult result;
  validate_inputs(result, design, options.params);
  util::Timer timer;

  // Stage 1: signal processing (Fig 2, §3.1).
  cluster::SignalProcessingOptions processing = options.processing;
  processing.kmeans.capacity =
      static_cast<std::size_t>(options.params.optical.wdm_capacity);
  result.processing = cluster::build_hyper_nets(design, processing);
  result.times.processing_s = timer.seconds();
  OPERON_LOG(Info) << design.name << ": " << design.num_bits() << " bits -> "
                   << result.processing.num_hyper_nets() << " hyper nets, "
                   << result.processing.num_hyper_pins() << " hyper pins";

  // Stage 2: co-design candidate generation (§3.2).
  timer.reset();
  result.sets = codesign::generate_candidates(
      design, result.processing.hyper_nets, options.params, options.generation);
  result.times.generation_s = timer.seconds();
  report_budget_infeasible_nets(result);

  // Stage 3: solution determination (§3.3 / §3.4).
  timer.reset();
  run_selection_stage(result, options);
  result.times.selection_s = timer.seconds();

  // Stage 4: WDM placement + assignment (§4).
  if (options.run_wdm_stage) {
    timer.reset();
    result.wdm_plan = wdm::plan_wdm_assignment(
        result.sets, result.selection, options.params.optical, options.wdm);
    result.times.wdm_s = timer.seconds();
  }
  return result;
}

OperonResult run_selection_only(std::vector<codesign::CandidateSet> sets,
                                const OperonOptions& raw_options) {
  const OperonOptions options = with_threads(raw_options);
  OperonResult result;
  result.sets = std::move(sets);
  util::Timer timer;
  run_selection_stage(result, options);
  result.times.selection_s = timer.seconds();
  if (options.run_wdm_stage) {
    timer.reset();
    result.wdm_plan = wdm::plan_wdm_assignment(
        result.sets, result.selection, options.params.optical, options.wdm);
    result.times.wdm_s = timer.seconds();
  }
  return result;
}

}  // namespace operon::core
