#include "core/flow.hpp"

#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace operon::core {

namespace {

/// Fan the single user-facing `threads` knob out to the per-stage option
/// structs (which exist so the stages stay independently testable).
OperonOptions with_threads(const OperonOptions& options) {
  OperonOptions propagated = options;
  propagated.generation.threads = options.threads;
  propagated.lr.threads = options.threads;
  propagated.select.threads = options.threads;
  return propagated;
}

void run_selection_stage(OperonResult& result, const OperonOptions& options) {
  switch (options.solver) {
    case SolverKind::IlpExact: {
      // Warm-start the branch-and-bound with a quick LR pass so a
      // time-limited run is never worse than the heuristic.
      codesign::SelectOptions select = options.select;
      if (select.warm_start.empty()) {
        select.warm_start =
            lr::solve_selection_lr(result.sets, options.params, options.lr)
                .selection;
      }
      const codesign::SelectResult solved = codesign::solve_selection_exact(
          result.sets, options.params, select);
      result.selection = solved.selection;
      result.timed_out = solved.timed_out;
      result.proven_optimal = solved.proven_optimal;
      break;
    }
    case SolverKind::MipLiteral: {
      const codesign::SelectResult solved = codesign::solve_selection_mip(
          result.sets, options.params, options.select);
      result.selection = solved.selection;
      result.timed_out = solved.timed_out;
      result.proven_optimal = solved.proven_optimal;
      break;
    }
    case SolverKind::Lr: {
      const lr::LrResult solved =
          lr::solve_selection_lr(result.sets, options.params, options.lr);
      result.selection = solved.selection;
      result.lr_iterations = solved.iterations;
      break;
    }
  }
  codesign::SelectionEvaluator evaluator(result.sets, options.params);
  result.power_pj = evaluator.total_power(result.selection);
  result.violations = evaluator.violations(result.selection);
  for (std::size_t i = 0; i < result.sets.size(); ++i) {
    const codesign::Candidate& cand =
        result.sets[i].options[result.selection[i]];
    if (cand.pure_electrical()) ++result.electrical_nets;
    else ++result.optical_nets;
  }
}

}  // namespace

OperonResult run_operon(const model::Design& design,
                        const OperonOptions& raw_options) {
  design.validate();
  const OperonOptions options = with_threads(raw_options);
  OPERON_CHECK_MSG(options.params.valid(),
                   "invalid technology parameters (check loss budget > 0, "
                   "positive device powers, wdm capacity >= 1)");
  OperonResult result;
  util::Timer timer;

  // Stage 1: signal processing (Fig 2, §3.1).
  cluster::SignalProcessingOptions processing = options.processing;
  processing.kmeans.capacity =
      static_cast<std::size_t>(options.params.optical.wdm_capacity);
  result.processing = cluster::build_hyper_nets(design, processing);
  result.times.processing_s = timer.seconds();
  OPERON_LOG(Info) << design.name << ": " << design.num_bits() << " bits -> "
                   << result.processing.num_hyper_nets() << " hyper nets, "
                   << result.processing.num_hyper_pins() << " hyper pins";

  // Stage 2: co-design candidate generation (§3.2).
  timer.reset();
  result.sets = codesign::generate_candidates(
      design, result.processing.hyper_nets, options.params, options.generation);
  result.times.generation_s = timer.seconds();

  // Stage 3: solution determination (§3.3 / §3.4).
  timer.reset();
  run_selection_stage(result, options);
  result.times.selection_s = timer.seconds();

  // Stage 4: WDM placement + assignment (§4).
  if (options.run_wdm_stage) {
    timer.reset();
    result.wdm_plan = wdm::plan_wdm_assignment(
        result.sets, result.selection, options.params.optical, options.wdm);
    result.times.wdm_s = timer.seconds();
  }
  return result;
}

OperonResult run_selection_only(std::vector<codesign::CandidateSet> sets,
                                const OperonOptions& raw_options) {
  const OperonOptions options = with_threads(raw_options);
  OperonResult result;
  result.sets = std::move(sets);
  util::Timer timer;
  run_selection_stage(result, options);
  result.times.selection_s = timer.seconds();
  if (options.run_wdm_stage) {
    timer.reset();
    result.wdm_plan = wdm::plan_wdm_assignment(
        result.sets, result.selection, options.params.optical, options.wdm);
    result.times.wdm_s = timer.seconds();
  }
  return result;
}

}  // namespace operon::core
