#include "model/diagnostic.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

#include "model/design.hpp"
#include "model/params.hpp"
#include "util/strings.hpp"

namespace operon::model {

namespace {

bool finite(const geom::Point& p) {
  return std::isfinite(p.x) && std::isfinite(p.y);
}

/// Collector that enforces kMaxDiagnostics with a suppression note.
class Collector {
 public:
  explicit Collector(std::vector<Diagnostic>& out) : out_(out) {}

  template <typename... Parts>
  void add(Severity severity, std::string_view code, Parts&&... parts) {
    ++total_;
    if (out_.size() >= kMaxDiagnostics) return;
    std::ostringstream os;
    (os << ... << parts);
    out_.push_back({severity, std::string(code), os.str()});
  }

  void finish() {
    if (total_ > kMaxDiagnostics) {
      out_.push_back({Severity::Warning, "diagnostics-truncated",
                      util::format("%zu further diagnostics suppressed",
                                   total_ - kMaxDiagnostics)});
    }
  }

 private:
  std::vector<Diagnostic>& out_;
  std::size_t total_ = 0;
};

void check_pin(Collector& collect, const Design& design,
               const SignalGroup& group, std::size_t bit_index, const Pin& pin,
               const char* what) {
  if (!finite(pin.location)) {
    collect.add(Severity::Error, "pin-not-finite", what, " pin of bit ",
                bit_index, " in group '", group.name,
                "' has a non-finite coordinate (", pin.location, ")");
    return;  // contains() is meaningless on NaN
  }
  if (!design.chip.is_empty() && !design.chip.contains(pin.location)) {
    collect.add(Severity::Error, "pin-off-chip", what, " pin of bit ",
                bit_index, " in group '", group.name, "' at ", pin.location,
                " is outside the chip");
  }
}

}  // namespace

std::string_view to_string(Severity severity) {
  return severity == Severity::Error ? "error" : "warning";
}

std::ostream& operator<<(std::ostream& os, const Diagnostic& diagnostic) {
  return os << '[' << to_string(diagnostic.severity) << "] "
            << diagnostic.code << ": " << diagnostic.message;
}

bool has_errors(std::span<const Diagnostic> diagnostics) {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::Error) return true;
  }
  return false;
}

std::string describe_errors(std::span<const Diagnostic> diagnostics) {
  std::ostringstream os;
  bool first = true;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity != Severity::Error) continue;
    if (!first) os << '\n';
    first = false;
    os << "  " << d;
  }
  return os.str();
}

std::vector<Diagnostic> validate(const Design& design) {
  std::vector<Diagnostic> out;
  Collector collect(out);

  const bool chip_finite =
      std::isfinite(design.chip.xlo) && std::isfinite(design.chip.ylo) &&
      std::isfinite(design.chip.xhi) && std::isfinite(design.chip.yhi);
  if (!chip_finite) {
    collect.add(Severity::Error, "chip-not-finite", "design '", design.name,
                "' has a non-finite chip outline");
  } else if (design.chip.is_empty()) {
    collect.add(Severity::Error, "chip-empty", "design '", design.name,
                "' has an empty chip outline");
  }
  if (design.groups.empty()) {
    collect.add(Severity::Warning, "design-empty", "design '", design.name,
                "' has no signal groups (nothing to route)");
  }

  for (const SignalGroup& group : design.groups) {
    if (group.bits.empty()) {
      collect.add(Severity::Error, "group-empty", "group '", group.name,
                  "' has no bits");
      continue;
    }
    for (std::size_t b = 0; b < group.bits.size(); ++b) {
      const SignalBit& bit = group.bits[b];
      if (bit.source.role != PinRole::Source) {
        collect.add(Severity::Error, "pin-role-mislabeled", "source pin of bit ",
                    b, " in group '", group.name, "' is not labeled Source");
      }
      check_pin(collect, design, group, b, bit.source, "source");
      if (bit.sinks.empty()) {
        collect.add(Severity::Error, "bit-no-sinks", "bit ", b, " in group '",
                    group.name, "' has no sinks");
        continue;
      }
      for (std::size_t s = 0; s < bit.sinks.size(); ++s) {
        const Pin& sink = bit.sinks[s];
        if (sink.role != PinRole::Sink) {
          collect.add(Severity::Error, "pin-role-mislabeled", "sink pin ", s,
                      " of bit ", b, " in group '", group.name,
                      "' is not labeled Sink");
        }
        check_pin(collect, design, group, b, sink, "sink");
        if (finite(sink.location) && finite(bit.source.location) &&
            sink.location == bit.source.location) {
          collect.add(Severity::Warning, "duplicate-pin", "sink pin ", s,
                      " of bit ", b, " in group '", group.name,
                      "' coincides with its source at ", sink.location);
        }
        for (std::size_t t = 0; t < s; ++t) {
          if (finite(sink.location) &&
              sink.location == bit.sinks[t].location) {
            collect.add(Severity::Warning, "duplicate-pin", "sink pins ", t,
                        " and ", s, " of bit ", b, " in group '", group.name,
                        "' coincide at ", sink.location);
            break;
          }
        }
      }
    }
  }
  collect.finish();
  return out;
}

std::vector<Diagnostic> validate(const TechParams& params) {
  std::vector<Diagnostic> out;
  Collector collect(out);
  const auto require = [&](bool ok, std::string_view code, const char* what,
                           double value) {
    if (!ok) {
      collect.add(Severity::Error, code, what, " = ", value, " is invalid");
    }
  };
  const OpticalParams& o = params.optical;
  require(std::isfinite(o.alpha_db_per_um) && o.alpha_db_per_um >= 0,
          "param-alpha-invalid", "optical.alpha_db_per_um", o.alpha_db_per_um);
  require(std::isfinite(o.beta_db_per_crossing) && o.beta_db_per_crossing >= 0,
          "param-beta-invalid", "optical.beta_db_per_crossing",
          o.beta_db_per_crossing);
  require(std::isfinite(o.splitter_excess_db) && o.splitter_excess_db >= 0,
          "param-splitter-invalid", "optical.splitter_excess_db",
          o.splitter_excess_db);
  require(std::isfinite(o.pmod_pj_per_bit) && o.pmod_pj_per_bit >= 0,
          "param-pmod-invalid", "optical.pmod_pj_per_bit", o.pmod_pj_per_bit);
  require(std::isfinite(o.pdet_pj_per_bit) && o.pdet_pj_per_bit >= 0,
          "param-pdet-invalid", "optical.pdet_pj_per_bit", o.pdet_pj_per_bit);
  require(std::isfinite(o.max_loss_db) && o.max_loss_db > 0,
          "param-loss-budget-invalid", "optical.max_loss_db", o.max_loss_db);
  require(o.wdm_capacity > 0, "param-wdm-capacity-invalid",
          "optical.wdm_capacity", o.wdm_capacity);
  require(std::isfinite(o.dis_lower_um) && o.dis_lower_um >= 0 &&
              std::isfinite(o.dis_upper_um) && o.dis_upper_um >= o.dis_lower_um,
          "param-wdm-distance-invalid", "optical.dis_upper_um", o.dis_upper_um);
  const ElectricalParams& e = params.electrical;
  require(std::isfinite(e.switching_factor) && e.switching_factor > 0,
          "param-switching-invalid", "electrical.switching_factor",
          e.switching_factor);
  require(std::isfinite(e.frequency_ghz) && e.frequency_ghz > 0,
          "param-frequency-invalid", "electrical.frequency_ghz",
          e.frequency_ghz);
  require(std::isfinite(e.voltage_v) && e.voltage_v > 0,
          "param-voltage-invalid", "electrical.voltage_v", e.voltage_v);
  require(std::isfinite(e.cap_ff_per_um) && e.cap_ff_per_um > 0,
          "param-capacitance-invalid", "electrical.cap_ff_per_um",
          e.cap_ff_per_um);
  collect.finish();
  return out;
}

}  // namespace operon::model
