#include "model/diagnostic.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

#include "model/design.hpp"
#include "model/params.hpp"
#include "util/strings.hpp"

namespace operon::model {

namespace {

bool finite(const geom::Point& p) {
  return std::isfinite(p.x) && std::isfinite(p.y);
}

/// Collector that enforces kMaxDiagnostics with a suppression note.
class Collector {
 public:
  explicit Collector(std::vector<Diagnostic>& out) : out_(out) {}

  template <typename... Parts>
  void add(Severity severity, DiagCode code, Parts&&... parts) {
    ++total_;
    if (out_.size() >= kMaxDiagnostics) return;
    std::ostringstream os;
    (os << ... << parts);
    out_.push_back({severity, code, os.str()});
  }

  void finish() {
    if (total_ > kMaxDiagnostics) {
      out_.push_back({Severity::Warning, DiagCode::DiagnosticsTruncated,
                      util::format("%zu further diagnostics suppressed",
                                   total_ - kMaxDiagnostics)});
    }
  }

 private:
  std::vector<Diagnostic>& out_;
  std::size_t total_ = 0;
};

void check_pin(Collector& collect, const Design& design,
               const SignalGroup& group, std::size_t bit_index, const Pin& pin,
               const char* what) {
  if (!finite(pin.location)) {
    collect.add(Severity::Error, DiagCode::PinNotFinite, what, " pin of bit ",
                bit_index, " in group '", group.name,
                "' has a non-finite coordinate (", pin.location, ")");
    return;  // contains() is meaningless on NaN
  }
  if (!design.chip.is_empty() && !design.chip.contains(pin.location)) {
    collect.add(Severity::Error, DiagCode::PinOffChip, what, " pin of bit ",
                bit_index, " in group '", group.name, "' at ", pin.location,
                " is outside the chip");
  }
}

}  // namespace

std::string_view to_string(Severity severity) {
  return severity == Severity::Error ? "error" : "warning";
}

std::string_view to_string(DiagCode code) {
  switch (code) {
    case DiagCode::ChipNotFinite: return "chip-not-finite";
    case DiagCode::ChipEmpty: return "chip-empty";
    case DiagCode::DesignEmpty: return "design-empty";
    case DiagCode::GroupEmpty: return "group-empty";
    case DiagCode::PinRoleMislabeled: return "pin-role-mislabeled";
    case DiagCode::PinNotFinite: return "pin-not-finite";
    case DiagCode::PinOffChip: return "pin-off-chip";
    case DiagCode::BitNoSinks: return "bit-no-sinks";
    case DiagCode::DuplicatePin: return "duplicate-pin";
    case DiagCode::DiagnosticsTruncated: return "diagnostics-truncated";
    case DiagCode::ParamAlphaInvalid: return "param-alpha-invalid";
    case DiagCode::ParamBetaInvalid: return "param-beta-invalid";
    case DiagCode::ParamSplitterInvalid: return "param-splitter-invalid";
    case DiagCode::ParamPmodInvalid: return "param-pmod-invalid";
    case DiagCode::ParamPdetInvalid: return "param-pdet-invalid";
    case DiagCode::ParamLossBudgetInvalid: return "param-loss-budget-invalid";
    case DiagCode::ParamWdmCapacityInvalid:
      return "param-wdm-capacity-invalid";
    case DiagCode::ParamWdmDistanceInvalid:
      return "param-wdm-distance-invalid";
    case DiagCode::ParamSwitchingInvalid: return "param-switching-invalid";
    case DiagCode::ParamFrequencyInvalid: return "param-frequency-invalid";
    case DiagCode::ParamVoltageInvalid: return "param-voltage-invalid";
    case DiagCode::ParamCapacitanceInvalid:
      return "param-capacitance-invalid";
    case DiagCode::NetLossBudgetInfeasible:
      return "net-loss-budget-infeasible";
    case DiagCode::SolverTimeLimit: return "solver-time-limit";
    case DiagCode::LrNoConvergence: return "lr-no-convergence";
    case DiagCode::SelectionInfeasibleFallback:
      return "selection-infeasible-fallback";
    case DiagCode::RunTimeLimit: return "run-time-limit";
    case DiagCode::RunInterrupted: return "run-interrupted";
    case DiagCode::WdmCounterMismatch: return "wdm-counter-mismatch";
    case DiagCode::WdmMoveInvalid: return "wdm-move-invalid";
    case DiagCode::WdmAllocationOutOfRange:
      return "wdm-allocation-out-of-range";
    case DiagCode::WdmOverCapacity: return "wdm-over-capacity";
    case DiagCode::WdmAllocationIncomplete:
      return "wdm-allocation-incomplete";
    case DiagCode::SelectionSizeMismatch: return "selection-size-mismatch";
    case DiagCode::SelectionOutOfRange: return "selection-out-of-range";
    case DiagCode::PowerMismatch: return "power-mismatch";
    case DiagCode::PlanViolatesDetection: return "plan-violates-detection";
    case DiagCode::NetCounterMismatch: return "net-counter-mismatch";
  }
  return "?";
}

std::span<const DiagCode> all_diag_codes() {
  static constexpr DiagCode kAll[] = {
      DiagCode::ChipNotFinite,
      DiagCode::ChipEmpty,
      DiagCode::DesignEmpty,
      DiagCode::GroupEmpty,
      DiagCode::PinRoleMislabeled,
      DiagCode::PinNotFinite,
      DiagCode::PinOffChip,
      DiagCode::BitNoSinks,
      DiagCode::DuplicatePin,
      DiagCode::DiagnosticsTruncated,
      DiagCode::ParamAlphaInvalid,
      DiagCode::ParamBetaInvalid,
      DiagCode::ParamSplitterInvalid,
      DiagCode::ParamPmodInvalid,
      DiagCode::ParamPdetInvalid,
      DiagCode::ParamLossBudgetInvalid,
      DiagCode::ParamWdmCapacityInvalid,
      DiagCode::ParamWdmDistanceInvalid,
      DiagCode::ParamSwitchingInvalid,
      DiagCode::ParamFrequencyInvalid,
      DiagCode::ParamVoltageInvalid,
      DiagCode::ParamCapacitanceInvalid,
      DiagCode::NetLossBudgetInfeasible,
      DiagCode::SolverTimeLimit,
      DiagCode::LrNoConvergence,
      DiagCode::SelectionInfeasibleFallback,
      DiagCode::RunTimeLimit,
      DiagCode::RunInterrupted,
      DiagCode::WdmCounterMismatch,
      DiagCode::WdmMoveInvalid,
      DiagCode::WdmAllocationOutOfRange,
      DiagCode::WdmOverCapacity,
      DiagCode::WdmAllocationIncomplete,
      DiagCode::SelectionSizeMismatch,
      DiagCode::SelectionOutOfRange,
      DiagCode::PowerMismatch,
      DiagCode::PlanViolatesDetection,
      DiagCode::NetCounterMismatch,
  };
  return kAll;
}

std::ostream& operator<<(std::ostream& os, const Diagnostic& diagnostic) {
  return os << '[' << to_string(diagnostic.severity) << "] "
            << to_string(diagnostic.code) << ": " << diagnostic.message;
}

bool has_errors(std::span<const Diagnostic> diagnostics) {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::Error) return true;
  }
  return false;
}

std::string describe_errors(std::span<const Diagnostic> diagnostics) {
  std::ostringstream os;
  bool first = true;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity != Severity::Error) continue;
    if (!first) os << '\n';
    first = false;
    os << "  " << d;
  }
  return os.str();
}

std::vector<Diagnostic> validate(const Design& design) {
  std::vector<Diagnostic> out;
  Collector collect(out);

  const bool chip_finite =
      std::isfinite(design.chip.xlo) && std::isfinite(design.chip.ylo) &&
      std::isfinite(design.chip.xhi) && std::isfinite(design.chip.yhi);
  if (!chip_finite) {
    collect.add(Severity::Error, DiagCode::ChipNotFinite, "design '", design.name,
                "' has a non-finite chip outline");
  } else if (design.chip.is_empty()) {
    collect.add(Severity::Error, DiagCode::ChipEmpty, "design '", design.name,
                "' has an empty chip outline");
  }
  if (design.groups.empty()) {
    collect.add(Severity::Warning, DiagCode::DesignEmpty, "design '", design.name,
                "' has no signal groups (nothing to route)");
  }

  for (const SignalGroup& group : design.groups) {
    if (group.bits.empty()) {
      collect.add(Severity::Error, DiagCode::GroupEmpty, "group '", group.name,
                  "' has no bits");
      continue;
    }
    for (std::size_t b = 0; b < group.bits.size(); ++b) {
      const SignalBit& bit = group.bits[b];
      if (bit.source.role != PinRole::Source) {
        collect.add(Severity::Error, DiagCode::PinRoleMislabeled, "source pin of bit ",
                    b, " in group '", group.name, "' is not labeled Source");
      }
      check_pin(collect, design, group, b, bit.source, "source");
      if (bit.sinks.empty()) {
        collect.add(Severity::Error, DiagCode::BitNoSinks, "bit ", b, " in group '",
                    group.name, "' has no sinks");
        continue;
      }
      for (std::size_t s = 0; s < bit.sinks.size(); ++s) {
        const Pin& sink = bit.sinks[s];
        if (sink.role != PinRole::Sink) {
          collect.add(Severity::Error, DiagCode::PinRoleMislabeled, "sink pin ", s,
                      " of bit ", b, " in group '", group.name,
                      "' is not labeled Sink");
        }
        check_pin(collect, design, group, b, sink, "sink");
        if (finite(sink.location) && finite(bit.source.location) &&
            sink.location == bit.source.location) {
          collect.add(Severity::Warning, DiagCode::DuplicatePin, "sink pin ", s,
                      " of bit ", b, " in group '", group.name,
                      "' coincides with its source at ", sink.location);
        }
        for (std::size_t t = 0; t < s; ++t) {
          if (finite(sink.location) &&
              sink.location == bit.sinks[t].location) {
            collect.add(Severity::Warning, DiagCode::DuplicatePin, "sink pins ", t,
                        " and ", s, " of bit ", b, " in group '", group.name,
                        "' coincide at ", sink.location);
            break;
          }
        }
      }
    }
  }
  collect.finish();
  return out;
}

std::vector<Diagnostic> validate(const TechParams& params) {
  std::vector<Diagnostic> out;
  Collector collect(out);
  const auto require = [&](bool ok, DiagCode code, const char* what,
                           double value) {
    if (!ok) {
      collect.add(Severity::Error, code, what, " = ", value, " is invalid");
    }
  };
  const OpticalParams& o = params.optical;
  require(std::isfinite(o.alpha_db_per_um) && o.alpha_db_per_um >= 0,
          DiagCode::ParamAlphaInvalid, "optical.alpha_db_per_um", o.alpha_db_per_um);
  require(std::isfinite(o.beta_db_per_crossing) && o.beta_db_per_crossing >= 0,
          DiagCode::ParamBetaInvalid, "optical.beta_db_per_crossing",
          o.beta_db_per_crossing);
  require(std::isfinite(o.splitter_excess_db) && o.splitter_excess_db >= 0,
          DiagCode::ParamSplitterInvalid, "optical.splitter_excess_db",
          o.splitter_excess_db);
  require(std::isfinite(o.pmod_pj_per_bit) && o.pmod_pj_per_bit >= 0,
          DiagCode::ParamPmodInvalid, "optical.pmod_pj_per_bit", o.pmod_pj_per_bit);
  require(std::isfinite(o.pdet_pj_per_bit) && o.pdet_pj_per_bit >= 0,
          DiagCode::ParamPdetInvalid, "optical.pdet_pj_per_bit", o.pdet_pj_per_bit);
  require(std::isfinite(o.max_loss_db) && o.max_loss_db > 0,
          DiagCode::ParamLossBudgetInvalid, "optical.max_loss_db", o.max_loss_db);
  require(o.wdm_capacity > 0, DiagCode::ParamWdmCapacityInvalid,
          "optical.wdm_capacity", o.wdm_capacity);
  require(std::isfinite(o.dis_lower_um) && o.dis_lower_um >= 0 &&
              std::isfinite(o.dis_upper_um) && o.dis_upper_um >= o.dis_lower_um,
          DiagCode::ParamWdmDistanceInvalid, "optical.dis_upper_um", o.dis_upper_um);
  const ElectricalParams& e = params.electrical;
  require(std::isfinite(e.switching_factor) && e.switching_factor > 0,
          DiagCode::ParamSwitchingInvalid, "electrical.switching_factor",
          e.switching_factor);
  require(std::isfinite(e.frequency_ghz) && e.frequency_ghz > 0,
          DiagCode::ParamFrequencyInvalid, "electrical.frequency_ghz",
          e.frequency_ghz);
  require(std::isfinite(e.voltage_v) && e.voltage_v > 0,
          DiagCode::ParamVoltageInvalid, "electrical.voltage_v", e.voltage_v);
  require(std::isfinite(e.cap_ff_per_um) && e.cap_ff_per_um > 0,
          DiagCode::ParamCapacitanceInvalid, "electrical.cap_ff_per_um",
          e.cap_ff_per_um);
  collect.finish();
  return out;
}

}  // namespace operon::model
