#include "model/design.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "model/diagnostic.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace operon::model {

geom::Point SignalBit::centroid() const {
  geom::Point sum = source.location;
  for (const Pin& pin : sinks) sum = sum + pin.location;
  const double n = static_cast<double>(pin_count());
  return {sum.x / n, sum.y / n};
}

geom::BBox SignalBit::bbox() const {
  geom::BBox box;
  box.expand(source.location);
  for (const Pin& pin : sinks) box.expand(pin.location);
  return box;
}

std::size_t SignalGroup::pin_count() const {
  std::size_t count = 0;
  for (const SignalBit& bit : bits) count += bit.pin_count();
  return count;
}

geom::BBox SignalGroup::bbox() const {
  geom::BBox box;
  for (const SignalBit& bit : bits) box.expand(bit.bbox());
  return box;
}

std::size_t Design::num_bits() const {
  std::size_t count = 0;
  for (const SignalGroup& group : groups) count += group.bits.size();
  return count;
}

std::size_t Design::num_pins() const {
  std::size_t count = 0;
  for (const SignalGroup& group : groups) count += group.pin_count();
  return count;
}

void Design::validate() const {
  const std::vector<Diagnostic> diagnostics = model::validate(*this);
  OPERON_CHECK_MSG(!has_errors(diagnostics),
                   "design '" << name << "' failed validation:\n"
                              << describe_errors(diagnostics));
}

void write_design(std::ostream& os, const Design& design) {
  os << "design " << design.name << "\n";
  os << "chip " << design.chip.xlo << ' ' << design.chip.ylo << ' '
     << design.chip.xhi << ' ' << design.chip.yhi << "\n";
  for (const SignalGroup& group : design.groups) {
    os << "group " << group.name << "\n";
    for (const SignalBit& bit : group.bits) {
      os << "bit S " << bit.source.location.x << ' ' << bit.source.location.y;
      for (const Pin& pin : bit.sinks) {
        os << " T " << pin.location.x << ' ' << pin.location.y;
      }
      os << "\n";
    }
  }
}

Design read_design(std::istream& is) {
  Design design;
  SignalGroup* current_group = nullptr;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view text = util::trim(line);
    if (text.empty() || text.front() == '#') continue;
    std::istringstream ls{std::string(text)};
    std::string keyword;
    ls >> keyword;
    if (keyword == "design") {
      ls >> design.name;
    } else if (keyword == "chip") {
      ls >> design.chip.xlo >> design.chip.ylo >> design.chip.xhi >>
          design.chip.yhi;
      OPERON_CHECK_MSG(ls, "malformed chip line " << line_no);
    } else if (keyword == "group") {
      SignalGroup group;
      ls >> group.name;
      design.groups.push_back(std::move(group));
      current_group = &design.groups.back();
    } else if (keyword == "bit") {
      OPERON_CHECK_MSG(current_group != nullptr,
                       "bit before any group at line " << line_no);
      SignalBit bit;
      std::string tag;
      bool have_source = false;
      while (ls >> tag) {
        Pin pin;
        ls >> pin.location.x >> pin.location.y;
        OPERON_CHECK_MSG(ls, "malformed pin at line " << line_no);
        if (tag == "S") {
          OPERON_CHECK_MSG(!have_source, "two sources at line " << line_no);
          pin.role = PinRole::Source;
          bit.source = pin;
          have_source = true;
        } else if (tag == "T") {
          pin.role = PinRole::Sink;
          bit.sinks.push_back(pin);
        } else {
          OPERON_CHECK_MSG(false, "unknown pin tag '" << tag << "' at line "
                                                      << line_no);
        }
      }
      OPERON_CHECK_MSG(have_source, "bit without source at line " << line_no);
      OPERON_CHECK_MSG(!bit.sinks.empty(),
                       "bit without sinks at line " << line_no);
      current_group->bits.push_back(std::move(bit));
    } else {
      OPERON_CHECK_MSG(false,
                       "unknown keyword '" << keyword << "' at line " << line_no);
    }
  }
  return design;
}

void save_design(const std::string& path, const Design& design) {
  std::ofstream os(path);
  OPERON_CHECK_MSG(os.good(), "cannot open '" << path << "' for writing");
  write_design(os, design);
  OPERON_CHECK_MSG(os.good(), "write failed for '" << path << "'");
}

Design load_design(const std::string& path) {
  std::ifstream is(path);
  OPERON_CHECK_MSG(is.good(), "cannot open '" << path << "' for reading");
  return read_design(is);
}

}  // namespace operon::model
