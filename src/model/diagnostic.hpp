#pragma once
// Structured validation diagnostics. Library boundaries report what is
// wrong with an input (or how a run degraded) as a list of Diagnostics
// instead of throwing on the first problem: callers can render all of
// them, branch on stable codes, and distinguish fatal errors (the input
// cannot be processed) from warnings (processed, but degenerate or
// degraded). The throwing Design::validate() is a thin wrapper that
// raises a CheckError enumerating the Error-severity entries.

#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace operon::model {

struct Design;
struct TechParams;

enum class Severity {
  Warning,  ///< degenerate but processable (run proceeds, possibly degraded)
  Error     ///< malformed: the input must be rejected
};

std::string_view to_string(Severity severity);

/// Closed vocabulary of diagnostic codes. Every code any part of the
/// pipeline can emit is listed here, so tests can branch on codes
/// without string drift and enumerate them for exhaustiveness. The JSON
/// wire format is unchanged: codes serialize as the same kebab-case
/// strings as before via to_string (e.g. PinOffChip -> "pin-off-chip").
enum class DiagCode {
  // model::validate(Design)
  ChipNotFinite,
  ChipEmpty,
  DesignEmpty,
  GroupEmpty,
  PinRoleMislabeled,
  PinNotFinite,
  PinOffChip,
  BitNoSinks,
  DuplicatePin,
  DiagnosticsTruncated,
  // model::validate(TechParams)
  ParamAlphaInvalid,
  ParamBetaInvalid,
  ParamSplitterInvalid,
  ParamPmodInvalid,
  ParamPdetInvalid,
  ParamLossBudgetInvalid,
  ParamWdmCapacityInvalid,
  ParamWdmDistanceInvalid,
  ParamSwitchingInvalid,
  ParamFrequencyInvalid,
  ParamVoltageInvalid,
  ParamCapacitanceInvalid,
  // core::run_operon degradation ladder
  NetLossBudgetInfeasible,
  SolverTimeLimit,
  LrNoConvergence,
  SelectionInfeasibleFallback,
  /// The whole-run budget (OperonOptions::run_time_limit_s or the
  /// stop_at_checkpoint replay) tripped: the pipeline finished on the
  /// per-stage degradation rungs. Message carries the trip checkpoint.
  RunTimeLimit,
  /// An external stop request (SIGINT/SIGTERM) tripped the run token.
  RunInterrupted,
  // core::verify_result plan audit
  WdmCounterMismatch,
  WdmMoveInvalid,
  WdmAllocationOutOfRange,
  WdmOverCapacity,
  WdmAllocationIncomplete,
  SelectionSizeMismatch,
  SelectionOutOfRange,
  PowerMismatch,
  PlanViolatesDetection,
  NetCounterMismatch,
};

/// Stable kebab-case identifier for `code` (the JSON wire format).
std::string_view to_string(DiagCode code);

/// Every DiagCode value, for exhaustiveness tests over to_string.
std::span<const DiagCode> all_diag_codes();

/// One validation finding. `code` is a stable identifier for tests and
/// tooling to branch on; `message` carries the human-readable context
/// (group, bit, value).
struct Diagnostic {
  Severity severity = Severity::Error;
  DiagCode code = DiagCode::ChipNotFinite;
  std::string message;
};

std::ostream& operator<<(std::ostream& os, const Diagnostic& diagnostic);

bool has_errors(std::span<const Diagnostic> diagnostics);

/// Error-severity entries joined as "  [error] code: message" lines
/// (for embedding in a CheckError message).
std::string describe_errors(std::span<const Diagnostic> diagnostics);

/// Structured design validation: duplicate pins, out-of-chip or
/// non-finite coordinates, zero-bit groups, mislabeled roles, empty or
/// non-finite chip. Never throws; at most `kMaxDiagnostics` entries are
/// reported (a trailing note says how many were suppressed).
std::vector<Diagnostic> validate(const Design& design);

/// Structured technology-parameter validation: non-finite or
/// out-of-range loss/power/capacity values.
std::vector<Diagnostic> validate(const TechParams& params);

/// Cap on reported diagnostics per validate() call, so a thoroughly
/// corrupted million-pin design cannot produce a gigabyte of messages.
inline constexpr std::size_t kMaxDiagnostics = 64;

}  // namespace operon::model
