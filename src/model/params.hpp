#pragma once
// Technology parameter library ("Optical Lib" box of Fig 2).
//
// Defaults follow the paper's experimental setup (§5):
//   α = 1.5 dB/cm propagation loss, β = 0.52 dB per crossing (from [5]),
//   pmod = 0.511 pJ/bit, pdet = 0.374 pJ/bit (from [2]),
//   WDM capacity = 32 channels (from [4]).
// Geometry is in µm; losses in dB; energies in pJ/bit. Power numbers
// reported by the flow are energy-per-bit-cycle aggregates (pJ/bit), which
// is the unit Table 1's relative comparisons are invariant to.

#include <cmath>

namespace operon::model {

struct OpticalParams {
  /// Propagation loss α, dB per µm (paper: 1.5 dB/cm = 1.5e-4 dB/µm).
  double alpha_db_per_um = 1.5e-4;
  /// Crossing loss β, dB per waveguide crossing.
  double beta_db_per_crossing = 0.52;
  /// Splitter excess loss per Y-branch in dB, on top of the ideal
  /// 10·log10(ns) split. Fig 3(b)'s ideal 50-50 branches use 0.
  double splitter_excess_db = 0.0;
  /// Modulator (EO) energy, pJ/bit.
  double pmod_pj_per_bit = 0.511;
  /// Detector (OE) energy, pJ/bit.
  double pdet_pj_per_bit = 0.374;
  /// Maximum tolerable source-to-detector loss lm, dB (detection limit).
  double max_loss_db = 20.0;
  /// WDM channel capacity (bits sharing one waveguide).
  int wdm_capacity = 32;
  /// Minimum spacing between adjacent WDMs, µm (crosstalk bound, §4.1).
  double dis_lower_um = 20.0;
  /// Maximum distance a connection may move to join a WDM, µm (§4.1).
  double dis_upper_um = 1000.0;

  bool valid() const {
    return std::isfinite(alpha_db_per_um) && alpha_db_per_um >= 0 &&
           std::isfinite(beta_db_per_crossing) && beta_db_per_crossing >= 0 &&
           std::isfinite(splitter_excess_db) && splitter_excess_db >= 0 &&
           std::isfinite(pmod_pj_per_bit) && pmod_pj_per_bit >= 0 &&
           std::isfinite(pdet_pj_per_bit) && pdet_pj_per_bit >= 0 &&
           std::isfinite(max_loss_db) && max_loss_db > 0 && wdm_capacity > 0 &&
           std::isfinite(dis_lower_um) && dis_lower_um >= 0 &&
           std::isfinite(dis_upper_um) && dis_upper_um >= dis_lower_um;
  }
};

struct ElectricalParams {
  /// Switching activity factor γ.
  double switching_factor = 0.15;
  /// System frequency f, GHz.
  double frequency_ghz = 1.0;
  /// Supply voltage V, volts.
  double voltage_v = 1.0;
  /// Wire capacitance per unit length, fF/µm.
  double cap_ff_per_um = 4.6;

  /// Dynamic energy per bit for a wire of the given length (Eq. 6),
  /// expressed per clock cycle so it is commensurable with pJ/bit optical
  /// costs: pe = γ · V² · C(len)   [pJ/bit], with f folded into the unit.
  double energy_pj_per_bit(double wirelength_um) const {
    const double cap_pf = cap_ff_per_um * wirelength_um * 1e-3;  // fF -> pF
    return switching_factor * voltage_v * voltage_v * cap_pf;
  }

  bool valid() const {
    return std::isfinite(switching_factor) && switching_factor > 0 &&
           std::isfinite(frequency_ghz) && frequency_ghz > 0 &&
           std::isfinite(voltage_v) && voltage_v > 0 &&
           std::isfinite(cap_ff_per_um) && cap_ff_per_um > 0;
  }
};

/// Everything the flow needs about the target technology.
struct TechParams {
  OpticalParams optical;
  ElectricalParams electrical;

  bool valid() const { return optical.valid() && electrical.valid(); }

  /// Paper §5 settings.
  static TechParams dac18_defaults();
};

}  // namespace operon::model
