#include "model/params.hpp"

namespace operon::model {

TechParams TechParams::dac18_defaults() {
  TechParams params;
  params.optical.alpha_db_per_um = 1.5e-4;   // 1.5 dB/cm
  params.optical.beta_db_per_crossing = 0.52;
  params.optical.pmod_pj_per_bit = 0.511;
  params.optical.pdet_pj_per_bit = 0.374;
  params.optical.max_loss_db = 20.0;
  params.optical.wdm_capacity = 32;
  params.optical.dis_lower_um = 20.0;
  params.optical.dis_upper_um = 1000.0;
  params.electrical.switching_factor = 0.15;
  params.electrical.frequency_ghz = 1.0;
  params.electrical.voltage_v = 1.0;
  params.electrical.cap_ff_per_um = 4.6;
  return params;
}

}  // namespace operon::model
