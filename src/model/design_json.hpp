#pragma once
// JSON serialization of the input design, the machine-friendly sibling
// of the text format in design.hpp. Schema:
//   {"design":"name","chip":[xlo,ylo,xhi,yhi],
//    "groups":[{"name":"g0","bits":[{"source":[x,y],
//                                    "sinks":[[x,y],...]},...]},...]}
// design_to_json -> parse -> design_to_json is byte-identical (the
// writer and util::write_json share number formatting and key order).
// design_from_json is strict: wrong shapes, missing keys, and non-finite
// numbers throw util::CheckError; the parsed design is NOT validated
// here — run model::validate(design) to diagnose semantic problems.

#include <string>
#include <string_view>

#include "model/design.hpp"

namespace operon::model {

std::string design_to_json(const Design& design);
Design design_from_json(std::string_view text);

/// File wrappers (throw on I/O or parse failure).
void save_design_json(const std::string& path, const Design& design);
Design load_design_json(const std::string& path);

}  // namespace operon::model
