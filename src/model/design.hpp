#pragma once
// Input design model: signal bits bundled in groups with pin locations
// (Problem 1's "Signal Pin Info"). A signal bit is a driver pin plus one
// or more sink pins; a group is a bus of bits that communicate together
// (e.g. a datapath between a logic block and a memory interface).

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "geom/bbox.hpp"
#include "geom/point.hpp"

namespace operon::model {

enum class PinRole { Source, Sink };

struct Pin {
  geom::Point location;
  PinRole role = PinRole::Sink;
};

/// One bit of a signal bus: exactly one source pin and >= 1 sink pins.
struct SignalBit {
  Pin source;
  std::vector<Pin> sinks;

  std::size_t pin_count() const { return 1 + sinks.size(); }

  /// Gravity center over all pins of the bit.
  geom::Point centroid() const;

  geom::BBox bbox() const;
};

/// A named bundle of bits ("signal group"); the unit the K-Means step
/// partitions into hyper nets.
struct SignalGroup {
  std::string name;
  std::vector<SignalBit> bits;

  std::size_t pin_count() const;
  geom::BBox bbox() const;
};

/// Whole input: chip outline plus all signal groups.
struct Design {
  std::string name;
  geom::BBox chip;
  std::vector<SignalGroup> groups;

  std::size_t num_bits() const;  ///< "#Net" column of Table 1
  std::size_t num_pins() const;

  /// Throws util::CheckError when malformed (pins off-chip, empty bits,
  /// non-finite coordinates...). Thin wrapper over the structured
  /// model::validate(design) in model/diagnostic.hpp: the exception
  /// message enumerates every Error-severity diagnostic.
  void validate() const;
};

/// Text serialization. Format:
///   design <name>
///   chip <xlo> <ylo> <xhi> <yhi>
///   group <name>
///   bit S <x> <y> T <x> <y> [T <x> <y> ...]
/// Lines starting with '#' are comments.
void write_design(std::ostream& os, const Design& design);
Design read_design(std::istream& is);

/// Convenience file wrappers (throw on I/O failure).
void save_design(const std::string& path, const Design& design);
Design load_design(const std::string& path);

}  // namespace operon::model
