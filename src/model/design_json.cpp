#include "model/design_json.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"
#include "util/json.hpp"

namespace operon::model {

namespace {

void write_point(util::JsonWriter& json, const geom::Point& p) {
  json.begin_array();
  json.value(p.x).value(p.y);
  json.end_array();
}

geom::Point read_point(const util::JsonValue& value, const char* what) {
  OPERON_CHECK_MSG(value.is(util::JsonType::Array) && value.items().size() == 2,
                   what << " must be a [x, y] pair");
  return {value.at(std::size_t{0}).as_number(),
          value.at(std::size_t{1}).as_number()};
}

}  // namespace

std::string design_to_json(const Design& design) {
  util::JsonWriter json;
  json.begin_object();
  json.key("design").value(design.name);
  json.key("chip").begin_array();
  json.value(design.chip.xlo).value(design.chip.ylo);
  json.value(design.chip.xhi).value(design.chip.yhi);
  json.end_array();
  json.key("groups").begin_array();
  for (const SignalGroup& group : design.groups) {
    json.begin_object();
    json.key("name").value(group.name);
    json.key("bits").begin_array();
    for (const SignalBit& bit : group.bits) {
      json.begin_object();
      json.key("source");
      write_point(json, bit.source.location);
      json.key("sinks").begin_array();
      for (const Pin& sink : bit.sinks) write_point(json, sink.location);
      json.end_array();
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

Design design_from_json(std::string_view text) {
  const util::JsonValue root = util::parse_json(text);
  OPERON_CHECK_MSG(root.is(util::JsonType::Object),
                   "design document must be a JSON object");
  Design design;
  design.name = root.at("design").as_string();
  const util::JsonValue& chip = root.at("chip");
  OPERON_CHECK_MSG(chip.is(util::JsonType::Array) && chip.items().size() == 4,
                   "'chip' must be [xlo, ylo, xhi, yhi]");
  design.chip.xlo = chip.at(std::size_t{0}).as_number();
  design.chip.ylo = chip.at(std::size_t{1}).as_number();
  design.chip.xhi = chip.at(std::size_t{2}).as_number();
  design.chip.yhi = chip.at(std::size_t{3}).as_number();
  for (const util::JsonValue& group_value : root.at("groups").items()) {
    SignalGroup group;
    group.name = group_value.at("name").as_string();
    for (const util::JsonValue& bit_value : group_value.at("bits").items()) {
      SignalBit bit;
      bit.source = {read_point(bit_value.at("source"), "'source'"),
                    PinRole::Source};
      for (const util::JsonValue& sink : bit_value.at("sinks").items()) {
        bit.sinks.push_back({read_point(sink, "'sinks' entry"), PinRole::Sink});
      }
      group.bits.push_back(std::move(bit));
    }
    design.groups.push_back(std::move(group));
  }
  return design;
}

void save_design_json(const std::string& path, const Design& design) {
  std::ofstream os(path);
  OPERON_CHECK_MSG(os.good(), "cannot open '" << path << "' for writing");
  os << design_to_json(design) << "\n";
  OPERON_CHECK_MSG(os.good(), "write failed for '" << path << "'");
}

Design load_design_json(const std::string& path) {
  std::ifstream is(path);
  OPERON_CHECK_MSG(is.good(), "cannot open '" << path << "' for reading");
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return design_from_json(buffer.str());
}

}  // namespace operon::model
