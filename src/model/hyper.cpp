#include "model/hyper.hpp"

#include <algorithm>
#include <map>

#include "util/check.hpp"

namespace operon::model {

bool HyperPin::has_source() const {
  return std::any_of(pins.begin(), pins.end(), [](const PinRef& pin) {
    return pin.role == PinRole::Source;
  });
}

void HyperPin::update_center() {
  OPERON_CHECK(!pins.empty());
  geom::Point sum{0.0, 0.0};
  for (const PinRef& pin : pins) sum = sum + pin.location;
  const double n = static_cast<double>(pins.size());
  center = {sum.x / n, sum.y / n};
}

geom::BBox HyperNet::bbox() const {
  geom::BBox box;
  for (const HyperPin& pin : pins) box.expand(pin.center);
  return box;
}

void HyperNet::select_root() {
  std::size_t best = pins.size();
  std::size_t best_sources = 0;
  for (std::size_t i = 0; i < pins.size(); ++i) {
    const auto sources = static_cast<std::size_t>(
        std::count_if(pins[i].pins.begin(), pins[i].pins.end(),
                      [](const PinRef& p) { return p.role == PinRole::Source; }));
    if (sources > best_sources) {
      best_sources = sources;
      best = i;
    }
  }
  OPERON_CHECK_MSG(best < pins.size(),
                   "hyper net " << id << " has no source pin");
  root = best;
}

void HyperNet::validate(const Design& design) const {
  OPERON_CHECK_MSG(pins.size() >= 2,
                   "hyper net " << id << " has fewer than 2 hyper pins");
  OPERON_CHECK(root < pins.size());
  OPERON_CHECK_MSG(pins[root].has_source(),
                   "hyper net " << id << " root lacks a source pin");
  OPERON_CHECK(group < design.groups.size());
  const SignalGroup& sg = design.groups[group];

  // Every member bit's pins must appear exactly once across hyper pins.
  std::map<std::pair<std::size_t, int>, int> seen;  // (bit, sink) -> count
  for (const HyperPin& hp : pins) {
    OPERON_CHECK(!hp.pins.empty());
    for (const PinRef& pin : hp.pins) {
      OPERON_CHECK(pin.group == group);
      ++seen[{pin.bit, pin.sink}];
    }
  }
  for (std::size_t bit : bits) {
    OPERON_CHECK(bit < sg.bits.size());
    OPERON_CHECK_MSG((seen[{bit, -1}] == 1),
                     "bit " << bit << " source covered " << seen[{bit, -1}]
                            << " times in hyper net " << id);
    for (int s = 0; s < static_cast<int>(sg.bits[bit].sinks.size()); ++s) {
      OPERON_CHECK_MSG((seen[{bit, s}] == 1),
                       "bit " << bit << " sink " << s << " covered "
                              << seen[{bit, s}] << " times in hyper net "
                              << id);
    }
  }
}

}  // namespace operon::model
