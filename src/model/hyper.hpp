#pragma once
// Hyper nets and hyper pins (§3.1). A hyper net stands for a cluster of
// signal bits routed together on shared WDM channels; a hyper pin stands
// for a cluster of neighboring electrical pins, represented by their
// gravity center. Replacing individual nets with hyper nets shrinks the
// problem the co-design/ILP stages must solve.

#include <cstddef>
#include <vector>

#include "geom/bbox.hpp"
#include "geom/point.hpp"
#include "model/design.hpp"

namespace operon::model {

/// Reference to one electrical pin of the input design.
struct PinRef {
  std::size_t group = 0;  ///< index into Design::groups
  std::size_t bit = 0;    ///< index into SignalGroup::bits
  int sink = -1;          ///< -1 = the bit's source pin, else sink index
  geom::Point location;
  PinRole role = PinRole::Sink;
};

/// Cluster of neighboring electrical pins, represented by gravity center.
struct HyperPin {
  geom::Point center;
  std::vector<PinRef> pins;

  std::size_t size() const { return pins.size(); }
  bool has_source() const;

  /// Recompute center as the gravity center of the member pins.
  void update_center();
};

/// Cluster of signal bits plus its hyper pins. `root` indexes the hyper
/// pin acting as the driver side (contains the most source pins).
struct HyperNet {
  std::size_t id = 0;
  std::size_t group = 0;             ///< owning signal group
  std::vector<std::size_t> bits;     ///< member bit indices within the group
  std::vector<HyperPin> pins;
  std::size_t root = 0;

  /// Channels this hyper net occupies on any WDM it uses.
  std::size_t bit_count() const { return bits.size(); }

  geom::BBox bbox() const;

  /// Pick `root` as the hyper pin holding the most source pins (ties:
  /// lowest index); requires at least one hyper pin with a source.
  void select_root();

  /// Invariants: >= 2 hyper pins, root in range and holds a source, every
  /// member bit's pins all appear exactly once across the hyper pins.
  void validate(const Design& design) const;
};

}  // namespace operon::model
