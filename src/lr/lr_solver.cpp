#include "lr/lr_solver.hpp"

#include <utility>

#include "util/strings.hpp"

namespace operon::lr {

LrSelectionSolver::LrSelectionSolver(LrOptions options)
    : options_(std::move(options)) {}

codesign::SolverOutcome LrSelectionSolver::solve(
    const codesign::SolverContext& ctx) const {
  // LR's budget is the iteration cap — already deterministic, so
  // ctx.deterministic_budgets needs no handling here.
  LrOptions options = options_;
  options.stop = ctx.stop;
  options.threads = ctx.threads;
  LrResult solved = solve_selection_lr(ctx.sets, *ctx.params, options);
  codesign::SolverOutcome outcome;
  outcome.selection = std::move(solved.selection);
  outcome.power_pj = solved.power_pj;
  outcome.violations = solved.violations;
  outcome.lr_iterations = solved.iterations;
  if (!solved.converged) {
    outcome.degraded = true;
    outcome.warnings.push_back(
        {model::Severity::Warning, model::DiagCode::LrNoConvergence,
         util::format("LR did not converge within %zu iterations; "
                      "keeping the repaired final selection",
                      solved.iterations)});
  }
  return outcome;
}

}  // namespace operon::lr
