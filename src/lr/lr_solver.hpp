#pragma once
// solve_selection_lr behind the SelectionSolver API ("lr"). Lives in
// the lr module (codesign is below lr in the dependency order and must
// not link it); core registers it — and hands it to the exact adapter
// as the warm-start solver — when building the per-run registry.

#include "codesign/solver.hpp"
#include "lr/lr.hpp"

namespace operon::lr {

class LrSelectionSolver final : public codesign::SelectionSolver {
 public:
  explicit LrSelectionSolver(LrOptions options);
  std::string_view name() const override { return "lr"; }
  codesign::SolverCapabilities capabilities() const override {
    return {false, true};
  }
  codesign::SolverOutcome solve(
      const codesign::SolverContext& ctx) const override;

 private:
  LrOptions options_;
};

}  // namespace operon::lr
