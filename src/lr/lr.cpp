#include "lr/lr.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace operon::lr {

namespace {

using codesign::Candidate;
using codesign::CandidateSet;
using codesign::Selection;
using codesign::SelectionEvaluator;

/// Multipliers, one per path of every candidate of every net.
using Multipliers = std::vector<std::vector<std::vector<double>>>;

Multipliers init_multipliers(const SelectionEvaluator& evaluator,
                             double init_scale) {
  const double lm = evaluator.params().optical.max_loss_db;
  Multipliers lambda(evaluator.num_nets());
  for (std::size_t i = 0; i < evaluator.num_nets(); ++i) {
    const CandidateSet& set = evaluator.set(i);
    const double pe = set.electrical().power_pj;  // Algorithm 1 line 1
    lambda[i].resize(set.options.size());
    for (std::size_t c = 0; c < set.options.size(); ++c) {
      lambda[i][c].assign(set.options[c].paths.size(), init_scale * pe / lm);
    }
  }
  return lambda;
}

/// Weighted cost of candidate (i, c) given the other nets' current picks:
/// inherent power plus multiplier-weighted relaxed losses of its own
/// paths, plus its linearized crossing impact on the neighbors' selected
/// paths (both halves of Eq. 5).
double weighted_cost(const SelectionEvaluator& evaluator,
                     const Multipliers& lambda, const Selection& selection,
                     std::size_t i, std::size_t c) {
  const CandidateSet& set = evaluator.set(i);
  const Candidate& cand = set.options[c];
  const double beta = evaluator.params().optical.beta_db_per_crossing;

  double cost = cand.power_pj;
  // Own relaxed constraints, with the crossing queries hoisted out of
  // the path loop: one query per interacting net fills every path's
  // term. Per path the additions happen in the same (static first, then
  // neighbors in ascending order) sequence as the per-path scan did, so
  // the losses — and the costs — are bit-identical.
  thread_local std::vector<double> loss;
  loss.resize(cand.paths.size());
  for (std::size_t p = 0; p < cand.paths.size(); ++p) {
    loss[p] = cand.paths[p].static_loss_db;
  }
  const auto& inter = evaluator.interacting(i);
  for (std::size_t k = 0; k < inter.size(); ++k) {
    const auto counts = evaluator.crossings_at(i, c, k, selection[inter[k]]);
    if (counts.empty()) continue;  // empty span = all zeros
    for (std::size_t p = 0; p < counts.size(); ++p) {
      loss[p] += beta * counts[p];
    }
  }
  for (std::size_t p = 0; p < cand.paths.size(); ++p) {
    cost += lambda[i][c][p] * loss[p];
  }
  // Impact on neighbors' selected paths.
  if (!cand.optical_segments.empty()) {
    for (std::size_t k = 0; k < inter.size(); ++k) {
      const std::size_t m = inter[k];
      const std::size_t cm = selection[m];
      const auto counts = evaluator.crossings_at_rev(i, k, cm, c);
      for (std::size_t q = 0; q < counts.size(); ++q) {
        if (counts[q] != 0) cost += lambda[m][cm][q] * beta * counts[q];
      }  // empty span = all zeros, loop body never runs
    }
  }
  return cost;
}

}  // namespace

LrResult solve_selection_lr(std::span<const CandidateSet> sets,
                            const model::TechParams& params,
                            const LrOptions& options) {
  util::Timer timer;
  SelectionEvaluator evaluator(sets, params);
  const double lm = params.optical.max_loss_db;

  // Parallel setup: one pool for the whole solve (size 1 = pure serial
  // path), and a bulk parallel fill of the pairwise crossing cache so
  // the per-iteration scans below hit warm entries.
  util::ThreadPool pool(options.threads);
  evaluator.precompute_crossings(options.threads);

  Multipliers lambda = init_multipliers(evaluator, options.init_scale);
  Selection selection = evaluator.min_power_selection();

  LrResult result;
  double prev_power = std::numeric_limits<double>::infinity();
  double prev_excess = std::numeric_limits<double>::infinity();
  // Best feasible iterate seen during the multiplier trajectory (the
  // final iterate of a sub-gradient method is not necessarily its best).
  Selection best_feasible;
  double best_feasible_power = std::numeric_limits<double>::infinity();

  util::StopToken stop = options.stop;
  for (std::size_t iter = 1; iter <= options.max_iterations; ++iter) {
    // Iteration checkpoint: on a tripped run budget the multiplier loop
    // stops here and the best-feasible-so-far tail below takes over.
    if (stop.checkpoint("lr.iteration")) break;
    OPERON_SPAN("lr.iteration");
    result.iterations = iter;

    // Line 5: per-net best-weight candidate. The net sweep stays serial
    // (Gauss–Seidel: net i sees this iteration's picks for nets < i),
    // but the candidate costs within one net all read the same state, so
    // they fan out over the pool; the argmin itself is taken serially in
    // candidate order (first strict improvement wins), exactly as the
    // single-threaded scan did.
    std::vector<double> costs;
    for (std::size_t i = 0; i < evaluator.num_nets(); ++i) {
      const std::size_t num_options = evaluator.set(i).options.size();
      costs.assign(num_options, 0.0);
      // Grain gate: fanning out pays only when the scan does real work
      // (the gate depends on instance structure, not timing, so it never
      // perturbs determinism — the costs are identical either way).
      const bool fan_out =
          pool.num_threads() > 1 &&
          num_options * (evaluator.interacting(i).size() + 1) >= 64;
      if (fan_out) {
        pool.parallel_for(num_options, [&](std::size_t c) {
          costs[c] = weighted_cost(evaluator, lambda, selection, i, c);
        });
      } else {
        for (std::size_t c = 0; c < num_options; ++c) {
          costs[c] = weighted_cost(evaluator, lambda, selection, i, c);
        }
      }
      std::size_t best = selection[i];
      double best_cost = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < num_options; ++c) {
        if (costs[c] < best_cost) {
          best_cost = costs[c];
          best = c;
        }
      }
      selection[i] = best;
    }

    // Lines 6-7: violations, then sub-gradient multiplier update.
    const codesign::ViolationStats stats = evaluator.violations(selection);
    const double power = evaluator.total_power(selection);
    const double step = options.step_scale / static_cast<double>(iter);

    // The update touches only lambda[i] and reads the frozen selection,
    // so nets fan out over the pool; the max reduction folds per-net
    // partials in index order (max is exact, so this is belt and braces).
    std::vector<double> net_max(evaluator.num_nets(), 0.0);
    std::vector<double> net_norm2(evaluator.num_nets(), 0.0);
    pool.parallel_for(evaluator.num_nets(), [&](std::size_t i) {
      double local_max = 0.0;
      double local_norm2 = 0.0;
      // All selected-candidate path losses in one bulk query sweep
      // (bit-identical to per-path path_loss_db calls).
      thread_local std::vector<double> selected_losses;
      evaluator.path_losses_db(selection, i, selection[i], selected_losses);
      for (std::size_t c = 0; c < evaluator.set(i).options.size(); ++c) {
        const bool selected = (selection[i] == c);
        for (std::size_t p = 0; p < lambda[i][c].size(); ++p) {
          // Sub-gradient of (loss_p - lm), normalized by lm; paths of
          // unselected candidates contribute loss 0, so they decay.
          const double loss = selected ? selected_losses[p] : 0.0;
          const double gradient = (loss - lm) / lm;
          local_norm2 += gradient * gradient;
          double& value = lambda[i][c][p];
          value = std::max(0.0, value + step * gradient *
                                    evaluator.set(i).electrical().power_pj);
          local_max = std::max(local_max, value);
        }
      }
      net_max[i] = local_max;
      net_norm2[i] = local_norm2;
    });
    double max_lambda = 0.0;
    for (double value : net_max) max_lambda = std::max(max_lambda, value);
    // Serial fold in index order: the FP sum is thread-count-invariant.
    double norm2 = 0.0;
    for (double value : net_norm2) norm2 += value;

    result.trace.push_back({power, stats.violated_paths,
                            stats.total_excess_db, max_lambda,
                            std::sqrt(norm2)});
    if (stats.clean() && power < best_feasible_power) {
      best_feasible_power = power;
      best_feasible = selection;
    }

    // Converging criteria: both the power and the violation totals have
    // stopped improving by at least the required ratio.
    const double power_improvement =
        prev_power == std::numeric_limits<double>::infinity()
            ? 1.0
            : (prev_power - power) / std::max(prev_power, 1e-12);
    const double excess_improvement =
        prev_excess == std::numeric_limits<double>::infinity()
            ? 1.0
            : (prev_excess - stats.total_excess_db) /
                  std::max(prev_excess, 1e-12);
    prev_power = power;
    prev_excess = stats.total_excess_db;
    if (std::abs(power_improvement) < options.convergence_ratio &&
        (stats.clean() ||
         std::abs(excess_improvement) < options.convergence_ratio)) {
      result.converged = true;
      break;
    }
  }

  if (options.repair_violations) {
    selection = evaluator.peel(std::move(selection));
    // Keep the best feasible solution seen anywhere: the multiplier
    // trajectory's best clean iterate, a plain repair of the relaxed
    // optimum, or the repaired final iterate.
    if (best_feasible_power < evaluator.total_power(selection)) {
      selection = std::move(best_feasible);
    }
    Selection baseline = evaluator.peel(evaluator.min_power_selection());
    if (evaluator.total_power(baseline) < evaluator.total_power(selection)) {
      selection = std::move(baseline);
    }
  }
  result.selection = std::move(selection);
  result.power_pj = evaluator.total_power(result.selection);
  result.violations = evaluator.violations(result.selection);
  result.runtime_s = timer.seconds();

  obs::add_counter("lr.solves");
  obs::add_counter("lr.iterations", result.iterations);
  obs::set_gauge("lr.converged", result.converged ? 1.0 : 0.0);
  for (const LrIterationStats& step_stats : result.trace) {
    obs::observe("lr.subgradient_norm", step_stats.subgradient_norm);
    obs::observe("lr.max_multiplier", step_stats.max_multiplier);
  }
  return result;
}

}  // namespace operon::lr
