#pragma once
// "OPERON (LR)" — the Lagrangian-Relaxation speed-up of §3.4
// (Algorithm 1). The detection constraints (3c) are relaxed into the
// objective with one multiplier per source-to-sink path; the quadratic
// crossing terms are linearized around the previous iterate (Eq. 5).
// Each iteration selects, per hyper net, the candidate with the best
// weighted cost (inherent power + multiplier penalties), then updates
// the multipliers by sub-gradient on the observed violations. The flow
// stops when both the power and the violations improve by less than a
// ratio, or after `max_iterations` (paper: 10).

#include <span>
#include <vector>

#include "codesign/selection.hpp"
#include "util/stop.hpp"

namespace operon::lr {

struct LrOptions {
  std::size_t max_iterations = 10;
  /// Initial multipliers are proportional to the net's electrical power:
  /// lambda0 = init_scale * pe(i) / lm (Algorithm 1 line 1).
  double init_scale = 0.05;
  /// Sub-gradient step: step_t = step_scale / t (guarantees convergence).
  double step_scale = 1.0;
  /// Converged when relative improvements of power and violation both
  /// fall below this ratio (paper's converging criteria).
  double convergence_ratio = 0.01;
  /// After the multiplier loop, greedily repair any remaining violations
  /// by demoting offending nets to cheaper-loss candidates (guarantees a
  /// feasible final selection, as constraint 3b's a_ie term promises).
  bool repair_violations = true;
  /// Worker threads (1 = serial, 0 = hardware concurrency). The crossing
  /// cache is bulk-filled in parallel up front, each net's candidate
  /// argmin scan fans out over candidates, and the multiplier update
  /// fans out over nets — all under the Gauss–Seidel iteration-order
  /// semantics of Algorithm 1, so results are bit-identical at any
  /// thread count.
  std::size_t threads = 1;
  /// Run-wide budget: polled once per multiplier iteration (serial
  /// orchestration point). A trip breaks the loop; the repair tail still
  /// runs, so the result is the best feasible selection seen so far.
  util::StopToken stop;
};

struct LrIterationStats {
  double power_pj = 0.0;
  std::size_t violated_paths = 0;
  double total_excess_db = 0.0;
  double max_multiplier = 0.0;
  /// L2 norm of the sub-gradient over every (net, candidate, path)
  /// multiplier entry ((loss - lm) / lm per entry). Folded from per-net
  /// partials in index order, so bit-identical at any thread count.
  double subgradient_norm = 0.0;
};

struct LrResult {
  codesign::Selection selection;
  double power_pj = 0.0;
  codesign::ViolationStats violations;
  std::size_t iterations = 0;
  /// True when the converging criteria fired; false when the multiplier
  /// loop exhausted max_iterations first. The final selection is still
  /// feasible either way (repair_violations), but a non-converged run is
  /// a degradation signal callers may want to surface.
  bool converged = false;
  double runtime_s = 0.0;
  std::vector<LrIterationStats> trace;
};

LrResult solve_selection_lr(std::span<const codesign::CandidateSet> sets,
                            const model::TechParams& params,
                            const LrOptions& options = {});

}  // namespace operon::lr
