#pragma once
// Optical loss (Eq. 2) and conversion power (Eq. 1) models.
//
//   loss = α·WL + β·n_x + 10·Σ log10(n_s)        [dB]
//   p_o  = p_mod·n_mod + p_det·n_det             [pJ/bit]
//
// Splitting loss — the term prior work neglected and OPERON emphasizes —
// is ideal -10·log10(arms) per split plus an optional per-branch excess.

#include <span>

#include "model/params.hpp"

namespace operon::optical {

/// Ideal + excess splitting loss in dB for a 1-to-`arms` split.
/// arms == 1 means pass-through (0 dB). Requires arms >= 1.
double splitting_loss_db(const model::OpticalParams& params, int arms);

/// Per-path loss decomposition along one source-to-detector optical path.
struct LossBreakdown {
  double propagation_db = 0.0;
  double crossing_db = 0.0;
  double splitting_db = 0.0;

  double total_db() const {
    return propagation_db + crossing_db + splitting_db;
  }

  LossBreakdown& operator+=(const LossBreakdown& other) {
    propagation_db += other.propagation_db;
    crossing_db += other.crossing_db;
    splitting_db += other.splitting_db;
    return *this;
  }
};

/// Eq. (2): loss of a path with the given length, crossing count, and the
/// split fan-outs encountered along the way.
LossBreakdown path_loss(const model::OpticalParams& params, double length_um,
                        int crossings, std::span<const int> split_arms);

/// Eq. (1): EO/OE conversion energy for n_mod modulators and n_det
/// detectors (per bit-channel).
double conversion_energy_pj(const model::OpticalParams& params, int nmod,
                            int ndet);

/// Fraction of optical power surviving a given loss (10^(-dB/10)).
double surviving_fraction(double loss_db);

/// True when the path loss is within the detection limit lm.
bool detectable(const model::OpticalParams& params, double loss_db);

/// Laser source budget. Eq. (1) counts only EO/OE conversion energy; the
/// laser supplying the photons must overcome the whole path loss, so its
/// wall-plug power is EXPONENTIAL in the dB loss — the hidden cost of
/// routing close to the detection limit.
struct LaserParams {
  /// Receiver sensitivity (minimum detectable power), dBm per channel.
  double sensitivity_dbm = -17.0;
  /// Laser wall-plug efficiency (optical out / electrical in).
  double wallplug_efficiency = 0.10;
  /// Fixed laser-to-chip coupling loss, dB.
  double coupling_loss_db = 1.0;

  bool valid() const {
    return wallplug_efficiency > 0.0 && wallplug_efficiency <= 1.0 &&
           coupling_loss_db >= 0.0;
  }
};

/// Electrical wall-plug power (mW) one channel's laser draws to keep a
/// path of the given loss detectable.
double laser_wallplug_mw(const LaserParams& params, double path_loss_db);

}  // namespace operon::optical
