#include "optical/loss.hpp"

#include <cmath>

#include "util/check.hpp"

namespace operon::optical {

double splitting_loss_db(const model::OpticalParams& params, int arms) {
  OPERON_CHECK(arms >= 1);
  if (arms == 1) return 0.0;
  return 10.0 * std::log10(static_cast<double>(arms)) +
         params.splitter_excess_db;
}

LossBreakdown path_loss(const model::OpticalParams& params, double length_um,
                        int crossings, std::span<const int> split_arms) {
  OPERON_CHECK(length_um >= 0.0);
  OPERON_CHECK(crossings >= 0);
  LossBreakdown loss;
  loss.propagation_db = params.alpha_db_per_um * length_um;
  loss.crossing_db = params.beta_db_per_crossing * crossings;
  for (int arms : split_arms) loss.splitting_db += splitting_loss_db(params, arms);
  return loss;
}

double conversion_energy_pj(const model::OpticalParams& params, int nmod,
                            int ndet) {
  OPERON_CHECK(nmod >= 0);
  OPERON_CHECK(ndet >= 0);
  return params.pmod_pj_per_bit * nmod + params.pdet_pj_per_bit * ndet;
}

double surviving_fraction(double loss_db) {
  return std::pow(10.0, -loss_db / 10.0);
}

bool detectable(const model::OpticalParams& params, double loss_db) {
  return loss_db <= params.max_loss_db + 1e-9;
}

double laser_wallplug_mw(const LaserParams& params, double path_loss_db) {
  OPERON_CHECK(params.valid());
  OPERON_CHECK(path_loss_db >= 0.0);
  // Optical power at the laser, dBm: sensitivity + total loss back-off.
  const double laser_dbm =
      params.sensitivity_dbm + path_loss_db + params.coupling_loss_db;
  const double optical_mw = std::pow(10.0, laser_dbm / 10.0);
  return optical_mw / params.wallplug_efficiency;
}

}  // namespace operon::optical
