#include "optical/splitter.hpp"

#include <algorithm>
#include <cmath>

#include "optical/loss.hpp"
#include "util/check.hpp"

namespace operon::optical {

SplitterNode balanced_cascade(int depth) {
  OPERON_CHECK(depth >= 0);
  SplitterNode node;
  if (depth == 0) return node;
  node.arms.push_back(balanced_cascade(depth - 1));
  node.arms.push_back(balanced_cascade(depth - 1));
  return node;
}

namespace {
void simulate_into(const model::OpticalParams& params,
                   const SplitterNode& node, double power,
                   std::vector<double>& outputs) {
  if (node.is_output()) {
    outputs.push_back(power);
    return;
  }
  const int arms = static_cast<int>(node.arms.size());
  const double after_split =
      power * surviving_fraction(splitting_loss_db(params, arms));
  for (const SplitterNode& arm : node.arms) {
    simulate_into(params, arm, after_split, outputs);
  }
}
}  // namespace

std::vector<double> simulate(const model::OpticalParams& params,
                             const SplitterNode& tree, double input_power) {
  OPERON_CHECK(input_power >= 0.0);
  std::vector<double> outputs;
  simulate_into(params, tree, input_power, outputs);
  return outputs;
}

double worst_output(const model::OpticalParams& params,
                    const SplitterNode& tree, double input_power) {
  const auto outputs = simulate(params, tree, input_power);
  return *std::min_element(outputs.begin(), outputs.end());
}

double worst_split_loss_db(const model::OpticalParams& params,
                           const SplitterNode& tree) {
  const double worst = worst_output(params, tree, 1.0);
  OPERON_CHECK(worst > 0.0);
  return std::max(0.0, -10.0 * std::log10(worst));
}

}  // namespace operon::optical
