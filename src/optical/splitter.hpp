#pragma once
// Y-branch splitter cascade simulation, reproducing Fig 3(b): cascaded
// 50-50 Y-branches each halve the input power on their output arms.

#include <vector>

#include "model/params.hpp"

namespace operon::optical {

/// One node of a splitter tree; leaves are outputs.
struct SplitterNode {
  std::vector<SplitterNode> arms;  ///< empty = output port

  bool is_output() const { return arms.empty(); }
};

/// Full binary cascade of 50-50 Y-branches with the given depth
/// (depth 0 = a bare output; depth 2 = the two-stage cascade of Fig 3b).
SplitterNode balanced_cascade(int depth);

/// Propagate `input_power` (linear units, e.g. normalized to 1.0) through
/// the splitter tree; returns power at every output, left-to-right.
/// Each 1-to-k split divides power by k and applies the configured excess
/// loss per branch.
std::vector<double> simulate(const model::OpticalParams& params,
                             const SplitterNode& tree, double input_power);

/// Worst-case (minimum) output power of the tree.
double worst_output(const model::OpticalParams& params,
                    const SplitterNode& tree, double input_power);

/// Cumulative splitting loss in dB down to the worst output.
double worst_split_loss_db(const model::OpticalParams& params,
                           const SplitterNode& tree);

}  // namespace operon::optical
