#pragma once
// Tile-grid maze routing with negotiated congestion (PathFinder-lite) —
// the router class GLOW [4] belongs to ("global routing" on tiles with
// WDM capacity). Used by the grid-based optical baseline and available
// as a substrate for Manhattan waveguide routing experiments.
//
// The chip is tiled N x N; routes run between 4-neighbor tile centers.
// Edge cost = base length * (1 + congestion penalty) + bend penalty;
// after each round, edges over capacity raise their history cost and
// every overflowing net reroutes, until no overflow or the round limit.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "geom/bbox.hpp"
#include "geom/point.hpp"
#include "geom/segment.hpp"

namespace operon::grid {

using TileId = std::size_t;

struct GridOptions {
  std::size_t tiles = 24;           ///< tiles per axis
  int edge_capacity = 4;            ///< waveguides per tile edge
  double bend_penalty_um = 200.0;   ///< cost per direction change
  double congestion_weight = 2.0;   ///< present-overuse multiplier
  double history_increment = 0.5;   ///< per-round history bump on overflow
  std::size_t max_rounds = 8;
};

/// One routed tree over tiles (a 2-pin route is a single path).
struct GridRoute {
  /// Tree edges between adjacent tiles (parent, child), root-first order.
  std::vector<std::pair<TileId, TileId>> edges;
  double length_um = 0.0;
  int bends = 0;
  bool routed = false;  ///< false when a terminal was unreachable

  bool empty() const { return edges.empty(); }
};

class RoutingGrid {
 public:
  RoutingGrid(const geom::BBox& chip, std::size_t tiles);

  std::size_t tiles_per_axis() const { return tiles_; }
  std::size_t num_tiles() const { return tiles_ * tiles_; }
  TileId tile_of(const geom::Point& p) const;
  geom::Point center(TileId tile) const;
  double tile_pitch_um() const { return pitch_x_; }

  /// 4-neighbors of a tile.
  std::vector<TileId> neighbors(TileId tile) const;

  /// Undirected edge index between adjacent tiles a and b.
  std::size_t edge_index(TileId a, TileId b) const;
  std::size_t num_edges() const;

  const geom::BBox& chip() const { return chip_; }

 private:
  geom::BBox chip_;
  std::size_t tiles_;
  double pitch_x_;
  double pitch_y_;
};

/// Polyline geometry of a route (tile-center segments, merged straights).
std::vector<geom::Segment> route_segments(const RoutingGrid& grid,
                                          const GridRoute& route);

class MazeRouter {
 public:
  MazeRouter(const geom::BBox& chip, const GridOptions& options = {});

  const RoutingGrid& grid() const { return grid_; }

  /// Route every net (first terminal = driver) with negotiated
  /// congestion; returns one route per net, aligned with the input.
  /// Multi-terminal nets are routed as sequential Steiner trees (each
  /// new terminal connects to the nearest point of the growing tree).
  std::vector<GridRoute> route_all(
      std::span<const std::vector<geom::Point>> nets);

  struct Stats {
    std::size_t rounds = 0;
    std::size_t overflowed_edges = 0;  ///< after the final round
    std::size_t failed_nets = 0;
    double total_length_um = 0.0;
  };
  const Stats& stats() const { return stats_; }

  /// Per-edge usage after route_all (for congestion inspection).
  const std::vector<int>& edge_usage() const { return usage_; }

 private:
  GridRoute route_net(const std::vector<TileId>& terminals);
  void commit(const GridRoute& route, int delta);
  double edge_cost(TileId from, TileId to, TileId via_parent) const;

  RoutingGrid grid_;
  GridOptions options_;
  std::vector<int> usage_;
  std::vector<double> history_;
  Stats stats_;
};

}  // namespace operon::grid
