#include "grid/maze.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>
#include <set>

#include "util/check.hpp"

namespace operon::grid {

RoutingGrid::RoutingGrid(const geom::BBox& chip, std::size_t tiles)
    : chip_(chip), tiles_(tiles) {
  OPERON_CHECK(!chip.is_empty());
  OPERON_CHECK(tiles >= 2);
  pitch_x_ = chip.width() / static_cast<double>(tiles);
  pitch_y_ = chip.height() / static_cast<double>(tiles);
}

TileId RoutingGrid::tile_of(const geom::Point& p) const {
  const auto clamp_idx = [&](double v, double lo, double pitch) {
    const auto i = static_cast<long long>((v - lo) / pitch);
    return static_cast<std::size_t>(
        std::clamp<long long>(i, 0, static_cast<long long>(tiles_) - 1));
  };
  return clamp_idx(p.y, chip_.ylo, pitch_y_) * tiles_ +
         clamp_idx(p.x, chip_.xlo, pitch_x_);
}

geom::Point RoutingGrid::center(TileId tile) const {
  OPERON_DCHECK(tile < num_tiles());
  const std::size_t x = tile % tiles_;
  const std::size_t y = tile / tiles_;
  return {chip_.xlo + (static_cast<double>(x) + 0.5) * pitch_x_,
          chip_.ylo + (static_cast<double>(y) + 0.5) * pitch_y_};
}

std::vector<TileId> RoutingGrid::neighbors(TileId tile) const {
  const std::size_t x = tile % tiles_;
  const std::size_t y = tile / tiles_;
  std::vector<TileId> out;
  out.reserve(4);
  if (x > 0) out.push_back(tile - 1);
  if (x + 1 < tiles_) out.push_back(tile + 1);
  if (y > 0) out.push_back(tile - tiles_);
  if (y + 1 < tiles_) out.push_back(tile + tiles_);
  return out;
}

std::size_t RoutingGrid::edge_index(TileId a, TileId b) const {
  if (a > b) std::swap(a, b);
  const std::size_t xa = a % tiles_, ya = a / tiles_;
  if (b == a + 1) {
    // Horizontal edge between (xa, ya) and (xa+1, ya).
    OPERON_DCHECK(xa + 1 < tiles_);
    return ya * (tiles_ - 1) + xa;
  }
  OPERON_DCHECK(b == a + tiles_);
  // Vertical edge between (xa, ya) and (xa, ya+1).
  const std::size_t horizontal_count = tiles_ * (tiles_ - 1);
  return horizontal_count + xa * (tiles_ - 1) + ya;
}

std::size_t RoutingGrid::num_edges() const { return 2 * tiles_ * (tiles_ - 1); }

std::vector<geom::Segment> route_segments(const RoutingGrid& grid,
                                          const GridRoute& route) {
  std::vector<geom::Segment> out;
  out.reserve(route.edges.size());
  for (const auto& [a, b] : route.edges) {
    out.push_back({grid.center(a), grid.center(b)});
  }
  return out;
}

MazeRouter::MazeRouter(const geom::BBox& chip, const GridOptions& options)
    : grid_(chip, options.tiles),
      options_(options),
      usage_(grid_.num_edges(), 0),
      history_(grid_.num_edges(), 0.0) {
  OPERON_CHECK(options.edge_capacity >= 1);
  OPERON_CHECK(options.max_rounds >= 1);
}

double MazeRouter::edge_cost(TileId from, TileId to, TileId via_parent) const {
  const std::size_t edge = grid_.edge_index(from, to);
  const double base = geom::euclidean(grid_.center(from), grid_.center(to));
  const double over = std::max(
      0, usage_[edge] + 1 - options_.edge_capacity);
  double cost = base *
                    (1.0 + options_.congestion_weight * over /
                               static_cast<double>(options_.edge_capacity)) +
                history_[edge];
  // Bend penalty: direction change relative to the step into `from`.
  if (via_parent != from) {  // `from` has an incoming direction
    const bool incoming_horizontal =
        (via_parent / grid_.tiles_per_axis()) == (from / grid_.tiles_per_axis());
    const bool outgoing_horizontal =
        (from / grid_.tiles_per_axis()) == (to / grid_.tiles_per_axis());
    if (incoming_horizontal != outgoing_horizontal) {
      cost += options_.bend_penalty_um;
    }
  }
  return cost;
}

GridRoute MazeRouter::route_net(const std::vector<TileId>& terminals) {
  GridRoute route;
  route.routed = true;
  if (terminals.size() <= 1) return route;

  std::set<TileId> tree{terminals[0]};
  std::set<TileId> pending(terminals.begin() + 1, terminals.end());
  pending.erase(terminals[0]);

  while (!pending.empty()) {
    // Multi-source Dijkstra from the whole tree to the nearest pending
    // terminal. Parent tracking reconstructs the path.
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> dist(grid_.num_tiles(), kInf);
    std::vector<TileId> parent(grid_.num_tiles(),
                               std::numeric_limits<TileId>::max());
    using Item = std::pair<double, TileId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    for (TileId t : tree) {
      dist[t] = 0.0;
      parent[t] = t;
      heap.emplace(0.0, t);
    }
    TileId reached = std::numeric_limits<TileId>::max();
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[u] + 1e-12) continue;
      if (pending.count(u)) {
        reached = u;
        break;
      }
      for (TileId v : grid_.neighbors(u)) {
        const double nd = d + edge_cost(u, v, parent[u]);
        if (nd < dist[v] - 1e-9) {
          dist[v] = nd;
          parent[v] = u;
          heap.emplace(nd, v);
        }
      }
    }
    if (reached == std::numeric_limits<TileId>::max()) {
      route.routed = false;
      return route;
    }
    // Splice the path into the tree (new edges only).
    for (TileId v = reached; parent[v] != v; v = parent[v]) {
      route.edges.emplace_back(parent[v], v);
      tree.insert(v);
    }
    pending.erase(reached);
  }

  // Length and bend statistics.
  route.length_um = 0.0;
  for (const auto& [a, b] : route.edges) {
    route.length_um += geom::euclidean(grid_.center(a), grid_.center(b));
  }
  // Bends: per node on the tree, count direction changes along each
  // parent-child chain (approximate: count per tile with both a
  // horizontal and a vertical incident route edge).
  std::map<TileId, std::pair<bool, bool>> orientation;  // (has H, has V)
  for (const auto& [a, b] : route.edges) {
    const bool horizontal =
        (a / grid_.tiles_per_axis()) == (b / grid_.tiles_per_axis());
    for (TileId t : {a, b}) {
      auto& [h, v] = orientation[t];
      h = h || horizontal;
      v = v || !horizontal;
    }
  }
  route.bends = 0;
  for (const auto& [tile, hv] : orientation) {
    if (hv.first && hv.second) ++route.bends;
  }
  return route;
}

void MazeRouter::commit(const GridRoute& route, int delta) {
  for (const auto& [a, b] : route.edges) {
    usage_[grid_.edge_index(a, b)] += delta;
    OPERON_DCHECK(usage_[grid_.edge_index(a, b)] >= 0);
  }
}

std::vector<GridRoute> MazeRouter::route_all(
    std::span<const std::vector<geom::Point>> nets) {
  // Terminal tiles per net (deduplicated, driver first).
  std::vector<std::vector<TileId>> terminals(nets.size());
  for (std::size_t i = 0; i < nets.size(); ++i) {
    OPERON_CHECK(!nets[i].empty());
    std::set<TileId> seen;
    for (const geom::Point& pin : nets[i]) {
      const TileId tile = grid_.tile_of(pin);
      if (seen.insert(tile).second) terminals[i].push_back(tile);
    }
  }

  std::vector<GridRoute> routes(nets.size());
  for (std::size_t round = 0; round < options_.max_rounds; ++round) {
    stats_.rounds = round + 1;
    // Full rip-up and re-route with current history costs.
    std::fill(usage_.begin(), usage_.end(), 0);
    for (std::size_t i = 0; i < nets.size(); ++i) {
      routes[i] = route_net(terminals[i]);
      commit(routes[i], +1);
    }
    // Overflow accounting; stop when clean.
    std::size_t overflowed = 0;
    for (std::size_t e = 0; e < usage_.size(); ++e) {
      if (usage_[e] > options_.edge_capacity) {
        ++overflowed;
        history_[e] +=
            options_.history_increment * grid_.tile_pitch_um();
      }
    }
    stats_.overflowed_edges = overflowed;
    if (overflowed == 0) break;
  }

  stats_.failed_nets = 0;
  stats_.total_length_um = 0.0;
  for (const GridRoute& route : routes) {
    if (!route.routed) ++stats_.failed_nets;
    stats_.total_length_um += route.length_um;
  }
  return routes;
}

}  // namespace operon::grid
