#include "codesign/selection.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace operon::codesign {

namespace {

std::uint64_t fallback_key(std::size_t i, std::size_t ci, std::size_t m,
                           std::size_t cm) {
  // Nets < 2^24, candidates < 2^8 comfortably.
  return (static_cast<std::uint64_t>(i) << 40) |
         (static_cast<std::uint64_t>(ci) << 32) |
         (static_cast<std::uint64_t>(m) << 8) | static_cast<std::uint64_t>(cm);
}

/// All bbox-overlapping (a, b) pairs with a < b, via a sweep over the
/// x-sorted boxes: a box only needs testing against the active set whose
/// x-ranges reach its xlo (closed-interval, mirroring BBox::overlaps).
/// Output pair set is exactly the former O(n²) scan's.
std::vector<std::pair<std::size_t, std::size_t>> overlapping_pairs(
    std::span<const CandidateSet> sets) {
  std::vector<std::size_t> order;
  order.reserve(sets.size());
  for (std::size_t i = 0; i < sets.size(); ++i) {
    if (!sets[i].bbox.is_empty()) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (sets[a].bbox.xlo != sets[b].bbox.xlo) {
      return sets[a].bbox.xlo < sets[b].bbox.xlo;
    }
    return a < b;
  });

  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  std::vector<std::size_t> active;
  for (std::size_t j : order) {
    const geom::BBox& bj = sets[j].bbox;
    std::erase_if(active, [&](std::size_t a) {
      return sets[a].bbox.xhi < bj.xlo;
    });
    for (std::size_t a : active) {
      const geom::BBox& ba = sets[a].bbox;
      // x-overlap holds by construction (sorted xlo, survivors' xhi
      // reach bj.xlo); only the y-interval test remains.
      if (ba.ylo <= bj.yhi && bj.ylo <= ba.yhi) {
        pairs.emplace_back(std::min(a, j), std::max(a, j));
      }
    }
    active.push_back(j);
  }
  return pairs;
}

}  // namespace

SelectionEvaluator::SelectionEvaluator(std::span<const CandidateSet> sets,
                                       const model::TechParams& params,
                                       bool interact_all)
    : sets_(sets), params_(params), interactions_(sets.size()) {
  if (interact_all) {
    for (std::size_t i = 0; i < sets_.size(); ++i) {
      for (std::size_t m = i + 1; m < sets_.size(); ++m) {
        interactions_[i].push_back(m);
        interactions_[m].push_back(i);
      }
    }
  } else {
    for (const auto& [a, b] : overlapping_pairs(sets_)) {
      interactions_[a].push_back(b);
      interactions_[b].push_back(a);
    }
    for (auto& list : interactions_) std::sort(list.begin(), list.end());
  }
  obs::set_gauge("codesign.interactions.pairs",
                 static_cast<double>(num_interacting_pairs()));

  // Per-candidate optical geometry bounding boxes for quick rejection,
  // plus compact mirrors of the per-candidate metadata the hot path
  // needs (so queries never touch the big Candidate structs).
  optical_bbox_.resize(sets_.size());
  active_paths_.resize(sets_.size());
  num_options_.resize(sets_.size());
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    optical_bbox_[i].resize(sets_[i].options.size());
    active_paths_[i].resize(sets_[i].options.size());
    num_options_[i] = static_cast<std::uint32_t>(sets_[i].options.size());
    for (std::size_t c = 0; c < sets_[i].options.size(); ++c) {
      const Candidate& cand = sets_[i].options[c];
      geom::BBox box;
      for (const geom::Segment& seg : cand.optical_segments) {
        box.expand(seg.bbox());
      }
      optical_bbox_[i][c] = box;
      active_paths_[i][c] =
          (cand.paths.empty() || cand.optical_segments.empty())
              ? 0u
              : static_cast<std::uint32_t>(cand.paths.size());
    }
  }

  // Flat directed-pair layout: slot ids, combo ids, and counts offsets
  // are all fixed here, so queries are pure reads plus one lazy compute.
  slot_start_.resize(sets_.size() + 1, 0);
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    slot_start_[i + 1] =
        slot_start_[i] + static_cast<std::uint32_t>(interactions_[i].size());
  }
  const std::size_t num_slots = slot_start_[sets_.size()];

  combo_base_.resize(num_slots + 1, 0);
  std::uint64_t combos = 0;
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    for (std::size_t k = 0; k < interactions_[i].size(); ++k) {
      const std::size_t m = interactions_[i][k];
      combo_base_[slot_start_[i] + k] = static_cast<std::uint32_t>(combos);
      combos += sets_[i].options.size() * sets_[m].options.size();
    }
  }
  OPERON_CHECK_MSG(combos < kNoSlot, "crossing-table combo count overflow");
  combo_base_[num_slots] = static_cast<std::uint32_t>(combos);

  counts_begin_.resize(combos + 1, 0);
  std::uint64_t pool = 0;
  {
    std::size_t combo = 0;
    for (std::size_t i = 0; i < sets_.size(); ++i) {
      for (std::size_t m : interactions_[i]) {
        for (std::size_t ci = 0; ci < sets_[i].options.size(); ++ci) {
          const std::uint64_t paths = sets_[i].options[ci].paths.size();
          for (std::size_t cm = 0; cm < sets_[m].options.size(); ++cm) {
            counts_begin_[combo++] = static_cast<std::uint32_t>(pool);
            pool += paths;
          }
        }
      }
    }
    OPERON_CHECK_MSG(pool < kNoSlot, "crossing-table counts pool overflow");
    counts_begin_[combo] = static_cast<std::uint32_t>(pool);
  }

  counts_pool_.resize(pool, 0);
  state_.reset(combos > 0 ? new std::atomic<std::uint8_t>[combos]() : nullptr);
  compute_mutex_.reset(new std::mutex[kComputeStripes]);
  const std::size_t words = (combos + 63) / 64;
  counted_bits_.reset(words > 0 ? new std::atomic<std::uint64_t>[words]()
                                : nullptr);

  // Reverse-slot table: interaction lists are symmetric, so every
  // directed slot (i -> m) has a partner (m -> i); resolve it once here
  // so the k-indexed reverse queries never search.
  rev_slot_.resize(num_slots);
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    for (std::size_t k = 0; k < interactions_[i].size(); ++k) {
      const std::size_t m = interactions_[i][k];
      const auto& list = interactions_[m];
      const auto it = std::lower_bound(list.begin(), list.end(), i);
      OPERON_DCHECK(it != list.end() && *it == i);
      rev_slot_[slot_start_[i] + k] =
          slot_start_[m] + static_cast<std::uint32_t>(it - list.begin());
    }
  }

  // The dense matrix only serves random-access (i, m) queries — the hot
  // loops are k-indexed and never touch it — so it stays small; larger
  // instances fall back to a binary search over the interaction list.
  if (sets_.size() <= 1024) {
    slot_dense_.assign(sets_.size() * sets_.size(), kNoSlot);
    for (std::size_t i = 0; i < sets_.size(); ++i) {
      for (std::size_t k = 0; k < interactions_[i].size(); ++k) {
        slot_dense_[i * sets_.size() + interactions_[i][k]] =
            slot_start_[i] + static_cast<std::uint32_t>(k);
      }
    }
  }
}

SelectionEvaluator::~SelectionEvaluator() {
  obs::add_counter("codesign.crossing.cache_queries",
                   cache_queries_.load(std::memory_order_relaxed));
  obs::add_counter("codesign.crossing.cache_computed",
                   cache_computed_.load(std::memory_order_relaxed));
}

std::size_t SelectionEvaluator::num_interacting_pairs() const {
  std::size_t total = 0;
  for (const auto& list : interactions_) total += list.size();
  return total / 2;
}

double SelectionEvaluator::total_power(const Selection& selection) const {
  OPERON_CHECK(selection.size() == sets_.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    OPERON_DCHECK(selection[i] < sets_[i].options.size());
    sum += sets_[i].options[selection[i]].power_pj;
  }
  return sum;
}

std::uint32_t SelectionEvaluator::slot_of(std::size_t i, std::size_t m) const {
  if (!slot_dense_.empty()) return slot_dense_[i * sets_.size() + m];
  const auto& list = interactions_[i];
  const auto it = std::lower_bound(list.begin(), list.end(), m);
  if (it == list.end() || *it != m) return kNoSlot;
  return slot_start_[i] + static_cast<std::uint32_t>(it - list.begin());
}

std::span<const int> SelectionEvaluator::crossings(std::size_t i,
                                                   std::size_t ci,
                                                   std::size_t m,
                                                   std::size_t cm) const {
  return crossings_impl(i, ci, m, cm, /*count=*/true);
}

std::span<const int> SelectionEvaluator::crossings_impl(std::size_t i,
                                                        std::size_t ci,
                                                        std::size_t m,
                                                        std::size_t cm,
                                                        bool count) const {
  // Cheap rejection, mirrored on both sides: a candidate with no optical
  // paths or no optical geometry can neither suffer nor inflict
  // crossings, in either query direction. An empty result means "all
  // zeros".
  const std::uint32_t num_paths = active_paths_[i][ci];
  if (num_paths == 0 || active_paths_[m][cm] == 0) return {};
  if (!optical_bbox_[i][ci].overlaps(optical_bbox_[m][cm])) return {};
  if (count) cache_queries_.fetch_add(1, std::memory_order_relaxed);

  const std::uint32_t slot = slot_of(i, m);
  if (slot == kNoSlot) return fallback_crossings(i, ci, m, cm, count);
  return crossings_slot(slot, i, ci, m, cm, num_paths, count);
}

std::span<const int> SelectionEvaluator::crossings_slot(
    std::uint32_t slot, std::size_t i, std::size_t ci, std::size_t m,
    std::size_t cm, std::uint32_t num_paths, bool count) const {
  const std::size_t combo = combo_base_[slot] + ci * num_options_[m] + cm;
  std::uint8_t state = state_[combo].load(std::memory_order_acquire);
  if (state == 0) state = compute_combo(i, ci, m, cm, combo);
  if (count) {
    std::atomic<std::uint64_t>& word = counted_bits_[combo >> 6];
    const std::uint64_t bit = 1ull << (combo & 63);
    if ((word.load(std::memory_order_relaxed) & bit) == 0 &&
        (word.fetch_or(bit, std::memory_order_relaxed) & bit) == 0) {
      cache_computed_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (state == 1) return {};
  return {counts_pool_.data() + counts_begin_[combo], num_paths};
}

std::span<const int> SelectionEvaluator::crossings_at(std::size_t i,
                                                      std::size_t ci,
                                                      std::size_t k,
                                                      std::size_t cm) const {
  const std::size_t m = interactions_[i][k];
  const std::uint32_t num_paths = active_paths_[i][ci];
  if (num_paths == 0 || active_paths_[m][cm] == 0) return {};
  if (!optical_bbox_[i][ci].overlaps(optical_bbox_[m][cm])) return {};
  cache_queries_.fetch_add(1, std::memory_order_relaxed);
  return crossings_slot(slot_start_[i] + static_cast<std::uint32_t>(k), i, ci,
                        m, cm, num_paths, /*count=*/true);
}

std::span<const int> SelectionEvaluator::crossings_at_rev(std::size_t i,
                                                          std::size_t k,
                                                          std::size_t cm,
                                                          std::size_t ci) const {
  const std::size_t m = interactions_[i][k];
  const std::uint32_t num_paths = active_paths_[m][cm];
  if (num_paths == 0 || active_paths_[i][ci] == 0) return {};
  if (!optical_bbox_[m][cm].overlaps(optical_bbox_[i][ci])) return {};
  cache_queries_.fetch_add(1, std::memory_order_relaxed);
  return crossings_slot(rev_slot_[slot_start_[i] + k], m, cm, i, ci, num_paths,
                        /*count=*/true);
}

std::uint8_t SelectionEvaluator::compute_combo(std::size_t i, std::size_t ci,
                                               std::size_t m, std::size_t cm,
                                               std::size_t combo) const {
  const Candidate& mine = sets_[i].options[ci];
  const Candidate& other = sets_[m].options[cm];
  std::lock_guard<std::mutex> lock(compute_mutex_[combo % kComputeStripes]);
  std::uint8_t state = state_[combo].load(std::memory_order_acquire);
  if (state != 0) return state;  // raced: another thread published it
  int* out = counts_pool_.data() + counts_begin_[combo];
  bool any = false;
  for (std::size_t p = 0; p < mine.paths.size(); ++p) {
    const int c = static_cast<int>(geom::count_crossings(
        mine.paths[p].segments, other.optical_segments));
    out[p] = c;
    any = any || c != 0;
  }
  state = any ? 2 : 1;
  // The release store publishes the pool writes to fast-path readers.
  state_[combo].store(state, std::memory_order_release);
  return state;
}

std::span<const int> SelectionEvaluator::fallback_crossings(
    std::size_t i, std::size_t ci, std::size_t m, std::size_t cm,
    bool count) const {
  const Candidate& mine = sets_[i].options[ci];
  const Candidate& other = sets_[m].options[cm];
  const std::uint64_t key = fallback_key(i, ci, m, cm);
  std::lock_guard<std::mutex> lock(fallback_mutex_);
  auto it = fallback_.find(key);
  if (it == fallback_.end()) {
    std::vector<int> counts(mine.paths.size(), 0);
    bool any = false;
    for (std::size_t p = 0; p < mine.paths.size(); ++p) {
      counts[p] = static_cast<int>(geom::count_crossings(
          mine.paths[p].segments, other.optical_segments));
      any = any || counts[p] != 0;
    }
    if (!any) counts.clear();  // the tiny all-zero marker
    it = fallback_.emplace(key, FallbackEntry{std::move(counts)}).first;
  }
  if (count && !it->second.counted) {
    it->second.counted = true;
    cache_computed_.fetch_add(1, std::memory_order_relaxed);
  }
  if (it->second.counts.empty()) return {};
  return {it->second.counts.data(), mine.paths.size()};
}

void SelectionEvaluator::precompute_crossings(std::size_t threads) const {
  if (util::resolve_threads(threads) <= 1) return;
  // Deterministic work list: every interacting (i, m) pair once.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    for (std::size_t m : interactions_[i]) {
      if (i < m) pairs.emplace_back(i, m);
    }
  }
  util::parallel_for(pairs.size(), threads, [&](std::size_t k) {
    const auto [i, m] = pairs[k];
    for (std::size_t ci = 0; ci < sets_[i].options.size(); ++ci) {
      for (std::size_t cm = 0; cm < sets_[m].options.size(); ++cm) {
        // Uncounted: bulk prefill must not perturb the cache counters,
        // which are defined over the solver-facing query stream only so
        // they stay identical at any thread count.
        crossings_impl(i, ci, m, cm, /*count=*/false);
        crossings_impl(m, cm, i, ci, /*count=*/false);
      }
    }
  });
}

bool SelectionEvaluator::pair_can_conflict(std::size_t i, std::size_t m) const {
  // Same combo order and short-circuit as the former per-combo scan in
  // the exact solver, minus the counter traffic (structural read).
  for (std::size_t ci = 0; ci < sets_[i].options.size(); ++ci) {
    for (std::size_t cm = 0; cm < sets_[m].options.size(); ++cm) {
      if (!crossings_impl(i, ci, m, cm, /*count=*/false).empty()) return true;
      if (!crossings_impl(m, cm, i, ci, /*count=*/false).empty()) return true;
    }
  }
  return false;
}

double SelectionEvaluator::path_loss_db(const Selection& selection,
                                        std::size_t i, std::size_t ci,
                                        std::size_t p) const {
  const Candidate& cand = sets_[i].options[ci];
  OPERON_DCHECK(p < cand.paths.size());
  double loss = cand.paths[p].static_loss_db;
  const double beta = params_.optical.beta_db_per_crossing;
  const auto& inter = interactions_[i];
  for (std::size_t k = 0; k < inter.size(); ++k) {
    const auto counts = crossings_at(i, ci, k, selection[inter[k]]);
    if (!counts.empty()) loss += beta * counts[p];
  }
  return loss;
}

void SelectionEvaluator::path_losses_db(const Selection& selection,
                                        std::size_t i, std::size_t ci,
                                        std::vector<double>& out) const {
  const Candidate& cand = sets_[i].options[ci];
  out.resize(cand.paths.size());
  for (std::size_t p = 0; p < cand.paths.size(); ++p) {
    out[p] = cand.paths[p].static_loss_db;
  }
  const double beta = params_.optical.beta_db_per_crossing;
  const auto& inter = interactions_[i];
  for (std::size_t k = 0; k < inter.size(); ++k) {
    const auto counts = crossings_at(i, ci, k, selection[inter[k]]);
    if (counts.empty()) continue;
    for (std::size_t p = 0; p < counts.size(); ++p) {
      out[p] += beta * counts[p];
    }
  }
}

ViolationStats SelectionEvaluator::violations(const Selection& selection) const {
  OPERON_CHECK(selection.size() == sets_.size());
  ViolationStats stats;
  const double lm = params_.optical.max_loss_db;
  std::vector<double> losses;
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    path_losses_db(selection, i, selection[i], losses);
    for (const double loss : losses) {
      stats.worst_loss_db = std::max(stats.worst_loss_db, loss);
      if (loss > lm + 1e-9) {
        ++stats.violated_paths;
        stats.total_excess_db += loss - lm;
      }
    }
  }
  return stats;
}

Selection SelectionEvaluator::all_electrical() const {
  Selection selection(sets_.size());
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    selection[i] = sets_[i].electrical_index;
  }
  return selection;
}

Selection SelectionEvaluator::min_power_selection() const {
  Selection selection(sets_.size());
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    std::size_t best = 0;
    double best_power = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < sets_[i].options.size(); ++c) {
      if (sets_[i].options[c].power_pj < best_power) {
        best_power = sets_[i].options[c].power_pj;
        best = c;
      }
    }
    selection[i] = best;
  }
  return selection;
}

double SelectionEvaluator::power_lower_bound() const {
  return total_power(min_power_selection());
}

Selection SelectionEvaluator::peel(Selection selection) const {
  OPERON_CHECK(selection.size() == sets_.size());
  const double lm = params_.optical.max_loss_db;
  // Equal-power alternatives (e.g. detour geometries) may be tried, so a
  // hard cap guards against oscillation; the final sweep falls back to
  // strictly-monotone demotion, which always terminates clean.
  std::size_t budget = 20 * sets_.size() + 100;
  std::vector<double> losses;

  // Per-net worst path loss, maintained incrementally: a demotion of net
  // j only perturbs j itself and the nets interacting with j, so only
  // those are recomputed per round (the former full rescan dominated the
  // LR repair phase). Values are the same pure functions of the current
  // selection the full rescan produced, and the argmax below scans in
  // net order with a strict >, so the demotion sequence is unchanged.
  std::vector<double> net_worst(sets_.size(),
                                -std::numeric_limits<double>::infinity());
  const auto recompute = [&](std::size_t i) {
    path_losses_db(selection, i, selection[i], losses);
    double worst = -std::numeric_limits<double>::infinity();
    for (const double loss : losses) worst = std::max(worst, loss);
    net_worst[i] = worst;
  };
  for (std::size_t i = 0; i < sets_.size(); ++i) recompute(i);

  while (true) {
    // Worst violated path and its owner.
    std::size_t worst_net = sets_.size();
    double worst_loss = lm + 1e-9;
    for (std::size_t i = 0; i < sets_.size(); ++i) {
      if (net_worst[i] > worst_loss) {
        worst_loss = net_worst[i];
        worst_net = i;
      }
    }
    if (worst_net == sets_.size()) return selection;  // clean

    // Cheapest different candidate whose own paths are detectable under
    // the current picks; while budget remains, equal-power alternatives
    // (detours) are allowed, afterwards strictly costlier ones only.
    const CandidateSet& set = sets_[worst_net];
    const double current_power = set.options[selection[worst_net]].power_pj;
    const bool allow_equal = budget > 0;
    if (budget > 0) --budget;
    std::size_t best = set.electrical_index;
    double best_power = set.electrical().power_pj;
    for (std::size_t c = 0; c < set.options.size(); ++c) {
      if (c == selection[worst_net]) continue;
      const Candidate& cand = set.options[c];
      const double floor_power =
          allow_equal ? current_power - 1e-12 : current_power + 1e-12;
      if (cand.power_pj < floor_power || cand.power_pj >= best_power) {
        continue;
      }
      path_losses_db(selection, worst_net, c, losses);
      bool ok = true;
      for (const double loss : losses) {
        if (loss > lm + 1e-9) {
          ok = false;
          break;
        }
      }
      if (ok) {
        best = c;
        best_power = cand.power_pj;
      }
    }
    selection[worst_net] = best;
    recompute(worst_net);
    for (std::size_t m : interactions_[worst_net]) recompute(m);
  }
}

}  // namespace operon::codesign
