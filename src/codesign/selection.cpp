#include "codesign/selection.hpp"

#include <algorithm>
#include <limits>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace operon::codesign {

namespace {

std::uint64_t pair_key(std::size_t i, std::size_t ci, std::size_t m,
                       std::size_t cm) {
  // Nets < 2^24, candidates < 2^8 comfortably.
  return (static_cast<std::uint64_t>(i) << 40) |
         (static_cast<std::uint64_t>(ci) << 32) |
         (static_cast<std::uint64_t>(m) << 8) | static_cast<std::uint64_t>(cm);
}

/// Canonical "all zero crossings" marker (also used for cached zeros, so
/// entries stay tiny).
const std::vector<int> kNoCrossings;

}  // namespace

SelectionEvaluator::SelectionEvaluator(std::span<const CandidateSet> sets,
                                       const model::TechParams& params,
                                       bool interact_all)
    : sets_(sets),
      params_(params),
      interactions_(sets.size()),
      cache_shards_(new CacheShard[kCacheShards]) {
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    for (std::size_t m = i + 1; m < sets_.size(); ++m) {
      if (interact_all || sets_[i].bbox.overlaps(sets_[m].bbox)) {
        interactions_[i].push_back(m);
        interactions_[m].push_back(i);
      }
    }
  }
  // Per-candidate optical geometry bounding boxes for quick rejection.
  optical_bbox_.resize(sets_.size());
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    optical_bbox_[i].resize(sets_[i].options.size());
    for (std::size_t c = 0; c < sets_[i].options.size(); ++c) {
      geom::BBox box;
      for (const geom::Segment& seg : sets_[i].options[c].optical_segments) {
        box.expand(seg.bbox());
      }
      optical_bbox_[i][c] = box;
    }
  }
}

SelectionEvaluator::~SelectionEvaluator() {
  obs::add_counter("codesign.crossing.cache_queries",
                   cache_queries_.load(std::memory_order_relaxed));
  obs::add_counter("codesign.crossing.cache_computed",
                   cache_computed_.load(std::memory_order_relaxed));
}

std::size_t SelectionEvaluator::num_interacting_pairs() const {
  std::size_t total = 0;
  for (const auto& list : interactions_) total += list.size();
  return total / 2;
}

double SelectionEvaluator::total_power(const Selection& selection) const {
  OPERON_CHECK(selection.size() == sets_.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    OPERON_DCHECK(selection[i] < sets_[i].options.size());
    sum += sets_[i].options[selection[i]].power_pj;
  }
  return sum;
}

const std::vector<int>& SelectionEvaluator::crossings(std::size_t i,
                                                      std::size_t ci,
                                                      std::size_t m,
                                                      std::size_t cm) const {
  return crossings_impl(i, ci, m, cm, /*count=*/true);
}

const std::vector<int>& SelectionEvaluator::crossings_impl(
    std::size_t i, std::size_t ci, std::size_t m, std::size_t cm,
    bool count) const {
  const Candidate& mine = sets_[i].options[ci];
  const Candidate& other = sets_[m].options[cm];
  // Cheap rejections: either side has no optical geometry, or the
  // geometries cannot overlap. An empty result means "all zeros".
  if (mine.paths.empty() || other.optical_segments.empty()) {
    return kNoCrossings;
  }
  if (!optical_bbox_[i][ci].overlaps(optical_bbox_[m][cm])) {
    return kNoCrossings;
  }
  if (count) cache_queries_.fetch_add(1, std::memory_order_relaxed);

  const std::uint64_t key = pair_key(i, ci, m, cm);
  CacheShard& shard = cache_shards_[key % kCacheShards];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      if (count && !it->second.counted) {
        it->second.counted = true;
        cache_computed_.fetch_add(1, std::memory_order_relaxed);
      }
      return it->second.counts;
    }
  }

  // Compute outside the lock so concurrent misses on one shard don't
  // serialize the geometry work; a racing duplicate is discarded below.
  std::vector<int> counts(mine.paths.size(), 0);
  bool any = false;
  for (std::size_t p = 0; p < mine.paths.size(); ++p) {
    counts[p] = static_cast<int>(geom::count_crossings(
        mine.paths[p].segments, other.optical_segments));
    any = any || counts[p] != 0;
  }
  if (!any) counts.clear();  // store the tiny all-zero marker
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.emplace(key, CacheEntry{std::move(counts)}).first;
  if (count && !it->second.counted) {
    it->second.counted = true;
    cache_computed_.fetch_add(1, std::memory_order_relaxed);
  }
  return it->second.counts;
}

void SelectionEvaluator::precompute_crossings(std::size_t threads) const {
  if (util::resolve_threads(threads) <= 1) return;
  // Deterministic work list: every interacting (i, m) pair once.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    for (std::size_t m : interactions_[i]) {
      if (i < m) pairs.emplace_back(i, m);
    }
  }
  util::parallel_for(pairs.size(), threads, [&](std::size_t k) {
    const auto [i, m] = pairs[k];
    for (std::size_t ci = 0; ci < sets_[i].options.size(); ++ci) {
      for (std::size_t cm = 0; cm < sets_[m].options.size(); ++cm) {
        // Uncounted: bulk prefill must not perturb the cache counters,
        // which are defined over the solver-facing query stream only so
        // they stay identical at any thread count.
        crossings_impl(i, ci, m, cm, /*count=*/false);
        crossings_impl(m, cm, i, ci, /*count=*/false);
      }
    }
  });
}

double SelectionEvaluator::path_loss_db(const Selection& selection,
                                        std::size_t i, std::size_t ci,
                                        std::size_t p) const {
  const Candidate& cand = sets_[i].options[ci];
  OPERON_DCHECK(p < cand.paths.size());
  double loss = cand.paths[p].static_loss_db;
  const double beta = params_.optical.beta_db_per_crossing;
  for (std::size_t m : interactions_[i]) {
    const auto& counts = crossings(i, ci, m, selection[m]);
    if (!counts.empty()) loss += beta * counts[p];
  }
  return loss;
}

ViolationStats SelectionEvaluator::violations(const Selection& selection) const {
  OPERON_CHECK(selection.size() == sets_.size());
  ViolationStats stats;
  const double lm = params_.optical.max_loss_db;
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    const Candidate& cand = sets_[i].options[selection[i]];
    for (std::size_t p = 0; p < cand.paths.size(); ++p) {
      const double loss = path_loss_db(selection, i, selection[i], p);
      stats.worst_loss_db = std::max(stats.worst_loss_db, loss);
      if (loss > lm + 1e-9) {
        ++stats.violated_paths;
        stats.total_excess_db += loss - lm;
      }
    }
  }
  return stats;
}

Selection SelectionEvaluator::all_electrical() const {
  Selection selection(sets_.size());
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    selection[i] = sets_[i].electrical_index;
  }
  return selection;
}

Selection SelectionEvaluator::min_power_selection() const {
  Selection selection(sets_.size());
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    std::size_t best = 0;
    double best_power = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < sets_[i].options.size(); ++c) {
      if (sets_[i].options[c].power_pj < best_power) {
        best_power = sets_[i].options[c].power_pj;
        best = c;
      }
    }
    selection[i] = best;
  }
  return selection;
}

double SelectionEvaluator::power_lower_bound() const {
  return total_power(min_power_selection());
}

Selection SelectionEvaluator::peel(Selection selection) const {
  OPERON_CHECK(selection.size() == sets_.size());
  const double lm = params_.optical.max_loss_db;
  // Equal-power alternatives (e.g. detour geometries) may be tried, so a
  // hard cap guards against oscillation; the final sweep falls back to
  // strictly-monotone demotion, which always terminates clean.
  std::size_t budget = 20 * sets_.size() + 100;
  while (true) {
    // Worst violated path and its owner.
    std::size_t worst_net = sets_.size();
    double worst_loss = lm + 1e-9;
    for (std::size_t i = 0; i < sets_.size(); ++i) {
      const Candidate& cand = sets_[i].options[selection[i]];
      for (std::size_t p = 0; p < cand.paths.size(); ++p) {
        const double loss = path_loss_db(selection, i, selection[i], p);
        if (loss > worst_loss) {
          worst_loss = loss;
          worst_net = i;
        }
      }
    }
    if (worst_net == sets_.size()) return selection;  // clean

    // Cheapest different candidate whose own paths are detectable under
    // the current picks; while budget remains, equal-power alternatives
    // (detours) are allowed, afterwards strictly costlier ones only.
    const CandidateSet& set = sets_[worst_net];
    const double current_power = set.options[selection[worst_net]].power_pj;
    const bool allow_equal = budget > 0;
    if (budget > 0) --budget;
    std::size_t best = set.electrical_index;
    double best_power = set.electrical().power_pj;
    for (std::size_t c = 0; c < set.options.size(); ++c) {
      if (c == selection[worst_net]) continue;
      const Candidate& cand = set.options[c];
      const double floor_power =
          allow_equal ? current_power - 1e-12 : current_power + 1e-12;
      if (cand.power_pj < floor_power || cand.power_pj >= best_power) {
        continue;
      }
      bool ok = true;
      for (std::size_t p = 0; p < cand.paths.size(); ++p) {
        if (path_loss_db(selection, worst_net, c, p) > lm + 1e-9) {
          ok = false;
          break;
        }
      }
      if (ok) {
        best = c;
        best_power = cand.power_pj;
      }
    }
    selection[worst_net] = best;
  }
}

}  // namespace operon::codesign
