#include "codesign/portfolio.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace operon::codesign {

double InstanceFeatures::work() const {
  return static_cast<double>(nets) + static_cast<double>(candidates) / 16.0 +
         static_cast<double>(interacting_pairs) / 4.0;
}

InstanceFeatures extract_features(const SolverContext& ctx) {
  InstanceFeatures features;
  features.nets = ctx.sets.size();
  for (const CandidateSet& set : ctx.sets) {
    features.candidates += set.options.size();
    features.max_set_size = std::max(features.max_set_size,
                                     set.options.size());
  }
  if (ctx.evaluator != nullptr) {
    features.interacting_pairs = ctx.evaluator->num_interacting_pairs();
  }
  return features;
}

void PortfolioHistory::add_sample(std::string_view solver, double nets,
                                  double seconds) {
  if (seconds <= 0.0) return;
  PerSolver& entry = samples_[std::string(solver)];
  entry.rate_sum += seconds / std::max(nets, 1.0);
  entry.count += 1;
}

PortfolioHistory PortfolioHistory::from_records(
    std::span<const obs::LedgerRecord> records) {
  PortfolioHistory history;
  for (const obs::LedgerRecord& record : records) {
    // Portfolio records time the whole race, not one solver; a record
    // with a winner could be attributed, but its lane ran under race
    // budgets — skip both rather than pollute the rates.
    if (record.solver == "portfolio") continue;
    double nets = 0.0;
    double seconds = 0.0;
    for (const obs::MetricPoint& point : record.metrics) {
      if (point.name == "core.optical_nets" ||
          point.name == "core.electrical_nets") {
        nets += point.value;
      }
    }
    for (const obs::MetricPoint& point : record.timings) {
      if (point.name == "time.selection_s") seconds = point.value;
    }
    if (nets > 0.0) history.add_sample(record.solver, nets, seconds);
  }
  return history;
}

std::optional<double> PortfolioHistory::predict_seconds(
    std::string_view solver, const InstanceFeatures& features) const {
  const auto it = samples_.find(solver);
  if (it == samples_.end() || it->second.count == 0) return std::nullopt;
  const double rate = it->second.rate_sum / static_cast<double>(it->second.count);
  return rate * features.work();
}

std::size_t PortfolioHistory::num_samples() const {
  std::size_t total = 0;
  for (const auto& [name, entry] : samples_) total += entry.count;
  return total;
}

std::size_t PortfolioSolver::canonical_rank(std::string_view name) {
  if (name == "ilp-exact") return 0;
  if (name == "mip-literal") return 1;
  if (name == "lr") return 2;
  return 3;
}

PortfolioSolver::PortfolioSolver(
    PortfolioOptions options,
    std::vector<std::shared_ptr<const SelectionSolver>> members)
    : options_(std::move(options)), members_(std::move(members)) {
  OPERON_CHECK_MSG(!members_.empty(), "portfolio needs at least one member");
  rank_.resize(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      OPERON_CHECK_MSG(members_[i]->name() != members_[j]->name(),
                       "portfolio member '" << members_[i]->name()
                                            << "' listed twice");
    }
    // Unknown (future) solvers rank behind the built-ins, distinct by
    // member position so power ties still break deterministically.
    const std::size_t base = canonical_rank(members_[i]->name());
    rank_[i] = base < 3 ? base : 3 + i;
    if (rank_[i] >= rank_[fallback_]) fallback_ = i;
  }
}

std::vector<std::size_t> PortfolioSolver::race_order(
    const InstanceFeatures& features) const {
  std::vector<double> predicted(members_.size(),
                                std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (const std::optional<double> seconds =
            options_.history.predict_seconds(members_[i]->name(), features)) {
      predicted[i] = *seconds;
    }
  }
  std::vector<std::size_t> order(members_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return predicted[a] < predicted[b];
                   });
  return order;
}

namespace {

/// The deterministic fold key — clean first, then power (exact bits),
/// then canonical rank. Mirrors SharedIncumbent::better.
bool lane_better(const SolverOutcome& a, std::size_t rank_a,
                 const SolverOutcome& b, std::size_t rank_b) {
  if (a.violations.clean() != b.violations.clean()) return a.violations.clean();
  if (a.power_pj != b.power_pj) return a.power_pj < b.power_pj;
  return rank_a < rank_b;
}

std::string join_names(
    const std::vector<std::shared_ptr<const SelectionSolver>>& members,
    const std::vector<std::size_t>& order) {
  std::string joined;
  for (const std::size_t member : order) {
    if (!joined.empty()) joined.push_back(',');
    joined.append(members[member]->name());
  }
  return joined;
}

}  // namespace

SolverOutcome PortfolioSolver::degraded_fallback(
    const SolverContext& ctx, std::string race_order_names) const {
  // Runs serially under the already-tripped run token: the member stops
  // at its first own checkpoint and completes on its rung, so the text
  // and plan below replay bit-identically via stop_at_checkpoint.
  SolverContext fallback_ctx = ctx;
  fallback_ctx.deterministic_budgets = true;
  fallback_ctx.race_max_nodes = options_.race_max_nodes;
  SolverOutcome outcome = members_[fallback_]->solve(fallback_ctx);
  outcome.degraded = true;
  outcome.warnings.push_back(
      {model::Severity::Warning, model::DiagCode::SolverTimeLimit,
       "portfolio race stopped by the run budget; all lane results "
       "discarded, degrading onto the " +
           std::string(members_[fallback_]->name()) + " rung"});
  outcome.winning_solver = std::string(members_[fallback_]->name());
  outcome.race_order = std::move(race_order_names);
  obs::add_counter("portfolio.fallback");
  return outcome;
}

SolverOutcome PortfolioSolver::solve(const SolverContext& ctx) const {
  const std::size_t n = members_.size();
  const InstanceFeatures features = extract_features(ctx);
  const std::vector<std::size_t> order = race_order(features);
  std::string order_names = join_names(members_, order);
  obs::set_gauge("portfolio.members", static_cast<double>(n));
  // Copies share the underlying stop state; checkpoint() mutates the
  // (shared) counter, so poll through a local non-const handle.
  util::StopToken run_token = ctx.stop;

  // Serial pre-race poll: a budget that tripped before the race skips
  // it entirely and degrades straight onto the fallback rung.
  if (run_token.checkpoint("portfolio.race")) {
    return degraded_fallback(ctx, std::move(order_names));
  }

  struct Lane {
    SolverOutcome outcome;
    double seconds = 0.0;
  };
  std::vector<Lane> lanes(n);
  std::vector<obs::Observation> lane_obs(n);
  std::vector<util::StopSource> lane_stops(n);
  for (util::StopSource& source : lane_stops) source.chain(ctx.stop);
  SharedIncumbent incumbent;

  const std::size_t concurrency =
      options_.lanes == 0 ? n : std::min(options_.lanes, n);
  // Lanes racing concurrently each run single-threaded (oversubscribing
  // the machine with nested pools only slows the race down); a
  // sequential sweep keeps the caller's thread budget. Wall-clock only —
  // semantic outputs are thread-count invariant per lane.
  const std::size_t inner_threads = concurrency > 1 ? 1 : ctx.threads;

  util::parallel_for(n, concurrency, [&](std::size_t slot) {
    // Start order is the selector's; results land by MEMBER index, and
    // nothing below ever reads another lane's outcome, so scheduling
    // cannot leak into the fold.
    const std::size_t member = order[slot];
    util::Timer timer;
    const obs::ScopedThreadObservation scope(lane_obs[member]);
    SolverContext lane_ctx = ctx;
    lane_ctx.stop = lane_stops[member].token();
    lane_ctx.threads = inner_threads;
    lane_ctx.incumbent = &incumbent;
    lane_ctx.deterministic_budgets = true;
    lane_ctx.race_max_nodes = options_.race_max_nodes;
    lanes[member].outcome = members_[member]->solve(lane_ctx);
    lanes[member].seconds = timer.seconds();
    const SolverOutcome& out = lanes[member].outcome;
    incumbent.publish({rank_[member], out.power_pj, out.violations.clean(),
                       out.proven_optimal});
    // Provably outcome-invariant loser cancellation: a proven-optimal,
    // clean lane stops every lane of strictly worse canonical rank.
    // Any member returns a FEASIBLE selection even when cut (incumbent
    // / repair-tail / all-electrical rungs), and a feasible selection's
    // power is >= the proven optimum, so a cut lane can never beat this
    // one in the fold — whether the cut landed or the lane finished
    // first changes wall clock only.
    if (out.proven_optimal && out.violations.clean()) {
      for (std::size_t other = 0; other < n; ++other) {
        if (rank_[other] > rank_[member]) lane_stops[other].request_stop();
      }
    }
  });

  // Serial post-join poll: when the run budget tripped DURING the race,
  // the lanes were cut at arbitrary wall-clock points — discard all of
  // them and recompute on the fallback rung under the tripped token
  // (the stop_at_checkpoint replay takes the same path, so the trip is
  // bit-identical even though the replay never consults the clock).
  if (run_token.checkpoint("portfolio.race")) {
    return degraded_fallback(ctx, std::move(order_names));
  }

  std::size_t winner = 0;
  for (std::size_t member = 1; member < n; ++member) {
    if (lane_better(lanes[member].outcome, rank_[member],
                    lanes[winner].outcome, rank_[winner])) {
      winner = member;
    }
  }

  // Only the winner's lane observation reaches the run record: loser
  // metrics may have been cut mid-run by the kill rule, so absorbing
  // them would leak scheduling into the semantic metric set.
  if (obs::Observation* ambient = obs::current()) {
    ambient->absorb(lane_obs[winner]);
  }
  obs::add_counter("portfolio.win." + std::string(members_[winner]->name()));
  for (std::size_t member = 0; member < n; ++member) {
    obs::set_gauge(
        "time.portfolio." + std::string(members_[member]->name()) + "_s",
        lanes[member].seconds, /*timing=*/true);
  }

  SolverOutcome outcome = std::move(lanes[winner].outcome);
  outcome.winning_solver = std::string(members_[winner]->name());
  outcome.race_order = std::move(order_names);
  return outcome;
}

}  // namespace operon::codesign
