#pragma once
// Optical-electrical route candidates (§3.2). For one hyper net, a
// candidate fixes a baseline tree topology and labels every tree edge
// Optical (waveguide, any-direction) or Electrical (Manhattan wire).
// Every maximal optical component has one modulator at its top (where it
// taps electrical data), splits at fan-out nodes, and a detector at every
// endpoint that needs the data electrically. A candidate records its
// power, its source-to-detector paths (the detection-constraint points of
// Eq. 3c), and its optical segments (for pairwise crossing loss).

#include <cstddef>
#include <vector>

#include "geom/bbox.hpp"
#include "geom/segment.hpp"
#include "steiner/tree.hpp"

namespace operon::codesign {

enum class EdgeKind : unsigned char { Electrical = 0, Optical = 1 };

/// One modulator-to-detector optical path — a detection constraint point.
struct CandidatePath {
  /// Propagation + splitting loss along the path, dB (exact).
  double static_loss_db = 0.0;
  /// Splitting-only share of static_loss_db (what GLOW [4] ignores).
  double splitting_db = 0.0;
  /// Number of splitting events along the path (for variation models).
  int num_splits = 0;
  /// Estimated crossing loss against other nets' baselines, dB (used by
  /// the DP and standalone evaluation; the ILP/LR recompute it pairwise).
  double estimated_crossing_db = 0.0;
  /// The optical segments this path traverses (for exact lx terms).
  std::vector<geom::Segment> segments;
};

struct Candidate {
  /// Which baseline topology this candidate was derived from.
  std::size_t baseline = 0;
  /// Edge labels indexed by the non-root tree node the edge descends to.
  std::vector<EdgeKind> edge_kinds;

  // -- derived, filled by assemble_candidate() --
  double power_pj = 0.0;           ///< total (conversion + wire) energy
  double electrical_power_pj = 0.0;
  double optical_power_pj = 0.0;
  int num_modulators = 0;          ///< per channel (multiply by bits for Eq.1)
  int num_detectors = 0;
  double electrical_wl_um = 0.0;   ///< Manhattan wirelength of E edges
  double optical_wl_um = 0.0;      ///< Euclidean length of O edges
  std::vector<CandidatePath> paths;
  std::vector<geom::Segment> optical_segments;
  std::vector<geom::Segment> electrical_segments;
  std::vector<geom::Point> modulator_sites;  ///< EO conversion locations
  std::vector<geom::Point> detector_sites;   ///< OE conversion locations

  bool pure_electrical() const { return optical_segments.empty(); }

  /// Worst static + estimated loss across paths (0 when pure electrical).
  double worst_estimated_loss_db() const;

  /// Worst propagation + splitting loss across paths, ignoring crossing
  /// estimates (0 when pure electrical). A candidate whose static loss
  /// already exceeds lm can never be detected; one whose static loss fits
  /// may still work out, depending on which other nets go optical — that
  /// judgement belongs to the ILP/LR, not to generation.
  double worst_static_loss_db() const;
};

/// All solution candidates of one hyper net: the co-design set Hsol(i)
/// plus the mandatory pure-electrical fallback a_ie (always last).
struct CandidateSet {
  std::size_t net = 0;        ///< hyper net id
  std::size_t bit_count = 0;  ///< channels
  geom::BBox bbox;            ///< for §3.3 variable reduction
  std::size_t root = 0;  ///< driver hyper-pin index (tree terminal index)
  std::vector<steiner::SteinerTree> baselines;
  std::vector<Candidate> options;
  std::size_t electrical_index = 0;  ///< index of a_ie within options

  const Candidate& electrical() const { return options[electrical_index]; }
};

}  // namespace operon::codesign
