#pragma once
// "OPERON (ILP)" — exact solution determination for Formulation (3).
//
// Two solvers are provided:
//
//  * solve_selection_exact(): a specialized exact branch-and-bound that
//    first decomposes the instance into connected components of the
//    interaction graph (the §3.3 bounding-box reduction makes these
//    small), then searches each component with an additive power bound
//    and monotone incremental feasibility (crossing loss only grows, so
//    any violated assigned path prunes the subtree). A wall-clock limit
//    yields the paper's "> T" rows: the incumbent (seeded by the always-
//    feasible all-electrical choice) is returned with timed_out = true.
//
//  * build_selection_mip() / solve_selection_mip(): the literal ILP of
//    Formulation (3) over the generic ilp::Model — one-hot selection
//    binaries, McCormick-linearized aij*amn crossing products, per-path
//    detection rows — solved by simplex-based branch-and-bound. Intended
//    for small instances and as a cross-check of the specialized solver.

#include <span>

#include "codesign/selection.hpp"
#include "ilp/bnb.hpp"
#include "ilp/model.hpp"
#include "util/stop.hpp"

namespace operon::codesign {

struct SelectOptions {
  double time_limit_s = 60.0;  ///< <= 0: unlimited
  /// Deterministic search budget (0 = unlimited): the exact DFS aborts
  /// after exploring this many nodes globally (across components), the
  /// literal MIP after this many B&B nodes; the incumbent is kept and
  /// timed_out/node_limited are set. Unlike time_limit_s, the cut point
  /// is a node count — a budgeted run is bit-identical on every machine
  /// at any thread count, which is what lets the portfolio race exact
  /// members without consulting a wall clock.
  std::size_t max_nodes = 0;
  /// Apply the §3.3 bounding-box variable reduction (ablation switch).
  bool reduce_variables = true;
  /// Optional warm-start selection (e.g. an LR solution): seeds the
  /// branch-and-bound incumbent when it is feasible, so a time-limited
  /// run never returns worse than the heuristic that seeded it.
  Selection warm_start;
  /// Worker threads for the up-front pairwise crossing precomputation
  /// (1 = serial, 0 = hardware concurrency). The search itself is
  /// sequential, so the selected optimum is identical at any value.
  std::size_t threads = 1;
  /// Run-wide budget: polled once per search node (serial DFS, so the
  /// poll count is deterministic); caps time_limit_s via
  /// stage_deadline(). A trip reads exactly like a stage timeout — the
  /// incumbent is returned with timed_out = true.
  util::StopToken stop;
};

struct SelectResult {
  Selection selection;
  double power_pj = 0.0;
  ViolationStats violations;
  bool proven_optimal = false;
  bool timed_out = false;
  /// timed_out via the deterministic max_nodes budget rather than the
  /// wall clock / stop token (distinguishes the diagnostics).
  bool node_limited = false;
  double runtime_s = 0.0;
  std::size_t nodes_explored = 0;
  /// Times the incumbent improved (greedy seeds, warm starts accepted,
  /// min-power completions, and DFS leaves that beat the best).
  std::size_t incumbent_updates = 0;
  std::size_t num_components = 0;
  std::size_t largest_component = 0;
};

SelectResult solve_selection_exact(std::span<const CandidateSet> sets,
                                   const model::TechParams& params,
                                   const SelectOptions& options = {});

/// Variable map of the literal ILP: selection[i][c] is the binary for
/// candidate c of net i; products holds the McCormick variables.
struct SelectionMip {
  ilp::Model model;
  std::vector<std::vector<std::size_t>> selection_vars;
};

SelectionMip build_selection_mip(const SelectionEvaluator& evaluator);

SelectResult solve_selection_mip(std::span<const CandidateSet> sets,
                                 const model::TechParams& params,
                                 const SelectOptions& options = {});

}  // namespace operon::codesign
