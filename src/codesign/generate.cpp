#include "codesign/generate.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "optical/loss.hpp"
#include "steiner/bi1s.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace operon::codesign {

namespace {

std::vector<geom::Point> pin_centers(const model::HyperNet& net) {
  std::vector<geom::Point> points;
  points.reserve(net.pins.size());
  for (const model::HyperPin& pin : net.pins) points.push_back(pin.center);
  return points;
}

/// Two-pin nets get extra *detour* baselines: a bend point offset
/// perpendicular to the straight route. The conversion power is the same
/// as the straight waveguide, but the geometry can dodge crossing-dense
/// regions — a choice GLOW's straight-line router does not have ("optical
/// scheme allows routing in any direction", §2.3).
void add_detour_baselines(std::vector<steiner::SteinerTree>& baselines,
                          const std::vector<geom::Point>& pins) {
  if (pins.size() != 2) return;
  const geom::Point a = pins[0], b = pins[1];
  const double len = geom::euclidean(a, b);
  if (len <= 0.0) return;
  const geom::Point mid = geom::midpoint(a, b);
  const geom::Point normal{-(b.y - a.y) / len, (b.x - a.x) / len};
  for (const double offset : {0.12 * len, -0.12 * len, 0.25 * len}) {
    steiner::SteinerTree tree;
    tree.points = {a, b, mid + normal * offset};
    tree.num_terminals = 2;
    tree.edges = {{0, 2}, {2, 1}};
    baselines.push_back(std::move(tree));
  }
}

/// The pure-electrical alternative a_ie: RSMT topology, every edge
/// electrical, Manhattan wirelength power (Eq. 6).
Candidate electrical_candidate(const model::HyperNet& net,
                               const model::TechParams& params,
                               steiner::SteinerTree& rsmt_out) {
  const auto points = pin_centers(net);
  steiner::Bi1sOptions options;
  options.metric = steiner::Metric::Rectilinear;
  rsmt_out = steiner::bi1s(points, options);
  const steiner::RootedTree rooted = steiner::RootedTree::build(rsmt_out, net.root);

  AssembleContext ctx;
  ctx.tree = &rsmt_out;
  ctx.rooted = &rooted;
  ctx.bit_count = net.bit_count();
  ctx.params = &params;
  ctx.net_id = net.id;
  return assemble_candidate(
      ctx, std::vector<EdgeKind>(rsmt_out.num_points(), EdgeKind::Electrical),
      /*baseline_index=*/0);
}

/// Batch size for run-budget checkpoints during generation. Fixed —
/// deliberately NOT derived from the thread count — so the checkpoint
/// sequence (and therefore any trip point) is identical at any
/// GenerationOptions::threads value.
constexpr std::size_t kStopBatch = 32;

}  // namespace

std::vector<CandidateSet> generate_candidates(
    const model::Design& design, std::span<const model::HyperNet> nets,
    const model::TechParams& params, const GenerationOptions& options) {
  OPERON_CHECK(params.valid());
  OPERON_CHECK(options.max_baselines >= 1);
  OPERON_SPAN("codesign.generate");

  // Both per-net phases are embarrassingly parallel: every iteration
  // reads only shared immutable state and writes its own index, so any
  // thread count produces bit-identical candidate sets.
  util::ThreadPool pool(options.threads);
  util::StopToken stop = options.stop;

  // Runs `body(i)` over the nets in fixed-size batches with a checkpoint
  // before each batch (polled here, serially — workers never poll).
  // Returns the count of fully processed nets (== nets.size() unless the
  // run budget tripped).
  const auto batched = [&](const char* stage, auto&& body) {
    std::size_t done = 0;
    while (done < nets.size()) {
      if (stop.checkpoint(stage)) break;
      const std::size_t end = std::min(done + kStopBatch, nets.size());
      pool.parallel_for(end - done,
                        [&](std::size_t k) { body(done + k); });
      done = end;
    }
    return done;
  };

  // Phase 1: baselines for every net (needed before any DP so crossings
  // can be estimated against the other nets' primary baselines). Nets
  // past a trip keep an empty baseline list — the phase-2 body then
  // degrades them to the electrical-only candidate naturally.
  std::vector<std::vector<steiner::SteinerTree>> baselines(nets.size());
  batched("codesign.generate.baselines", [&](std::size_t i) {
    baselines[i] = steiner::generate_baselines(
        pin_centers(nets[i]), steiner::Metric::Euclidean, options.max_baselines);
  });

  // The shared estimator is filled serially (insertion mutates the grid)
  // and is read-only — hence freely shared — during phase 2.
  SegmentIndex estimator(design.chip, options.grid_cells);
  if (options.estimate_crossings) {
    for (std::size_t i = 0; i < nets.size(); ++i) {
      if (baselines[i].empty()) continue;  // trip rung: no baseline built
      estimator.add_all(nets[i].id,
                        baselines[i][0].segments(steiner::Metric::Euclidean));
    }
  }
  estimator.finalize();

  // Phase 2: DP per baseline, then the electrical fallback.
  std::vector<CandidateSet> sets(nets.size());
  const std::size_t dp_done = batched("codesign.generate.dp", [&](std::size_t i) {
    const model::HyperNet& net = nets[i];
    CandidateSet set;
    set.net = net.id;
    set.bit_count = net.bit_count();
    set.root = net.root;
    set.baselines = std::move(baselines[i]);

    // An empty baseline list marks a net past the phase-1 trip: skip
    // detours and the DP (the loop below is vacuous) so the set holds
    // only the electrical fallback appended at the end.
    if (options.detour_baselines && !set.baselines.empty()) {
      add_detour_baselines(set.baselines, pin_centers(net));
    }

    for (std::size_t b = 0; b < set.baselines.size(); ++b) {
      const steiner::SteinerTree& tree = set.baselines[b];
      const steiner::RootedTree rooted = steiner::RootedTree::build(tree, net.root);
      AssembleContext ctx;
      ctx.tree = &tree;
      ctx.rooted = &rooted;
      ctx.bit_count = net.bit_count();
      ctx.params = &params;
      ctx.estimator = options.estimate_crossings ? &estimator : nullptr;
      ctx.net_id = net.id;
      for (Candidate& cand : run_codesign_dp(ctx, b, options.dp)) {
        // Drop candidates that cannot meet detection even in isolation
        // (static loss; crossing-dependent feasibility is the selection
        // stage's job, with exact pairwise lx terms).
        if (cand.worst_static_loss_db() > params.optical.max_loss_db + 1e-9)
          continue;
        set.options.push_back(std::move(cand));
      }
    }

    std::sort(set.options.begin(), set.options.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.power_pj < b.power_pj;
              });
    // Drop duplicate pure-electrical DP labelings (a_ie supersedes them)
    // and cap the co-design set.
    std::erase_if(set.options,
                  [](const Candidate& c) { return c.pure_electrical(); });
    if (options.max_candidates_per_net > 0 &&
        set.options.size() > options.max_candidates_per_net) {
      set.options.resize(options.max_candidates_per_net);
    }

    steiner::SteinerTree rsmt;
    set.options.push_back(electrical_candidate(net, params, rsmt));
    set.baselines.push_back(std::move(rsmt));
    set.options.back().baseline = set.baselines.size() - 1;
    set.electrical_index = set.options.size() - 1;

    geom::BBox box = net.bbox();
    for (const Candidate& cand : set.options) {
      for (const geom::Segment& seg : cand.optical_segments) {
        box.expand(seg.bbox());
      }
    }
    set.bbox = box;
    sets[i] = std::move(set);
  });

  // Trip tail: nets never reached by phase 2 still need a routable
  // candidate set. Build just the guaranteed-feasible a_ie for each —
  // this tail always completes (no checkpoints) because an empty set
  // would be a contract violation, not a degradation.
  if (dp_done < nets.size()) {
    pool.parallel_for(nets.size() - dp_done, [&](std::size_t k) {
      const std::size_t i = dp_done + k;
      const model::HyperNet& net = nets[i];
      CandidateSet set;
      set.net = net.id;
      set.bit_count = net.bit_count();
      set.root = net.root;
      steiner::SteinerTree rsmt;
      set.options.push_back(electrical_candidate(net, params, rsmt));
      set.baselines.push_back(std::move(rsmt));
      set.options.back().baseline = 0;
      set.electrical_index = 0;
      set.bbox = net.bbox();
      sets[i] = std::move(set);
    });
  }

  std::size_t total_candidates = 0;
  for (const CandidateSet& set : sets) total_candidates += set.options.size();
  obs::add_counter("codesign.generate.runs");
  obs::add_counter("codesign.generate.candidates", total_candidates);
  obs::set_gauge("codesign.generate.nets", static_cast<double>(sets.size()));
  obs::set_gauge("codesign.generate.trip_tail_nets",
                 static_cast<double>(nets.size() - dp_done));
  return sets;
}

}  // namespace operon::codesign
