#pragma once
// The portfolio selection solver: races registered member solvers on
// parallel_for lanes and folds the winner deterministically. See
// DESIGN.md "Portfolio solver" for the full contract; in short:
//
//  * Every member always runs to a deterministic completion — lanes get
//    deterministic_budgets (no wall clocks; exact members run under the
//    race node budget), so each lane's outcome is a pure function of
//    the instance.
//  * The winner is a serial post-join fold by (clean, power, canonical
//    rank) — never completion order, never lane index.
//  * Loser cancellation is provably outcome-invariant: only a lane that
//    finished proven-optimal AND clean may stop lanes of strictly worse
//    canonical rank. Any such lane's feasible result has power >= the
//    proven optimum and loses every tie by rank, so whether it was cut
//    or completed cannot change the folded winner.
//  * The race start order comes from a per-instance selector over
//    ledger-trained history; it only shifts wall clock, never the fold.
//  * Two numbered `portfolio.race` checkpoints (pre-race / post-join)
//    poll the run token in serial orchestration code. On a trip, every
//    lane result is discarded and the fallback member (highest
//    canonical rank) recomputes under the tripped token, so a
//    stop_at_checkpoint replay of a wall-clock trip is bit-identical.

#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "codesign/solver.hpp"
#include "obs/ledger.hpp"

namespace operon::codesign {

/// Instance features the race selector conditions on.
struct InstanceFeatures {
  std::size_t nets = 0;
  std::size_t candidates = 0;        ///< total options over all sets
  std::size_t max_set_size = 0;
  std::size_t interacting_pairs = 0; ///< crossing-density proxy
  /// Scalar work surrogate the history rates multiply (coarse: nets
  /// dominate, density and candidate volume add pressure).
  double work() const;
};

InstanceFeatures extract_features(const SolverContext& ctx);

/// Ledger-trained per-solver cost model: each non-portfolio record with
/// a selection timing contributes one seconds-per-net rate sample.
/// Deterministic (std::map order) — but note history only ever moves
/// the race START order, which is a wall-clock concern; it is excluded
/// from the options fingerprint.
class PortfolioHistory {
 public:
  void add_sample(std::string_view solver, double nets, double seconds);
  static PortfolioHistory from_records(
      std::span<const obs::LedgerRecord> records);
  /// Mean rate * features.work(); nullopt when no samples for `solver`.
  std::optional<double> predict_seconds(std::string_view solver,
                                        const InstanceFeatures& features) const;
  std::size_t num_samples() const;

 private:
  struct PerSolver {
    double rate_sum = 0.0;
    std::size_t count = 0;
  };
  std::map<std::string, PerSolver, std::less<>> samples_;
};

struct PortfolioOptions {
  /// Canonical member names raced, in configuration order (the
  /// selector's fallback order). SEMANTIC — folded into the options
  /// fingerprint (the fold prefers canonical rank, but the member SET
  /// shapes the result).
  std::vector<std::string> members = {"lr", "ilp-exact"};
  /// Concurrency cap on the race (0 = one lane per member). Pure
  /// wall-clock knob — every member still runs and the fold is
  /// deterministic — so it is NOT semantic and stays out of the
  /// fingerprint, like threads.
  std::size_t lanes = 0;
  /// Deterministic node budget imposed on exact members whose own
  /// select.max_nodes is unlimited (see SelectOptions::max_nodes).
  /// SEMANTIC — it decides where a hard instance's search is cut.
  std::size_t race_max_nodes = 250000;
  /// Accumulated history for the start-order selector (wall-clock only;
  /// excluded from the fingerprint).
  PortfolioHistory history;
};

class PortfolioSolver final : public SelectionSolver {
 public:
  /// `members` are the resolved solvers for options.members, same order.
  PortfolioSolver(PortfolioOptions options,
                  std::vector<std::shared_ptr<const SelectionSolver>> members);
  std::string_view name() const override { return "portfolio"; }
  SolverCapabilities capabilities() const override { return {false, true}; }
  SolverOutcome solve(const SolverContext& ctx) const override;

  /// Selector output: member indices in race start order (exposed for
  /// tests). Members with history-predicted costs sort ascending by
  /// prediction; unpredicted members keep configuration order after.
  std::vector<std::size_t> race_order(const InstanceFeatures& features) const;

  /// Fixed arbitration rank of a canonical solver name: exactness wins
  /// power ties (ilp-exact < mip-literal < lr < anything else).
  static std::size_t canonical_rank(std::string_view name);

 private:
  SolverOutcome degraded_fallback(const SolverContext& ctx,
                                  std::string race_order_names) const;

  PortfolioOptions options_;
  std::vector<std::shared_ptr<const SelectionSolver>> members_;
  std::vector<std::size_t> rank_;  ///< arbitration rank per member
  std::size_t fallback_ = 0;       ///< member index of the trip rung
};

}  // namespace operon::codesign
