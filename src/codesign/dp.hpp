#pragma once
// Bottom-up co-design dynamic program (§3.2, Fig 5). Inspired by classic
// buffer insertion: each tree node carries a Pareto set of labels
// (power, open-path loss, open detector count); per-edge Optical /
// Electrical decisions extend or close optical components, and inferior
// labels are pruned. The surviving root labels are the candidate set of
// the hyper net. Runtime is O(|Nc|·|d|) label work as claimed in §3.2,
// with the label width bounded by `max_labels`.

#include <vector>

#include "codesign/assemble.hpp"
#include "codesign/candidate.hpp"

namespace operon::codesign {

struct DpOptions {
  /// Pareto-pool cap per node and kind (E vs O pools prune separately).
  std::size_t max_labels = 24;
  /// Prune labels whose estimated open loss already exceeds lm.
  bool prune_infeasible = true;
  /// Disable Pareto dominance pruning entirely (ablation support); the
  /// pool cap still applies unless it is 0 (= unlimited).
  bool prune_dominated = true;
};

/// Run the DP over one baseline tree. Returns assembled candidates,
/// deduplicated and sorted by power; always contains at least the
/// all-electrical labeling of this topology.
std::vector<Candidate> run_codesign_dp(const AssembleContext& ctx,
                                       std::size_t baseline_index,
                                       const DpOptions& options = {});

}  // namespace operon::codesign
