#pragma once
// Crossing-loss estimation (§3.2): during candidate generation the
// crossing loss of an edge is approximated against the *baseline*
// topologies of the other hyper nets. A uniform bucket grid keeps the
// segment-vs-segment tests local; buckets are a flat CSR layout
// (offsets + one index pool) built by finalize(), and queries dedup
// multi-cell segments with an epoch-stamped scratch array instead of the
// former per-query allocate + sort + unique.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "geom/bbox.hpp"
#include "geom/segment.hpp"

namespace operon::codesign {

/// Spatial index over tagged segments supporting "how many segments not
/// belonging to net X does this segment properly cross?".
///
/// Thread-safety: add()/add_all() then one finalize() call are
/// single-threaded (construction phase); once finalized,
/// count_crossings() is const, allocation-free (thread-local scratch),
/// and may be called concurrently from any number of threads.
class SegmentIndex {
 public:
  /// `extent`: chip bounding box; `cells`: grid resolution per axis.
  explicit SegmentIndex(const geom::BBox& extent, std::size_t cells = 64);

  void add(std::size_t net, const geom::Segment& segment);
  void add_all(std::size_t net, std::span<const geom::Segment> segments);

  /// Build the CSR buckets. Must be called after the last add() and
  /// before the first count_crossings(); idempotent until the next add().
  void finalize();

  std::size_t num_segments() const { return segments_.size(); }

  /// Proper crossings of `seg` against stored segments with net != exclude.
  std::size_t count_crossings(const geom::Segment& seg,
                              std::size_t exclude_net) const;

 private:
  struct Tagged {
    geom::Segment segment;
    std::size_t net;
  };

  std::size_t cell_of(double x, double y) const;

  geom::BBox extent_;
  std::size_t cells_;
  double cell_w_;
  double cell_h_;
  std::vector<Tagged> segments_;
  /// CSR buckets: segment indices of cell c are
  /// bucket_data_[bucket_start_[c] .. bucket_start_[c + 1]).
  std::vector<std::uint32_t> bucket_start_;
  std::vector<std::uint32_t> bucket_data_;
  bool finalized_ = false;
};

}  // namespace operon::codesign
