#pragma once
// Crossing-loss estimation (§3.2): during candidate generation the
// crossing loss of an edge is approximated against the *baseline*
// topologies of the other hyper nets. A uniform bucket grid keeps the
// segment-vs-segment tests local.

#include <cstddef>
#include <span>
#include <vector>

#include "geom/bbox.hpp"
#include "geom/segment.hpp"

namespace operon::codesign {

/// Spatial index over tagged segments supporting "how many segments not
/// belonging to net X does this segment properly cross?".
///
/// Thread-safety: add()/add_all() are single-threaded (construction
/// phase); once filled, count_crossings() is const, touches no mutable
/// state, and may be called concurrently from any number of threads.
class SegmentIndex {
 public:
  /// `extent`: chip bounding box; `cells`: grid resolution per axis.
  explicit SegmentIndex(const geom::BBox& extent, std::size_t cells = 64);

  void add(std::size_t net, const geom::Segment& segment);
  void add_all(std::size_t net, std::span<const geom::Segment> segments);

  std::size_t num_segments() const { return segments_.size(); }

  /// Proper crossings of `seg` against stored segments with net != exclude.
  std::size_t count_crossings(const geom::Segment& seg,
                              std::size_t exclude_net) const;

 private:
  struct Tagged {
    geom::Segment segment;
    std::size_t net;
  };

  std::size_t cell_of(double x, double y) const;
  void cells_overlapping(const geom::BBox& box, std::vector<std::size_t>& out) const;

  geom::BBox extent_;
  std::size_t cells_;
  double cell_w_;
  double cell_h_;
  std::vector<Tagged> segments_;
  std::vector<std::vector<std::size_t>> buckets_;
};

}  // namespace operon::codesign
