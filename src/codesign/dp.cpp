#include "codesign/dp.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>

#include "optical/loss.hpp"
#include "util/arena.hpp"
#include "util/check.hpp"

namespace operon::codesign {

namespace {

constexpr double kClosed = -1.0;

// Labels and merge states are PODs whose per-edge decisions live in
// fixed-width arena blocks (num_points entries each) instead of per-state
// std::vector<EdgeKind>: the merge loop copies O(labels × states) kind
// vectors per node, and the bump arena turns every one of those copies
// into a memcpy with no allocator round-trips. Pruning moves the PODs
// only; dead blocks are reclaimed wholesale by the per-node reset. The
// algorithm itself — merge order, dominance tests, sort comparators,
// cap handling — is unchanged line for line, so the emitted label
// vectors are bit-identical to the previous representation (pinned by
// DpGolden tests).

/// A label: the state of one subtree *including* the decision for the
/// edge above it. Closed labels (open_det == 0) have no optical component
/// reaching through that edge; open labels carry the worst accumulated
/// loss from the top of the edge down to any pending detector.
struct Label {
  double power = 0.0;
  double open_loss = kClosed;
  /// Static-only (propagation + splitting) share of open_loss: detection
  /// feasibility is judged on this, while open_loss (which adds the
  /// crossing estimate) drives candidate ranking.
  double open_static = kClosed;
  int open_det = 0;
  /// Worst loss among detection paths already closed below this node —
  /// kept so the root retains a (power, loss-headroom) Pareto frontier
  /// rather than a single min-power labeling.
  double closed_worst = 0.0;
  EdgeKind* kinds = nullptr;

  bool open() const { return open_det > 0; }
};

/// Intermediate state while folding a node's children together.
struct MergeState {
  double power = 0.0;
  double max_open = 0.0;  ///< only meaningful when k_optical > 0
  double max_open_static = 0.0;
  double closed_worst = 0.0;
  int sum_det = 0;
  int k_optical = 0;
  int k_electrical = 0;
  EdgeKind* kinds = nullptr;
};

bool dominates(const MergeState& a, const MergeState& b) {
  return a.power <= b.power + 1e-12 && a.max_open <= b.max_open + 1e-12 &&
         a.max_open_static <= b.max_open_static + 1e-12 &&
         a.closed_worst <= b.closed_worst + 1e-12 && a.sum_det <= b.sum_det &&
         a.k_optical <= b.k_optical && a.k_electrical == b.k_electrical;
}

void prune_states(std::vector<MergeState>& states, std::size_t cap,
                  bool prune_dominated) {
  if (prune_dominated) {
    std::vector<MergeState> kept;
    for (auto& s : states) {
      bool dominated = false;
      for (const auto& k : kept) {
        if (dominates(k, s)) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      std::erase_if(kept, [&](const MergeState& k) { return dominates(s, k); });
      kept.push_back(s);
    }
    states = std::move(kept);
  }
  if (cap > 0 && states.size() > cap) {
    std::sort(states.begin(), states.end(),
              [](const MergeState& a, const MergeState& b) {
                if (a.power != b.power) return a.power < b.power;
                return a.max_open < b.max_open;
              });
    // Guarantee an all-closed state survives: it is the only one whose
    // close option is unconditionally feasible.
    std::size_t best_closed = states.size();
    for (std::size_t i = 0; i < states.size(); ++i) {
      if (states[i].k_optical == 0) {
        best_closed = i;
        break;
      }
    }
    if (best_closed >= cap && best_closed < states.size()) {
      std::swap(states[cap - 1], states[best_closed]);
    }
    states.resize(cap);
  }
}

void prune_labels(std::vector<Label>& labels, std::size_t cap,
                  bool prune_dominated) {
  const auto label_dominates = [](const Label& a, const Label& b) {
    if (a.open() != b.open()) return false;  // separate pools
    return a.power <= b.power + 1e-12 &&
           a.open_loss <= b.open_loss + 1e-12 &&
           a.open_static <= b.open_static + 1e-12 &&
           a.closed_worst <= b.closed_worst + 1e-12 &&
           a.open_det <= b.open_det;
  };
  if (prune_dominated) {
    std::vector<Label> kept;
    for (auto& l : labels) {
      bool dominated = false;
      for (const auto& k : kept) {
        if (label_dominates(k, l)) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      std::erase_if(kept, [&](const Label& k) { return label_dominates(l, k); });
      kept.push_back(l);
    }
    labels = std::move(kept);
  }
  if (cap > 0 && labels.size() > cap) {
    // Keep the cheapest of each pool, preserving at least one closed label.
    std::stable_sort(labels.begin(), labels.end(),
                     [](const Label& a, const Label& b) {
                       if (a.power != b.power) return a.power < b.power;
                       return a.open_loss < b.open_loss;
                     });
    std::vector<Label> kept;
    kept.reserve(cap);
    bool have_closed = false;
    for (auto& l : labels) {
      if (kept.size() >= cap) {
        if (!have_closed && !l.open()) {
          kept.back() = l;  // guarantee a closed survivor
          have_closed = true;
        }
        continue;
      }
      have_closed = have_closed || !l.open();
      kept.push_back(l);
    }
    labels = std::move(kept);
  }
}

class DpRunner {
 public:
  DpRunner(const AssembleContext& ctx, const DpOptions& options)
      : ctx_(ctx), options_(options), tree_(*ctx.tree), rooted_(*ctx.rooted) {}

  std::vector<std::vector<EdgeKind>> run() {
    const std::size_t n = tree_.num_points();
    // Two arenas per worker thread: surviving label blocks live in the
    // persistent arena until run() copies the root survivors out; merge
    // states and pre-prune label blocks churn through the scratch arena,
    // which is rewound at every node so pruned garbage never accumulates.
    // reset() keeps the chunks, so repeated runs (one per net × baseline)
    // allocate nothing in steady state, and thread-locality makes the
    // parallel generation phase race-free without any locking.
    thread_local util::Arena persistent_arena;
    thread_local util::Arena scratch_arena;
    persistent_arena.reset();
    persistent_ = &persistent_arena;
    scratch_ = &scratch_arena;

    labels_.assign(n, {});
    for (std::size_t v : rooted_.postorder) {
      process_node(v);
    }
    std::vector<std::vector<EdgeKind>> result;
    result.reserve(labels_[rooted_.root].size());
    for (const Label& label : labels_[rooted_.root]) {
      result.emplace_back(label.kinds, label.kinds + n);
    }
    persistent_ = nullptr;
    scratch_ = nullptr;
    return result;
  }

 private:
  bool is_sink(std::size_t v) const {
    return tree_.is_terminal(v) && v != rooted_.root;
  }

  EdgeKind* alloc_kinds(util::Arena& arena, const EdgeKind* from) {
    const std::size_t n = tree_.num_points();
    EdgeKind* block = arena.allocate<EdgeKind>(n);
    if (from != nullptr) {
      std::memcpy(block, from, n * sizeof(EdgeKind));
    } else {
      std::fill(block, block + n, EdgeKind::Electrical);
    }
    return block;
  }

  /// (static propagation loss, estimated crossing loss) of one edge.
  std::pair<double, double> edge_optical_loss(std::size_t parent,
                                              std::size_t v) const {
    const geom::Segment seg{tree_.points[parent], tree_.points[v]};
    const double prop = ctx_.params->optical.alpha_db_per_um * seg.length();
    const double est =
        seg.length() > 0.0 ? estimated_crossing_db(ctx_, seg) : 0.0;
    return {prop, est};
  }

  void process_node(std::size_t v) {
    const std::size_t n = tree_.num_points();
    const auto& children = rooted_.children[v];
    scratch_->reset();

    // Fold children label sets into merge states.
    std::vector<MergeState> states;
    {
      MergeState init;
      init.kinds = alloc_kinds(*scratch_, nullptr);
      init.max_open = 0.0;
      states.push_back(init);
    }
    for (std::size_t child : children) {
      std::vector<MergeState> next;
      for (const MergeState& state : states) {
        for (const Label& label : labels_[child]) {
          MergeState merged = state;
          merged.kinds = alloc_kinds(*scratch_, state.kinds);
          merged.power += label.power;
          merged.closed_worst = std::max(merged.closed_worst, label.closed_worst);
          if (label.open()) {
            merged.max_open = std::max(merged.max_open, label.open_loss);
            merged.max_open_static =
                std::max(merged.max_open_static, label.open_static);
            merged.sum_det += label.open_det;
            ++merged.k_optical;
          } else {
            ++merged.k_electrical;
          }
          // Overlay the child's subtree decisions.
          for (std::size_t i = 0; i < n; ++i) {
            if (label.kinds[i] == EdgeKind::Optical)
              merged.kinds[i] = EdgeKind::Optical;
          }
          merged.kinds[child] = label.open() ? EdgeKind::Optical
                                             : EdgeKind::Electrical;
          next.push_back(merged);
        }
      }
      prune_states(next, options_.max_labels * 2, options_.prune_dominated);
      states = std::move(next);
    }

    // Emit labels for v from each merged state.
    const double bits = static_cast<double>(ctx_.bit_count);
    const double lm = ctx_.params->optical.max_loss_db;
    std::vector<Label> out;
    const bool is_root = (v == rooted_.root);

    for (const MergeState& state : states) {
      // Option A: close at v — edge above electrical (or v is root).
      {
        double power = state.power;
        double closed_worst = state.closed_worst;
        bool feasible = true;
        if (state.k_optical >= 1) {
          const double split = optical::splitting_loss_db(
              ctx_.params->optical, state.k_optical);
          // Detection feasibility is judged on static loss only; exact
          // crossing terms are enforced at selection time (Eq. 3c).
          if (options_.prune_infeasible &&
              state.max_open_static + split > lm + 1e-9) {
            feasible = false;
          }
          closed_worst = std::max(closed_worst, state.max_open + split);
          power += bits * optical::conversion_energy_pj(ctx_.params->optical,
                                                        1, state.sum_det);
        }
        if (feasible) {
          Label label;
          label.closed_worst = closed_worst;
          label.kinds = alloc_kinds(*scratch_, state.kinds);
          if (!is_root) {
            const double len = geom::manhattan(tree_.points[rooted_.parent[v]],
                                               tree_.points[v]);
            power += bits * ctx_.params->electrical.energy_pj_per_bit(len);
            label.kinds[v] = EdgeKind::Electrical;
          }
          label.power = power;
          out.push_back(label);
        }
      }

      // Option B: extend upward — edge above optical (v != root).
      if (!is_root) {
        const bool needs_local = is_sink(v) || state.k_electrical > 0;
        const int arms = state.k_optical + (needs_local ? 1 : 0);
        if (arms >= 1) {
          const double split =
              arms >= 2
                  ? optical::splitting_loss_db(ctx_.params->optical, arms)
                  : 0.0;
          const auto [edge_prop, edge_est] =
              edge_optical_loss(rooted_.parent[v], v);
          double open_loss = needs_local ? split : 0.0;
          double open_static = open_loss;
          if (state.k_optical >= 1) {
            open_loss = std::max(open_loss, state.max_open + split);
            open_static =
                std::max(open_static, state.max_open_static + split);
          }
          open_loss += edge_prop + edge_est;
          open_static += edge_prop;
          if (!options_.prune_infeasible || open_static <= lm + 1e-9) {
            Label label;
            label.power = state.power;
            label.open_loss = open_loss;
            label.open_static = open_static;
            label.open_det = state.sum_det + (needs_local ? 1 : 0);
            label.closed_worst = state.closed_worst;
            label.kinds = alloc_kinds(*scratch_, state.kinds);
            label.kinds[v] = EdgeKind::Optical;
            out.push_back(label);
          }
        }
      }
    }
    prune_labels(out, options_.max_labels, options_.prune_dominated);
    OPERON_CHECK_MSG(!out.empty(), "DP produced no labels at node " << v);
    // Survivors move from scratch to the persistent arena: only pruned
    // winners outlive the node, so persistent growth is Σ_v |labels_v|·n.
    for (Label& label : out) {
      label.kinds = alloc_kinds(*persistent_, label.kinds);
    }
    labels_[v] = std::move(out);
  }

  const AssembleContext& ctx_;
  DpOptions options_;
  const steiner::SteinerTree& tree_;
  const steiner::RootedTree& rooted_;
  util::Arena* persistent_ = nullptr;
  util::Arena* scratch_ = nullptr;
  std::vector<std::vector<Label>> labels_;
};

}  // namespace

std::vector<Candidate> run_codesign_dp(const AssembleContext& ctx,
                                       std::size_t baseline_index,
                                       const DpOptions& options) {
  OPERON_CHECK(ctx.tree != nullptr && ctx.rooted != nullptr &&
               ctx.params != nullptr);
  DpRunner runner(ctx, options);
  std::vector<std::vector<EdgeKind>> assignments = runner.run();

  // Always include the all-electrical labeling of this topology so the
  // candidate set is never empty even under aggressive pruning.
  assignments.emplace_back(ctx.tree->num_points(), EdgeKind::Electrical);

  // Deduplicate assignments.
  std::map<std::vector<EdgeKind>, bool> seen;
  std::vector<Candidate> candidates;
  for (auto& kinds : assignments) {
    if (!seen.emplace(kinds, true).second) continue;
    candidates.push_back(
        assemble_candidate(ctx, std::move(kinds), baseline_index));
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.power_pj < b.power_pj;
            });
  return candidates;
}

}  // namespace operon::codesign
