#include "codesign/solver.hpp"

#include <utility>

#include "util/check.hpp"

namespace operon::codesign {

bool SharedIncumbent::better(const Entry& a, const Entry& b) {
  if (a.clean != b.clean) return a.clean;
  if (a.power_pj != b.power_pj) return a.power_pj < b.power_pj;
  return a.rank < b.rank;
}

void SharedIncumbent::publish(const Entry& entry) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!best_.has_value() || better(entry, *best_)) best_ = entry;
}

std::optional<SharedIncumbent::Entry> SharedIncumbent::best() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return best_;
}

void SolverRegistry::register_solver(
    std::shared_ptr<const SelectionSolver> solver) {
  OPERON_CHECK_MSG(solver != nullptr, "cannot register a null solver");
  OPERON_CHECK_MSG(find(solver->name()) == nullptr,
                   "solver '" << solver->name() << "' is already registered");
  solvers_.push_back(std::move(solver));
}

std::shared_ptr<const SelectionSolver> SolverRegistry::find(
    std::string_view name) const {
  for (const std::shared_ptr<const SelectionSolver>& solver : solvers_) {
    if (solver->name() == name) return solver;
  }
  return nullptr;
}

std::vector<std::shared_ptr<const SelectionSolver>> SolverRegistry::resolve(
    std::span<const std::string> names) const {
  std::vector<std::shared_ptr<const SelectionSolver>> resolved;
  resolved.reserve(names.size());
  for (const std::string& name : names) {
    std::shared_ptr<const SelectionSolver> solver = find(name);
    OPERON_CHECK_MSG(solver != nullptr,
                     "no registered solver named '" << name << "'");
    resolved.push_back(std::move(solver));
  }
  return resolved;
}

std::vector<std::string_view> SolverRegistry::names() const {
  std::vector<std::string_view> out;
  out.reserve(solvers_.size());
  for (const std::shared_ptr<const SelectionSolver>& solver : solvers_) {
    out.push_back(solver->name());
  }
  return out;
}

namespace {

/// Shared context -> SelectOptions plumbing of both exact adapters.
SelectOptions lane_select_options(const SelectOptions& configured,
                                  const SolverContext& ctx) {
  SelectOptions select = configured;
  select.stop = ctx.stop;
  select.threads = ctx.threads;
  if (ctx.deterministic_budgets) {
    select.time_limit_s = 0.0;
    if (select.max_nodes == 0) select.max_nodes = ctx.race_max_nodes;
  }
  return select;
}

/// Outcome + degradation warning off a SelectResult. The wall-clock
/// messages are byte-identical to the pre-API switch in core (the
/// cancel and fault-injection suites compare diagnostic text); the
/// node-budget variants are new with max_nodes.
SolverOutcome from_select_result(SelectResult solved, const char* timeout_msg,
                                 const char* node_budget_msg) {
  SolverOutcome outcome;
  outcome.selection = std::move(solved.selection);
  outcome.power_pj = solved.power_pj;
  outcome.violations = solved.violations;
  outcome.proven_optimal = solved.proven_optimal;
  outcome.timed_out = solved.timed_out;
  if (solved.timed_out) {
    outcome.degraded = true;
    outcome.warnings.push_back(
        {model::Severity::Warning, model::DiagCode::SolverTimeLimit,
         solved.node_limited ? node_budget_msg : timeout_msg});
  }
  return outcome;
}

}  // namespace

ExactSelectionSolver::ExactSelectionSolver(
    SelectOptions options, std::shared_ptr<const SelectionSolver> warm_start)
    : options_(std::move(options)), warm_start_(std::move(warm_start)) {}

SolverOutcome ExactSelectionSolver::solve(const SolverContext& ctx) const {
  SelectOptions select = lane_select_options(options_, ctx);
  if (select.warm_start.empty() && warm_start_ != nullptr) {
    SolverContext warm_ctx = ctx;
    warm_ctx.incumbent = nullptr;  // the warm start is internal, not a lane
    select.warm_start = warm_start_->solve(warm_ctx).selection;
  }
  return from_select_result(
      solve_selection_exact(ctx.sets, *ctx.params, select),
      "exact branch-and-bound hit its time limit; returning "
      "the incumbent (no worse than the LR warm start)",
      "exact branch-and-bound exhausted its node budget; returning "
      "the incumbent (no worse than the LR warm start)");
}

MipSelectionSolver::MipSelectionSolver(SelectOptions options)
    : options_(std::move(options)) {}

SolverOutcome MipSelectionSolver::solve(const SolverContext& ctx) const {
  return from_select_result(
      solve_selection_mip(ctx.sets, *ctx.params,
                          lane_select_options(options_, ctx)),
      "literal MIP hit its time limit; returning the incumbent",
      "literal MIP exhausted its node budget; returning the incumbent");
}

}  // namespace operon::codesign
