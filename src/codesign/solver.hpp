#pragma once
// The selection-stage solver API: every Formulation-(3) solver —
// exact branch-and-bound, the literal MIP, the LR speed-up, and the
// racing portfolio — implements `SelectionSolver` and registers in a
// `SolverRegistry`. Core's `run_selection_stage` looks the configured
// solver up by canonical name and calls `solve(ctx)`; it never switches
// on solver identity, so new solvers plug in without touching core.
//
// Contract:
//  * `solve` must be const and thread-compatible — the portfolio races
//    the same solver objects from several lanes concurrently.
//  * A solver never throws on budget trips or infeasibility; it
//    degrades (returns its best incumbent, sets `timed_out`/`degraded`,
//    appends Warning diagnostics) exactly like the pre-API switch did.
//  * When `ctx.deterministic_budgets` is set (racing lanes), wall-clock
//    budgets must not be consulted: exact solvers run under the node
//    budget `ctx.race_max_nodes` instead, so a lane's result is
//    bit-identical on any machine at any lane/thread count.
//  * `ctx.incumbent`, when present, is publish-only shared state: lanes
//    may announce their final (power, clean, proven) entry, but no
//    solver may consume it for pruning — consuming it would make a
//    lane's search tree depend on cross-lane timing.

#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "codesign/ilp_select.hpp"
#include "codesign/selection.hpp"
#include "model/diagnostic.hpp"
#include "util/stop.hpp"

namespace operon::codesign {

struct SolverCapabilities {
  /// Can prove optimality (sets SolverOutcome::proven_optimal).
  bool exact = false;
  /// Keeps a feasible incumbent under any budget trip (all current
  /// solvers do; a future solver without this must not join races).
  bool anytime = false;
};

/// Publish-only shared best across racing lanes. Lanes publish their
/// final entry; the portfolio reads `best()` only AFTER the race joins
/// (and the winner is re-derived by a deterministic fold anyway), so
/// the mutex never serializes solver work and no solver's search path
/// depends on what the other lanes published.
class SharedIncumbent {
 public:
  struct Entry {
    std::size_t rank = 0;  ///< canonical arbitration rank of the lane
    double power_pj = 0.0;
    bool clean = false;
    bool proven_optimal = false;
  };

  void publish(const Entry& entry);
  std::optional<Entry> best() const;

  /// Arbitration order: clean beats violated, then lower power, then
  /// lower canonical rank. Exact power comparison (no epsilon) — the
  /// fold must be bit-deterministic.
  static bool better(const Entry& a, const Entry& b);

 private:
  mutable std::mutex mutex_;
  std::optional<Entry> best_;
};

/// Per-run inputs a solver needs. Solver *configuration* (time limits,
/// iteration caps, ...) is captured by each adapter at registry build;
/// the context only carries run state, so the interface never widens
/// when a solver grows a knob.
struct SolverContext {
  std::span<const CandidateSet> sets;
  const model::TechParams* params = nullptr;
  /// Stage-level evaluator (thread-safe for const queries). Serves
  /// feature extraction and post-solve auditing; solvers that need
  /// different interaction settings build their own.
  const SelectionEvaluator* evaluator = nullptr;
  /// The run token (or a racing lane's chained token). Checkpoint
  /// discipline is the solver's own (codesign.exact / lr.iteration /
  /// ilp.bnb.node polls).
  util::StopToken stop;
  /// Worker threads for the solver's internal parallel_for fan-outs.
  std::size_t threads = 1;
  /// Racing: publish-only shared best (see SharedIncumbent). Null
  /// outside races.
  SharedIncumbent* incumbent = nullptr;
  /// Racing: forbid wall-clock budgets (see file comment).
  bool deterministic_budgets = false;
  /// Racing: node budget for exact members whose own max_nodes is
  /// unlimited; ignored unless deterministic_budgets is set.
  std::size_t race_max_nodes = 0;
};

struct SolverOutcome {
  Selection selection;
  double power_pj = 0.0;
  ViolationStats violations;
  bool proven_optimal = false;
  bool timed_out = false;
  /// A degradation rung fired (time/node limit, non-convergence).
  bool degraded = false;
  std::size_t lr_iterations = 0;
  /// Warning diagnostics to surface on the run (byte-stable text — the
  /// fault-injection and cancel-replay suites compare messages).
  std::vector<model::Diagnostic> warnings;
  /// Portfolio only: canonical name of the winning member and the
  /// comma-joined race start order ("" for plain solvers).
  std::string winning_solver;
  std::string race_order;
};

class SelectionSolver {
 public:
  virtual ~SelectionSolver() = default;
  /// Canonical name (matches core::to_string(SolverKind)).
  virtual std::string_view name() const = 0;
  virtual SolverCapabilities capabilities() const = 0;
  virtual SolverOutcome solve(const SolverContext& ctx) const = 0;
};

/// Name-keyed solver collection; registration order is preserved (it is
/// the deterministic fallback race order).
class SolverRegistry {
 public:
  /// Throws CheckError on a duplicate name.
  void register_solver(std::shared_ptr<const SelectionSolver> solver);
  /// Null when no solver has that name.
  std::shared_ptr<const SelectionSolver> find(std::string_view name) const;
  /// Resolve a member-name list; throws CheckError on unknown names
  /// (malformed configuration — a library-boundary error).
  std::vector<std::shared_ptr<const SelectionSolver>> resolve(
      std::span<const std::string> names) const;
  std::vector<std::string_view> names() const;

 private:
  std::vector<std::shared_ptr<const SelectionSolver>> solvers_;
};

/// solve_selection_exact behind the API ("ilp-exact"). Holds an
/// optional warm-start solver (the LR adapter in the default registry):
/// when the configured warm start is empty, its selection seeds the
/// branch-and-bound incumbent, so a budget-limited run never returns
/// worse than the heuristic — the pre-API "timeout falls back to the
/// LR surrogate" rung, unchanged.
class ExactSelectionSolver final : public SelectionSolver {
 public:
  ExactSelectionSolver(SelectOptions options,
                       std::shared_ptr<const SelectionSolver> warm_start);
  std::string_view name() const override { return "ilp-exact"; }
  SolverCapabilities capabilities() const override { return {true, true}; }
  SolverOutcome solve(const SolverContext& ctx) const override;

 private:
  SelectOptions options_;
  std::shared_ptr<const SelectionSolver> warm_start_;
};

/// solve_selection_mip behind the API ("mip-literal").
class MipSelectionSolver final : public SelectionSolver {
 public:
  explicit MipSelectionSolver(SelectOptions options);
  std::string_view name() const override { return "mip-literal"; }
  SolverCapabilities capabilities() const override { return {true, true}; }
  SolverOutcome solve(const SolverContext& ctx) const override;

 private:
  SelectOptions options_;
};

}  // namespace operon::codesign
