#include "codesign/assemble.hpp"

#include <algorithm>

#include "optical/loss.hpp"
#include "util/check.hpp"

namespace operon::codesign {

double estimated_crossing_db(const AssembleContext& ctx,
                             const geom::Segment& segment) {
  if (ctx.estimator == nullptr) return 0.0;
  const std::size_t crossings =
      ctx.estimator->count_crossings(segment, ctx.net_id);
  return ctx.params->optical.beta_db_per_crossing *
         static_cast<double>(crossings);
}

namespace {

struct Walker {
  const AssembleContext& ctx;
  const std::vector<EdgeKind>& kinds;
  Candidate& out;

  bool is_sink(std::size_t v) const {
    return ctx.tree->is_terminal(v) && v != ctx.rooted->root;
  }

  std::vector<std::size_t> optical_children(std::size_t v) const {
    std::vector<std::size_t> result;
    for (std::size_t c : ctx.rooted->children[v]) {
      if (kinds[c] == EdgeKind::Optical) result.push_back(c);
    }
    return result;
  }

  bool has_electrical_child(std::size_t v) const {
    for (std::size_t c : ctx.rooted->children[v]) {
      if (kinds[c] == EdgeKind::Electrical) return true;
    }
    return false;
  }

  /// Walk one optical component from its top node `top`.
  void walk_component(std::size_t top) {
    ++out.num_modulators;
    out.modulator_sites.push_back(ctx.tree->points[top]);
    const auto arms0 = optical_children(top);
    OPERON_DCHECK(!arms0.empty());
    const double split0 = optical::splitting_loss_db(
        ctx.params->optical, static_cast<int>(arms0.size()));
    const int splits0 = arms0.size() >= 2 ? 1 : 0;
    for (std::size_t child : arms0) {
      descend(child, top, split0, split0, 0.0, splits0, {});
    }
  }

  /// Arrive at `v` through optical edge (parent, v), carrying the loss
  /// accumulated *before* traversing that edge.
  void descend(std::size_t v, std::size_t parent, double loss_before,
               double split_before, double crossing_before, int splits_before,
               std::vector<geom::Segment> trail) {
    const geom::Segment seg{ctx.tree->points[parent], ctx.tree->points[v]};
    double static_loss = loss_before;
    double crossing = crossing_before;
    if (seg.length() > 0.0) {
      static_loss += ctx.params->optical.alpha_db_per_um * seg.length();
      crossing += estimated_crossing_db(ctx, seg);
      trail.push_back(seg);
    }

    const auto optical_kids = optical_children(v);
    const bool needs_local = is_sink(v) || has_electrical_child(v);
    const int arms = static_cast<int>(optical_kids.size()) + (needs_local ? 1 : 0);
    OPERON_CHECK_MSG(arms >= 1,
                     "optical edge dead-ends at node " << v
                                                       << " (invalid labeling)");
    const double split =
        arms >= 2 ? optical::splitting_loss_db(ctx.params->optical, arms) : 0.0;

    const int splits_here = splits_before + (arms >= 2 ? 1 : 0);
    if (needs_local) {
      ++out.num_detectors;
      out.detector_sites.push_back(ctx.tree->points[v]);
      CandidatePath path;
      path.static_loss_db = static_loss + split;
      path.splitting_db = split_before + split;
      path.num_splits = splits_here;
      path.estimated_crossing_db = crossing;
      path.segments = trail;
      out.paths.push_back(std::move(path));
    }
    for (std::size_t child : optical_kids) {
      descend(child, v, static_loss + split, split_before + split, crossing,
              splits_here, trail);
    }
  }
};

}  // namespace

double Candidate::worst_estimated_loss_db() const {
  double worst = 0.0;
  for (const CandidatePath& path : paths) {
    worst = std::max(worst, path.static_loss_db + path.estimated_crossing_db);
  }
  return worst;
}

double Candidate::worst_static_loss_db() const {
  double worst = 0.0;
  for (const CandidatePath& path : paths) {
    worst = std::max(worst, path.static_loss_db);
  }
  return worst;
}

Candidate assemble_candidate(const AssembleContext& ctx,
                             std::vector<EdgeKind> edge_kinds,
                             std::size_t baseline_index) {
  OPERON_CHECK(ctx.tree != nullptr && ctx.rooted != nullptr &&
               ctx.params != nullptr);
  const steiner::SteinerTree& tree = *ctx.tree;
  const steiner::RootedTree& rooted = *ctx.rooted;
  OPERON_CHECK(edge_kinds.size() == tree.num_points());

  Candidate out;
  out.baseline = baseline_index;

  Walker walker{ctx, edge_kinds, out};

  // Wirelength and segments per edge.
  for (std::size_t v = 0; v < tree.num_points(); ++v) {
    if (v == rooted.root) continue;
    const std::size_t parent = rooted.parent[v];
    const geom::Point& a = tree.points[parent];
    const geom::Point& b = tree.points[v];
    if (edge_kinds[v] == EdgeKind::Optical) {
      out.optical_wl_um += geom::euclidean(a, b);
      if (a != b) out.optical_segments.push_back({a, b});
    } else {
      out.electrical_wl_um += geom::manhattan(a, b);
      // L-route, horizontal first (matches SteinerTree::edge_segments).
      const geom::Point corner{b.x, a.y};
      if (corner != a) out.electrical_segments.push_back({a, corner});
      if (corner != b) out.electrical_segments.push_back({corner, b});
    }
  }

  // Optical components: a top is a node with >= 1 optical child whose own
  // edge up is electrical (or it is the root).
  for (std::size_t v = 0; v < tree.num_points(); ++v) {
    const bool top = (v == rooted.root || edge_kinds[v] == EdgeKind::Electrical);
    if (!top) continue;
    if (walker.optical_children(v).empty()) continue;
    walker.walk_component(v);
  }

  const double bits = static_cast<double>(ctx.bit_count);
  out.electrical_power_pj =
      bits * ctx.params->electrical.energy_pj_per_bit(out.electrical_wl_um);
  out.optical_power_pj =
      bits * optical::conversion_energy_pj(ctx.params->optical,
                                           out.num_modulators,
                                           out.num_detectors);
  out.power_pj = out.electrical_power_pj + out.optical_power_pj;
  out.edge_kinds = std::move(edge_kinds);
  return out;
}

}  // namespace operon::codesign
