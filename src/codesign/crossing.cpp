#include "codesign/crossing.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace operon::codesign {

namespace {

/// Per-thread query scratch: `stamp[i] == epoch` marks segment i as seen
/// by the current query. The epoch is bumped per query (and is 64-bit, so
/// it never wraps), which also keeps interleaved queries against
/// *different* SegmentIndex instances from contaminating each other.
struct QueryScratch {
  std::vector<std::uint64_t> stamp;
  std::uint64_t epoch = 0;
};

}  // namespace

SegmentIndex::SegmentIndex(const geom::BBox& extent, std::size_t cells)
    : extent_(extent), cells_(std::max<std::size_t>(cells, 1)) {
  OPERON_CHECK(!extent.is_empty());
  cell_w_ = std::max(extent_.width(), 1e-9) / static_cast<double>(cells_);
  cell_h_ = std::max(extent_.height(), 1e-9) / static_cast<double>(cells_);
}

std::size_t SegmentIndex::cell_of(double x, double y) const {
  const auto clamp_idx = [this](double v, double lo, double width) {
    const auto idx = static_cast<long long>((v - lo) / width);
    return static_cast<std::size_t>(
        std::clamp<long long>(idx, 0, static_cast<long long>(cells_) - 1));
  };
  return clamp_idx(y, extent_.ylo, cell_h_) * cells_ +
         clamp_idx(x, extent_.xlo, cell_w_);
}

void SegmentIndex::add(std::size_t net, const geom::Segment& segment) {
  segments_.push_back({segment, net});
  finalized_ = false;
}

void SegmentIndex::add_all(std::size_t net,
                           std::span<const geom::Segment> segments) {
  for (const geom::Segment& s : segments) add(net, s);
}

void SegmentIndex::finalize() {
  if (finalized_) return;
  // Counting sort into CSR: one pass tallies per-cell occupancy, the
  // prefix sum fixes the offsets, and a second pass scatters segment
  // indices — ascending within each bucket, exactly the insertion order
  // the former vector-of-vectors produced.
  const std::size_t num_cells = cells_ * cells_;
  bucket_start_.assign(num_cells + 1, 0);
  const auto for_each_cell = [&](const Tagged& tagged, auto&& fn) {
    const geom::BBox box = tagged.segment.bbox();
    const std::size_t lo = cell_of(box.xlo, box.ylo);
    const std::size_t hi = cell_of(box.xhi, box.yhi);
    const std::size_t x0 = lo % cells_, y0 = lo / cells_;
    const std::size_t x1 = hi % cells_, y1 = hi / cells_;
    for (std::size_t y = y0; y <= y1; ++y) {
      for (std::size_t x = x0; x <= x1; ++x) {
        fn(y * cells_ + x);
      }
    }
  };
  for (const Tagged& tagged : segments_) {
    for_each_cell(tagged, [&](std::size_t c) { ++bucket_start_[c + 1]; });
  }
  for (std::size_t c = 0; c < num_cells; ++c) {
    bucket_start_[c + 1] += bucket_start_[c];
  }
  bucket_data_.resize(bucket_start_[num_cells]);
  std::vector<std::uint32_t> cursor(bucket_start_.begin(),
                                    bucket_start_.end() - 1);
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    for_each_cell(segments_[i], [&](std::size_t c) {
      bucket_data_[cursor[c]++] = static_cast<std::uint32_t>(i);
    });
  }
  finalized_ = true;
}

std::size_t SegmentIndex::count_crossings(const geom::Segment& seg,
                                          std::size_t exclude_net) const {
  OPERON_CHECK_MSG(finalized_ || segments_.empty(),
                   "SegmentIndex::finalize() must run before queries");
  if (segments_.empty()) return 0;

  const geom::BBox seg_box = seg.bbox();
  const std::size_t lo = cell_of(seg_box.xlo, seg_box.ylo);
  const std::size_t hi = cell_of(seg_box.xhi, seg_box.yhi);
  const std::size_t x0 = lo % cells_, y0 = lo / cells_;
  const std::size_t x1 = hi % cells_, y1 = hi / cells_;

  thread_local QueryScratch scratch;
  const bool multi_cell = (x0 != x1) || (y0 != y1);
  if (multi_cell) {
    // A segment spanning several cells appears in several buckets; the
    // epoch stamp dedups without any per-query allocation or sorting.
    if (scratch.stamp.size() < segments_.size()) {
      scratch.stamp.resize(segments_.size(), 0);
    }
    ++scratch.epoch;
  }

  std::size_t count = 0;
  for (std::size_t y = y0; y <= y1; ++y) {
    for (std::size_t x = x0; x <= x1; ++x) {
      const std::size_t c = y * cells_ + x;
      for (std::uint32_t k = bucket_start_[c]; k < bucket_start_[c + 1]; ++k) {
        const std::uint32_t index = bucket_data_[k];
        if (multi_cell) {
          if (scratch.stamp[index] == scratch.epoch) continue;
          scratch.stamp[index] = scratch.epoch;
        }
        const Tagged& tagged = segments_[index];
        if (tagged.net == exclude_net) continue;
        if (!seg_box.overlaps(tagged.segment.bbox())) continue;
        if (geom::segments_cross(seg, tagged.segment)) ++count;
      }
    }
  }
  return count;
}

}  // namespace operon::codesign
