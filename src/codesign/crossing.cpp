#include "codesign/crossing.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace operon::codesign {

SegmentIndex::SegmentIndex(const geom::BBox& extent, std::size_t cells)
    : extent_(extent), cells_(std::max<std::size_t>(cells, 1)) {
  OPERON_CHECK(!extent.is_empty());
  cell_w_ = std::max(extent_.width(), 1e-9) / static_cast<double>(cells_);
  cell_h_ = std::max(extent_.height(), 1e-9) / static_cast<double>(cells_);
  buckets_.resize(cells_ * cells_);
}

std::size_t SegmentIndex::cell_of(double x, double y) const {
  const auto clamp_idx = [this](double v, double lo, double width) {
    const auto idx = static_cast<long long>((v - lo) / width);
    return static_cast<std::size_t>(
        std::clamp<long long>(idx, 0, static_cast<long long>(cells_) - 1));
  };
  return clamp_idx(y, extent_.ylo, cell_h_) * cells_ +
         clamp_idx(x, extent_.xlo, cell_w_);
}

void SegmentIndex::cells_overlapping(const geom::BBox& box,
                                     std::vector<std::size_t>& out) const {
  out.clear();
  const std::size_t lo = cell_of(box.xlo, box.ylo);
  const std::size_t hi = cell_of(box.xhi, box.yhi);
  const std::size_t x0 = lo % cells_, y0 = lo / cells_;
  const std::size_t x1 = hi % cells_, y1 = hi / cells_;
  for (std::size_t y = y0; y <= y1; ++y) {
    for (std::size_t x = x0; x <= x1; ++x) {
      out.push_back(y * cells_ + x);
    }
  }
}

void SegmentIndex::add(std::size_t net, const geom::Segment& segment) {
  const std::size_t index = segments_.size();
  segments_.push_back({segment, net});
  std::vector<std::size_t> cells;
  cells_overlapping(segment.bbox(), cells);
  for (std::size_t c : cells) buckets_[c].push_back(index);
}

void SegmentIndex::add_all(std::size_t net,
                           std::span<const geom::Segment> segments) {
  for (const geom::Segment& s : segments) add(net, s);
}

std::size_t SegmentIndex::count_crossings(const geom::Segment& seg,
                                          std::size_t exclude_net) const {
  std::vector<std::size_t> cells;
  cells_overlapping(seg.bbox(), cells);
  // A segment spanning several cells appears in several buckets; dedup
  // with a call-local sort so the query stays const and thread-safe.
  std::vector<std::size_t> candidates;
  for (std::size_t c : cells) {
    candidates.insert(candidates.end(), buckets_[c].begin(),
                      buckets_[c].end());
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  const geom::BBox seg_box = seg.bbox();
  std::size_t count = 0;
  for (std::size_t index : candidates) {
    const Tagged& tagged = segments_[index];
    if (tagged.net == exclude_net) continue;
    if (!seg_box.overlaps(tagged.segment.bbox())) continue;
    if (geom::segments_cross(seg, tagged.segment)) ++count;
  }
  return count;
}

}  // namespace operon::codesign
