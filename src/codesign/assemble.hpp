#pragma once
// Candidate assembly: given a baseline tree and an Optical/Electrical
// label per edge, derive every property of the candidate (power, paths,
// segments). This is the single source of truth for candidate semantics;
// the DP (dp.hpp) must agree with it and is tested against brute-force
// enumeration through this function.
//
// Semantics of an assignment:
//  * Light flows from the root (driver hyper pin) toward the sinks.
//  * A maximal connected set of Optical edges is one component; its top
//    node (closest to root) holds one modulator per channel — data is
//    available there electrically (it is the root, or its parent edge is
//    Electrical).
//  * At the top, the component splits into its optical child arms
//    (splitting loss for >= 2 arms). At an interior node the arm count is
//    (#optical children) + 1 if the node needs the data electrically —
//    i.e. it is a sink hyper pin (local detector tap) or it has
//    Electrical child edges to feed.
//  * Every point where light is converted back (tap or conversion node)
//    is a detector and a detection-constraint path endpoint (Eq. 3c).

#include <vector>

#include "codesign/candidate.hpp"
#include "codesign/crossing.hpp"
#include "model/params.hpp"
#include "steiner/tree.hpp"

namespace operon::codesign {

struct AssembleContext {
  const steiner::SteinerTree* tree = nullptr;
  const steiner::RootedTree* rooted = nullptr;
  std::size_t bit_count = 1;
  const model::TechParams* params = nullptr;
  /// Optional crossing estimator (baselines of the other nets); may be null.
  const SegmentIndex* estimator = nullptr;
  std::size_t net_id = 0;
};

/// Derive all fields of a candidate from its edge labels. `edge_kinds`
/// is indexed by tree node id; the root entry is ignored.
Candidate assemble_candidate(const AssembleContext& ctx,
                             std::vector<EdgeKind> edge_kinds,
                             std::size_t baseline_index);

/// Estimated crossing loss (dB) of a single optical edge segment.
double estimated_crossing_db(const AssembleContext& ctx,
                             const geom::Segment& segment);

}  // namespace operon::codesign
