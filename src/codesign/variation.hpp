#pragma once
// Process/environment variation analysis — the robustness dimension the
// paper's related work ([4] thermal-reliable, [6] variation-aware
// photonic management) optimizes and OPERON's power-minimal designs
// trade away: a selection whose worst path sits at 19.9 of 20 dB is
// power-optimal and yield-fragile.
//
// Monte-Carlo model per detection path:
//   loss = prop·(1 + eps_a) + sum over crossings of max(0, beta + eps_x)
//        + splitting + eps_s per split + eps_d (receiver sensitivity),
// with independent zero-mean Gaussian eps. A sample "yields" when every
// path of every selected candidate stays within the budget.

#include <cstdint>

#include "codesign/selection.hpp"
#include "optical/loss.hpp"

namespace operon::codesign {

struct VariationParams {
  /// Relative sigma on propagation loss (waveguide width/roughness).
  double alpha_sigma_frac = 0.08;
  /// Absolute sigma per crossing, dB.
  double crossing_sigma_db = 0.05;
  /// Absolute sigma per splitting event, dB (Y-branch imbalance).
  double splitter_sigma_db = 0.25;
  /// Receiver sensitivity sigma, dB (detector + TIA variation).
  double detector_sigma_db = 0.5;
  std::size_t samples = 2000;
  std::uint64_t seed = 99;
};

struct YieldReport {
  /// Fraction of samples with every path detectable.
  double design_yield = 1.0;
  /// Fraction of (sample, path) pairs detectable.
  double path_yield = 1.0;
  /// Nominal margins (lm - nominal loss) over all optical paths, dB.
  double mean_nominal_margin_db = 0.0;
  double worst_nominal_margin_db = 0.0;
  std::size_t optical_paths = 0;
};

/// Monte-Carlo yield of a selection under the evaluator's exact nominal
/// losses. Deterministic for a seed.
YieldReport estimate_yield(const SelectionEvaluator& evaluator,
                           const Selection& selection,
                           const VariationParams& params = {});

/// Laser wall-plug budget of a selection: per channel of every optical
/// path, the laser must overcome the exact nominal loss (exponential in
/// dB), so two selections with identical conversion power can differ
/// sharply here — the other face of the guard-band trade-off.
struct LaserReport {
  double total_mw = 0.0;
  double worst_channel_mw = 0.0;
  double mean_path_loss_db = 0.0;
  std::size_t channels = 0;
};

LaserReport laser_budget(const SelectionEvaluator& evaluator,
                         const Selection& selection,
                         const optical::LaserParams& params = {});

}  // namespace operon::codesign
