#include "codesign/variation.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace operon::codesign {

YieldReport estimate_yield(const SelectionEvaluator& evaluator,
                           const Selection& selection,
                           const VariationParams& params) {
  OPERON_CHECK(params.samples >= 1);
  const double lm = evaluator.params().optical.max_loss_db;
  const double beta = evaluator.params().optical.beta_db_per_crossing;

  // Nominal decomposition per optical path of the selection.
  struct PathModel {
    double prop_db;
    double split_db;
    int num_splits;
    int crossings;
  };
  std::vector<PathModel> paths;
  YieldReport report;
  report.worst_nominal_margin_db = lm;
  double margin_sum = 0.0;
  for (std::size_t i = 0; i < evaluator.num_nets(); ++i) {
    const Candidate& cand = evaluator.set(i).options[selection[i]];
    for (std::size_t p = 0; p < cand.paths.size(); ++p) {
      const CandidatePath& path = cand.paths[p];
      const double nominal = evaluator.path_loss_db(selection, i, selection[i], p);
      PathModel pm;
      pm.prop_db = path.static_loss_db - path.splitting_db;
      pm.split_db = path.splitting_db;
      pm.num_splits = path.num_splits;
      const double crossing_db = nominal - path.static_loss_db;
      pm.crossings = beta > 0.0
                         ? static_cast<int>(std::lround(crossing_db / beta))
                         : 0;
      paths.push_back(pm);
      const double margin = lm - nominal;
      margin_sum += margin;
      report.worst_nominal_margin_db =
          std::min(report.worst_nominal_margin_db, margin);
    }
  }
  report.optical_paths = paths.size();
  if (paths.empty()) {
    report.worst_nominal_margin_db = lm;
    return report;  // all-electrical: yields by construction
  }
  report.mean_nominal_margin_db =
      margin_sum / static_cast<double>(paths.size());

  util::Rng rng(params.seed);
  std::size_t good_samples = 0;
  std::size_t good_paths = 0;
  for (std::size_t s = 0; s < params.samples; ++s) {
    bool all_ok = true;
    for (const PathModel& pm : paths) {
      double loss = pm.prop_db * (1.0 + rng.normal(0.0, params.alpha_sigma_frac));
      for (int x = 0; x < pm.crossings; ++x) {
        loss += std::max(0.0, beta + rng.normal(0.0, params.crossing_sigma_db));
      }
      loss += pm.split_db;
      for (int k = 0; k < pm.num_splits; ++k) {
        loss += rng.normal(0.0, params.splitter_sigma_db);
      }
      loss += rng.normal(0.0, params.detector_sigma_db);
      if (loss <= lm) ++good_paths;
      else all_ok = false;
    }
    if (all_ok) ++good_samples;
  }
  report.design_yield =
      static_cast<double>(good_samples) / static_cast<double>(params.samples);
  report.path_yield = static_cast<double>(good_paths) /
                      static_cast<double>(params.samples * paths.size());
  return report;
}

LaserReport laser_budget(const SelectionEvaluator& evaluator,
                         const Selection& selection,
                         const optical::LaserParams& params) {
  LaserReport report;
  double loss_sum = 0.0;
  for (std::size_t i = 0; i < evaluator.num_nets(); ++i) {
    const CandidateSet& set = evaluator.set(i);
    const Candidate& cand = set.options[selection[i]];
    for (std::size_t p = 0; p < cand.paths.size(); ++p) {
      const double loss = evaluator.path_loss_db(selection, i, selection[i], p);
      const double per_channel = optical::laser_wallplug_mw(params, loss);
      const double bits = static_cast<double>(set.bit_count);
      report.total_mw += bits * per_channel;
      report.worst_channel_mw = std::max(report.worst_channel_mw, per_channel);
      report.channels += set.bit_count;
      loss_sum += loss;
    }
  }
  std::size_t path_count = 0;
  for (std::size_t i = 0; i < evaluator.num_nets(); ++i) {
    path_count += evaluator.set(i).options[selection[i]].paths.size();
  }
  report.mean_path_loss_db =
      path_count == 0 ? 0.0 : loss_sum / static_cast<double>(path_count);
  return report;
}

}  // namespace operon::codesign
