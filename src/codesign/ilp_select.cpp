#include "codesign/ilp_select.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <numeric>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/stop.hpp"
#include "util/timer.hpp"

namespace operon::codesign {

namespace {

bool has_optical_option(const CandidateSet& set) {
  return std::any_of(set.options.begin(), set.options.end(),
                     [](const Candidate& c) { return !c.pure_electrical(); });
}

/// Connected components of the conflict graph: nets are joined only when
/// some candidate pair can genuinely cross (a sharper §3.3 reduction than
/// bounding boxes alone — disjoint components solve independently and a
/// conflict-free net is provably optimal at its min-power candidate).
std::vector<std::vector<std::size_t>> interaction_components(
    const SelectionEvaluator& evaluator) {
  const std::size_t n = evaluator.num_nets();
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  const std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (!has_optical_option(evaluator.set(i))) continue;
    for (std::size_t m : evaluator.interacting(i)) {
      if (m < i || !has_optical_option(evaluator.set(m))) continue;
      if (find(i) == find(m)) continue;
      if (evaluator.pair_can_conflict(i, m)) parent[find(i)] = find(m);
    }
  }
  std::vector<std::vector<std::size_t>> components;
  std::vector<std::size_t> index(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = find(i);
    if (index[root] == n) {
      index[root] = components.size();
      components.emplace_back();
    }
    components[index[root]].push_back(i);
  }
  return components;
}

/// Exact DFS branch-and-bound over one interaction component.
class ComponentSolver {
 public:
  ComponentSolver(const SelectionEvaluator& evaluator,
                  std::vector<std::size_t> nets, const util::Deadline& deadline,
                  util::StopToken stop, Selection& selection,
                  std::size_t& nodes, std::size_t max_nodes,
                  std::size_t& incumbent_updates, const Selection* warm_start,
                  const Selection* peeled)
      : evaluator_(evaluator),
        nets_(std::move(nets)),
        deadline_(deadline),
        stop_(std::move(stop)),
        selection_(selection),
        nodes_(nodes),
        max_nodes_(max_nodes),
        incumbent_updates_(incumbent_updates),
        warm_start_(warm_start),
        peeled_(peeled) {
    const std::size_t n = evaluator_.num_nets();
    local_index_.assign(n, n);
    for (std::size_t k = 0; k < nets_.size(); ++k) local_index_[nets_[k]] = k;

    // Order: most-interacting nets first so conflicts surface early.
    std::sort(nets_.begin(), nets_.end(), [&](std::size_t a, std::size_t b) {
      const auto da = evaluator_.interacting(a).size();
      const auto db = evaluator_.interacting(b).size();
      if (da != db) return da > db;
      return a < b;
    });
    for (std::size_t k = 0; k < nets_.size(); ++k) local_index_[nets_[k]] = k;

    // Per-net candidate order by power, and suffix minimum power bound.
    candidate_order_.resize(nets_.size());
    min_power_.resize(nets_.size());
    for (std::size_t k = 0; k < nets_.size(); ++k) {
      const auto& options = evaluator_.set(nets_[k]).options;
      candidate_order_[k].resize(options.size());
      std::iota(candidate_order_[k].begin(), candidate_order_[k].end(), 0u);
      std::sort(candidate_order_[k].begin(), candidate_order_[k].end(),
                [&](std::size_t a, std::size_t b) {
                  return options[a].power_pj < options[b].power_pj;
                });
      min_power_[k] = options[candidate_order_[k][0]].power_pj;
    }
    suffix_min_.assign(nets_.size() + 1, 0.0);
    for (std::size_t k = nets_.size(); k > 0; --k) {
      suffix_min_[k - 1] = suffix_min_[k] + min_power_[k - 1];
    }

    path_loss_.resize(nets_.size());
    choice_.assign(nets_.size(), 0);
    assigned_.assign(nets_.size(), false);
  }

  /// Returns true when the component optimum was proven within deadline.
  bool solve() {
    seed_incumbent();
    timed_out_ = false;
    dfs(0, 0.0);
    for (std::size_t k = 0; k < nets_.size(); ++k) {
      selection_[nets_[k]] = best_choice_[k];
    }
    return !timed_out_;
  }

 private:
  void seed_incumbent() {
    // Greedy: cheapest candidate consistent with earlier picks; the
    // pure-electrical fallback always works, so this always completes.
    double power = 0.0;
    for (std::size_t k = 0; k < nets_.size(); ++k) {
      bool placed = false;
      for (std::size_t ci : candidate_order_[k]) {
        if (try_assign(k, ci)) {
          placed = true;
          break;
        }
      }
      if (!placed) {
        const bool ok = try_assign(k, evaluator_.set(nets_[k]).electrical_index);
        OPERON_CHECK_MSG(ok, "electrical fallback rejected — invariant broken");
      }
      power += evaluator_.set(nets_[k]).options[choice_[k]].power_pj;
    }
    best_choice_ = choice_;
    best_power_ = power;
    ++incumbent_updates_;
    // Unwind the greedy assignment.
    for (std::size_t k = nets_.size(); k > 0; --k) unassign(k - 1);

    // Warm starts (user-provided and the peel heuristic) replace the
    // greedy incumbent when feasible on this component and cheaper.
    for (const Selection* seed : {warm_start_, peeled_}) {
      if (seed == nullptr) continue;
      double seed_power = 0.0;
      std::size_t assigned = 0;
      for (; assigned < nets_.size(); ++assigned) {
        const std::size_t ci = (*seed)[nets_[assigned]];
        if (!try_assign(assigned, ci)) break;
        seed_power += evaluator_.set(nets_[assigned]).options[ci].power_pj;
      }
      const bool feasible = (assigned == nets_.size());
      if (feasible && seed_power < best_power_) {
        best_power_ = seed_power;
        best_choice_ = choice_;
        ++incumbent_updates_;
      }
      for (std::size_t k = assigned; k > 0; --k) unassign(k - 1);
    }
  }

  /// If every remaining slot can take its min-power candidate without a
  /// violation, the subtree optimum equals the additive bound: record the
  /// completed incumbent and prune the whole subtree.
  bool try_min_power_completion(std::size_t k, double committed) {
    std::size_t assigned = k;
    for (; assigned < nets_.size(); ++assigned) {
      if (!try_assign(assigned, candidate_order_[assigned][0])) break;
    }
    const bool complete = (assigned == nets_.size());
    if (complete) {
      const double power = committed + suffix_min_[k];
      if (power < best_power_ - 1e-12) {
        best_power_ = power;
        best_choice_ = choice_;
        ++incumbent_updates_;
      }
    }
    for (std::size_t undo = assigned; undo > k; --undo) unassign(undo - 1);
    return complete;
  }

  void dfs(std::size_t k, double committed) {
    ++nodes_;
    // Per-node run-budget checkpoint (serial recursion — deterministic
    // count) alongside the stage deadline and the deterministic node
    // budget (nodes_ is shared across components, so the budget is
    // global); every exit keeps the incumbent.
    if (stop_.checkpoint("codesign.exact") || deadline_.expired() ||
        (max_nodes_ != 0 && nodes_ > max_nodes_)) {
      timed_out_ = true;
      return;
    }
    if (k == nets_.size()) {
      if (committed < best_power_ - 1e-12) {
        best_power_ = committed;
        best_choice_ = choice_;
        ++incumbent_updates_;
      }
      return;
    }
    // Min-power completion: when the cheapest remaining candidates are
    // mutually consistent with the partial assignment, the additive bound
    // is achieved exactly and no branching below this node can do better.
    if (try_min_power_completion(k, committed)) return;
    for (std::size_t ci : candidate_order_[k]) {
      const double power =
          evaluator_.set(nets_[k]).options[ci].power_pj;
      // Candidates are power-sorted: once the bound trips, all later ones
      // trip too.
      if (committed + power + suffix_min_[k + 1] >= best_power_ - 1e-12) break;
      if (!try_assign(k, ci)) continue;
      dfs(k + 1, committed + power);
      unassign(k);
      if (timed_out_) return;
    }
  }

  /// Attempt to assign candidate ci to component slot k; returns false
  /// (leaving state untouched) if any assigned path would exceed lm.
  bool try_assign(std::size_t k, std::size_t ci) {
    const std::size_t i = nets_[k];
    const Candidate& cand = evaluator_.set(i).options[ci];
    const double lm = evaluator_.params().optical.max_loss_db;
    const double beta = evaluator_.params().optical.beta_db_per_crossing;

    // New net's path losses against already-assigned neighbors.
    std::vector<double> own(cand.paths.size());
    for (std::size_t p = 0; p < cand.paths.size(); ++p) {
      own[p] = cand.paths[p].static_loss_db;
    }
    for (std::size_t m : evaluator_.interacting(i)) {
      const std::size_t km = local_index_[m];
      if (km >= nets_.size() || !assigned_[km]) continue;
      const auto& counts = evaluator_.crossings(i, ci, m, choice_[km]);
      if (counts.empty()) continue;  // all-zero marker
      for (std::size_t p = 0; p < own.size(); ++p) {
        own[p] += beta * counts[p];
      }
    }
    for (double loss : own) {
      if (loss > lm + 1e-9) return false;
    }

    // Increments to assigned neighbors' paths.
    std::vector<DeltaRec> deltas;
    if (!cand.optical_segments.empty()) {
      for (std::size_t m : evaluator_.interacting(i)) {
        const std::size_t km = local_index_[m];
        if (km >= nets_.size() || !assigned_[km]) continue;
        const auto& counts = evaluator_.crossings(m, choice_[km], i, ci);
        if (counts.empty()) continue;  // all-zero marker
        DeltaRec delta{km, std::vector<double>(counts.size(), 0.0)};
        bool any = false;
        for (std::size_t q = 0; q < counts.size(); ++q) {
          if (counts[q] == 0) continue;
          delta.add[q] = beta * counts[q];
          if (path_loss_[km][q] + delta.add[q] > lm + 1e-9) return false;
          any = true;
        }
        if (any) deltas.push_back(std::move(delta));
      }
    }

    // Commit.
    for (const DeltaRec& delta : deltas) {
      for (std::size_t q = 0; q < delta.add.size(); ++q) {
        path_loss_[delta.km][q] += delta.add[q];
      }
    }
    path_loss_[k] = std::move(own);
    choice_[k] = ci;
    assigned_[k] = true;
    undo_stack_.push_back(std::move(deltas));
    return true;
  }

  void unassign(std::size_t k) {
    assigned_[k] = false;
    path_loss_[k].clear();
    const auto deltas = std::move(undo_stack_.back());
    undo_stack_.pop_back();
    for (const auto& delta : deltas) {
      for (std::size_t q = 0; q < delta.add.size(); ++q) {
        path_loss_[delta.km][q] -= delta.add[q];
      }
    }
  }

  const SelectionEvaluator& evaluator_;
  std::vector<std::size_t> nets_;
  const util::Deadline& deadline_;
  util::StopToken stop_;
  Selection& selection_;
  std::size_t& nodes_;
  std::size_t max_nodes_;
  std::size_t& incumbent_updates_;
  const Selection* warm_start_ = nullptr;
  const Selection* peeled_ = nullptr;

  std::vector<std::size_t> local_index_;
  std::vector<std::vector<std::size_t>> candidate_order_;
  std::vector<double> min_power_;
  std::vector<double> suffix_min_;

  std::vector<std::vector<double>> path_loss_;
  std::vector<std::size_t> choice_;
  std::vector<char> assigned_;

  std::vector<std::size_t> best_choice_;
  double best_power_ = std::numeric_limits<double>::infinity();
  bool timed_out_ = false;

  // Undo records for try_assign/unassign.
  struct DeltaRec {
    std::size_t km;
    std::vector<double> add;
  };
  std::vector<std::vector<DeltaRec>> undo_stack_;
};

}  // namespace

SelectResult solve_selection_exact(std::span<const CandidateSet> sets,
                                   const model::TechParams& params,
                                   const SelectOptions& options) {
  util::Timer timer;
  // Run budget caps the stage budget (Deadline(0) stays unlimited when
  // neither is set).
  util::Deadline deadline = options.stop.stage_deadline(options.time_limit_s);
  SelectionEvaluator evaluator(sets, params,
                               /*interact_all=*/!options.reduce_variables);
  // can_conflict() and the DFS feasibility checks touch every candidate
  // pair of every interacting net pair; filling the cache in parallel up
  // front moves that cost off the sequential search path.
  evaluator.precompute_crossings(options.threads);

  SelectResult result;
  result.selection = evaluator.min_power_selection();
  // Peel(min-power) is a strong generic incumbent (GLOW-style worst-
  // offender demotion, but candidate-aware); components pick the best of
  // it, the user-provided warm start, and their own greedy seed.
  const Selection peeled = evaluator.peel(result.selection);
  const auto components = interaction_components(evaluator);
  result.num_components = components.size();
  bool all_proven = true;
  std::size_t nodes = 0;
  std::size_t incumbent_updates = 0;
  for (const auto& component : components) {
    result.largest_component =
        std::max(result.largest_component, component.size());
    if (component.size() == 1 &&
        evaluator.set(component[0]).options.size() == 1) {
      result.selection[component[0]] = 0;
      continue;
    }
    const Selection* warm =
        options.warm_start.size() == sets.size() ? &options.warm_start
                                                 : nullptr;
    ComponentSolver solver(evaluator, component, deadline, options.stop,
                           result.selection, nodes, options.max_nodes,
                           incumbent_updates, warm, &peeled);
    all_proven = solver.solve() && all_proven;
  }
  result.nodes_explored = nodes;
  result.incumbent_updates = incumbent_updates;
  obs::add_counter("codesign.exact.solves");
  obs::add_counter("codesign.exact.nodes_explored", result.nodes_explored);
  obs::add_counter("codesign.exact.incumbent_updates",
                   result.incumbent_updates);
  obs::add_counter("codesign.exact.components", result.num_components);
  obs::set_gauge("codesign.exact.largest_component",
                 static_cast<double>(result.largest_component));
  result.power_pj = evaluator.total_power(result.selection);
  result.violations = evaluator.violations(result.selection);
  result.proven_optimal = all_proven;
  result.node_limited =
      !all_proven && options.max_nodes != 0 && nodes > options.max_nodes;
  result.timed_out = !all_proven && (deadline.expired() ||
                                     options.stop.stopped() ||
                                     result.node_limited);
  result.runtime_s = timer.seconds();
  return result;
}

SelectionMip build_selection_mip(const SelectionEvaluator& evaluator) {
  SelectionMip mip;
  const double lm = evaluator.params().optical.max_loss_db;
  const double beta = evaluator.params().optical.beta_db_per_crossing;

  // One-hot selection binaries (3b) and the objective (3a).
  ilp::LinearExpr objective;
  mip.selection_vars.resize(evaluator.num_nets());
  for (std::size_t i = 0; i < evaluator.num_nets(); ++i) {
    const auto& options = evaluator.set(i).options;
    ilp::LinearExpr onehot;
    for (std::size_t c = 0; c < options.size(); ++c) {
      const auto var = mip.model.add_binary("a_" + std::to_string(i) + "_" +
                                            std::to_string(c));
      mip.selection_vars[i].push_back(var);
      onehot.push_back({var, 1.0});
      objective.push_back({var, options[c].power_pj});
    }
    mip.model.add_constraint(std::move(onehot), ilp::Relation::Equal, 1.0,
                             "onehot_" + std::to_string(i));
  }
  mip.model.set_objective(std::move(objective), ilp::Sense::Minimize);

  // Detection constraints (3c) with McCormick products for aij * amn.
  std::unordered_map<std::uint64_t, std::size_t> product_vars;
  const auto product = [&](std::size_t va, std::size_t vb) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(std::min(va, vb)) << 32) |
        static_cast<std::uint64_t>(std::max(va, vb));
    const auto it = product_vars.find(key);
    if (it != product_vars.end()) return it->second;
    const auto y = mip.model.add_continuous(0.0, 1.0);
    mip.model.add_constraint({{y, 1.0}, {va, -1.0}}, ilp::Relation::LessEq, 0.0);
    mip.model.add_constraint({{y, 1.0}, {vb, -1.0}}, ilp::Relation::LessEq, 0.0);
    mip.model.add_constraint({{y, 1.0}, {va, -1.0}, {vb, -1.0}},
                             ilp::Relation::GreaterEq, -1.0);
    product_vars.emplace(key, y);
    return y;
  };

  for (std::size_t i = 0; i < evaluator.num_nets(); ++i) {
    const auto& options = evaluator.set(i).options;
    for (std::size_t c = 0; c < options.size(); ++c) {
      const Candidate& cand = options[c];
      for (std::size_t p = 0; p < cand.paths.size(); ++p) {
        ilp::LinearExpr lhs;
        lhs.push_back({mip.selection_vars[i][c],
                       cand.paths[p].static_loss_db});
        for (std::size_t m : evaluator.interacting(i)) {
          for (std::size_t cm = 0; cm < evaluator.set(m).options.size(); ++cm) {
            const auto& counts = evaluator.crossings(i, c, m, cm);
            if (counts.empty() || counts[p] == 0) continue;
            const auto y =
                product(mip.selection_vars[i][c], mip.selection_vars[m][cm]);
            lhs.push_back({y, beta * counts[p]});
          }
        }
        mip.model.add_constraint(std::move(lhs), ilp::Relation::LessEq, lm);
      }
    }
  }
  return mip;
}

SelectResult solve_selection_mip(std::span<const CandidateSet> sets,
                                 const model::TechParams& params,
                                 const SelectOptions& options) {
  util::Timer timer;
  SelectionEvaluator evaluator(sets, params,
                               /*interact_all=*/!options.reduce_variables);
  evaluator.precompute_crossings(options.threads);
  SelectionMip mip = build_selection_mip(evaluator);

  ilp::MipOptions mip_options;
  mip_options.time_limit_s = options.time_limit_s;
  mip_options.max_nodes = options.max_nodes;
  mip_options.stop = options.stop;
  const ilp::MipResult solved = ilp::solve_mip(mip.model, mip_options);

  SelectResult result;
  result.runtime_s = timer.seconds();
  result.nodes_explored = solved.nodes_explored;
  result.incumbent_updates = solved.incumbent_updates;
  result.node_limited = solved.status == ilp::MipStatus::NodeLimit;
  result.timed_out = solved.status == ilp::MipStatus::TimeLimit ||
                     result.node_limited;
  result.proven_optimal = solved.status == ilp::MipStatus::Optimal;
  if (solved.has_incumbent) {
    result.selection.assign(evaluator.num_nets(), 0);
    for (std::size_t i = 0; i < evaluator.num_nets(); ++i) {
      for (std::size_t c = 0; c < mip.selection_vars[i].size(); ++c) {
        if (solved.values[mip.selection_vars[i][c]] > 0.5) {
          result.selection[i] = c;
        }
      }
    }
  } else {
    result.selection = evaluator.all_electrical();
  }
  result.power_pj = evaluator.total_power(result.selection);
  result.violations = evaluator.violations(result.selection);
  return result;
}

}  // namespace operon::codesign
