#pragma once
// Shared infrastructure for the solution-determination stage
// (Formulation 3): a selection assigns one candidate to every hyper net;
// the evaluator computes total power, exact pairwise crossing losses
// (the lx(i,j,m,n,p) terms), and detection violations. The §3.3 speed-up
// — dropping crossing terms for hyper-net pairs with disjoint bounding
// boxes — is realized by the interaction list, built from a sorted bbox
// sweep instead of the former O(n²) pair scan.
//
// Crossing storage is a flat directed-pair table: every interacting
// (i, m) pair owns one dense block of (ci, cm) combos with statically
// assigned offsets into a single counts pool, so a query is two array
// lookups and the hot path takes no lock, allocates nothing, and hashes
// nothing. Combos are still computed lazily (guarded by a per-combo
// std::once_flag), so sparse query streams pay only for what they touch
// while bulk solvers can precompute the whole table in parallel.
//
// Thread-safety contract: construction is single-threaded; afterwards
// every const query (crossings, path_loss_db, violations, total_power,
// peel, ...) may be called concurrently from any number of threads.
// Once a combo is computed its counts are immutable, and the pool never
// reallocates, so returned spans stay valid for the evaluator's
// lifetime. Cached values are pure functions of the candidate geometry,
// so results never depend on thread count or scheduling.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "codesign/candidate.hpp"
#include "model/params.hpp"

namespace operon::codesign {

/// Candidate choice per net (index into CandidateSet::options), aligned
/// with the CandidateSet span.
using Selection = std::vector<std::size_t>;

struct ViolationStats {
  std::size_t violated_paths = 0;
  double total_excess_db = 0.0;
  double worst_loss_db = 0.0;

  bool clean() const { return violated_paths == 0; }
};

class SelectionEvaluator {
 public:
  /// `interact_all`: when false (default), only bbox-overlapping net
  /// pairs contribute crossing terms (§3.3 variable reduction); when
  /// true, every pair is considered (ablation baseline).
  SelectionEvaluator(std::span<const CandidateSet> sets,
                     const model::TechParams& params,
                     bool interact_all = false);

  /// Feeds the ambient obs registry (if any) with the cache counters
  /// `codesign.crossing.cache_queries` / `cache_computed`. Both are
  /// defined over the *solver-facing* query stream only (crossings()
  /// calls past the cheap rejections; precompute_crossings() and the
  /// structural reads pair_can_conflict() are deliberately uncounted),
  /// so their totals — and the derived hit count, queries - computed —
  /// are bit-identical at any thread count.
  ~SelectionEvaluator();

  std::size_t num_nets() const { return sets_.size(); }
  const CandidateSet& set(std::size_t i) const { return sets_[i]; }
  const model::TechParams& params() const { return params_; }

  /// Nets whose candidates may cross net i's candidates (ascending).
  const std::vector<std::size_t>& interacting(std::size_t i) const {
    return interactions_[i];
  }
  std::size_t num_interacting_pairs() const;

  /// Sum of selected candidates' power (objective 3a).
  double total_power(const Selection& selection) const;

  /// Per-path crossing counts of candidate (i, ci) against candidate
  /// (m, cm): result[k] = proper crossings of path k's segments with the
  /// other candidate's optical segments. Lazily computed once per combo;
  /// safe to call from many threads concurrently. An EMPTY span means
  /// "all zeros" (the common case is returned without allocating).
  std::span<const int> crossings(std::size_t i, std::size_t ci, std::size_t m,
                                 std::size_t cm) const;

  /// crossings(i, ci, interacting(i)[k], cm) without the slot lookup:
  /// callers that already iterate the interaction list pass the list
  /// index `k` and the directed slot is slot_start_[i] + k. Identical
  /// results and counter semantics to crossings().
  std::span<const int> crossings_at(std::size_t i, std::size_t ci,
                                    std::size_t k, std::size_t cm) const;

  /// The reverse direction of the same pair, also k-indexed:
  /// crossings(interacting(i)[k], cm, i, ci) via the precomputed reverse
  /// slot (the solvers' "impact on the neighbor's paths" query).
  std::span<const int> crossings_at_rev(std::size_t i, std::size_t k,
                                        std::size_t cm, std::size_t ci) const;

  /// Bulk-fill the crossing tables for every candidate pair of every
  /// interacting net pair (both directions) using `threads` workers
  /// (0 = hardware concurrency). Solvers call this once up front so the
  /// pairwise lx work — the selection stage's dominant cost — runs in
  /// parallel instead of faulting in lazily on the solve path. A no-op
  /// at one thread (the lazy path computes the same values on demand).
  void precompute_crossings(std::size_t threads) const;

  /// True when some candidate pair of nets i and m can actually cross in
  /// either direction (the exact solver's conflict-graph edge test).
  /// Structural — uncounted by the cache counters.
  bool pair_can_conflict(std::size_t i, std::size_t m) const;

  /// Loss of path `p` of candidate (i, ci) under a full selection: static
  /// loss plus beta * crossings against every selected interacting net.
  double path_loss_db(const Selection& selection, std::size_t i,
                      std::size_t ci, std::size_t p) const;

  /// Losses of ALL paths of candidate (i, ci) at once, written into
  /// `out` (resized to the path count). One crossing query per
  /// interacting net instead of one per (path, net); bit-identical to
  /// calling path_loss_db per path (same per-path FP addition order).
  void path_losses_db(const Selection& selection, std::size_t i,
                      std::size_t ci, std::vector<double>& out) const;

  /// Detection-constraint violations (Eq. 3c) of a full selection.
  ViolationStats violations(const Selection& selection) const;

  /// All-electrical selection: trivially feasible (no optical paths).
  Selection all_electrical() const;

  /// Per-net independent optimum (ignores crossing interactions).
  Selection min_power_selection() const;

  /// Sum over nets of their cheapest candidate (a lower bound on 3a).
  double power_lower_bound() const;

  /// Greedy feasibility repair: starting from `selection`, repeatedly
  /// demote the owner of the worst violated path to its next-cheapest
  /// candidate whose own paths are detectable under the current picks
  /// (the electrical fallback as last resort). Per-net power is monotone
  /// non-decreasing, so this terminates; the result is always clean.
  Selection peel(Selection selection) const;

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// Directed slot id of pair (i -> m), or kNoSlot when m is not in
  /// interactions_[i]. O(1) via a dense matrix for small net counts,
  /// binary search over the (sorted) interaction list otherwise.
  std::uint32_t slot_of(std::size_t i, std::size_t m) const;

  std::span<const int> crossings_impl(std::size_t i, std::size_t ci,
                                      std::size_t m, std::size_t cm,
                                      bool count) const;

  /// Table lookup + lazy compute for a query whose directed slot is
  /// already known (the tail of crossings_impl past the rejections).
  std::span<const int> crossings_slot(std::uint32_t slot, std::size_t i,
                                      std::size_t ci, std::size_t m,
                                      std::size_t cm, std::uint32_t num_paths,
                                      bool count) const;

  /// Non-interacting pairs are answerable too (API compatibility for
  /// hand-built sets whose bbox does not cover the optical geometry);
  /// they fall back to a mutex-guarded map — never hit by the solvers,
  /// whose query streams stay inside the interaction lists.
  std::span<const int> fallback_crossings(std::size_t i, std::size_t ci,
                                          std::size_t m, std::size_t cm,
                                          bool count) const;

  /// Slow path of crossings_impl: computes one combo's counts under a
  /// striped mutex and publishes them via state_. Returns the new state.
  std::uint8_t compute_combo(std::size_t i, std::size_t ci, std::size_t m,
                             std::size_t cm, std::size_t combo) const;

  std::span<const CandidateSet> sets_;
  const model::TechParams& params_;
  std::vector<std::vector<std::size_t>> interactions_;
  /// Bounding box of each candidate's optical segments (quick rejection).
  std::vector<std::vector<geom::BBox>> optical_bbox_;

  /// Flat directed-pair layout. Slot of (i -> interactions_[i][k]) is
  /// slot_start_[i] + k; combo of (ci, cm) within slot s is
  /// combo_base_[s] + ci * |options(m)| + cm; its counts live at
  /// counts_pool_[counts_begin_[combo] ...] with |paths(i, ci)| entries.
  std::vector<std::uint32_t> slot_start_;
  std::vector<std::uint32_t> combo_base_;
  std::vector<std::uint32_t> counts_begin_;
  /// rev_slot_[s] is the slot of (m -> i) when s is the slot of
  /// (i -> m) — interaction is symmetric, so it always exists. Lets the
  /// k-indexed reverse query skip the slot lookup too.
  std::vector<std::uint32_t> rev_slot_;
  /// Dense (i, m) -> slot matrix, built only for small net counts.
  std::vector<std::uint32_t> slot_dense_;
  /// Hot-path mirrors of the candidate metadata (the Candidate structs
  /// themselves are large and cache-hostile): active_paths_[i][ci] is
  /// the path count, or 0 when the candidate is rejected outright (no
  /// paths or no optical geometry); num_options_[m] mirrors
  /// sets_[m].options.size() for the combo arithmetic.
  std::vector<std::vector<std::uint32_t>> active_paths_;
  std::vector<std::uint32_t> num_options_;
  mutable std::vector<int> counts_pool_;
  /// Per-combo compute state: 0 = unknown, 1 = all-zero, 2 = nonzero.
  /// The fast path is one acquire load; misses serialize on a striped
  /// mutex in compute_combo(), whose release store publishes the pool
  /// writes. (A plain std::once_flag per combo measured ~14% of the
  /// selection stage in pthread_once alone.)
  mutable std::unique_ptr<std::atomic<std::uint8_t>[]> state_;
  /// First-touch bitmap of *counted* queries per combo: keeps
  /// cache_computed_ equal to "distinct pairs the query stream needed",
  /// independent of whether precompute_crossings() filled the value
  /// first — and therefore identical at any thread count.
  std::unique_ptr<std::atomic<std::uint64_t>[]> counted_bits_;

  static constexpr std::size_t kComputeStripes = 64;
  mutable std::unique_ptr<std::mutex[]> compute_mutex_;

  struct FallbackEntry {
    std::vector<int> counts;
    bool counted = false;
  };
  mutable std::mutex fallback_mutex_;
  mutable std::unordered_map<std::uint64_t, FallbackEntry> fallback_;

  /// Crossing-cache observability (see ~SelectionEvaluator). Relaxed
  /// atomics: only the final totals matter, and they are exact because
  /// every increment is a distinct event.
  mutable std::atomic<std::size_t> cache_queries_{0};
  mutable std::atomic<std::size_t> cache_computed_{0};
};

}  // namespace operon::codesign
