#pragma once
// Shared infrastructure for the solution-determination stage
// (Formulation 3): a selection assigns one candidate to every hyper net;
// the evaluator computes total power, exact pairwise crossing losses
// (the lx(i,j,m,n,p) terms, lazily cached), and detection violations.
// The §3.3 speed-up — dropping crossing terms for hyper-net pairs with
// disjoint bounding boxes — is realized by the interaction list.
//
// Thread-safety contract: construction is single-threaded; afterwards
// every const query (crossings, path_loss_db, violations, total_power,
// peel, ...) may be called concurrently from any number of threads. The
// lazy crossing cache is sharded behind striped mutexes; cached vectors
// are immutable once inserted and unordered_map references are stable
// under insertion, so returned references stay valid for the evaluator's
// lifetime. Cached values are pure functions of the candidate geometry,
// so results never depend on thread count or scheduling.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "codesign/candidate.hpp"
#include "model/params.hpp"

namespace operon::codesign {

/// Candidate choice per net (index into CandidateSet::options), aligned
/// with the CandidateSet span.
using Selection = std::vector<std::size_t>;

struct ViolationStats {
  std::size_t violated_paths = 0;
  double total_excess_db = 0.0;
  double worst_loss_db = 0.0;

  bool clean() const { return violated_paths == 0; }
};

class SelectionEvaluator {
 public:
  /// `interact_all`: when false (default), only bbox-overlapping net
  /// pairs contribute crossing terms (§3.3 variable reduction); when
  /// true, every pair is considered (ablation baseline).
  SelectionEvaluator(std::span<const CandidateSet> sets,
                     const model::TechParams& params,
                     bool interact_all = false);

  /// Feeds the ambient obs registry (if any) with the cache counters
  /// `codesign.crossing.cache_queries` / `cache_computed`. Both are
  /// defined over the *solver-facing* query stream only (crossings()
  /// calls past the cheap rejections; precompute_crossings() is
  /// deliberately uncounted), so their totals — and the derived hit
  /// count, queries - computed — are bit-identical at any thread count.
  ~SelectionEvaluator();

  std::size_t num_nets() const { return sets_.size(); }
  const CandidateSet& set(std::size_t i) const { return sets_[i]; }
  const model::TechParams& params() const { return params_; }

  /// Nets whose candidates may cross net i's candidates.
  const std::vector<std::size_t>& interacting(std::size_t i) const {
    return interactions_[i];
  }
  std::size_t num_interacting_pairs() const;

  /// Sum of selected candidates' power (objective 3a).
  double total_power(const Selection& selection) const;

  /// Per-path crossing counts of candidate (i, ci) against candidate
  /// (m, cm): result[k] = proper crossings of path k's segments with the
  /// other candidate's optical segments. Cached; safe to call from many
  /// threads concurrently. An EMPTY vector means "all zeros" (the common
  /// case is returned without allocating).
  const std::vector<int>& crossings(std::size_t i, std::size_t ci,
                                    std::size_t m, std::size_t cm) const;

  /// Bulk-fill the crossing cache for every candidate pair of every
  /// interacting net pair (both directions) using `threads` workers
  /// (0 = hardware concurrency). Solvers call this once up front so the
  /// pairwise lx work — the selection stage's dominant cost — runs in
  /// parallel instead of faulting in lazily on the solve path. A no-op
  /// at one thread (the lazy path computes the same values on demand).
  void precompute_crossings(std::size_t threads) const;

  /// Loss of path `p` of candidate (i, ci) under a full selection: static
  /// loss plus beta * crossings against every selected interacting net.
  double path_loss_db(const Selection& selection, std::size_t i,
                      std::size_t ci, std::size_t p) const;

  /// Detection-constraint violations (Eq. 3c) of a full selection.
  ViolationStats violations(const Selection& selection) const;

  /// All-electrical selection: trivially feasible (no optical paths).
  Selection all_electrical() const;

  /// Per-net independent optimum (ignores crossing interactions).
  Selection min_power_selection() const;

  /// Sum over nets of their cheapest candidate (a lower bound on 3a).
  double power_lower_bound() const;

  /// Greedy feasibility repair: starting from `selection`, repeatedly
  /// demote the owner of the worst violated path to its next-cheapest
  /// candidate whose own paths are detectable under the current picks
  /// (the electrical fallback as last resort). Per-net power is monotone
  /// non-decreasing, so this terminates; the result is always clean.
  Selection peel(Selection selection) const;

 private:
  std::span<const CandidateSet> sets_;
  const model::TechParams& params_;
  std::vector<std::vector<std::size_t>> interactions_;
  /// Bounding box of each candidate's optical segments (quick rejection).
  std::vector<std::vector<geom::BBox>> optical_bbox_;
  /// Striped-mutex crossing cache: the shard is picked by key, lookups
  /// and insertions lock only that shard, and the geometry work itself
  /// runs outside any lock (a racing duplicate computation is discarded
  /// by emplace, so values are unique and deterministic).
  struct CacheEntry {
    std::vector<int> counts;
    /// Set the first time a *counted* (solver-facing) query reads this
    /// entry; keeps cache_computed_ equal to "distinct pairs the query
    /// stream needed", independent of whether precompute_crossings()
    /// filled the value first.
    bool counted = false;
  };
  struct CacheShard {
    std::mutex mutex;
    std::unordered_map<std::uint64_t, CacheEntry> map;
  };
  static constexpr std::size_t kCacheShards = 64;

  const std::vector<int>& crossings_impl(std::size_t i, std::size_t ci,
                                         std::size_t m, std::size_t cm,
                                         bool count) const;

  mutable std::unique_ptr<CacheShard[]> cache_shards_;
  /// Crossing-cache observability (see ~SelectionEvaluator). Relaxed
  /// atomics: only the final totals matter, and they are exact because
  /// every increment is a distinct event.
  mutable std::atomic<std::size_t> cache_queries_{0};
  mutable std::atomic<std::size_t> cache_computed_{0};
};

}  // namespace operon::codesign
