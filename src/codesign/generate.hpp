#pragma once
// Candidate generation driver (the "Signal Route Determination" box of
// Fig 2 up to its formulation step): per hyper net, build Euclidean BI1S
// baseline topologies, estimate crossings against the other nets'
// primary baselines, run the co-design DP on every baseline, and append
// the rectilinear-Steiner pure-electrical alternative a_ie.

#include <span>
#include <vector>

#include "codesign/candidate.hpp"
#include "codesign/dp.hpp"
#include "model/design.hpp"
#include "model/hyper.hpp"
#include "model/params.hpp"
#include "util/stop.hpp"

namespace operon::codesign {

struct GenerationOptions {
  std::size_t max_baselines = 3;
  DpOptions dp;
  /// Grid resolution of the crossing estimator.
  std::size_t grid_cells = 64;
  /// Estimate crossing losses against other nets' baselines during
  /// generation (§3.2); ablation switch.
  bool estimate_crossings = true;
  /// Keep at most this many co-design candidates per net (0 = all).
  std::size_t max_candidates_per_net = 12;
  /// Add perpendicular-bend detour baselines for two-pin nets (§2.3's
  /// any-direction routing; lets the selection dodge crossing hotspots).
  bool detour_baselines = true;
  /// Worker threads for the per-net baseline and DP phases (1 = serial,
  /// 0 = hardware concurrency). Results are bit-identical at any value:
  /// each net's candidate set is computed independently and written by
  /// index (see util/thread_pool.hpp for the determinism contract).
  std::size_t threads = 1;
  /// Run-wide budget: polled between fixed-size net batches (the batch
  /// size is independent of `threads`, so the checkpoint count — and
  /// hence the trip point — is identical at any thread count). Nets not
  /// generated before a trip get an electrical-only candidate set (the
  /// guaranteed-feasible a_ie), so the pipeline still routes everything.
  util::StopToken stop;
};

/// Candidate sets for every hyper net, in the same order as `nets`.
/// Every set contains >= 1 co-design or electrical option and always the
/// pure-electrical fallback (options.back(), electrical_index).
std::vector<CandidateSet> generate_candidates(
    const model::Design& design, std::span<const model::HyperNet> nets,
    const model::TechParams& params, const GenerationOptions& options = {});

}  // namespace operon::codesign
