#include "obs/obs.hpp"

#include <atomic>
#include <mutex>

namespace operon::obs {

namespace {
std::atomic<Observation*> g_current{nullptr};
/// Serializes install/uninstall against with_current_observation so an
/// out-of-run sampler never dereferences an observation that its owner
/// is about to destroy. Taken only at run boundaries and per heartbeat
/// sample — never on the metric/span hot path.
std::mutex g_install_mutex;
}  // namespace

Observation* current() { return g_current.load(std::memory_order_acquire); }

void with_current_observation(const std::function<void(Observation*)>& fn) {
  const std::lock_guard<std::mutex> lock(g_install_mutex);
  fn(current());
}

MetricsRegistry* current_metrics() {
  Observation* observation = current();
  return observation == nullptr ? nullptr : &observation->metrics;
}

TraceRecorder* current_trace() {
  Observation* observation = current();
  return observation == nullptr ? nullptr : &observation->trace;
}

ScopedObservation::ScopedObservation(Observation& observation) {
  const std::lock_guard<std::mutex> lock(g_install_mutex);
  previous_ = g_current.exchange(&observation, std::memory_order_acq_rel);
}

ScopedObservation::~ScopedObservation() {
  const std::lock_guard<std::mutex> lock(g_install_mutex);
  g_current.store(previous_, std::memory_order_release);
}

void add_counter(std::string_view name, std::uint64_t delta) {
  if (MetricsRegistry* metrics = current_metrics()) {
    metrics->add_counter(name, delta);
  }
}

void set_gauge(std::string_view name, double value, bool timing) {
  if (MetricsRegistry* metrics = current_metrics()) {
    metrics->set_gauge(name, value, timing);
  }
}

void observe(std::string_view name, double value) {
  if (MetricsRegistry* metrics = current_metrics()) {
    metrics->observe(name, value);
  }
}

Span::Span(const char* name, const char* category)
    : recorder_(current_trace()), name_(name), category_(category) {
  if (recorder_ != nullptr) start_us_ = trace_now_us();
}

Span::~Span() {
  if (recorder_ == nullptr) return;
  recorder_->record(name_, category_, start_us_, trace_now_us() - start_us_);
}

}  // namespace operon::obs
