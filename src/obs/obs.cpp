#include "obs/obs.hpp"

#include <atomic>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

namespace operon::obs {

namespace {
std::atomic<Observation*> g_current{nullptr};
/// Per-thread override (ScopedThreadObservation). Plain pointer: only
/// the owning thread ever reads or writes its own slot.
thread_local Observation* t_current = nullptr;
/// Serializes install/uninstall against with_current_observation so an
/// out-of-run sampler never dereferences an observation that its owner
/// is about to destroy. Taken only at run boundaries and per heartbeat
/// sample — never on the metric/span hot path.
std::mutex g_install_mutex;

/// Open-span registry: which spans are live on which thread right now,
/// read by the watchdog's stall report from a foreign thread. Spans
/// bracket stages and solver iterations, not per-element work, so one
/// uncontended mutex per open/close is cheap relative to what a span
/// covers. Both the mutex and the map are leaked singletons so spans
/// closing during process teardown never touch destroyed statics.
std::mutex& span_mutex() {
  static std::mutex* mutex = new std::mutex();
  return *mutex;
}

std::map<std::thread::id, std::vector<const char*>>& open_spans() {
  static auto* spans = new std::map<std::thread::id, std::vector<const char*>>();
  return *spans;
}

void push_open_span(const char* name) {
  const std::lock_guard<std::mutex> lock(span_mutex());
  open_spans()[std::this_thread::get_id()].push_back(name);
}

void pop_open_span() {
  const std::lock_guard<std::mutex> lock(span_mutex());
  auto& spans = open_spans();
  const auto it = spans.find(std::this_thread::get_id());
  if (it == spans.end() || it->second.empty()) return;
  it->second.pop_back();
  if (it->second.empty()) spans.erase(it);
}
}  // namespace

std::string describe_open_spans() {
  const std::lock_guard<std::mutex> lock(span_mutex());
  std::ostringstream os;
  for (const auto& [id, stack] : open_spans()) {
    os << "thread " << id << ": ";
    for (std::size_t i = 0; i < stack.size(); ++i) {
      if (i != 0) os << " > ";
      os << stack[i];
    }
    os << "\n";
  }
  if (open_spans().empty()) os << "(no open spans)\n";
  return os.str();
}

Observation* current() {
  if (Observation* local = t_current) return local;
  return g_current.load(std::memory_order_acquire);
}

void with_current_observation(const std::function<void(Observation*)>& fn) {
  const std::lock_guard<std::mutex> lock(g_install_mutex);
  // Observer threads have no thread-local override, so this resolves to
  // the process-wide slot — the only one whose uninstall the guard must
  // serialize against (thread overrides die with their owning scope, on
  // the thread that is inside fn's caller anyway).
  fn(current());
}

MetricsRegistry* current_metrics() {
  Observation* observation = current();
  return observation == nullptr ? nullptr : &observation->metrics;
}

TraceRecorder* current_trace() {
  Observation* observation = current();
  return observation == nullptr ? nullptr : &observation->trace;
}

ScopedObservation::ScopedObservation(Observation& observation) {
  const std::lock_guard<std::mutex> lock(g_install_mutex);
  previous_ = g_current.exchange(&observation, std::memory_order_acq_rel);
}

ScopedObservation::~ScopedObservation() {
  const std::lock_guard<std::mutex> lock(g_install_mutex);
  g_current.store(previous_, std::memory_order_release);
}

ScopedThreadObservation::ScopedThreadObservation(Observation& observation)
    : previous_(t_current) {
  t_current = &observation;
}

ScopedThreadObservation::~ScopedThreadObservation() { t_current = previous_; }

void add_counter(std::string_view name, std::uint64_t delta) {
  if (MetricsRegistry* metrics = current_metrics()) {
    metrics->add_counter(name, delta);
  }
}

void set_gauge(std::string_view name, double value, bool timing) {
  if (MetricsRegistry* metrics = current_metrics()) {
    metrics->set_gauge(name, value, timing);
  }
}

void observe(std::string_view name, double value) {
  if (MetricsRegistry* metrics = current_metrics()) {
    metrics->observe(name, value);
  }
}

Span::Span(const char* name, const char* category)
    : recorder_(current_trace()), name_(name), category_(category) {
  if (recorder_ == nullptr) return;
  start_us_ = trace_now_us();
  push_open_span(name_);
}

Span::~Span() {
  if (recorder_ == nullptr) return;
  pop_open_span();
  recorder_->record(name_, category_, start_us_, trace_now_us() - start_us_);
}

}  // namespace operon::obs
