#include "obs/events.hpp"

#include <atomic>
#include <cmath>
#include <sstream>
#include <utility>

#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace operon::obs {

namespace {
std::atomic<EventLog*> g_current{nullptr};
/// Per-thread override (ScopedThreadEventLog). Plain pointer: only the
/// owning thread ever reads or writes its own slot.
thread_local EventLog* t_current = nullptr;
/// Serializes install/uninstall against with_current_event_log so an
/// out-of-scope observer (the watchdog) never dereferences a log that
/// its owner is about to destroy — same contract as obs.cpp's
/// g_install_mutex.
std::mutex g_install_mutex;

/// Innermost ScopedEventContext on this thread (nullptr when none).
thread_local const EventContext* t_context = nullptr;

/// util::set_log_sink bridge: every OPERON_LOG line that passes the
/// threshold becomes a "log.<level>" event on the ambient log, carrying
/// the emitting thread's ambient context. The body excludes the
/// file:line prefix so the event stream stays stable across source
/// reshuffles. Never removed once installed — it no-ops without a log.
void log_bridge(util::LogLevel level, const char* /*file*/, int /*line*/,
                const std::string& body) {
  EventLog* log = current_event_log();
  if (log == nullptr) return;
  std::string name = "log.";
  name += level_slug(level);
  const EventContext* context = t_context;
  log->emit(level, name, body, context ? *context : EventContext{});
}

void install_log_bridge_once() {
  static std::once_flag once;
  std::call_once(once, [] { util::set_log_sink(&log_bridge); });
}

/// Strict non-negative integer (<= 2^53 so binary64 holds it exactly).
std::uint64_t as_uint(const util::JsonValue& value, const char* where) {
  OPERON_CHECK_MSG(value.is(util::JsonType::Number),
                   std::string("event member '") + where + "' must be a number");
  const double number = value.as_number();
  OPERON_CHECK_MSG(number >= 0.0 && number <= 9007199254740992.0 &&
                       number == std::floor(number),
                   std::string("event member '") + where +
                       "' must be a non-negative integer");
  return static_cast<std::uint64_t>(number);
}

/// Event object body shared by to_json_line and to_json_array.
void write_event(util::JsonWriter& json, const Event& event) {
  json.begin_object();
  json.key("seq").value(event.seq);
  json.key("ts_us").value_exact(event.ts_us);
  json.key("level").value(level_slug(event.level));
  json.key("name").value(event.name);
  if (!event.message.empty()) json.key("message").value(event.message);
  if (!event.context.source.empty()) {
    json.key("source").value(event.context.source);
  }
  if (event.context.job != 0) json.key("job").value(event.context.job);
  if (!event.context.case_id.empty()) {
    json.key("case").value(event.context.case_id);
  }
  if (event.context.seed != 0) json.key("seed").value(event.context.seed);
  if (!event.context.tenant.empty()) {
    json.key("tenant").value(event.context.tenant);
  }
  json.end_object();
}
}  // namespace

std::string_view level_slug(util::LogLevel level) {
  switch (level) {
    case util::LogLevel::Debug: return "debug";
    case util::LogLevel::Info: return "info";
    case util::LogLevel::Warn: return "warn";
    case util::LogLevel::Error: return "error";
    case util::LogLevel::Off: break;  // never emitted
  }
  return "off";
}

std::string to_json_line(const Event& event) {
  util::JsonWriter json;
  write_event(json, event);
  return json.str();
}

Event event_from_json(const util::JsonValue& value) {
  OPERON_CHECK_MSG(value.is(util::JsonType::Object),
                   "event must be a JSON object");
  Event event;
  bool saw_seq = false;
  bool saw_level = false;
  bool saw_name = false;
  for (const auto& [key, member] : value.members()) {
    if (key == "seq") {
      event.seq = as_uint(member, "seq");
      saw_seq = true;
    } else if (key == "ts_us") {
      OPERON_CHECK_MSG(member.is(util::JsonType::Number),
                       "event member 'ts_us' must be a number");
      event.ts_us = member.as_number();
    } else if (key == "level") {
      const auto level = util::parse_log_level(member.as_string());
      OPERON_CHECK_MSG(level.has_value(),
                       "unknown event level '" + member.as_string() + "'");
      event.level = *level;
      saw_level = true;
    } else if (key == "name") {
      event.name = member.as_string();
      saw_name = true;
    } else if (key == "message") {
      event.message = member.as_string();
    } else if (key == "source") {
      event.context.source = member.as_string();
    } else if (key == "job") {
      event.context.job = as_uint(member, "job");
    } else if (key == "case") {
      event.context.case_id = member.as_string();
    } else if (key == "seed") {
      event.context.seed = as_uint(member, "seed");
    } else if (key == "tenant") {
      event.context.tenant = member.as_string();
    } else {
      OPERON_CHECK_MSG(false, "unknown event member '" + key + "'");
    }
  }
  OPERON_CHECK_MSG(saw_seq && saw_level && saw_name,
                   "event requires 'seq', 'level', and 'name' members");
  return event;
}

std::string to_json_array(std::span<const Event> events) {
  util::JsonWriter json;
  json.begin_array();
  for (const Event& event : events) write_event(json, event);
  json.end_array();
  return json.str();
}

std::string semantic_line(const Event& event) {
  std::ostringstream os;
  os << "source=" << event.context.source << " seq=" << event.seq
     << " level=" << level_slug(event.level) << " name=" << event.name
     << " case=" << event.context.case_id << " seed=" << event.context.seed
     << " tenant=" << event.context.tenant << " message=" << event.message;
  return os.str();
}

std::string render_event(const Event& event) {
  std::ostringstream os;
  os << '#' << event.seq << ' ' << level_slug(event.level) << ' '
     << event.name;
  if (!event.context.source.empty()) os << " [" << event.context.source << ']';
  if (!event.context.case_id.empty()) os << " case=" << event.context.case_id;
  if (event.context.seed != 0) os << " seed=" << event.context.seed;
  if (!event.context.tenant.empty()) os << " tenant=" << event.context.tenant;
  if (!event.message.empty()) os << ": " << event.message;
  return os.str();
}

EventLog::EventLog(std::size_t capacity) : capacity_(capacity) {}

void EventLog::emit(util::LogLevel level, std::string_view name,
                    std::string_view message, const EventContext& context) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Event event;
  event.seq = ++next_seq_[context.source];
  event.ts_us = trace_now_us();
  event.level = level;
  event.name = std::string(name);
  event.message = std::string(message);
  event.context = context;
  ++total_;
  if (sink_) sink_(event);
  events_.push_back(std::move(event));
  if (capacity_ != 0 && events_.size() > capacity_) events_.pop_front();
}

void EventLog::set_sink(std::function<void(const Event&)> sink) {
  const std::lock_guard<std::mutex> lock(mutex_);
  sink_ = std::move(sink);
}

std::vector<Event> EventLog::events(std::size_t tail) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t begin = 0;
  if (tail != 0 && tail < events_.size()) begin = events_.size() - tail;
  return std::vector<Event>(events_.begin() + static_cast<std::ptrdiff_t>(begin),
                            events_.end());
}

std::size_t EventLog::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::uint64_t EventLog::total() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::string EventLog::to_jsonl() const {
  std::string out;
  for (const Event& event : events()) {
    out += to_json_line(event);
    out += '\n';
  }
  return out;
}

std::string EventLog::dump(std::size_t tail) const {
  std::string out;
  for (const Event& event : events(tail)) {
    out += render_event(event);
    out += '\n';
  }
  if (out.empty()) out = "(no events)\n";
  return out;
}

void EventLog::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  next_seq_.clear();
  total_ = 0;
}

std::string flight_recorder_dump(const EventLog& log, std::size_t tail) {
  std::ostringstream os;
  os << "recent events:\n" << log.dump(tail);
  os << "open spans:\n" << describe_open_spans();
  return os.str();
}

EventLog* current_event_log() {
  if (EventLog* local = t_current) return local;
  return g_current.load(std::memory_order_acquire);
}

void with_current_event_log(const std::function<void(EventLog*)>& fn) {
  const std::lock_guard<std::mutex> lock(g_install_mutex);
  fn(current_event_log());
}

ScopedEventLog::ScopedEventLog(EventLog& log) {
  install_log_bridge_once();
  const std::lock_guard<std::mutex> lock(g_install_mutex);
  previous_ = g_current.exchange(&log, std::memory_order_acq_rel);
}

ScopedEventLog::~ScopedEventLog() {
  const std::lock_guard<std::mutex> lock(g_install_mutex);
  g_current.store(previous_, std::memory_order_release);
}

ScopedThreadEventLog::ScopedThreadEventLog(EventLog& log)
    : previous_(t_current) {
  install_log_bridge_once();
  t_current = &log;
}

ScopedThreadEventLog::~ScopedThreadEventLog() { t_current = previous_; }

ScopedEventContext::ScopedEventContext(EventContext context)
    : context_(std::move(context)), previous_(t_context) {
  t_context = &context_;
}

ScopedEventContext::~ScopedEventContext() { t_context = previous_; }

const EventContext* current_event_context() { return t_context; }

void emit_event(util::LogLevel level, std::string_view name,
                std::string_view message) {
  EventLog* log = current_event_log();
  if (log == nullptr) return;
  const EventContext* context = t_context;
  log->emit(level, name, message, context ? *context : EventContext{});
}

}  // namespace operon::obs
