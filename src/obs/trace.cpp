#include "obs/trace.hpp"

#include <chrono>

#include "util/json.hpp"

namespace operon::obs {

double trace_now_us() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point origin = Clock::now();
  return std::chrono::duration<double, std::micro>(Clock::now() - origin)
      .count();
}

void TraceRecorder::record(std::string_view name, std::string_view category,
                           double ts_us, double dur_us) {
  const std::thread::id self = std::this_thread::get_id();
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [slot, inserted] = thread_slots_.try_emplace(
      self, static_cast<std::uint32_t>(thread_slots_.size()));
  events_.push_back(TraceEvent{std::string(name), std::string(category), 'X',
                               ts_us, dur_us, slot->second, {}});
}

void TraceRecorder::record_counter(
    std::string_view name, std::string_view category, double ts_us,
    std::vector<std::pair<std::string, double>> values) {
  const std::thread::id self = std::this_thread::get_id();
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [slot, inserted] = thread_slots_.try_emplace(
      self, static_cast<std::uint32_t>(thread_slots_.size()));
  events_.push_back(TraceEvent{std::string(name), std::string(category), 'C',
                               ts_us, 0.0, slot->second, std::move(values)});
}

void TraceRecorder::absorb(const TraceRecorder& other) {
  std::vector<TraceEvent> theirs;
  {
    const std::lock_guard<std::mutex> lock(other.mutex_);
    theirs = other.events_;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  // Thread slots are per-recorder; both number from 0 with the recording
  // (usually main) thread first, so slots transfer unchanged.
  events_.insert(events_.end(), theirs.begin(), theirs.end());
}

std::size_t TraceRecorder::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> TraceRecorder::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::string TraceRecorder::to_chrome_json(
    const std::vector<std::pair<std::string, std::string>>& metadata) const {
  const std::vector<TraceEvent> copy = events();
  util::JsonWriter json;
  json.begin_object();
  json.key("traceEvents").begin_array();
  for (const TraceEvent& event : copy) {
    json.begin_object();
    json.key("name").value(event.name);
    json.key("cat").value(event.category);
    json.key("ph").value(std::string_view(&event.phase, 1));
    json.key("ts").value(event.ts_us);
    if (event.phase == 'X') json.key("dur").value(event.dur_us);
    json.key("pid").value(1);
    json.key("tid").value(static_cast<std::uint64_t>(event.tid));
    if (!event.args.empty()) {
      json.key("args").begin_object();
      for (const auto& [key, value] : event.args) json.key(key).value(value);
      json.end_object();
    }
    json.end_object();
  }
  json.end_array();
  json.key("displayTimeUnit").value("ms");
  if (!metadata.empty()) {
    json.key("metadata").begin_object();
    for (const auto& [key, value] : metadata) json.key(key).value(value);
    json.end_object();
  }
  json.end_object();
  return json.str();
}

void TraceRecorder::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  thread_slots_.clear();
}

}  // namespace operon::obs
