#include "obs/sink.hpp"

#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>

#include "util/cli.hpp"

namespace operon::obs {

namespace {

void write_file(const std::string& path, const std::string& text,
                const char* what) {
  std::ofstream os(path);
  if (os.good()) os << text << "\n";
  if (!os.good()) {
    std::fprintf(stderr, "warning: failed to write %s to '%s'\n", what,
                 path.c_str());
  }
}

}  // namespace

CliObservation::CliObservation(const util::Cli& cli)
    : trace_path_(cli.get("trace-out", "")),
      metrics_path_(cli.get("metrics-out", "")),
      ledger_path_(cli.get("ledger-out", "")) {
  if (!trace_path_.empty() || !metrics_path_.empty()) {
    scope_.emplace(observation_);
  }
  if (!ledger_path_.empty()) {
    ledger_scope_.emplace(ledger_);
  }
  const int heartbeat_ms = cli.get_int("heartbeat-ms", 0);
  if (heartbeat_ms > 0 && scope_.has_value()) {
    heartbeat_.emplace(std::chrono::milliseconds(heartbeat_ms));
  }
}

CliObservation::~CliObservation() {
  heartbeat_.reset();  // join the sampler before tearing anything down
  if (scope_.has_value()) {
    // Session-level resource/pool gauges so the metrics file records the
    // whole process, not just the last run's snapshot.
    publish_resource_gauges();
  }
  scope_.reset();  // uninstall before serializing
  ledger_scope_.reset();
  if (!trace_path_.empty()) {
    write_file(trace_path_, observation_.trace.to_chrome_json(), "trace");
  }
  if (!metrics_path_.empty()) {
    write_file(metrics_path_, observation_.metrics.to_json(), "metrics");
  }
  if (!ledger_path_.empty()) {
    try {
      for (const LedgerRecord& record : ledger_.records()) {
        append_ledger_record(ledger_path_, record);
      }
    } catch (const std::exception& error) {
      std::fprintf(stderr, "warning: failed to write ledger to '%s': %s\n",
                   ledger_path_.c_str(), error.what());
    }
  }
}

}  // namespace operon::obs
