#include "obs/sink.hpp"

#include <chrono>
#include <exception>
#include <fstream>

#include "util/cli.hpp"
#include "util/logging.hpp"

namespace operon::obs {

namespace {

void write_file(const std::string& path, const std::string& text,
                const char* what) {
  std::ofstream os(path);
  if (os.good()) os << text << "\n";
  if (!os.good()) {
    OPERON_LOG(Warn) << "failed to write " << what << " to '" << path << "'";
  }
}

}  // namespace

CliObservation::CliObservation(const util::Cli& cli)
    : trace_path_(cli.get("trace-out", "")),
      metrics_path_(cli.get("metrics-out", "")),
      metrics_prom_path_(cli.get("metrics-prom-out", "")),
      events_path_(cli.get("events-out", "")),
      ledger_path_(cli.get("ledger-out", "")) {
  if (!trace_path_.empty() || !metrics_path_.empty() ||
      !metrics_prom_path_.empty()) {
    scope_.emplace(observation_);
  }
  if (!ledger_path_.empty()) {
    ledger_scope_.emplace(ledger_);
  }
  if (!events_path_.empty()) {
    events_scope_.emplace(events_);
  }
  const int heartbeat_ms = cli.get_int("heartbeat-ms", 0);
  if (heartbeat_ms > 0 && scope_.has_value()) {
    heartbeat_.emplace(std::chrono::milliseconds(heartbeat_ms));
  }
}

CliObservation::~CliObservation() {
  heartbeat_.reset();  // join the sampler before tearing anything down
  if (scope_.has_value()) {
    // Session-level resource/pool gauges so the metrics file records the
    // whole process, not just the last run's snapshot.
    publish_resource_gauges();
  }
  scope_.reset();  // uninstall before serializing
  ledger_scope_.reset();
  events_scope_.reset();
  if (!trace_path_.empty()) {
    write_file(trace_path_, observation_.trace.to_chrome_json(), "trace");
  }
  if (!metrics_path_.empty()) {
    write_file(metrics_path_, observation_.metrics.to_json(), "metrics");
  }
  if (!metrics_prom_path_.empty()) {
    write_file(metrics_prom_path_, observation_.metrics.to_prometheus(),
               "prometheus metrics");
  }
  if (!events_path_.empty()) {
    write_file(events_path_, events_.to_jsonl(), "events");
  }
  if (!ledger_path_.empty()) {
    try {
      for (const LedgerRecord& record : ledger_.records()) {
        append_ledger_record(ledger_path_, record);
      }
    } catch (const std::exception& error) {
      OPERON_LOG(Warn) << "failed to write ledger to '" << ledger_path_
                       << "': " << error.what();
    }
  }
}

}  // namespace operon::obs
