#include "obs/sink.hpp"

#include <cstdio>
#include <fstream>

#include "util/cli.hpp"

namespace operon::obs {

namespace {

void write_file(const std::string& path, const std::string& text,
                const char* what) {
  std::ofstream os(path);
  if (os.good()) os << text << "\n";
  if (!os.good()) {
    std::fprintf(stderr, "warning: failed to write %s to '%s'\n", what,
                 path.c_str());
  }
}

}  // namespace

CliObservation::CliObservation(const util::Cli& cli)
    : trace_path_(cli.get("trace-out", "")),
      metrics_path_(cli.get("metrics-out", "")) {
  if (!trace_path_.empty() || !metrics_path_.empty()) {
    scope_.emplace(observation_);
  }
}

CliObservation::~CliObservation() {
  scope_.reset();  // uninstall before serializing
  if (!trace_path_.empty()) {
    write_file(trace_path_, observation_.trace.to_chrome_json(), "trace");
  }
  if (!metrics_path_.empty()) {
    write_file(metrics_path_, observation_.metrics.to_json(), "metrics");
  }
}

}  // namespace operon::obs
