#pragma once
// Observation sink for command-line front ends: reads the shared
// `--trace-out FILE` / `--metrics-out FILE` / `--metrics-prom-out FILE`
// / `--events-out FILE` / `--ledger-out FILE` / `--heartbeat-ms N`
// flags, installs a process-wide Observation (and ledger collector /
// event log) when requested, and writes the Chrome trace / metrics
// JSON / Prometheus text / events JSONL / ledger JSONL files on
// destruction. One line per binary:
//
//   obs::CliObservation observing(cli);
//
// With no flags present nothing is installed and instrumented code
// stays on its no-op path.
//
// `--ledger-out` appends one LedgerRecord per completed pipeline run
// (crash-safe, see obs/ledger.hpp); front ends name the runs with
// obs::set_ledger_context. `--heartbeat-ms N` starts a sampler thread
// that snapshots the ambient metrics registry and process resource
// usage into the trace every N ms as 'C' counter events (requires
// `--trace-out` to land anywhere; heartbeat data is timing-only and
// never part of semantic output). `--events-out` installs a session
// EventLog (events.hpp), which also routes OPERON_LOG lines into the
// event stream via the log bridge.

#include <optional>
#include <string>

#include "obs/events.hpp"
#include "obs/ledger.hpp"
#include "obs/obs.hpp"
#include "obs/resource.hpp"

namespace operon::util {
class Cli;
}  // namespace operon::util

namespace operon::obs {

class CliObservation {
 public:
  explicit CliObservation(const util::Cli& cli);
  /// Stops the heartbeat, publishes final resource gauges, then writes
  /// the requested files; failures are reported via OPERON_LOG(Warn),
  /// never thrown (a full disk at exit must not mask the run's own
  /// status).
  ~CliObservation();
  CliObservation(const CliObservation&) = delete;
  CliObservation& operator=(const CliObservation&) = delete;

  bool active() const { return scope_.has_value(); }
  Observation& observation() { return observation_; }
  const LedgerCollector& ledger() const { return ledger_; }
  EventLog& events() { return events_; }

 private:
  std::string trace_path_;
  std::string metrics_path_;
  std::string metrics_prom_path_;
  std::string events_path_;
  std::string ledger_path_;
  Observation observation_;
  LedgerCollector ledger_;
  EventLog events_;
  std::optional<ScopedObservation> scope_;
  std::optional<ScopedLedger> ledger_scope_;
  std::optional<ScopedEventLog> events_scope_;
  std::optional<Heartbeat> heartbeat_;
};

}  // namespace operon::obs
