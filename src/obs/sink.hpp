#pragma once
// Observation sink for command-line front ends: reads the shared
// `--trace-out FILE` / `--metrics-out FILE` flags, installs a
// process-wide Observation when either is present, and writes the
// Chrome trace / metrics JSON files on destruction. One line per
// binary:
//
//   obs::CliObservation observing(cli);
//
// With neither flag present nothing is installed and instrumented code
// stays on its no-op path.

#include <optional>
#include <string>

#include "obs/obs.hpp"

namespace operon::util {
class Cli;
}  // namespace operon::util

namespace operon::obs {

class CliObservation {
 public:
  explicit CliObservation(const util::Cli& cli);
  /// Writes the requested files; failures are reported on stderr, never
  /// thrown (a full disk at exit must not mask the run's own status).
  ~CliObservation();
  CliObservation(const CliObservation&) = delete;
  CliObservation& operator=(const CliObservation&) = delete;

  bool active() const { return scope_.has_value(); }
  Observation& observation() { return observation_; }

 private:
  std::string trace_path_;
  std::string metrics_path_;
  Observation observation_;
  std::optional<ScopedObservation> scope_;
};

}  // namespace operon::obs
