#pragma once
// Resource telemetry: what the process cost, alongside what it did.
//
//  * sample_resource_usage(): peak RSS and user/system CPU time from
//    getrusage (zeros on platforms without it);
//  * publish_resource_gauges(): writes the sample plus the
//    util::ThreadPool utilization counters into the current observation
//    as `resource.*` / `pool.*` gauges — all timing-flagged, because
//    memory footprint, CPU split, and pool fan-out counts depend on the
//    machine and the thread knob, never on what the pipeline decided;
//  * Heartbeat: a background sampler that every `period` snapshots the
//    ambient registry (through the obs install guard, so it can never
//    race a run tear-down) and records one Chrome 'C' counter event per
//    metric into the ambient trace, so a long ILP/LR run shows live
//    progress in chrome://tracing instead of one opaque span.
//
// Heartbeat data is wall-clock by construction and must never feed a
// semantic metric (see DESIGN.md "Observability").

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>

namespace operon::obs {

struct ResourceUsage {
  double peak_rss_mb = 0.0;  ///< high-water resident set size, MiB
  double user_cpu_s = 0.0;   ///< user-mode CPU time, seconds
  double sys_cpu_s = 0.0;    ///< kernel-mode CPU time, seconds
};

/// Current process-wide usage (getrusage(RUSAGE_SELF)); all zeros on
/// platforms without getrusage.
ResourceUsage sample_resource_usage();

/// Publish `resource.peak_rss_mb` / `resource.user_cpu_s` /
/// `resource.sys_cpu_s` and the `pool.*` utilization counters as
/// timing-flagged gauges on the current observation. No-op when none is
/// installed.
void publish_resource_gauges();

/// Periodic registry-to-trace sampler. One sample is taken immediately
/// on start (so even short observed runs get a data point), then one
/// every `period` until destruction. Each sample emits an `hb.metrics`
/// counter event carrying every registry point's headline value, plus
/// an `hb.resource` counter event with the ResourceUsage sample.
class Heartbeat {
 public:
  explicit Heartbeat(std::chrono::milliseconds period);
  /// Stops and joins the sampler thread.
  ~Heartbeat();
  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

  /// Samples taken so far (for tests and the sink's summary line).
  std::size_t samples() const {
    return samples_.load(std::memory_order_relaxed);
  }

 private:
  void run(std::chrono::milliseconds period);
  void sample();

  std::atomic<std::size_t> samples_{0};
  std::mutex mutex_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace operon::obs
