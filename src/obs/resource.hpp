#pragma once
// Resource telemetry: what the process cost, alongside what it did.
//
//  * sample_resource_usage(): peak RSS and user/system CPU time from
//    getrusage (zeros on platforms without it);
//  * publish_resource_gauges(): writes the sample plus the
//    util::ThreadPool utilization counters into the current observation
//    as `resource.*` / `pool.*` gauges — all timing-flagged, because
//    memory footprint, CPU split, and pool fan-out counts depend on the
//    machine and the thread knob, never on what the pipeline decided;
//  * Heartbeat: a background sampler that every `period` snapshots the
//    ambient registry (through the obs install guard, so it can never
//    race a run tear-down) and records one Chrome 'C' counter event per
//    metric into the ambient trace, so a long ILP/LR run shows live
//    progress in chrome://tracing instead of one opaque span.
//
// Heartbeat data is wall-clock by construction and must never feed a
// semantic metric (see DESIGN.md "Observability").

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "util/stop.hpp"

namespace operon::obs {

struct ResourceUsage {
  double peak_rss_mb = 0.0;  ///< high-water resident set size, MiB
  double user_cpu_s = 0.0;   ///< user-mode CPU time, seconds
  double sys_cpu_s = 0.0;    ///< kernel-mode CPU time, seconds
};

/// Current process-wide usage (getrusage(RUSAGE_SELF)); all zeros on
/// platforms without getrusage.
ResourceUsage sample_resource_usage();

/// Publish `resource.peak_rss_mb` / `resource.user_cpu_s` /
/// `resource.sys_cpu_s` and the `pool.*` utilization counters as
/// timing-flagged gauges on the current observation. No-op when none is
/// installed.
void publish_resource_gauges();

/// Periodic registry-to-trace sampler. One sample is taken immediately
/// on start (so even short observed runs get a data point), then one
/// every `period` until destruction. Each sample emits an `hb.metrics`
/// counter event carrying every registry point's headline value, plus
/// an `hb.resource` counter event with the ResourceUsage sample.
class Heartbeat {
 public:
  explicit Heartbeat(std::chrono::milliseconds period);
  /// Stops and joins the sampler thread.
  ~Heartbeat();
  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

  /// Samples taken so far (for tests and the sink's summary line).
  std::size_t samples() const {
    return samples_.load(std::memory_order_relaxed);
  }

 private:
  void run(std::chrono::milliseconds period);
  void sample();

  std::atomic<std::size_t> samples_{0};
  std::mutex mutex_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread thread_;
};

/// Render the stall report the watchdog emits: the token's last stage
/// and checkpoint count, seconds since the last checkpoint, every
/// thread's open span stack (obs::describe_open_spans), and the current
/// observation's metric headline. Exposed for tests and for callers
/// that want the report without the watchdog thread.
std::string render_stall_report(const util::StopToken& token);

/// Liveness watchdog for the cooperative cancellation contract
/// (util::StopToken): every stage must keep calling checkpoint(). The
/// watchdog polls the token's checkpoint heartbeat from a background
/// thread; if no checkpoint lands for `timeout`, it renders a stall
/// report and invokes `on_alarm` — by default writing the report to
/// stderr and calling std::abort(), because a stage that stopped
/// polling can no longer honor a budget or a SIGINT. Wall-clock by
/// construction: the watchdog never influences results and must never
/// feed a semantic metric. Fires at most once.
class Watchdog {
 public:
  using AlarmFn = std::function<void(const std::string& report)>;
  /// `on_alarm` replaces the default stderr+abort action (tests hook it
  /// to observe the report without dying).
  Watchdog(util::StopToken token, std::chrono::milliseconds timeout,
           AlarmFn on_alarm = {});
  /// Stops and joins the poller thread (unless the alarm already fired
  /// and took the process down).
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  bool fired() const { return fired_.load(std::memory_order_acquire); }

 private:
  void run(std::chrono::milliseconds timeout);

  util::StopToken token_;
  AlarmFn on_alarm_;
  std::atomic<bool> fired_{false};
  std::mutex mutex_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace operon::obs
