#pragma once
// Structured event log: the narrative companion to the metrics registry.
// Events are leveled, dotted-name records ("serve.job.started",
// "core.run.completed", "log.info") with per-source monotonic sequence
// numbers and job/case context, serialized as JSONL. Wall-clock time is
// carried on every event but segregated from the semantic identity
// exactly like timing gauges: semantic_line() — the projection the
// determinism tests and serve gates compare — excludes ts_us and the
// submission-order-dependent job id, and keeps everything else
// (source, seq, level, name, case, seed, tenant, message).
//
// Sequence numbers are assigned by the log at emit time, one counter
// per source string ("" = the process stream; the serve daemon uses the
// job identity key). A job's own event stream is therefore a
// deterministic 1,2,3,... regardless of how jobs interleave across
// executor threads — the event analogue of the ledger record-set
// invariant.
//
// The log doubles as the daemon's flight recorder: constructed with a
// capacity it keeps only the most recent events (a bounded ring), while
// an optional sink callback still sees every emission (the daemon's
// --events-out JSONL file). dump() renders the retained ring without
// wall-clock fields, so flight-recorder goldens are byte-stable;
// flight_recorder_dump() appends the open-span snapshot for the
// watchdog stall report and the SIGTERM dump.
//
// Ambient install mirrors obs.hpp: ScopedEventLog fills the
// process-wide slot, ScopedThreadEventLog shadows it on one thread (the
// serve executors point their jobs at the shared daemon log this way),
// and ScopedEventContext attaches job/case context to everything the
// installing thread emits. Installing either scope also bridges
// OPERON_LOG into the ambient log (util::set_log_sink), so every
// leveled diagnostic becomes a structured "log.<level>" event.
// Determinism rule: like metrics, events must only be emitted from
// serial orchestration code, never inside a parallel_for body.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/logging.hpp"

namespace operon::util {
class JsonValue;
class JsonWriter;
}  // namespace operon::util

namespace operon::obs {

/// Context fields attached to an event. `source` selects the sequence
/// stream; `job` is the serve job id — assigned in submission order and
/// therefore NOT semantic (excluded from semantic_line like ts_us).
struct EventContext {
  std::string source;      ///< sequence stream ("" = process stream)
  std::uint64_t job = 0;   ///< serve job id (0 = none); non-semantic
  std::string case_id;     ///< design/case label
  std::uint64_t seed = 0;
  std::string tenant;
};

struct Event {
  std::uint64_t seq = 0;  ///< per-source monotonic, assigned by the log
  /// Wall-clock microseconds (trace_now_us origin); segregated from the
  /// semantic projection like timing gauges.
  double ts_us = 0.0;
  util::LogLevel level = util::LogLevel::Info;
  std::string name;  ///< dotted, lowercase ("serve.job.started")
  std::string message;
  EventContext context;
};

/// Lowercase level slug ("debug" | "info" | "warn" | "error").
std::string_view level_slug(util::LogLevel level);

/// One JSONL line (no trailing newline): seq / ts_us / level / name
/// always present, context fields and message only when set.
std::string to_json_line(const Event& event);

/// Strict parse of one to_json_line document (unknown members, missing
/// required fields, or bad types throw util::CheckError).
Event event_from_json(const util::JsonValue& value);

/// JSON array of event objects — the `events` protocol op payload.
std::string to_json_array(std::span<const Event> events);

/// Canonical semantic projection: source, seq, level, name, case, seed,
/// tenant, message — everything except wall-time and the job id. Two
/// runs are event-equivalent when their semantic_line multisets match.
std::string semantic_line(const Event& event);

/// Deterministic human-readable one-liner (no wall-time) for dumps.
std::string render_event(const Event& event);

/// Thread-safe event store with per-source monotonic sequencing.
class EventLog {
 public:
  /// capacity == 0 retains every event (CLI sessions); capacity > 0
  /// keeps a bounded ring of the most recent (the daemon's flight
  /// recorder). The sink, when set, sees every event either way.
  explicit EventLog(std::size_t capacity = 0);
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  void emit(util::LogLevel level, std::string_view name,
            std::string_view message, const EventContext& context = {});

  /// Called with every emitted event, under the log's mutex — the sink
  /// must be fast and must not emit (it would deadlock).
  void set_sink(std::function<void(const Event&)> sink);

  /// Retained events, oldest first; tail != 0 keeps only the newest
  /// `tail` of them.
  std::vector<Event> events(std::size_t tail = 0) const;
  std::size_t size() const;      ///< retained (<= capacity when bounded)
  std::uint64_t total() const;   ///< ever emitted

  std::string to_jsonl() const;  ///< one to_json_line per retained event

  /// Flight-recorder rendering of the retained ring (newest-`tail`
  /// slice when tail != 0): render_event lines, so byte-stable for a
  /// fixed emission sequence.
  std::string dump(std::size_t tail = 0) const;

  void clear();  ///< drops events AND sequence counters

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<Event> events_;
  std::map<std::string, std::uint64_t> next_seq_;  ///< per source
  std::uint64_t total_ = 0;
  std::function<void(const Event&)> sink_;
};

/// Recent events plus the current open-span snapshot — what the
/// watchdog stall report and the daemon's SIGTERM handler dump.
std::string flight_recorder_dump(const EventLog& log, std::size_t tail = 0);

/// Currently installed event log: this thread's override when one is
/// installed, else the process-wide slot, else nullptr.
EventLog* current_event_log();

/// Run `fn` on the current event log (nullptr when none) while holding
/// the install guard — how threads outside any scope (the watchdog)
/// must access it, mirroring with_current_observation.
void with_current_event_log(const std::function<void(EventLog*)>& fn);

/// RAII install into the process-wide slot (and bridge OPERON_LOG into
/// the ambient log, once per process).
class ScopedEventLog {
 public:
  explicit ScopedEventLog(EventLog& log);
  ~ScopedEventLog();
  ScopedEventLog(const ScopedEventLog&) = delete;
  ScopedEventLog& operator=(const ScopedEventLog&) = delete;

 private:
  EventLog* previous_;
};

/// RAII install into the calling thread's override slot — the serve
/// executors point their job threads at the shared daemon log with this
/// (the log itself is thread-safe).
class ScopedThreadEventLog {
 public:
  explicit ScopedThreadEventLog(EventLog& log);
  ~ScopedThreadEventLog();
  ScopedThreadEventLog(const ScopedThreadEventLog&) = delete;
  ScopedThreadEventLog& operator=(const ScopedThreadEventLog&) = delete;

 private:
  EventLog* previous_;
};

/// RAII thread-local context: events emitted through emit_event (and
/// the OPERON_LOG bridge) on this thread carry these fields. Nests.
class ScopedEventContext {
 public:
  explicit ScopedEventContext(EventContext context);
  ~ScopedEventContext();
  ScopedEventContext(const ScopedEventContext&) = delete;
  ScopedEventContext& operator=(const ScopedEventContext&) = delete;

 private:
  EventContext context_;
  const EventContext* previous_;
};

/// The calling thread's ambient context (nullptr when none installed).
const EventContext* current_event_context();

/// Emit onto the current event log with the ambient thread context;
/// no-op when no log is installed.
void emit_event(util::LogLevel level, std::string_view name,
                std::string_view message = {});

}  // namespace operon::obs
