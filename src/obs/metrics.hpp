#pragma once
// Typed metrics registry: counters, gauges, and fixed-bucket histograms
// with stable registration order. Hot paths accumulate locally (usually
// into their existing result structs) and feed the registry once from a
// serial section, so the set of metrics and their registration order are
// deterministic. Semantic metrics (counts, iterations, norms) must be
// bit-identical at any --threads value; wall-clock values are marked
// with `timing = true` and excluded from semantic comparisons
// (semantic_equal). See DESIGN.md "Observability".

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace operon::util {
class JsonValue;
class JsonWriter;
}  // namespace operon::util

namespace operon::obs {

enum class MetricKind {
  Counter,   ///< monotonically increasing integer (events, nodes, hits)
  Gauge,     ///< last-written double (a level, a size, a runtime)
  Histogram  ///< distribution: count/sum/min/max + exponential buckets
};

std::string_view to_string(MetricKind kind);

/// Upper bounds of the shared exponential histogram buckets (the last
/// returned bound is followed by an implicit +inf overflow bucket).
/// One fixed layout keeps every histogram mergeable and the JSON shape
/// independent of observed values.
std::span<const double> histogram_bounds();

/// One registered metric with its current value. For counters `count`
/// holds the value; for gauges `value` holds it; for histograms `count`
/// is the number of observations, `value` their sum, and `buckets` has
/// histogram_bounds().size() + 1 entries (last = overflow).
struct MetricPoint {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  /// Wall-clock-derived and therefore run-to-run nondeterministic;
  /// excluded from semantic comparisons and from --no-timings reports.
  bool timing = false;
  std::uint64_t count = 0;
  double value = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<std::uint64_t> buckets;
};

bool operator==(const MetricPoint& a, const MetricPoint& b);

/// Point-in-time copy of a registry, in registration order.
struct MetricsSnapshot {
  std::vector<MetricPoint> points;

  /// Lookup by name; nullptr when absent.
  const MetricPoint* find(std::string_view name) const;
  /// Counter value (0 when absent — convenient for tests).
  std::uint64_t counter(std::string_view name) const;
  /// Gauge value (0.0 when absent).
  double gauge(std::string_view name) const;
};

/// True when the non-timing points of both snapshots are identical
/// (name, kind, and bit-exact values; compared in name order so two
/// registries fed by differently-ordered code paths still match).
bool semantic_equal(const MetricsSnapshot& a, const MetricsSnapshot& b);

/// Append `points` to an open JsonWriter scope as an array value (the
/// caller has already emitted the key). Shared by report_json, the
/// --metrics-out sink, and the run ledger so the formats cannot drift.
/// `exact` selects bit-exact round-trip double formatting
/// (JsonWriter::value_exact) — the ledger uses it so parsed-back
/// records compare bit-identically; reports keep the display-oriented
/// default.
void write_metric_points(util::JsonWriter& json,
                         std::span<const MetricPoint> points,
                         bool include_timing, bool exact = false);

/// Parse one element of a write_metric_points array back into a
/// MetricPoint. Throws util::CheckError on any missing/mistyped field,
/// unknown kind, or histogram bucket-count mismatch.
MetricPoint metric_point_from_json(const util::JsonValue& value);

/// Prometheus text exposition (text format 0.0.4) of a snapshot: one
/// `# TYPE` line per metric, dots in names mapped to underscores,
/// histograms expanded into cumulative `_bucket{le=...}` series plus
/// `_sum`/`_count`. Timing gauges are included — exposition is a
/// monitoring surface, not a semantic-comparison one. Served through
/// the serve `stats` op (`prom` member) and the CLI
/// `--metrics-prom-out` sink.
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// Thread-safe metric store. Names are registered on first touch and
/// keep that position forever; touching a name with a different kind is
/// a CheckError (metric names are a closed, documented vocabulary).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void add_counter(std::string_view name, std::uint64_t delta = 1);
  void set_gauge(std::string_view name, double value, bool timing = false);
  void observe(std::string_view name, double value);

  /// Fold another registry into this one: counters add, gauges take the
  /// other's value, histograms merge. Used to roll a per-run observation
  /// up into a session-level sink.
  void absorb(const MetricsRegistry& other);
  /// Same merge semantics from a snapshot (e.g. replaying the per-run
  /// snapshots stored in RunStats or a ledger record).
  void absorb(const MetricsSnapshot& other);

  MetricsSnapshot snapshot() const;
  /// {"metrics": [...]} document with every point (timing included).
  std::string to_json() const;
  /// to_prometheus(snapshot()).
  std::string to_prometheus() const;
  std::size_t size() const;
  void clear();

 private:
  MetricPoint& entry(std::string_view name, MetricKind kind);

  mutable std::mutex mutex_;
  std::vector<MetricPoint> points_;  ///< registration order
};

}  // namespace operon::obs
