#pragma once
// Ambient observation: one Observation bundles a MetricsRegistry and a
// TraceRecorder; ScopedObservation installs it as the process-wide
// current observation so instrumented code anywhere in the pipeline can
// feed it without plumbing a handle through every signature. The free
// helpers (add_counter / set_gauge / observe) and Span no-op when no
// observation is installed, so instrumentation costs one atomic load on
// unobserved runs.
//
// core::run_operon installs a fresh per-run Observation around each run
// (so OperonResult::stats.metrics is exactly that run's snapshot) and
// absorbs it into whatever observation enclosed it — typically a
// CliObservation sink (sink.hpp) collecting session totals.
//
// Two install scopes exist:
//  * ScopedObservation — the process-wide slot. One per session (a CLI
//    sink, a test harness); observer threads outside any run (the
//    resource heartbeat, the watchdog) read this one.
//  * ScopedThreadObservation — a thread-local override that shadows the
//    process slot on the installing thread only. core::run_operon uses
//    it for its per-run observation, so runs orchestrated concurrently
//    on different threads (the serve daemon's job executors) each feed
//    their own registry instead of clobbering one global slot. All
//    pipeline emission happens on the orchestrating thread (hot loops
//    accumulate locally and flush from serial sections — see
//    metrics.hpp), so the thread-local scope captures exactly the run's
//    activity.
//
// current() resolves thread-local first, then the process slot. Worker
// threads only *feed* the current observation; install/uninstall of the
// process slot is meant for the thread that owns the session (nesting
// is fine on one thread).

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace operon::obs {

struct Observation {
  MetricsRegistry metrics;
  TraceRecorder trace;

  void absorb(const Observation& other) {
    metrics.absorb(other.metrics);
    trace.absorb(other.trace);
  }
};

/// Currently installed observation: this thread's override when one is
/// installed, else the process-wide slot, else nullptr.
Observation* current();
MetricsRegistry* current_metrics();
TraceRecorder* current_trace();

/// Run `fn` on the current observation (nullptr when none) while
/// holding the install/uninstall guard, so a ScopedObservation cannot
/// uninstall — and its owner destroy — the observation mid-call. This
/// is how threads OUTSIDE a run (the resource heartbeat sampler) must
/// access the ambient observation; threads inside a run join before
/// uninstall by construction and keep using the lock-free helpers.
void with_current_observation(const std::function<void(Observation*)>& fn);

/// RAII install into the process-wide slot: makes `observation` current
/// for every thread without a thread-local override, restores the
/// previous one on destruction.
class ScopedObservation {
 public:
  explicit ScopedObservation(Observation& observation);
  ~ScopedObservation();
  ScopedObservation(const ScopedObservation&) = delete;
  ScopedObservation& operator=(const ScopedObservation&) = delete;

 private:
  Observation* previous_;
};

/// RAII install into the calling thread's override slot: shadows the
/// process-wide observation on this thread only (other threads,
/// including the heartbeat/watchdog observers, keep seeing the process
/// slot). Nesting on one thread restores the previous override. This is
/// the install concurrent run orchestrators must use — it touches no
/// shared state, so any number of threads can hold one simultaneously.
class ScopedThreadObservation {
 public:
  explicit ScopedThreadObservation(Observation& observation);
  ~ScopedThreadObservation();
  ScopedThreadObservation(const ScopedThreadObservation&) = delete;
  ScopedThreadObservation& operator=(const ScopedThreadObservation&) = delete;

 private:
  Observation* previous_;
};

/// Feed the current observation; no-ops when none is installed.
void add_counter(std::string_view name, std::uint64_t delta = 1);
void set_gauge(std::string_view name, double value, bool timing = false);
void observe(std::string_view name, double value);

/// Scoped span: records one Chrome "X" complete event on the current
/// trace recorder, attributed to the constructing thread. The recorder
/// is captured at construction so a span outliving its observation
/// scope is the caller's bug, not a silent drop.
class Span {
 public:
  explicit Span(const char* name, const char* category = "operon");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceRecorder* recorder_;
  const char* name_;
  const char* category_;
  double start_us_ = 0.0;
};

/// One line per thread with an open span stack ("thread <id>: a > b"),
/// for the watchdog's stall report (obs::Watchdog). Only spans recorded
/// under an installed observation are tracked; returns "(no open
/// spans)" otherwise. Takes the global span-registry mutex — cheap
/// relative to a stall, not meant for hot paths.
std::string describe_open_spans();

}  // namespace operon::obs

#define OPERON_SPAN_CONCAT2_(a, b) a##b
#define OPERON_SPAN_CONCAT_(a, b) OPERON_SPAN_CONCAT2_(a, b)
/// `OPERON_SPAN("core.selection");` — names the enclosing scope in the
/// exported trace. Spans nest lexically; use dotted module-prefixed
/// names (see DESIGN.md "Observability" for the taxonomy).
#define OPERON_SPAN(name) \
  const ::operon::obs::Span OPERON_SPAN_CONCAT_(operon_span_, __LINE__)(name)
