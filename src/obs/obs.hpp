#pragma once
// Ambient observation: one Observation bundles a MetricsRegistry and a
// TraceRecorder; ScopedObservation installs it as the process-wide
// current observation so instrumented code anywhere in the pipeline can
// feed it without plumbing a handle through every signature. The free
// helpers (add_counter / set_gauge / observe) and Span no-op when no
// observation is installed, so instrumentation costs one atomic load on
// unobserved runs.
//
// core::run_operon installs a fresh per-run Observation around each run
// (so OperonResult::stats.metrics is exactly that run's snapshot) and
// absorbs it into whatever observation enclosed it — typically a
// CliObservation sink (sink.hpp) collecting session totals.
//
// Install/uninstall is meant for the thread that owns the run (nesting
// is fine); worker threads only *feed* the current observation.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace operon::obs {

struct Observation {
  MetricsRegistry metrics;
  TraceRecorder trace;

  void absorb(const Observation& other) {
    metrics.absorb(other.metrics);
    trace.absorb(other.trace);
  }
};

/// Currently installed observation (nullptr when none).
Observation* current();
MetricsRegistry* current_metrics();
TraceRecorder* current_trace();

/// Run `fn` on the current observation (nullptr when none) while
/// holding the install/uninstall guard, so a ScopedObservation cannot
/// uninstall — and its owner destroy — the observation mid-call. This
/// is how threads OUTSIDE a run (the resource heartbeat sampler) must
/// access the ambient observation; threads inside a run join before
/// uninstall by construction and keep using the lock-free helpers.
void with_current_observation(const std::function<void(Observation*)>& fn);

/// RAII install: makes `observation` current, restores the previous one
/// on destruction.
class ScopedObservation {
 public:
  explicit ScopedObservation(Observation& observation);
  ~ScopedObservation();
  ScopedObservation(const ScopedObservation&) = delete;
  ScopedObservation& operator=(const ScopedObservation&) = delete;

 private:
  Observation* previous_;
};

/// Feed the current observation; no-ops when none is installed.
void add_counter(std::string_view name, std::uint64_t delta = 1);
void set_gauge(std::string_view name, double value, bool timing = false);
void observe(std::string_view name, double value);

/// Scoped span: records one Chrome "X" complete event on the current
/// trace recorder, attributed to the constructing thread. The recorder
/// is captured at construction so a span outliving its observation
/// scope is the caller's bug, not a silent drop.
class Span {
 public:
  explicit Span(const char* name, const char* category = "operon");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceRecorder* recorder_;
  const char* name_;
  const char* category_;
  double start_us_ = 0.0;
};

/// One line per thread with an open span stack ("thread <id>: a > b"),
/// for the watchdog's stall report (obs::Watchdog). Only spans recorded
/// under an installed observation are tracked; returns "(no open
/// spans)" otherwise. Takes the global span-registry mutex — cheap
/// relative to a stall, not meant for hot paths.
std::string describe_open_spans();

}  // namespace operon::obs

#define OPERON_SPAN_CONCAT2_(a, b) a##b
#define OPERON_SPAN_CONCAT_(a, b) OPERON_SPAN_CONCAT2_(a, b)
/// `OPERON_SPAN("core.selection");` — names the enclosing scope in the
/// exported trace. Spans nest lexically; use dotted module-prefixed
/// names (see DESIGN.md "Observability" for the taxonomy).
#define OPERON_SPAN(name) \
  const ::operon::obs::Span OPERON_SPAN_CONCAT_(operon_span_, __LINE__)(name)
