#include "obs/ledger.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include <unistd.h>

#include "util/check.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace operon::obs {

namespace {

#ifndef OPERON_GIT_DESCRIBE
#define OPERON_GIT_DESCRIBE "unknown"
#endif

/// Semantic points of a record sorted by name, for order-insensitive
/// exact comparison (mirrors metrics.cpp semantic_equal).
std::vector<MetricPoint> sorted_semantic(const LedgerRecord& record) {
  std::vector<MetricPoint> out;
  out.reserve(record.metrics.size());
  for (const MetricPoint& point : record.metrics) {
    if (!point.timing) out.push_back(point);
  }
  std::sort(out.begin(), out.end(),
            [](const MetricPoint& a, const MetricPoint& b) {
              return a.name < b.name;
            });
  return out;
}

void write_points_key(util::JsonWriter& json, const char* key,
                      std::span<const MetricPoint> points) {
  json.key(key);
  write_metric_points(json, points, /*include_timing=*/true, /*exact=*/true);
}

std::vector<MetricPoint> points_from_json(const util::JsonValue& array) {
  std::vector<MetricPoint> points;
  points.reserve(array.items().size());
  for (const util::JsonValue& item : array.items()) {
    points.push_back(metric_point_from_json(item));
  }
  return points;
}

std::uint64_t uint_member(const util::JsonValue& object,
                          std::string_view key) {
  const double number = object.at(key).as_number();
  OPERON_CHECK_MSG(number >= 0,
                   "ledger field '" << key << "' must be non-negative");
  return static_cast<std::uint64_t>(number);
}

}  // namespace

std::string_view git_describe() { return OPERON_GIT_DESCRIBE; }

bool operator==(const LedgerRecord& a, const LedgerRecord& b) {
  return a.schema == b.schema && a.case_id == b.case_id && a.seed == b.seed &&
         a.git == b.git && a.options == b.options && a.solver == b.solver &&
         a.threads == b.threads && a.degraded == b.degraded &&
         a.trip_checkpoint == b.trip_checkpoint &&
         a.winning_solver == b.winning_solver &&
         a.portfolio_order == b.portfolio_order &&
         a.diagnostics == b.diagnostics && a.metrics == b.metrics &&
         a.timings == b.timings;
}

std::string ledger_key(const LedgerRecord& record) {
  std::ostringstream os;
  os << record.case_id << '/' << record.seed << '/' << record.options;
  return os.str();
}

bool semantic_equal(const LedgerRecord& a, const LedgerRecord& b) {
  return ledger_key(a) == ledger_key(b) && a.degraded == b.degraded &&
         a.trip_checkpoint == b.trip_checkpoint &&
         a.diagnostics == b.diagnostics &&
         sorted_semantic(a) == sorted_semantic(b);
}

std::string to_json_line(const LedgerRecord& record) {
  util::JsonWriter json;
  json.begin_object();
  json.key("schema").value(record.schema);
  json.key("case").value(record.case_id);
  json.key("seed").value(record.seed);
  json.key("git").value(record.git);
  json.key("options").value(record.options);
  json.key("solver").value(record.solver);
  json.key("threads").value(static_cast<std::uint64_t>(record.threads));
  json.key("degraded").value(record.degraded);
  json.key("trip_checkpoint").value(record.trip_checkpoint);
  json.key("winning_solver").value(record.winning_solver);
  json.key("portfolio_order").value(record.portfolio_order);
  json.key("diagnostics").begin_object();
  for (const auto& [code, count] : record.diagnostics) {
    json.key(code).value(count);
  }
  json.end_object();
  write_points_key(json, "metrics", record.metrics);
  write_points_key(json, "timings", record.timings);
  json.end_object();
  return json.str();
}

LedgerRecord ledger_record_from_json(const util::JsonValue& value) {
  OPERON_CHECK_MSG(value.is(util::JsonType::Object),
                   "ledger record must be a JSON object");
  LedgerRecord record;
  record.schema = static_cast<int>(value.at("schema").as_number());
  OPERON_CHECK_MSG(record.schema >= kLedgerMinSchemaVersion &&
                       record.schema <= kLedgerSchemaVersion,
                   "ledger record schema "
                       << record.schema << " unsupported (accepting "
                       << kLedgerMinSchemaVersion << ".."
                       << kLedgerSchemaVersion << ")");
  record.case_id = value.at("case").as_string();
  record.seed = uint_member(value, "seed");
  record.git = value.at("git").as_string();
  record.options = value.at("options").as_string();
  record.solver = value.at("solver").as_string();
  record.threads = static_cast<std::size_t>(uint_member(value, "threads"));
  record.degraded = value.at("degraded").as_bool();
  // v2 field; v1 records predate run budgets, so they never tripped.
  record.trip_checkpoint =
      record.schema >= 2 ? uint_member(value, "trip_checkpoint") : 0;
  // v3 fields; pre-portfolio records are plain-solver runs.
  if (record.schema >= 3) {
    record.winning_solver = value.at("winning_solver").as_string();
    record.portfolio_order = value.at("portfolio_order").as_string();
  }
  record.diagnostics.clear();
  for (const auto& [code, count] : value.at("diagnostics").members()) {
    OPERON_CHECK_MSG(count.is(util::JsonType::Number),
                     "diagnostic count for '" << code << "' must be a number");
    record.diagnostics.emplace_back(
        code, static_cast<std::uint64_t>(count.as_number()));
  }
  record.metrics = points_from_json(value.at("metrics"));
  record.timings = points_from_json(value.at("timings"));
  for (const MetricPoint& point : record.metrics) {
    OPERON_CHECK_MSG(!point.timing, "timing-flagged point '"
                                        << point.name
                                        << "' in the semantic metrics array");
  }
  return record;
}

LedgerRecord parse_ledger_record(std::string_view line) {
  return ledger_record_from_json(util::parse_json(line));
}

std::vector<LedgerRecord> read_ledger(const std::string& path) {
  std::ifstream is(path);
  OPERON_CHECK_MSG(is.good(), "cannot open ledger '" << path << "'");
  std::vector<LedgerRecord> records;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (util::trim(line).empty()) continue;
    try {
      records.push_back(parse_ledger_record(line));
    } catch (const util::CheckError& error) {
      OPERON_CHECK_MSG(false, "ledger '" << path << "' line " << line_number
                                         << ": " << error.what());
    }
  }
  return records;
}

LedgerSalvage read_ledger_salvage(const std::string& path) {
  constexpr std::size_t kMaxFindings = 8;
  LedgerSalvage salvage;
  std::ifstream is(path);
  if (!is.good()) {
    salvage.missing = true;
    return salvage;
  }
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (util::trim(line).empty()) continue;
    try {
      salvage.records.push_back(parse_ledger_record(line));
    } catch (const util::CheckError& error) {
      ++salvage.skipped;
      if (salvage.findings.size() < kMaxFindings) {
        salvage.findings.push_back(util::format(
            "line %llu: %s", static_cast<unsigned long long>(line_number),
            error.what()));
      }
    }
  }
  return salvage;
}

namespace {

/// Unique stage-file name for one append: pid distinguishes concurrent
/// processes (CLI vs daemon targeting the same ledger), the counter
/// distinguishes appends within one process that slip past external
/// serialization.
std::string stage_path_for(const std::string& path) {
  static std::atomic<std::uint64_t> counter{0};
  return util::format("%s.tmp.%llu.%llu", path.c_str(),
                      static_cast<unsigned long long>(::getpid()),
                      static_cast<unsigned long long>(
                          counter.fetch_add(1, std::memory_order_relaxed)));
}

}  // namespace

void append_ledger_record(const std::string& path,
                          const LedgerRecord& record) {
  const std::string line = to_json_line(record);
  // Stage the line first: if the process dies mid-append, the ledger
  // either has the whole line or none of it, and the stage file shows
  // what was in flight.
  const std::string stage = stage_path_for(path);
  {
    std::ofstream os(stage, std::ios::trunc);
    os << line << "\n";
    os.flush();
    OPERON_CHECK_MSG(os.good(), "cannot stage ledger record in '" << stage
                                                                  << "'");
  }
  {
    std::ofstream os(path, std::ios::app);
    os << line << "\n";
    os.flush();
    OPERON_CHECK_MSG(os.good(), "cannot append ledger record to '" << path
                                                                   << "'");
  }
  std::remove(stage.c_str());
}

std::size_t truncate_torn_ledger_tail(const std::string& path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const std::uintmax_t size = fs::file_size(path, ec);
  if (ec || size == 0) return 0;
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return 0;
  std::string bytes(static_cast<std::size_t>(size), '\0');
  is.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!is.good() || bytes.back() == '\n') return 0;
  const std::size_t last_newline = bytes.find_last_of('\n');
  const std::size_t keep =
      last_newline == std::string::npos ? 0 : last_newline + 1;
  fs::resize_file(path, keep, ec);
  OPERON_CHECK_MSG(!ec, "cannot truncate torn tail of ledger '" << path
                                                                << "'");
  return bytes.size() - keep;
}

std::size_t remove_stale_ledger_stages(const std::string& path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path ledger(path);
  fs::path dir = ledger.parent_path();
  if (dir.empty()) dir = ".";
  const std::string prefix = ledger.filename().string() + ".tmp";
  std::vector<fs::path> stale;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (util::starts_with(name, prefix)) stale.push_back(entry.path());
  }
  // Directory iteration order is filesystem-dependent; sort so the
  // removal order (and any logging keyed to it) is deterministic.
  std::sort(stale.begin(), stale.end());
  std::size_t removed = 0;
  for (const fs::path& stage : stale) {
    if (fs::remove(stage, ec)) ++removed;
  }
  return removed;
}

// -- regression sentinel ---------------------------------------------------

namespace {

/// Group records by identity key, preserving append order within a key
/// so duplicate runs (e.g. table1's serial re-runs) pair by occurrence.
std::map<std::string, std::vector<const LedgerRecord*>> by_key(
    std::span<const LedgerRecord> records) {
  std::map<std::string, std::vector<const LedgerRecord*>> groups;
  for (const LedgerRecord& record : records) {
    groups[ledger_key(record)].push_back(&record);
  }
  return groups;
}

/// First semantic difference between two paired records, for the
/// finding message; empty when none.
std::string semantic_difference(const LedgerRecord& a, const LedgerRecord& b) {
  if (a.degraded != b.degraded) {
    return util::format("degraded: %s vs %s", a.degraded ? "true" : "false",
                        b.degraded ? "true" : "false");
  }
  if (a.trip_checkpoint != b.trip_checkpoint) {
    return util::format("trip_checkpoint: %llu vs %llu",
                        static_cast<unsigned long long>(a.trip_checkpoint),
                        static_cast<unsigned long long>(b.trip_checkpoint));
  }
  if (a.diagnostics != b.diagnostics) return "diagnostic summary differs";
  const std::vector<MetricPoint> lhs = sorted_semantic(a);
  const std::vector<MetricPoint> rhs = sorted_semantic(b);
  std::size_t i = 0, j = 0;
  while (i < lhs.size() || j < rhs.size()) {
    if (i == lhs.size()) return "missing metric '" + rhs[j].name + "'";
    if (j == rhs.size()) return "extra metric '" + lhs[i].name + "'";
    if (lhs[i].name < rhs[j].name) return "extra metric '" + lhs[i].name + "'";
    if (rhs[j].name < lhs[i].name) {
      return "missing metric '" + rhs[j].name + "'";
    }
    if (!(lhs[i] == rhs[j])) {
      const MetricPoint& x = lhs[i];
      const MetricPoint& y = rhs[j];
      if (x.kind == MetricKind::Counter) {
        return util::format("%s: %llu vs %llu", x.name.c_str(),
                            static_cast<unsigned long long>(x.count),
                            static_cast<unsigned long long>(y.count));
      }
      return util::format("%s: %.17g vs %.17g (count %llu vs %llu)",
                          x.name.c_str(), x.value, y.value,
                          static_cast<unsigned long long>(x.count),
                          static_cast<unsigned long long>(y.count));
    }
    ++i;
    ++j;
  }
  return "";
}

void compare_timings(const LedgerRecord& baseline, const LedgerRecord& current,
                     const CompareOptions& options, CompareResult& result) {
  for (const MetricPoint& before : baseline.timings) {
    if (before.kind != MetricKind::Gauge) continue;
    if (before.value < options.timing_min) continue;
    // pool.* telemetry legitimately scales with the thread count; only
    // wall-clock (time.*) and footprint (resource.*) gauges are held to
    // the ratio threshold.
    if (util::starts_with(before.name, "pool.")) continue;
    for (const MetricPoint& after : current.timings) {
      if (after.name != before.name || after.kind != MetricKind::Gauge) {
        continue;
      }
      if (after.value >= options.timing_ratio * before.value) {
        result.timing.push_back(
            {ledger_key(baseline),
             util::format("%s: %.3f -> %.3f (x%.2f >= x%.2f)",
                          before.name.c_str(), before.value, after.value,
                          after.value / before.value, options.timing_ratio)});
      }
      break;
    }
  }
}

}  // namespace

std::string_view CompareResult::verdict() const {
  if (!semantic_ok()) return "semantic-drift";
  if (!timing.empty()) return "timing-regression";
  return "ok";
}

std::string CompareResult::to_json() const {
  util::JsonWriter json;
  const auto findings = [&json](const char* key,
                                std::span<const CompareFinding> list) {
    json.key(key).begin_array();
    for (const CompareFinding& finding : list) {
      json.begin_object();
      json.key("key").value(finding.key);
      json.key("detail").value(finding.detail);
      json.end_object();
    }
    json.end_array();
  };
  json.begin_object();
  json.key("verdict").value(verdict());
  json.key("matched").value(static_cast<std::uint64_t>(matched));
  json.key("only_baseline").begin_array();
  for (const std::string& key : only_baseline) json.value(key);
  json.end_array();
  json.key("only_current").begin_array();
  for (const std::string& key : only_current) json.value(key);
  json.end_array();
  findings("semantic", semantic);
  findings("timing", timing);
  json.end_object();
  return json.str();
}

CompareResult compare_ledgers(std::span<const LedgerRecord> baseline,
                              std::span<const LedgerRecord> current,
                              const CompareOptions& options) {
  CompareResult result;
  const auto before = by_key(baseline);
  const auto after = by_key(current);
  for (const auto& [key, records] : before) {
    const auto found = after.find(key);
    const std::size_t other = found == after.end() ? 0 : found->second.size();
    for (std::size_t i = other; i < records.size(); ++i) {
      result.only_baseline.push_back(key);
    }
    for (std::size_t i = 0; i < std::min(records.size(), other); ++i) {
      ++result.matched;
      const LedgerRecord& a = *records[i];
      const LedgerRecord& b = *found->second[i];
      const std::string difference = semantic_difference(a, b);
      if (!difference.empty()) result.semantic.push_back({key, difference});
      compare_timings(a, b, options, result);
    }
  }
  for (const auto& [key, records] : after) {
    const auto found = before.find(key);
    const std::size_t other = found == before.end() ? 0 : found->second.size();
    for (std::size_t i = other; i < records.size(); ++i) {
      result.only_current.push_back(key);
    }
  }
  return result;
}

// -- ambient collection ----------------------------------------------------

void LedgerCollector::set_context(std::string case_id, std::uint64_t seed) {
  const std::lock_guard<std::mutex> lock(mutex_);
  context_case_ = std::move(case_id);
  context_seed_ = seed;
}

std::string LedgerCollector::context_case() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return context_case_;
}

std::uint64_t LedgerCollector::context_seed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return context_seed_;
}

void LedgerCollector::add(LedgerRecord record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  records_.push_back(std::move(record));
}

std::vector<LedgerRecord> LedgerCollector::records() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::size_t LedgerCollector::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

namespace {
std::atomic<LedgerCollector*> g_ledger{nullptr};
/// Per-thread override (ScopedThreadLedger); only the owning thread
/// touches its own slot. Mirrors obs::ScopedThreadObservation so
/// concurrent run orchestrators (the serve daemon's executors) each
/// collect their own job's record with its own case/seed context.
thread_local LedgerCollector* t_ledger = nullptr;
}  // namespace

LedgerCollector* current_ledger() {
  if (LedgerCollector* local = t_ledger) return local;
  return g_ledger.load(std::memory_order_acquire);
}

ScopedLedger::ScopedLedger(LedgerCollector& collector)
    : previous_(g_ledger.exchange(&collector, std::memory_order_acq_rel)) {}

ScopedLedger::~ScopedLedger() {
  g_ledger.store(previous_, std::memory_order_release);
}

ScopedThreadLedger::ScopedThreadLedger(LedgerCollector& collector)
    : previous_(t_ledger) {
  t_ledger = &collector;
}

ScopedThreadLedger::~ScopedThreadLedger() { t_ledger = previous_; }

void set_ledger_context(std::string case_id, std::uint64_t seed) {
  if (LedgerCollector* ledger = current_ledger()) {
    ledger->set_context(std::move(case_id), seed);
  }
}

void emit_ledger_record(LedgerRecord record) {
  if (LedgerCollector* ledger = current_ledger()) {
    ledger->add(std::move(record));
  }
}

}  // namespace operon::obs
