#pragma once
// Trace event recorder exportable as Chrome trace_event JSON (the
// chrome://tracing / Perfetto "X" complete-event format). Timestamps are
// microseconds on one process-global steady-clock origin, so events
// recorded by nested observations remain comparable after absorb().
// Trace content is wall-clock by nature and therefore NOT part of the
// determinism contract — only metrics are (see metrics.hpp).

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace operon::obs {

/// Microseconds since the process-global trace origin (first use).
double trace_now_us();

struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';     ///< trace-event phase: 'X' complete, 'C' counter
  double ts_us = 0.0;   ///< start, microseconds since the process origin
  double dur_us = 0.0;  ///< duration, microseconds ('X' events only)
  std::uint32_t tid = 0;  ///< dense per-recorder thread slot (0 = first seen)
  /// Event arguments ('C' events carry the sampled values here; shown
  /// as counter tracks by chrome://tracing / Perfetto).
  std::vector<std::pair<std::string, double>> args;
};

/// Thread-safe append-only event store.
class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Record a completed interval attributed to the calling thread.
  void record(std::string_view name, std::string_view category, double ts_us,
              double dur_us);

  /// Record a 'C' counter sample attributed to the calling thread (the
  /// heartbeat sampler's format; renders as a counter track).
  void record_counter(std::string_view name, std::string_view category,
                      double ts_us,
                      std::vector<std::pair<std::string, double>> values);

  void absorb(const TraceRecorder& other);

  std::size_t size() const;
  std::vector<TraceEvent> events() const;

  /// {"traceEvents": [{"name", "cat", "ph": "X", "ts", "dur", "pid",
  /// "tid"}, ...]} — loadable by chrome://tracing and Perfetto. Optional
  /// metadata key/value pairs land in a top-level "metadata" object (the
  /// serve daemon tags per-job traces with job/tenant/case there).
  std::string to_chrome_json(
      const std::vector<std::pair<std::string, std::string>>& metadata = {})
      const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::map<std::thread::id, std::uint32_t> thread_slots_;
};

}  // namespace operon::obs
