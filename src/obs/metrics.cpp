#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>

#include "util/check.hpp"
#include "util/json.hpp"

namespace operon::obs {

namespace {

// Decade buckets from 1e-6 up to 1e6 cover every unit used in the
// pipeline (seconds, dB, pJ, norms, multipliers) with one layout.
constexpr std::array<double, 13> kBounds = {1e-6, 1e-5, 1e-4, 1e-3, 1e-2,
                                            1e-1, 1.0,  1e1,  1e2,  1e3,
                                            1e4,  1e5,  1e6};

std::size_t bucket_index(double value) {
  for (std::size_t i = 0; i < kBounds.size(); ++i) {
    if (value <= kBounds[i]) return i;
  }
  return kBounds.size();  // overflow bucket
}

void merge_point(MetricPoint& into, const MetricPoint& from) {
  OPERON_CHECK_MSG(into.kind == from.kind,
                   "metric '" << into.name << "' absorbed with kind "
                              << to_string(from.kind) << ", registered as "
                              << to_string(into.kind));
  switch (from.kind) {
    case MetricKind::Counter:
      into.count += from.count;
      break;
    case MetricKind::Gauge:
      into.value = from.value;
      into.timing = from.timing;
      break;
    case MetricKind::Histogram:
      if (from.count == 0) break;
      if (into.count == 0) {
        into.min = from.min;
        into.max = from.max;
      } else {
        into.min = std::min(into.min, from.min);
        into.max = std::max(into.max, from.max);
      }
      into.count += from.count;
      into.value += from.value;
      for (std::size_t i = 0; i < into.buckets.size(); ++i) {
        into.buckets[i] += from.buckets[i];
      }
      break;
  }
}

}  // namespace

std::string_view to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "?";
}

std::span<const double> histogram_bounds() { return kBounds; }

bool operator==(const MetricPoint& a, const MetricPoint& b) {
  return a.name == b.name && a.kind == b.kind && a.timing == b.timing &&
         a.count == b.count && a.value == b.value && a.min == b.min &&
         a.max == b.max && a.buckets == b.buckets;
}

const MetricPoint* MetricsSnapshot::find(std::string_view name) const {
  for (const MetricPoint& point : points) {
    if (point.name == name) return &point;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  const MetricPoint* point = find(name);
  return point == nullptr ? 0 : point->count;
}

double MetricsSnapshot::gauge(std::string_view name) const {
  const MetricPoint* point = find(name);
  return point == nullptr ? 0.0 : point->value;
}

bool semantic_equal(const MetricsSnapshot& a, const MetricsSnapshot& b) {
  const auto semantic_sorted = [](const MetricsSnapshot& snapshot) {
    std::vector<MetricPoint> out;
    for (const MetricPoint& point : snapshot.points) {
      if (!point.timing) out.push_back(point);
    }
    std::sort(out.begin(), out.end(),
              [](const MetricPoint& x, const MetricPoint& y) {
                return x.name < y.name;
              });
    return out;
  };
  return semantic_sorted(a) == semantic_sorted(b);
}

void write_metric_points(util::JsonWriter& json,
                         std::span<const MetricPoint> points,
                         bool include_timing, bool exact) {
  const auto number = [&json, exact](double value) {
    if (exact) json.value_exact(value);
    else json.value(value);
  };
  json.begin_array();
  for (const MetricPoint& point : points) {
    if (point.timing && !include_timing) continue;
    json.begin_object();
    json.key("name").value(point.name);
    json.key("kind").value(to_string(point.kind));
    if (point.timing) json.key("timing").value(true);
    switch (point.kind) {
      case MetricKind::Counter:
        json.key("value").value(point.count);
        break;
      case MetricKind::Gauge:
        json.key("value");
        number(point.value);
        break;
      case MetricKind::Histogram:
        json.key("count").value(point.count);
        json.key("sum");
        number(point.value);
        json.key("min");
        number(point.min);
        json.key("max");
        number(point.max);
        json.key("buckets").begin_array();
        for (const std::uint64_t bucket : point.buckets) json.value(bucket);
        json.end_array();
        break;
    }
    json.end_object();
  }
  json.end_array();
}

namespace {

std::uint64_t uint_field(const util::JsonValue& object, std::string_view key) {
  const double number = object.at(key).as_number();
  OPERON_CHECK_MSG(number >= 0 && number == std::floor(number),
                   "metric point field '" << key
                                          << "' is not a non-negative integer");
  return static_cast<std::uint64_t>(number);
}

}  // namespace

MetricPoint metric_point_from_json(const util::JsonValue& value) {
  MetricPoint point;
  point.name = value.at("name").as_string();
  OPERON_CHECK_MSG(!point.name.empty(), "metric point with empty name");
  const std::string& kind = value.at("kind").as_string();
  if (kind == "counter") point.kind = MetricKind::Counter;
  else if (kind == "gauge") point.kind = MetricKind::Gauge;
  else if (kind == "histogram") point.kind = MetricKind::Histogram;
  else OPERON_CHECK_MSG(false, "unknown metric kind '" << kind << "'");
  if (const util::JsonValue* timing = value.find("timing")) {
    point.timing = timing->as_bool();
  }
  switch (point.kind) {
    case MetricKind::Counter:
      point.count = uint_field(value, "value");
      break;
    case MetricKind::Gauge:
      point.value = value.at("value").as_number();
      break;
    case MetricKind::Histogram: {
      point.count = uint_field(value, "count");
      point.value = value.at("sum").as_number();
      point.min = value.at("min").as_number();
      point.max = value.at("max").as_number();
      const std::vector<util::JsonValue>& buckets =
          value.at("buckets").items();
      OPERON_CHECK_MSG(buckets.size() == histogram_bounds().size() + 1,
                       "histogram '" << point.name << "' has "
                                     << buckets.size() << " buckets, expected "
                                     << histogram_bounds().size() + 1);
      point.buckets.reserve(buckets.size());
      for (std::size_t i = 0; i < buckets.size(); ++i) {
        const double count = buckets[i].as_number();
        OPERON_CHECK_MSG(count >= 0 && count == std::floor(count),
                         "histogram '" << point.name << "' bucket " << i
                                       << " is not a non-negative integer");
        point.buckets.push_back(static_cast<std::uint64_t>(count));
      }
      break;
    }
  }
  return point;
}

namespace {

/// Prometheus metric-name charset is [a-zA-Z0-9_:]; the registry's
/// dotted vocabulary maps dots (and anything else) to underscores and
/// gains an operon_ namespace prefix.
std::string prometheus_name(std::string_view name) {
  std::string out = "operon_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string prometheus_number(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.12g", value);
  return buffer;
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const MetricPoint& point : snapshot.points) {
    const std::string name = prometheus_name(point.name);
    out += "# TYPE " + name + " ";
    switch (point.kind) {
      case MetricKind::Counter:
        out += "counter\n";
        out += name + " " + std::to_string(point.count) + "\n";
        break;
      case MetricKind::Gauge:
        out += "gauge\n";
        out += name + " " + prometheus_number(point.value) + "\n";
        break;
      case MetricKind::Histogram: {
        out += "histogram\n";
        const std::span<const double> bounds = histogram_bounds();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < point.buckets.size(); ++i) {
          cumulative += point.buckets[i];
          const std::string le =
              i < bounds.size() ? prometheus_number(bounds[i]) : "+Inf";
          out += name + "_bucket{le=\"" + le + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        out += name + "_sum " + prometheus_number(point.value) + "\n";
        out += name + "_count " + std::to_string(point.count) + "\n";
        break;
      }
    }
  }
  return out;
}

void MetricsRegistry::add_counter(std::string_view name, std::uint64_t delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  entry(name, MetricKind::Counter).count += delta;
}

void MetricsRegistry::set_gauge(std::string_view name, double value,
                                bool timing) {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricPoint& point = entry(name, MetricKind::Gauge);
  point.value = value;
  point.timing = timing;
}

void MetricsRegistry::observe(std::string_view name, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricPoint& point = entry(name, MetricKind::Histogram);
  if (point.count == 0) {
    point.min = value;
    point.max = value;
  } else {
    point.min = std::min(point.min, value);
    point.max = std::max(point.max, value);
  }
  ++point.count;
  point.value += value;
  point.buckets[bucket_index(value)] += 1;
}

void MetricsRegistry::absorb(const MetricsRegistry& other) {
  // Copy under the other's lock first so absorbing never holds both.
  std::vector<MetricPoint> theirs;
  {
    const std::lock_guard<std::mutex> lock(other.mutex_);
    theirs = other.points_;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const MetricPoint& point : theirs) {
    merge_point(entry(point.name, point.kind), point);
  }
}

void MetricsRegistry::absorb(const MetricsSnapshot& other) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const MetricPoint& point : other.points) {
    merge_point(entry(point.name, point.kind), point);
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return MetricsSnapshot{points_};
}

std::string MetricsRegistry::to_json() const {
  const MetricsSnapshot copy = snapshot();
  util::JsonWriter json;
  json.begin_object();
  json.key("metrics");
  write_metric_points(json, copy.points, /*include_timing=*/true);
  json.end_object();
  return json.str();
}

std::string MetricsRegistry::to_prometheus() const {
  return obs::to_prometheus(snapshot());
}

std::size_t MetricsRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return points_.size();
}

void MetricsRegistry::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  points_.clear();
}

MetricPoint& MetricsRegistry::entry(std::string_view name, MetricKind kind) {
  for (MetricPoint& point : points_) {
    if (point.name == name) {
      OPERON_CHECK_MSG(point.kind == kind,
                       "metric '" << point.name << "' used as "
                                  << to_string(kind) << ", registered as "
                                  << to_string(point.kind));
      return point;
    }
  }
  MetricPoint& point = points_.emplace_back();
  point.name = std::string(name);
  point.kind = kind;
  if (kind == MetricKind::Histogram) {
    point.buckets.assign(kBounds.size() + 1, 0);
  }
  return point;
}

}  // namespace operon::obs
