#pragma once
// Persistent run ledger: the cross-run memory of the observability
// layer. One LedgerRecord per completed pipeline run (run_operon /
// run_selection_only), serialized as one line of JSON in an append-only
// JSONL file, so perf and semantics can be compared across commits,
// thread counts, and machines.
//
// A record carries the identity key (benchmark/case id, seed, options
// fingerprint), provenance (schema version, git describe, solver,
// thread count), the degraded/diagnostic summary, and the run's full
// metric snapshot split into semantic points (bit-identical at any
// --threads value) and timing-flagged points (wall-clock, compared only
// against thresholds). Records round-trip exactly through the strict
// JSON parser: parse_ledger_record(to_json_line(r)) == r.
//
// Writers are crash-safe: the serialized line is staged to a sibling
// temp file first, then appended to the ledger in one stream write, so
// a crash can lose at most the record being written, never corrupt the
// records already present (see append_ledger_record).
//
// compare_ledgers is the regression sentinel: records from two ledgers
// are paired by (case, seed, options) key — exploiting determinism,
// semantic metrics must match EXACTLY — while timing gauges are held
// only to a ratio threshold and reported, not gated, by default. See
// DESIGN.md "Observability" for the record schema and verdict format.

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace operon::util {
class JsonValue;
}  // namespace operon::util

namespace operon::obs {

/// Bump when the record layout changes incompatibly; readers reject
/// unknown versions instead of guessing. v2 added trip_checkpoint (run
/// budget cancellation); v3 added winning_solver / portfolio_order
/// (portfolio races). Older records still parse, with the newer fields
/// at their defaults (0 / empty).
inline constexpr int kLedgerSchemaVersion = 3;
inline constexpr int kLedgerMinSchemaVersion = 1;

/// `git describe --always --dirty` of the tree this binary was built
/// from ("unknown" when the build was not configured inside a git
/// checkout).
std::string_view git_describe();

struct LedgerRecord {
  int schema = kLedgerSchemaVersion;
  /// Benchmark/case identity ("I1", a design name, ...).
  std::string case_id;
  /// Generator seed when the front end recorded one (0 otherwise).
  std::uint64_t seed = 0;
  std::string git{git_describe()};
  /// Deterministic fingerprint of the semantically-relevant options
  /// (core::options_fingerprint; excludes thread count by design, so
  /// records from --threads 1/2/8 runs pair up and must agree).
  std::string options;
  std::string solver;
  /// The OperonOptions::threads knob as set (informational only; never
  /// part of the identity key or the semantic comparison).
  std::size_t threads = 1;
  bool degraded = false;
  /// Run-budget trip checkpoint (core::RunStats::trip_checkpoint): 0
  /// when the run completed, otherwise the numbered checkpoint at which
  /// the budget (or a stop_at_checkpoint replay) tripped. Semantic:
  /// bit-identical at any thread count for a deterministic trip.
  std::uint64_t trip_checkpoint = 0;
  /// Portfolio runs only (v3): the member whose result won the
  /// deterministic fold, and the comma-joined race start order. Both
  /// empty for plain solvers. winning_solver is deterministic at any
  /// thread count; the order can shift with accumulated history
  /// (wall-clock concern), so neither joins semantic_equal.
  std::string winning_solver;
  std::string portfolio_order;
  /// Warning counts per DiagCode wire name, sorted by name.
  std::vector<std::pair<std::string, std::uint64_t>> diagnostics;
  /// Semantic metric points, in registration order.
  std::vector<MetricPoint> metrics;
  /// Timing-flagged points (time.*, resource.*, pool.*), kept separate
  /// so semantic comparison cannot accidentally include them.
  std::vector<MetricPoint> timings;
};

bool operator==(const LedgerRecord& a, const LedgerRecord& b);

/// Identity key used to pair records across ledgers: case / seed /
/// options fingerprint (NOT git, threads, or timings).
std::string ledger_key(const LedgerRecord& record);

/// True when the two records describe the same semantic outcome:
/// equal identity key, degraded flag, diagnostic summary, and
/// bit-identical semantic metric points (compared in name order).
bool semantic_equal(const LedgerRecord& a, const LedgerRecord& b);

/// One-line JSON serialization (no trailing newline).
std::string to_json_line(const LedgerRecord& record);

/// Strict parsers; throw util::CheckError on any malformed input,
/// unknown schema version, or mistyped field.
LedgerRecord ledger_record_from_json(const util::JsonValue& value);
LedgerRecord parse_ledger_record(std::string_view line);

/// Parse a whole JSONL ledger file. Blank lines are ignored; any
/// malformed line throws CheckError naming the line number. A missing
/// file throws (an empty ledger is a present file with zero records).
std::vector<LedgerRecord> read_ledger(const std::string& path);

/// Result of a salvage read: every parseable record plus a structured
/// account of what was skipped, so callers can surface a diagnostic
/// instead of dying on a torn tail.
struct LedgerSalvage {
  std::vector<LedgerRecord> records;
  /// Malformed (unparseable) lines skipped.
  std::size_t skipped = 0;
  /// First few skip reasons ("line N: ..."), capped so a garbage file
  /// cannot balloon the report.
  std::vector<std::string> findings;
  /// File absent or unreadable (records empty, skipped 0).
  bool missing = false;
};

/// Tolerant reader for crash-prone paths (daemon startup, cache
/// priming, portfolio history): malformed lines — a torn tail after
/// SIGKILL, garbage from a partial write — are skipped and counted,
/// never thrown. A missing file yields missing=true, not an error.
/// The strict read_ledger stays the oracle for `compare`.
LedgerSalvage read_ledger_salvage(const std::string& path);

/// Crash-safe append: stage the serialized line in a uniquely-named
/// sibling file (`path`.tmp.<pid>.<n>, collision-proof across
/// concurrent processes), then append it to `path` in one stream write
/// and remove the stage file. Throws CheckError on I/O failure.
void append_ledger_record(const std::string& path,
                          const LedgerRecord& record);

/// Remove leftover `path`.tmp* stage files from writers that died
/// mid-append (the staged line, if complete, was never appended — the
/// ledger itself is intact). Returns the number removed, in
/// lexicographic name order. Call before any writer targets `path`.
std::size_t remove_stale_ledger_stages(const std::string& path);

/// Truncate an unterminated final line (crash wreckage: a writer died
/// mid-append, leaving bytes after the last newline). Appending onto
/// such a tail would weld the next record to the garbage, so every
/// writer that reopens an existing ledger must repair it first. The
/// torn record's job is still owed by the journal (settle happens only
/// after the append), so nothing is lost. Returns the bytes removed
/// (0 when the file is absent, empty, or newline-terminated).
std::size_t truncate_torn_ledger_tail(const std::string& path);

// -- regression sentinel ---------------------------------------------------

struct CompareOptions {
  /// A timing gauge regresses when current >= ratio * baseline...
  double timing_ratio = 1.5;
  /// ...and the baseline is at least this large (filters noise on
  /// sub-50ms stages whose wall-clock is mostly jitter).
  double timing_min = 0.05;
};

struct CompareFinding {
  std::string key;     ///< ledger_key of the affected record pair
  std::string detail;  ///< human-readable description of the difference
};

struct CompareResult {
  std::size_t matched = 0;  ///< record pairs with equal identity keys
  std::vector<std::string> only_baseline;  ///< keys with no current match
  std::vector<std::string> only_current;   ///< keys with no baseline match
  std::vector<CompareFinding> semantic;    ///< exact-match violations
  std::vector<CompareFinding> timing;      ///< threshold violations

  /// No unmatched keys and no semantic mismatches (timing regressions
  /// do not affect this — they are report-only unless the caller opts
  /// into gating on them).
  bool semantic_ok() const {
    return only_baseline.empty() && only_current.empty() && semantic.empty();
  }
  /// "ok" | "semantic-drift" | "timing-regression".
  std::string_view verdict() const;
  /// Machine-readable verdict document.
  std::string to_json() const;
};

/// Pair records by identity key (duplicates pair by occurrence order —
/// deterministic because ledgers are append-ordered) and compare each
/// pair: semantic metrics + degraded + diagnostics must match exactly;
/// timing gauges are held to the ratio threshold.
CompareResult compare_ledgers(std::span<const LedgerRecord> baseline,
                              std::span<const LedgerRecord> current,
                              const CompareOptions& options = {});

// -- ambient collection ----------------------------------------------------

/// Collects the records of completed runs, plus the run context (case
/// id, seed) that only the front end knows. Install with ScopedLedger;
/// core's driver tail emits into whichever collector is current.
class LedgerCollector {
 public:
  LedgerCollector() = default;
  LedgerCollector(const LedgerCollector&) = delete;
  LedgerCollector& operator=(const LedgerCollector&) = delete;

  /// Set by the front end before a run; case_id empty means "use the
  /// design name". Sticky until the next call.
  void set_context(std::string case_id, std::uint64_t seed);
  std::string context_case() const;
  std::uint64_t context_seed() const;

  void add(LedgerRecord record);
  std::vector<LedgerRecord> records() const;
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::string context_case_;
  std::uint64_t context_seed_ = 0;
  std::vector<LedgerRecord> records_;
};

/// Currently installed collector: this thread's override when one is
/// installed, else the process-wide one, else nullptr.
LedgerCollector* current_ledger();

/// RAII install into the process-wide slot, mirroring ScopedObservation.
class ScopedLedger {
 public:
  explicit ScopedLedger(LedgerCollector& collector);
  ~ScopedLedger();
  ScopedLedger(const ScopedLedger&) = delete;
  ScopedLedger& operator=(const ScopedLedger&) = delete;

 private:
  LedgerCollector* previous_;
};

/// RAII install into the calling thread's override slot, mirroring
/// ScopedThreadObservation: shadows the process-wide collector on this
/// thread only, so concurrent job executors each collect their own
/// run's record under their own case/seed context.
class ScopedThreadLedger {
 public:
  explicit ScopedThreadLedger(LedgerCollector& collector);
  ~ScopedThreadLedger();
  ScopedThreadLedger(const ScopedThreadLedger&) = delete;
  ScopedThreadLedger& operator=(const ScopedThreadLedger&) = delete;

 private:
  LedgerCollector* previous_;
};

/// Free helpers mirroring obs::add_counter: no-op when no collector is
/// installed, so library code can call them unconditionally.
void set_ledger_context(std::string case_id, std::uint64_t seed);
void emit_ledger_record(LedgerRecord record);

}  // namespace operon::obs
