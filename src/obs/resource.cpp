#include "obs/resource.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/events.hpp"
#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define OPERON_HAS_GETRUSAGE 1
#endif

namespace operon::obs {

ResourceUsage sample_resource_usage() {
  ResourceUsage usage;
#ifdef OPERON_HAS_GETRUSAGE
  struct rusage raw{};
  if (getrusage(RUSAGE_SELF, &raw) == 0) {
    // ru_maxrss is KiB on Linux, bytes on macOS.
#if defined(__APPLE__)
    usage.peak_rss_mb = static_cast<double>(raw.ru_maxrss) / (1024.0 * 1024.0);
#else
    usage.peak_rss_mb = static_cast<double>(raw.ru_maxrss) / 1024.0;
#endif
    usage.user_cpu_s = static_cast<double>(raw.ru_utime.tv_sec) +
                       static_cast<double>(raw.ru_utime.tv_usec) * 1e-6;
    usage.sys_cpu_s = static_cast<double>(raw.ru_stime.tv_sec) +
                      static_cast<double>(raw.ru_stime.tv_usec) * 1e-6;
  }
#endif
  return usage;
}

void publish_resource_gauges() {
  MetricsRegistry* metrics = current_metrics();
  if (metrics == nullptr) return;
  const ResourceUsage usage = sample_resource_usage();
  metrics->set_gauge("resource.peak_rss_mb", usage.peak_rss_mb,
                     /*timing=*/true);
  metrics->set_gauge("resource.user_cpu_s", usage.user_cpu_s, /*timing=*/true);
  metrics->set_gauge("resource.sys_cpu_s", usage.sys_cpu_s, /*timing=*/true);
  const util::PoolTelemetry pool = util::pool_telemetry();
  metrics->set_gauge("pool.pools", static_cast<double>(pool.pools),
                     /*timing=*/true);
  metrics->set_gauge("pool.workers_spawned",
                     static_cast<double>(pool.workers_spawned),
                     /*timing=*/true);
  metrics->set_gauge("pool.jobs", static_cast<double>(pool.jobs),
                     /*timing=*/true);
  metrics->set_gauge("pool.inline_runs",
                     static_cast<double>(pool.inline_runs), /*timing=*/true);
  metrics->set_gauge("pool.indices", static_cast<double>(pool.indices),
                     /*timing=*/true);
}

Heartbeat::Heartbeat(std::chrono::milliseconds period)
    : thread_([this, period] { run(period); }) {}

Heartbeat::~Heartbeat() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
}

void Heartbeat::run(std::chrono::milliseconds period) {
  sample();  // guarantee at least one data point per observed interval
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (stop_cv_.wait_for(lock, period, [this] { return stop_; })) return;
    lock.unlock();
    sample();
    lock.lock();
  }
}

void Heartbeat::sample() {
  // The install guard keeps the observation alive for the duration of
  // the sample even if the owning run is tearing down concurrently.
  with_current_observation([this](Observation* observation) {
    if (observation == nullptr) return;
    const double now_us = trace_now_us();
    const MetricsSnapshot snapshot = observation->metrics.snapshot();
    std::vector<std::pair<std::string, double>> values;
    values.reserve(snapshot.points.size());
    for (const MetricPoint& point : snapshot.points) {
      switch (point.kind) {
        case MetricKind::Counter:
          values.emplace_back(point.name, static_cast<double>(point.count));
          break;
        case MetricKind::Gauge:
          values.emplace_back(point.name, point.value);
          break;
        case MetricKind::Histogram:
          values.emplace_back(point.name, static_cast<double>(point.count));
          break;
      }
    }
    if (!values.empty()) {
      observation->trace.record_counter("hb.metrics", "heartbeat", now_us,
                                        std::move(values));
    }
    const ResourceUsage usage = sample_resource_usage();
    observation->trace.record_counter(
        "hb.resource", "heartbeat", now_us,
        {{"peak_rss_mb", usage.peak_rss_mb},
         {"user_cpu_s", usage.user_cpu_s},
         {"sys_cpu_s", usage.sys_cpu_s}});
    samples_.fetch_add(1, std::memory_order_relaxed);
  });
}

std::string render_stall_report(const util::StopToken& token) {
  std::ostringstream os;
  os << "operon watchdog: no stop-token checkpoint for "
     << token.seconds_since_checkpoint() << " s\n";
  os << "  last stage: "
     << (token.last_stage()[0] != '\0' ? token.last_stage() : "(none yet)")
     << " after " << token.checkpoints() << " checkpoint(s)\n";
  os << "  open spans:\n";
  std::istringstream spans(describe_open_spans());
  for (std::string line; std::getline(spans, line);) {
    os << "    " << line << "\n";
  }
  // The install guard keeps the observation alive while we snapshot it,
  // even if the stalled run is somehow tearing down concurrently.
  with_current_observation([&os](Observation* observation) {
    if (observation == nullptr) {
      os << "  metrics: (no observation installed)\n";
      return;
    }
    os << "  metrics:\n";
    for (const MetricPoint& point : observation->metrics.snapshot().points) {
      os << "    " << point.name << " = ";
      switch (point.kind) {
        case MetricKind::Counter:
          os << point.count;
          break;
        case MetricKind::Gauge:
          os << point.value;
          break;
        case MetricKind::Histogram:
          os << point.count << " obs, sum " << point.value;
          break;
      }
      os << "\n";
    }
  });
  const ResourceUsage usage = sample_resource_usage();
  os << "  resource: peak_rss_mb=" << usage.peak_rss_mb
     << " user_cpu_s=" << usage.user_cpu_s << " sys_cpu_s=" << usage.sys_cpu_s
     << "\n";
  // Flight recorder: the last events before the stall, from the ambient
  // event log when one is installed (the serve daemon's ring).
  with_current_event_log([&os](EventLog* log) {
    if (log == nullptr) return;
    os << "  recent events:\n";
    std::istringstream lines(log->dump(/*tail=*/32));
    for (std::string line; std::getline(lines, line);) {
      os << "    " << line << "\n";
    }
  });
  return os.str();
}

Watchdog::Watchdog(util::StopToken token, std::chrono::milliseconds timeout,
                   AlarmFn on_alarm)
    : token_(std::move(token)),
      on_alarm_(std::move(on_alarm)),
      thread_([this, timeout] { run(timeout); }) {}

Watchdog::~Watchdog() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
}

void Watchdog::run(std::chrono::milliseconds timeout) {
  // Poll a few times per timeout window: precise enough to catch a
  // stall within ~1.25x the configured limit, cheap enough to never
  // matter (each poll is a handful of relaxed atomic loads).
  const auto poll =
      std::max<std::chrono::milliseconds>(timeout / 4,
                                          std::chrono::milliseconds(1));
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (stop_cv_.wait_for(lock, poll, [this] { return stop_; })) return;
    if (token_.seconds_since_checkpoint() * 1000.0 <
        static_cast<double>(timeout.count())) {
      continue;
    }
    lock.unlock();
    fired_.store(true, std::memory_order_release);
    const std::string report = render_stall_report(token_);
    if (on_alarm_) {
      on_alarm_(report);
      return;  // fires at most once; the hook kept the process alive
    }
    std::fputs(report.c_str(), stderr);
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace operon::obs
