#include "wdm/wavelength.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace operon::wdm {

WavelengthPlan assign_wavelengths(const WdmPlan& plan,
                                  const model::OpticalParams& optical) {
  WavelengthPlan result;
  result.channels_used.assign(plan.wdms.size(), 0);
  const int capacity = optical.wdm_capacity;

  // Occupancy bitmap per WDM.
  std::vector<std::vector<char>> taken(
      plan.wdms.size(), std::vector<char>(static_cast<std::size_t>(capacity), 0));

  // Deterministic order: larger allocations first (best-fit-decreasing
  // keeps contiguous runs available for the wide ones).
  std::vector<std::size_t> order(plan.allocations.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (plan.allocations[a].bits != plan.allocations[b].bits) {
      return plan.allocations[a].bits > plan.allocations[b].bits;
    }
    return a < b;
  });

  result.assignments.resize(plan.allocations.size());
  for (std::size_t index : order) {
    const ChannelAllocation& alloc = plan.allocations[index];
    OPERON_CHECK(alloc.wdm < plan.wdms.size());
    auto& occupancy = taken[alloc.wdm];
    WavelengthAssignment assignment;
    assignment.allocation = index;

    // Prefer a contiguous run; fall back to first-fit singles.
    const int need = static_cast<int>(alloc.bits);
    int run_start = -1, run_length = 0;
    for (int c = 0; c < capacity && run_start < 0; ++c) {
      if (occupancy[static_cast<std::size_t>(c)]) {
        run_length = 0;
        continue;
      }
      if (run_length == 0 && c + need <= capacity) {
        bool fits = true;
        for (int k = c; k < c + need; ++k) {
          if (occupancy[static_cast<std::size_t>(k)]) {
            fits = false;
            break;
          }
        }
        if (fits) run_start = c;
      }
      ++run_length;
    }
    if (run_start >= 0) {
      for (int k = run_start; k < run_start + need; ++k) {
        occupancy[static_cast<std::size_t>(k)] = 1;
        assignment.channels.push_back(k);
      }
    } else {
      for (int c = 0; c < capacity && static_cast<int>(assignment.channels.size()) < need; ++c) {
        if (occupancy[static_cast<std::size_t>(c)]) continue;
        occupancy[static_cast<std::size_t>(c)] = 1;
        assignment.channels.push_back(c);
      }
      if (static_cast<int>(assignment.channels.size()) < need) {
        result.feasible = false;  // flow overcommitted (should not happen)
      }
    }
    result.assignments[index] = std::move(assignment);
  }

  for (std::size_t w = 0; w < plan.wdms.size(); ++w) {
    int high = 0;
    for (int c = 0; c < capacity; ++c) {
      if (taken[w][static_cast<std::size_t>(c)]) high = c + 1;
    }
    result.channels_used[w] = high;
  }
  return result;
}

bool wavelengths_valid(const WdmPlan& plan, const WavelengthPlan& wavelengths,
                       const model::OpticalParams& optical) {
  if (wavelengths.assignments.size() != plan.allocations.size()) return false;
  std::vector<std::vector<char>> seen(
      plan.wdms.size(),
      std::vector<char>(static_cast<std::size_t>(optical.wdm_capacity), 0));
  for (std::size_t i = 0; i < plan.allocations.size(); ++i) {
    const ChannelAllocation& alloc = plan.allocations[i];
    const WavelengthAssignment& assignment = wavelengths.assignments[i];
    if (assignment.allocation != i) return false;
    if (assignment.channels.size() != alloc.bits) return false;
    for (int c : assignment.channels) {
      if (c < 0 || c >= optical.wdm_capacity) return false;
      if (seen[alloc.wdm][static_cast<std::size_t>(c)]) return false;
      seen[alloc.wdm][static_cast<std::size_t>(c)] = 1;
    }
  }
  return true;
}

}  // namespace operon::wdm
