#include "wdm/wdm.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace operon::wdm {

std::vector<Connection> extract_connections(
    std::span<const codesign::CandidateSet> sets,
    const codesign::Selection& selection) {
  OPERON_CHECK(selection.size() == sets.size());
  std::vector<Connection> connections;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    const codesign::Candidate& cand = sets[i].options[selection[i]];
    for (const geom::Segment& seg : cand.optical_segments) {
      Connection conn;
      conn.net = sets[i].net;
      conn.bits = sets[i].bit_count;
      const double dx = std::abs(seg.b.x - seg.a.x);
      const double dy = std::abs(seg.b.y - seg.a.y);
      if (dx >= dy) {
        conn.axis = Axis::Horizontal;
        conn.coord = (seg.a.y + seg.b.y) * 0.5;
        conn.lo = std::min(seg.a.x, seg.b.x);
        conn.hi = std::max(seg.a.x, seg.b.x);
      } else {
        conn.axis = Axis::Vertical;
        conn.coord = (seg.a.x + seg.b.x) * 0.5;
        conn.lo = std::min(seg.a.y, seg.b.y);
        conn.hi = std::max(seg.a.y, seg.b.y);
      }
      connections.push_back(conn);
    }
  }
  return connections;
}

std::vector<Wdm> place_wdms(std::span<const Connection> connections, Axis axis,
                            const model::OpticalParams& optical) {
  OPERON_CHECK(optical.valid());
  // Collect and sort this axis's connections in ascending coordinate.
  std::vector<const Connection*> sorted;
  for (const Connection& conn : connections) {
    if (conn.axis == axis) sorted.push_back(&conn);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const Connection* a, const Connection* b) {
              if (a->coord != b->coord) return a->coord < b->coord;
              return a->lo < b->lo;
            });

  std::vector<Wdm> wdms;
  for (const Connection* conn : sorted) {
    OPERON_CHECK_MSG(
        conn->bits <= static_cast<std::size_t>(optical.wdm_capacity),
        "connection of " << conn->bits << " bits exceeds WDM capacity "
                         << optical.wdm_capacity);
    Wdm* current = wdms.empty() ? nullptr : &wdms.back();
    const bool fits =
        current != nullptr &&
        current->free() >= static_cast<int>(conn->bits) &&
        std::abs(conn->coord - current->coord) <= optical.dis_upper_um;
    if (fits) {
      current->used += static_cast<int>(conn->bits);
      current->lo = std::min(current->lo, conn->lo);
      current->hi = std::max(current->hi, conn->hi);
    } else {
      Wdm wdm;
      wdm.axis = axis;
      wdm.coord = conn->coord;
      wdm.lo = conn->lo;
      wdm.hi = conn->hi;
      wdm.capacity = optical.wdm_capacity;
      wdm.used = static_cast<int>(conn->bits);
      wdms.push_back(wdm);
    }
  }
  return wdms;
}

bool spacing_legal(std::span<const Wdm> wdms, double dis_lower_um) {
  for (std::size_t i = 0; i < wdms.size(); ++i) {
    for (std::size_t j = i + 1; j < wdms.size(); ++j) {
      if (wdms[i].axis != wdms[j].axis) continue;
      if (std::abs(wdms[i].coord - wdms[j].coord) < dis_lower_um - 1e-9) {
        return false;
      }
    }
  }
  return true;
}

void legalize_spacing(std::vector<Wdm>& wdms, double dis_lower_um) {
  // Per axis: sort by coordinate and push each WDM up to at least
  // dis_lower above its predecessor (the one-by-one adjustment of §4.1).
  for (const Axis axis : {Axis::Horizontal, Axis::Vertical}) {
    std::vector<Wdm*> line;
    for (Wdm& wdm : wdms) {
      if (wdm.axis == axis) line.push_back(&wdm);
    }
    std::sort(line.begin(), line.end(),
              [](const Wdm* a, const Wdm* b) { return a->coord < b->coord; });
    for (std::size_t k = 1; k < line.size(); ++k) {
      const double min_coord = line[k - 1]->coord + dis_lower_um;
      if (line[k]->coord < min_coord) line[k]->coord = min_coord;
    }
  }
}

}  // namespace operon::wdm
