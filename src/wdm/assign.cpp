#include "wdm/assign.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "flow/mcmf.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace operon::wdm {

namespace {

/// Degradation rung for a tripped run budget: deterministic greedy
/// index-order fill — each connection's channels go to the first
/// same-axis WDMs with remaining capacity. place_wdms guarantees the
/// axis has sufficient total capacity, so the fill is complete and
/// capacity-respecting (the auditor's invariants); only move distance
/// is sacrificed relative to the flow optimum.
AssignResult identity_assignment(std::span<const Connection> connections,
                                 std::span<const Wdm> wdms,
                                 const std::vector<std::size_t>& conn_ids,
                                 const std::vector<std::size_t>& wdm_ids) {
  AssignResult result;
  result.identity_fallback = true;
  std::vector<std::int64_t> remaining(wdm_ids.size());
  for (std::size_t j = 0; j < wdm_ids.size(); ++j) {
    remaining[j] = wdms[wdm_ids[j]].capacity;
  }
  std::vector<char> wdm_hit(wdm_ids.size(), 0);
  std::size_t next = 0;
  for (std::size_t k = 0; k < conn_ids.size(); ++k) {
    const Connection& conn = connections[conn_ids[k]];
    std::int64_t bits = static_cast<std::int64_t>(conn.bits);
    for (std::size_t j = next; j < wdm_ids.size() && bits > 0; ++j) {
      if (remaining[j] <= 0) {
        if (j == next) ++next;
        continue;
      }
      const std::int64_t take = std::min(bits, remaining[j]);
      remaining[j] -= take;
      bits -= take;
      result.allocations.push_back({conn_ids[k], wdm_ids[j],
                                    static_cast<std::size_t>(take)});
      result.total_move_um += std::abs(conn.coord - wdms[wdm_ids[j]].coord) *
                              static_cast<double>(take);
      wdm_hit[j] = 1;
    }
    if (bits > 0) result.feasible = false;
  }
  result.wdms_used = static_cast<std::size_t>(
      std::count(wdm_hit.begin(), wdm_hit.end(), 1));
  return result;
}

}  // namespace

AssignResult assign_connections(std::span<const Connection> connections,
                                std::span<const Wdm> wdms, Axis axis,
                                const model::OpticalParams& optical,
                                const AssignOptions& options) {
  // Axis-local index maps.
  std::vector<std::size_t> conn_ids, wdm_ids;
  for (std::size_t c = 0; c < connections.size(); ++c) {
    if (connections[c].axis == axis) conn_ids.push_back(c);
  }
  for (std::size_t w = 0; w < wdms.size(); ++w) {
    if (wdms[w].axis == axis) wdm_ids.push_back(w);
  }
  AssignResult result;
  if (conn_ids.empty()) return result;

  // Stage-entry checkpoint: a tripped run budget skips the flow solve
  // entirely and takes the identity rung.
  util::StopToken stop = options.stop;
  if (stop.checkpoint("wdm.assign")) {
    return identity_assignment(connections, wdms, conn_ids, wdm_ids);
  }

  // Node layout: 0 = source, 1 = sink, then connections, then WDMs.
  const std::size_t s = 0, t = 1;
  const std::size_t conn_base = 2;
  const std::size_t wdm_base = conn_base + conn_ids.size();
  flow::MinCostMaxFlow graph(wdm_base + wdm_ids.size());

  std::int64_t demand = 0;
  for (std::size_t k = 0; k < conn_ids.size(); ++k) {
    const Connection& conn = connections[conn_ids[k]];
    graph.add_edge(s, conn_base + k, static_cast<std::int64_t>(conn.bits), 0.0);
    demand += static_cast<std::int64_t>(conn.bits);
  }
  for (std::size_t j = 0; j < wdm_ids.size(); ++j) {
    const Wdm& wdm = wdms[wdm_ids[j]];
    const double usage =
        options.usage_cost + options.usage_rank_cost * static_cast<double>(j);
    graph.add_edge(wdm_base + j, t, wdm.capacity, usage);
  }

  // Connection -> WDM edges within the disu window; cost = normalized move.
  struct EdgeRef {
    std::size_t edge;
    std::size_t conn_k;
    std::size_t wdm_j;
  };
  std::vector<EdgeRef> middle_edges;
  for (std::size_t k = 0; k < conn_ids.size(); ++k) {
    const Connection& conn = connections[conn_ids[k]];
    bool any = false;
    std::size_t nearest = wdm_ids.size();
    double nearest_move = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < wdm_ids.size(); ++j) {
      const Wdm& wdm = wdms[wdm_ids[j]];
      const double move = std::abs(conn.coord - wdm.coord);
      if (move < nearest_move) {
        nearest_move = move;
        nearest = j;
      }
      if (move > optical.dis_upper_um) continue;
      const double cost =
          options.move_cost_weight * move / std::max(optical.dis_upper_um, 1e-9);
      const std::size_t edge = graph.add_edge(
          conn_base + k, wdm_base + j, static_cast<std::int64_t>(conn.bits),
          cost);
      middle_edges.push_back({edge, k, j});
      any = true;
    }
    if (!any) {
      // Legalization may have pushed every WDM past disu; fall back to
      // the nearest one rather than dropping the channels.
      OPERON_CHECK(nearest < wdm_ids.size());
      OPERON_LOG(Warn) << "connection " << conn_ids[k]
                       << " exceeds dis_upper to every WDM; using nearest at "
                       << nearest_move << " um";
      const std::size_t edge = graph.add_edge(
          conn_base + k, wdm_base + nearest,
          static_cast<std::int64_t>(conn.bits), options.move_cost_weight);
      middle_edges.push_back({edge, k, nearest});
    }
  }

  const flow::FlowResult flow_result =
      graph.solve_with_demand(s, t, demand, stop);
  if (flow_result.stopped) {
    // A mid-solve trip leaves a partial flow that would fail the
    // completeness audit; discard it wholesale for the identity rung.
    return identity_assignment(connections, wdms, conn_ids, wdm_ids);
  }
  result.feasible = flow_result.feasible;
  if (!flow_result.feasible) {
    OPERON_LOG(Warn) << "WDM assignment: only " << flow_result.max_flow << "/"
                     << demand << " channels placed on axis "
                     << (axis == Axis::Horizontal ? "H" : "V");
  }

  std::vector<char> wdm_hit(wdm_ids.size(), 0);
  for (const EdgeRef& ref : middle_edges) {
    const flow::Edge& edge = graph.edge(ref.edge);
    if (edge.flow <= 0) continue;
    const Connection& conn = connections[conn_ids[ref.conn_k]];
    result.allocations.push_back({conn_ids[ref.conn_k], wdm_ids[ref.wdm_j],
                                  static_cast<std::size_t>(edge.flow)});
    result.total_move_um +=
        std::abs(conn.coord - wdms[wdm_ids[ref.wdm_j]].coord) *
        static_cast<double>(edge.flow);
    wdm_hit[ref.wdm_j] = 1;
  }
  result.wdms_used = static_cast<std::size_t>(
      std::count(wdm_hit.begin(), wdm_hit.end(), 1));
  return result;
}

WdmPlan plan_wdm_assignment(std::span<const codesign::CandidateSet> sets,
                            const codesign::Selection& selection,
                            const model::OpticalParams& optical,
                            const AssignOptions& options) {
  OPERON_SPAN("wdm.plan_assignment");
  WdmPlan plan;
  plan.connections = extract_connections(sets, selection);

  std::vector<Wdm> horizontal =
      place_wdms(plan.connections, Axis::Horizontal, optical);
  std::vector<Wdm> vertical =
      place_wdms(plan.connections, Axis::Vertical, optical);
  plan.initial_wdms = horizontal.size() + vertical.size();

  plan.wdms = std::move(horizontal);
  plan.wdms.insert(plan.wdms.end(), vertical.begin(), vertical.end());
  legalize_spacing(plan.wdms, optical.dis_lower_um);

  for (const Axis axis : {Axis::Horizontal, Axis::Vertical}) {
    AssignResult result =
        assign_connections(plan.connections, plan.wdms, axis, optical, options);
    plan.final_wdms += result.wdms_used;
    plan.total_move_um += result.total_move_um;
    plan.feasible = plan.feasible && result.feasible;
    plan.identity_fallback = plan.identity_fallback || result.identity_fallback;
    plan.allocations.insert(plan.allocations.end(),
                            result.allocations.begin(),
                            result.allocations.end());
  }
  obs::add_counter("wdm.assignments");
  obs::set_gauge("wdm.identity_fallback", plan.identity_fallback ? 1.0 : 0.0);
  obs::set_gauge("wdm.connections", static_cast<double>(plan.connections.size()));
  obs::set_gauge("wdm.initial_wdms", static_cast<double>(plan.initial_wdms));
  obs::set_gauge("wdm.final_wdms", static_cast<double>(plan.final_wdms));
  return plan;
}

}  // namespace operon::wdm
