#pragma once
// WDM placement (§4.1). The selected candidates' optical point-to-point
// connections are binned by dominant direction; per axis, a greedy sweep
// in coordinate order packs connections onto shared WDM waveguides
// subject to the channel capacity and the `disu` attraction window, and
// a legalization pass enforces the `disl` crosstalk spacing between
// neighboring WDMs.

#include <cstddef>
#include <span>
#include <vector>

#include "codesign/candidate.hpp"
#include "codesign/selection.hpp"
#include "model/params.hpp"

namespace operon::wdm {

enum class Axis : unsigned char { Horizontal, Vertical };

/// One optical point-to-point connection of a selected candidate.
struct Connection {
  std::size_t net = 0;    ///< owning hyper net id
  std::size_t bits = 0;   ///< channels required
  Axis axis = Axis::Horizontal;
  double coord = 0.0;     ///< y for Horizontal, x for Vertical
  double lo = 0.0;        ///< span start along the running direction
  double hi = 0.0;        ///< span end
};

struct Wdm {
  Axis axis = Axis::Horizontal;
  double coord = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  int capacity = 0;
  int used = 0;           ///< channels occupied

  int free() const { return capacity - used; }
};

/// Dominant-direction classification of the selected optical segments.
std::vector<Connection> extract_connections(
    std::span<const codesign::CandidateSet> sets,
    const codesign::Selection& selection);

/// Greedy sweep placement (§4.1) over one axis; returns the WDMs with
/// their `used` fields reflecting the sequential assignment.
std::vector<Wdm> place_wdms(std::span<const Connection> connections,
                            Axis axis, const model::OpticalParams& optical);

/// Shift WDMs apart (in coordinate order, one by one) until adjacent
/// same-axis WDMs are at least `dis_lower_um` apart.
void legalize_spacing(std::vector<Wdm>& wdms, double dis_lower_um);

/// True when no two same-axis WDMs are closer than `dis_lower_um`.
bool spacing_legal(std::span<const Wdm> wdms, double dis_lower_um);

}  // namespace operon::wdm
