#pragma once
// Network-flow WDM assignment (§4.2, Fig 7). A min-cost max-flow network
// re-allocates connections onto the placed WDMs concurrently: source ->
// connection nodes (capacity = channel demand), connection -> WDM edges
// (allowed when the perpendicular move is within disu; cost = normalized
// move distance), WDM -> sink (capacity = WDM channel capacity; cost =
// usage cost, dominant so WDM consolidation is emphasized). Capacities
// are integral, so the optimum is integral (total unimodularity) and a
// connection's channels may split across neighboring WDMs (Fig 6b).

#include <span>
#include <vector>

#include "model/params.hpp"
#include "util/stop.hpp"
#include "wdm/wdm.hpp"

namespace operon::wdm {

struct AssignOptions {
  /// Base per-channel cost of occupying a WDM; must dominate move costs.
  double usage_cost = 10.0;
  /// Additional per-channel cost per WDM rank, creating the gradient that
  /// concentrates flow into fewer WDMs.
  double usage_rank_cost = 1.0;
  /// Weight of the normalized (distance / disu) move cost.
  double move_cost_weight = 0.5;
  /// Run-wide budget: checkpointed at stage entry and per flow
  /// augmentation. A trip replaces the flow optimum with the identity
  /// (greedy index-order) assignment — still capacity-respecting and
  /// complete, just not move-optimal.
  util::StopToken stop;
};

/// One piece of a (possibly split) connection-to-WDM allocation.
struct ChannelAllocation {
  std::size_t connection = 0;  ///< index into the connections span
  std::size_t wdm = 0;         ///< index into the wdms span
  std::size_t bits = 0;
};

struct AssignResult {
  std::vector<ChannelAllocation> allocations;
  std::size_t wdms_used = 0;       ///< WDMs with non-zero flow
  double total_move_um = 0.0;      ///< channel-weighted perpendicular moves
  bool feasible = true;            ///< all channels allocated
  /// True when a run-budget trip replaced the flow optimum with the
  /// greedy identity assignment (degradation rung).
  bool identity_fallback = false;
};

/// Solve the assignment for one axis (connections and WDMs of the other
/// axis are ignored). Requires the WDMs to come from place_wdms so total
/// capacity is sufficient.
AssignResult assign_connections(std::span<const Connection> connections,
                                std::span<const Wdm> wdms, Axis axis,
                                const model::OpticalParams& optical,
                                const AssignOptions& options = {});

/// Full §4 pipeline over both axes: place, legalize, assign; reports the
/// Fig 8 counters.
struct WdmPlan {
  std::vector<Connection> connections;
  std::vector<Wdm> wdms;                        ///< placed + legalized
  std::vector<ChannelAllocation> allocations;   ///< final (flow) assignment
  std::size_t initial_wdms = 0;                 ///< after placement
  std::size_t final_wdms = 0;                   ///< with flow > 0
  double total_move_um = 0.0;
  bool feasible = true;
  /// True when any axis fell back to the identity assignment because the
  /// run budget tripped.
  bool identity_fallback = false;
};

WdmPlan plan_wdm_assignment(std::span<const codesign::CandidateSet> sets,
                            const codesign::Selection& selection,
                            const model::OpticalParams& optical,
                            const AssignOptions& options = {});

}  // namespace operon::wdm
