#pragma once
// Wavelength (channel-index) assignment within each WDM waveguide. The
// flow stage decides how many channels of each connection a WDM carries;
// this step pins them to concrete wavelength indices 0..capacity-1 so
// that no two signals on one waveguide share a carrier — the "without
// crosstalk issues between different channels" property of §2.2 made
// explicit. Channels of one (connection, WDM) allocation are kept
// contiguous where possible (simpler mux/demux hardware).

#include <span>
#include <vector>

#include "wdm/assign.hpp"

namespace operon::wdm {

struct WavelengthAssignment {
  std::size_t allocation = 0;  ///< index into WdmPlan::allocations
  std::vector<int> channels;   ///< wavelength indices on that WDM
};

struct WavelengthPlan {
  std::vector<WavelengthAssignment> assignments;  ///< per allocation
  /// Highest channel index used per WDM + 1 (<= capacity when feasible).
  std::vector<int> channels_used;
  bool feasible = true;
};

/// First-fit contiguous assignment per WDM. Feasible whenever the flow
/// respected capacities (it does); returns the per-allocation channels.
WavelengthPlan assign_wavelengths(const WdmPlan& plan,
                                  const model::OpticalParams& optical);

/// Validation: every channel of every WDM used at most once, all
/// allocations fully assigned, indices within capacity.
bool wavelengths_valid(const WdmPlan& plan, const WavelengthPlan& wavelengths,
                       const model::OpticalParams& optical);

}  // namespace operon::wdm
