#!/usr/bin/env bash
# Chaos smoke for the serve crash-safety contract (DESIGN.md "Crash
# safety & recovery"): SIGKILL the daemon mid-batch, restart it with
# --recover, drain, and require the final ledger to be semantically
# identical to an uninterrupted reference run — with zero recompute of
# jobs whose records survived the crash.
#
# Usage: scripts/chaos_smoke.sh [BUILD_DIR] [OUT_DIR] [JOB_THREADS]
#   BUILD_DIR    cmake build tree holding tools/ (default: build)
#   OUT_DIR      scratch directory, wiped on entry (default: /tmp/operon_chaos)
#   JOB_THREADS  per-job --threads for both daemons (default: 1); the
#                ledger must be bit-identical at any value, so CI runs
#                the smoke at 1 and 0 (all cores) and compares.
#
# Exit 0 when the contract holds; non-zero with a diagnostic otherwise.

set -euo pipefail

SCRIPT_DIR=$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")" && pwd)

BUILD_DIR=${1:-build}
OUT=${2:-/tmp/operon_chaos}
JOB_THREADS=${3:-1}
CLI="$BUILD_DIR/tools/operon_cli"
SERVE="$BUILD_DIR/tools/operon_serve"
SEEDS="1 2 3 4 5 6"

rm -rf "$OUT"
mkdir -p "$OUT"

fail() { echo "chaos_smoke: FAIL: $*" >&2; exit 1; }

wait_socket() {
  for _ in $(seq 1 100); do
    test -S "$1" && return 0
    sleep 0.05
  done
  fail "socket $1 never appeared"
}

submit() { # submit SOCKET EXTRA_FLAGS...
  local sock=$1; shift
  local seed=$1; shift
  # Sized so one job runs ~100ms: big enough that the SIGKILL below
  # lands mid-batch (some records on disk, some jobs in flight), small
  # enough that the whole smoke stays in CI seconds.
  "$CLI" submit --socket "$sock" --groups 400 --bits-lo 4 --bits-hi 12 \
    --seed "$seed" "$@"
}

# --- Reference: the same batch, uninterrupted -----------------------------
"$SERVE" --socket "$OUT/ref.sock" --ledger "$OUT/reference.jsonl" \
  --workers 2 --job-threads "$JOB_THREADS" --log-level warn &
REF_PID=$!
wait_socket "$OUT/ref.sock"
for seed in $SEEDS; do
  submit "$OUT/ref.sock" "$seed" --wait > /dev/null
done
"$CLI" submit --socket "$OUT/ref.sock" --do shutdown > /dev/null
wait "$REF_PID" || fail "reference daemon exited non-zero"

# --- Chaos run: SIGKILL mid-batch -----------------------------------------
"$SERVE" --socket "$OUT/serve.sock" --ledger "$OUT/ledger.jsonl" \
  --journal "$OUT/journal.jsonl" --workers 2 \
  --job-threads "$JOB_THREADS" --log-level warn &
PID=$!
wait_socket "$OUT/serve.sock"
for seed in $SEEDS; do
  submit "$OUT/serve.sock" "$seed" > /dev/null  # no --wait: leave work queued
done
sleep 0.15  # let some jobs finish so the kill lands mid-batch, not pre-batch
kill -KILL "$PID"
wait "$PID" 2> /dev/null || true
rm -f "$OUT/serve.sock"  # SIGKILL leaves the stale socket file behind
SURVIVED=$(grep -c . "$OUT/ledger.jsonl" 2> /dev/null || true)
SURVIVED=${SURVIVED:-0}
echo "chaos_smoke: SIGKILL landed with $SURVIVED record(s) on disk"

# --- Restart with --recover, drain through client retries ------------------
"$SERVE" --socket "$OUT/serve.sock" --ledger "$OUT/ledger.jsonl" \
  --journal "$OUT/journal.jsonl" --recover --workers 2 \
  --job-threads "$JOB_THREADS" --log-level warn &
PID=$!
wait_socket "$OUT/serve.sock"
# Resubmit the whole batch with --wait: recovered-and-finished jobs and
# crash survivors are cache hits; only work lost mid-flight recomputes.
# --retries exercises the client backoff path against a daemon that is
# still replaying its journal.
for seed in $SEEDS; do
  submit "$OUT/serve.sock" "$seed" --wait --retries 5 \
    --retry-backoff-ms 50 > /dev/null
done
"$CLI" submit --socket "$OUT/serve.sock" --do stats > "$OUT/stats.json"
"$CLI" submit --socket "$OUT/serve.sock" --do shutdown > /dev/null
wait "$PID" || fail "recovered daemon exited non-zero"

# --- The contract ----------------------------------------------------------
# 1. Final ledger strictly parseable (startup repaired any torn tail)
#    and semantically identical to the uninterrupted reference.
python3 "$SCRIPT_DIR/check_ledger.py" "$OUT/ledger.jsonl" --min-records 6
"$CLI" compare "$OUT/reference.jsonl" "$OUT/ledger.jsonl" \
  || fail "post-recovery ledger drifted from the uninterrupted reference"

# 2. Zero recompute of surviving records: every record present before
#    the kill must have been served from cache, never recomputed (the
#    ledger would then hold a duplicate key, failing compare above; the
#    stats cross-check makes the count explicit).
python3 - "$OUT/stats.json" "$SURVIVED" <<'EOF'
import json, sys
stats = json.load(open(sys.argv[1]))
survived = int(sys.argv[2])
metrics = {p["name"]: p for p in stats["stats"]["metrics"]}
misses = metrics.get("serve.cache.miss", {}).get("value", 0)
assert misses + survived >= 6, (
    f"batch not covered: {misses} computed + {survived} survived < 6")
assert misses <= 6 - survived + 1, (
    f"recomputed surviving work: {misses} misses with {survived} records "
    "already on disk")
EOF

echo "chaos_smoke: OK (job-threads=$JOB_THREADS, $SURVIVED survived the kill)"
