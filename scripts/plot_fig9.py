#!/usr/bin/env python3
"""Render the Fig 9 hotspot CSVs written by `bench/fig9_hotspots`.

Usage:
    build/bench/fig9_hotspots            # writes fig9_glow.csv, fig9_operon.csv
    python3 scripts/plot_fig9.py fig9_glow.csv fig9_operon.csv -o fig9.png

Produces the paper's 2x2 panel: (a) GLOW optical, (b) GLOW electrical,
(c) OPERON optical, (d) OPERON electrical, on a shared per-layer color
scale so the GLOW/OPERON comparison is visual. Requires matplotlib; falls
back to an ASCII rendering when it is unavailable.
"""

import argparse
import csv
import math
import sys


def load(path):
    cells = 0
    rows = []
    with open(path, newline="") as fh:
        for row in csv.DictReader(fh):
            rows.append((int(row["x"]), int(row["y"]),
                         float(row["optical_pj"]), float(row["electrical_pj"])))
            cells = max(cells, int(row["x"]) + 1, int(row["y"]) + 1)
    optical = [[0.0] * cells for _ in range(cells)]
    electrical = [[0.0] * cells for _ in range(cells)]
    for x, y, o, e in rows:
        optical[y][x] = o
        electrical[y][x] = e
    return optical, electrical


def ascii_panel(grid, title):
    peak = max((v for row in grid for v in row), default=0.0)
    print(title)
    for row in reversed(grid):  # chip +y up
        line = "".join(
            "." if peak <= 0 or v <= 0 else str(min(9, int(10 * v / peak)))
            for v in row)
        print(line)
    print()


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("glow_csv")
    parser.add_argument("operon_csv")
    parser.add_argument("-o", "--out", default="fig9.png")
    args = parser.parse_args()

    glow_opt, glow_elec = load(args.glow_csv)
    operon_opt, operon_elec = load(args.operon_csv)

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib unavailable; ASCII fallback\n", file=sys.stderr)
        for grid, title in [(glow_opt, "(a) GLOW optical"),
                            (glow_elec, "(b) GLOW electrical"),
                            (operon_opt, "(c) OPERON optical"),
                            (operon_elec, "(d) OPERON electrical")]:
            ascii_panel(grid, title)
        return

    fig, axes = plt.subplots(2, 2, figsize=(9, 8))
    panels = [(glow_opt, "(a) GLOW optical"),
              (glow_elec, "(b) GLOW electrical"),
              (operon_opt, "(c) OPERON optical"),
              (operon_elec, "(d) OPERON electrical")]
    # Shared scale per layer (optical: a/c, electrical: b/d).
    opt_max = max(max(max(r) for r in glow_opt),
                  max(max(r) for r in operon_opt), 1e-12)
    elec_max = max(max(max(r) for r in glow_elec),
                   max(max(r) for r in operon_elec), 1e-12)
    for ax, (grid, title) in zip(axes.flat, panels):
        vmax = opt_max if "optical" in title else elec_max
        im = ax.imshow(grid, origin="lower", cmap="inferno", vmin=0, vmax=vmax)
        ax.set_title(title, fontsize=10)
        ax.set_xticks([])
        ax.set_yticks([])
        fig.colorbar(im, ax=ax, fraction=0.046, label="pJ/cell")
    fig.suptitle("Fig 9: power distribution, GLOW vs OPERON")
    fig.tight_layout()
    fig.savefig(args.out, dpi=150)
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
