#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file (the --trace-out format).

Checks the subset of the trace-event schema that chrome://tracing and
Perfetto require to load the file:

  * top level is an object with a "traceEvents" array;
  * every event carries name / ph / ts / pid / tid;
  * "ph" is a known phase letter;
  * complete events ("X") have a non-negative "dur";
  * ts/dur/pid/tid are numbers, name/cat are strings.

Usage: check_trace.py TRACE.json [--min-events N]
Exit code 0 when valid, 1 with a diagnostic on the first violation.
"""

import argparse
import json
import sys

# Phase letters from the trace-event format spec (complete, duration,
# instant, counter, async, flow, metadata, sample, object life-cycle).
KNOWN_PHASES = set("XBEiICbnesftPNOD")

REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")


def fail(message: str) -> None:
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_event(index: int, event: object) -> None:
    if not isinstance(event, dict):
        fail(f"traceEvents[{index}] is not an object")
    for key in REQUIRED_KEYS:
        if key not in event:
            fail(f"traceEvents[{index}] missing required key '{key}'")
    if not isinstance(event["name"], str) or not event["name"]:
        fail(f"traceEvents[{index}].name must be a non-empty string")
    if "cat" in event and not isinstance(event["cat"], str):
        fail(f"traceEvents[{index}].cat must be a string")
    phase = event["ph"]
    if not isinstance(phase, str) or phase not in KNOWN_PHASES:
        fail(f"traceEvents[{index}].ph {phase!r} is not a known phase")
    for key in ("ts", "pid", "tid"):
        if isinstance(event[key], bool) or not isinstance(
            event[key], (int, float)
        ):
            fail(f"traceEvents[{index}].{key} must be a number")
    if event["ts"] < 0:
        fail(f"traceEvents[{index}].ts must be >= 0")
    if phase == "X":
        if "dur" not in event:
            fail(f"traceEvents[{index}] is an 'X' event without 'dur'")
        if isinstance(event["dur"], bool) or not isinstance(
            event["dur"], (int, float)
        ):
            fail(f"traceEvents[{index}].dur must be a number")
        if event["dur"] < 0:
            fail(f"traceEvents[{index}].dur must be >= 0")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="trace JSON file to validate")
    parser.add_argument(
        "--min-events",
        type=int,
        default=1,
        help="fail when fewer events are present (default: 1)",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot load '{args.trace}': {error}")

    if not isinstance(document, dict):
        fail("top level must be an object (the JSON Object Format)")
    if "traceEvents" not in document:
        fail("missing 'traceEvents'")
    events = document["traceEvents"]
    if not isinstance(events, list):
        fail("'traceEvents' must be an array")
    for index, event in enumerate(events):
        check_event(index, event)
    if len(events) < args.min_events:
        fail(f"expected at least {args.min_events} events, got {len(events)}")

    print(f"check_trace: OK: {len(events)} events in '{args.trace}'")


if __name__ == "__main__":
    main()
