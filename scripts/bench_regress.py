#!/usr/bin/env python3
"""Bench trajectory and regression tooling over run-ledger JSONL files.

Two subcommands:

  point    Condense a ledger (e.g. from `bench/table1_main --ledger-out`)
           into one trajectory point and append it to a BENCH_*.json
           history file (a JSON array, one element per recorded build).
           The point keeps the headline semantic numbers per (case,
           solver) plus wall-clock, keyed by the build's git describe.

  compare  Python mirror of `operon_cli compare`: pair two ledgers by
           (case, seed, options fingerprint) and demand exact semantic
           equality; timing gauges are held to a ratio threshold and
           reported, not gated, unless --fail-on-timing.

Usage:
  bench_regress.py point --ledger runs.jsonl --out BENCH_table1.json
  bench_regress.py compare baseline.jsonl current.jsonl [--json]
                   [--timing-ratio 1.5] [--timing-min 0.05]
                   [--fail-on-timing]

Exit codes: 0 ok; 1 usage/input error; 2 semantic drift;
3 timing regression (compare, only with --fail-on-timing).
"""

import argparse
import json
import sys


def fail(message: str, code: int = 1) -> None:
    print(f"bench_regress: FAIL: {message}", file=sys.stderr)
    sys.exit(code)


def read_ledger(path: str) -> list:
    records = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as error:
                    fail(f"{path} line {line_number}: not valid JSON: {error}")
    except OSError as error:
        fail(f"cannot load '{path}': {error}")
    return records


def gauge(points: list, name: str):
    for point in points:
        if point.get("name") == name and point.get("kind") == "gauge":
            return point.get("value")
    return None


# -- point -----------------------------------------------------------------


def cmd_point(args: argparse.Namespace) -> int:
    records = read_ledger(args.ledger)
    if not records:
        fail(f"ledger '{args.ledger}' has no records")

    entries = []
    seen = set()
    for record in records:
        # table1 re-runs each case serially when --threads != 1; the
        # first occurrence per (case, solver) is the measured run.
        key = (record["case"], record["solver"])
        if key in seen:
            continue
        seen.add(key)
        entries.append(
            {
                "case": record["case"],
                "seed": record["seed"],
                "solver": record["solver"],
                "options": record["options"],
                "threads": record["threads"],
                "degraded": record["degraded"],
                "power_pj": gauge(record["metrics"], "core.power_pj"),
                "optical_nets": gauge(record["metrics"], "core.optical_nets"),
                "electrical_nets": gauge(
                    record["metrics"], "core.electrical_nets"
                ),
                "time_total_s": gauge(record["timings"], "time.total_s"),
            }
        )

    point = {"git": records[0]["git"], "entries": entries}
    if args.label:
        point["label"] = args.label

    try:
        with open(args.out, "r", encoding="utf-8") as handle:
            history = json.load(handle)
        if not isinstance(history, list):
            fail(f"'{args.out}' exists but is not a JSON array")
    except FileNotFoundError:
        history = []
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot load '{args.out}': {error}")

    history.append(point)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(history, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"bench_regress: appended point '{point['git']}' "
        f"({len(entries)} entries) to '{args.out}' "
        f"({len(history)} point(s) total)"
    )
    return 0


# -- compare ---------------------------------------------------------------


def ledger_key(record: dict) -> str:
    return f"{record['case']}/{record['seed']}/{record['options']}"


def semantic_points(record: dict) -> list:
    points = [p for p in record["metrics"] if not p.get("timing")]
    return sorted(points, key=lambda p: p["name"])


def semantic_difference(a: dict, b: dict) -> str:
    if a["degraded"] != b["degraded"]:
        return f"degraded: {a['degraded']} vs {b['degraded']}"
    if a.get("diagnostics", {}) != b.get("diagnostics", {}):
        return "diagnostic summary differs"
    lhs, rhs = semantic_points(a), semantic_points(b)
    by_name = {p["name"]: p for p in rhs}
    for point in lhs:
        if point["name"] not in by_name:
            return f"extra metric '{point['name']}'"
        if point != by_name[point["name"]]:
            return f"metric '{point['name']}' differs"
    for point in rhs:
        if point["name"] not in {p["name"] for p in lhs}:
            return f"missing metric '{point['name']}'"
    return ""


def compare_timings(a: dict, b: dict, args: argparse.Namespace) -> list:
    findings = []
    after = {
        p["name"]: p["value"]
        for p in b["timings"]
        if p.get("kind") == "gauge"
    }
    for point in a["timings"]:
        if point.get("kind") != "gauge":
            continue
        if point["name"].startswith("pool."):
            continue  # telemetry counters scale with thread count
        before = point["value"]
        if before < args.timing_min or point["name"] not in after:
            continue
        current = after[point["name"]]
        if current >= args.timing_ratio * before:
            findings.append(
                f"{point['name']}: {before:.3f} -> {current:.3f} "
                f"(x{current / before:.2f} >= x{args.timing_ratio:.2f})"
            )
    return findings


def group_by_key(records: list) -> dict:
    groups = {}
    for record in records:
        groups.setdefault(ledger_key(record), []).append(record)
    return groups


def cmd_compare(args: argparse.Namespace) -> int:
    before = group_by_key(read_ledger(args.baseline))
    after = group_by_key(read_ledger(args.current))

    matched = 0
    only_baseline, only_current, semantic, timing = [], [], [], []
    for key in sorted(before):
        others = after.get(key, [])
        only_baseline.extend([key] * max(0, len(before[key]) - len(others)))
        for a, b in zip(before[key], others):
            matched += 1
            difference = semantic_difference(a, b)
            if difference:
                semantic.append({"key": key, "detail": difference})
            for finding in compare_timings(a, b, args):
                timing.append({"key": key, "detail": finding})
    for key in sorted(after):
        extra = len(after[key]) - len(before.get(key, []))
        only_current.extend([key] * max(0, extra))

    semantic_ok = not (only_baseline or only_current or semantic)
    if not semantic_ok:
        verdict = "semantic-drift"
    elif timing:
        verdict = "timing-regression"
    else:
        verdict = "ok"

    if args.json:
        print(
            json.dumps(
                {
                    "verdict": verdict,
                    "matched": matched,
                    "only_baseline": only_baseline,
                    "only_current": only_current,
                    "semantic": semantic,
                    "timing": timing,
                }
            )
        )
    else:
        print(f"bench_regress: {verdict} | {matched} pair(s) matched")
        for key in only_baseline:
            print(f"  only in baseline: {key}")
        for key in only_current:
            print(f"  only in current:  {key}")
        for finding in semantic:
            print(f"  semantic {finding['key']}: {finding['detail']}")
        for finding in timing:
            print(f"  timing {finding['key']}: {finding['detail']}")

    if not semantic_ok:
        return 2
    if timing and args.fail_on_timing:
        return 3
    return 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    point = commands.add_parser("point", help="append a trajectory point")
    point.add_argument("--ledger", required=True, help="input ledger JSONL")
    point.add_argument(
        "--out", required=True, help="BENCH_*.json history file to append to"
    )
    point.add_argument("--label", default="", help="optional point label")

    compare = commands.add_parser("compare", help="compare two ledgers")
    compare.add_argument("baseline", help="baseline ledger JSONL")
    compare.add_argument("current", help="current ledger JSONL")
    compare.add_argument("--timing-ratio", type=float, default=1.5)
    compare.add_argument("--timing-min", type=float, default=0.05)
    compare.add_argument("--fail-on-timing", action="store_true")
    compare.add_argument("--json", action="store_true")

    args = parser.parse_args()
    if args.command == "point":
        sys.exit(cmd_point(args))
    sys.exit(cmd_compare(args))


if __name__ == "__main__":
    main()
