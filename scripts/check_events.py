#!/usr/bin/env python3
"""Validate a structured event log (the --events-out JSONL format).

One JSON object per line (blank lines tolerated), the obs::EventLog
schema:

  * members are drawn from the strict whitelist: seq / ts_us / level /
    name / message / source / job / case / seed / tenant;
  * seq, level, and name are required; seq is a positive integer;
  * level is one of debug / info / warn / error;
  * per-source seq streams are contiguous and monotonic (1, 2, 3, ...) —
    the determinism contract the serve gates compare;
  * ts_us is a non-negative number, non-decreasing over the file
    (one emitter, one clock).

Usage: check_events.py EVENTS.jsonl [--min-events N]
Exit code 0 when valid, 1 with a diagnostic on the first violation.
"""

import argparse
import json
import sys

ALLOWED_KEYS = {
    "seq",
    "ts_us",
    "level",
    "name",
    "message",
    "source",
    "job",
    "case",
    "seed",
    "tenant",
}

REQUIRED_KEYS = ("seq", "level", "name")

KNOWN_LEVELS = {"debug", "info", "warn", "error"}


def fail(message: str) -> None:
    print(f"check_events: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_uint(line_no: int, key: str, value: object) -> int:
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        fail(f"line {line_no}: '{key}' must be a non-negative integer")
    return value


def check_event(line_no: int, event: object) -> dict:
    if not isinstance(event, dict):
        fail(f"line {line_no}: event is not a JSON object")
    for key in event:
        if key not in ALLOWED_KEYS:
            fail(f"line {line_no}: unknown member '{key}'")
    for key in REQUIRED_KEYS:
        if key not in event:
            fail(f"line {line_no}: missing required member '{key}'")
    if check_uint(line_no, "seq", event["seq"]) < 1:
        fail(f"line {line_no}: 'seq' must be >= 1")
    if event["level"] not in KNOWN_LEVELS:
        fail(f"line {line_no}: unknown level {event['level']!r}")
    if not isinstance(event["name"], str) or not event["name"]:
        fail(f"line {line_no}: 'name' must be a non-empty string")
    for key in ("message", "source", "case", "tenant"):
        if key in event and not isinstance(event[key], str):
            fail(f"line {line_no}: '{key}' must be a string")
    for key in ("job", "seed"):
        if key in event:
            check_uint(line_no, key, event[key])
    if "ts_us" in event:
        value = event["ts_us"]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            fail(f"line {line_no}: 'ts_us' must be a number")
        if value < 0:
            fail(f"line {line_no}: 'ts_us' must be >= 0")
    return event


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("events", help="events JSONL file to validate")
    parser.add_argument(
        "--min-events",
        type=int,
        default=1,
        help="fail when fewer events are present (default: 1)",
    )
    args = parser.parse_args()

    try:
        with open(args.events, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as error:
        fail(f"cannot load '{args.events}': {error}")

    count = 0
    next_seq = {}  # source -> expected next seq
    last_ts = 0.0
    for line_no, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as error:
            fail(f"line {line_no}: not valid JSON: {error}")
        event = check_event(line_no, event)
        count += 1
        source = event.get("source", "")
        expected = next_seq.get(source, 1)
        if event["seq"] != expected:
            fail(
                f"line {line_no}: source {source!r} seq {event['seq']} "
                f"(expected {expected} — per-source streams are "
                f"contiguous and monotonic)"
            )
        next_seq[source] = expected + 1
        ts = event.get("ts_us", last_ts)
        if ts < last_ts:
            fail(
                f"line {line_no}: ts_us {ts} went backwards "
                f"(previous {last_ts})"
            )
        last_ts = ts

    if count < args.min_events:
        fail(f"expected at least {args.min_events} events, got {count}")

    print(
        f"check_events: OK: {count} events across {len(next_seq)} "
        f"source(s) in '{args.events}'"
    )


if __name__ == "__main__":
    main()
