#!/usr/bin/env python3
"""Validate a run-ledger JSONL file (the --ledger-out format).

Mirrors the strict C++ parser in src/obs/ledger.cpp: every non-blank
line must be a schema-1 or schema-2 record with the identity key (case,
seed, options fingerprint), provenance (git, solver, threads), the
degraded / diagnostics summary, and well-formed metric points — semantic
points in "metrics" (never timing-flagged), timing gauges in "timings".
Schema-2 records additionally require a non-negative integer
"trip_checkpoint" (run-budget cancellation; 0 = ran to completion);
schema-3 records additionally require string "winning_solver" and
"portfolio_order" fields (portfolio races; both empty for plain
solvers).

Usage: check_ledger.py LEDGER.jsonl [--min-records N] [--allow-torn-tail]
Exit code 0 when valid, 1 with a diagnostic on the first violation.

--allow-torn-tail tolerates a malformed FINAL line only (a daemon killed
mid-append leaves exactly that wreckage; read_ledger_salvage skips it the
same way) and prints a notice. A malformed line anywhere else is still a
hard failure — crashes tear tails, not middles.
"""

import argparse
import json
import sys

SCHEMA_VERSIONS = (1, 2, 3)
HISTOGRAM_BUCKETS = 14  # len(histogram_bounds) + 1, see src/obs/metrics.cpp
KINDS = ("counter", "gauge", "histogram")


class Violation(Exception):
    """One line failed validation; main() decides whether it is fatal."""


def fail(message: str) -> None:
    raise Violation(message)


def die(message: str) -> None:
    print(f"check_ledger: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def is_number(value: object) -> bool:
    return not isinstance(value, bool) and isinstance(value, (int, float))


def is_uint(value: object) -> bool:
    return not isinstance(value, bool) and isinstance(value, int) and value >= 0


def check_point(where: str, point: object) -> None:
    if not isinstance(point, dict):
        fail(f"{where} is not an object")
    name = point.get("name")
    if not isinstance(name, str) or not name:
        fail(f"{where}.name must be a non-empty string")
    kind = point.get("kind")
    if kind not in KINDS:
        fail(f"{where} ('{name}') has unknown kind {kind!r}")
    if "timing" in point and point["timing"] is not True:
        fail(f"{where} ('{name}').timing must be true when present")
    if kind == "counter":
        if not is_uint(point.get("value")):
            fail(f"{where} ('{name}') counter value must be a non-negative int")
    elif kind == "gauge":
        if not is_number(point.get("value")):
            fail(f"{where} ('{name}') gauge value must be a number")
    else:  # histogram
        if not is_uint(point.get("count")):
            fail(f"{where} ('{name}') histogram count must be a non-negative int")
        for key in ("sum", "min", "max"):
            if not is_number(point.get(key)):
                fail(f"{where} ('{name}').{key} must be a number")
        buckets = point.get("buckets")
        if not isinstance(buckets, list) or len(buckets) != HISTOGRAM_BUCKETS:
            fail(
                f"{where} ('{name}') must have exactly "
                f"{HISTOGRAM_BUCKETS} buckets"
            )
        if not all(is_uint(b) for b in buckets):
            fail(f"{where} ('{name}') buckets must be non-negative ints")


def check_record(line_number: int, record: object) -> None:
    where = f"line {line_number}"
    if not isinstance(record, dict):
        fail(f"{where}: record is not an object")
    if record.get("schema") not in SCHEMA_VERSIONS:
        fail(
            f"{where}: schema {record.get('schema')!r} unsupported "
            f"(accepting {SCHEMA_VERSIONS})"
        )
    for key in ("case", "git", "options", "solver"):
        if not isinstance(record.get(key), str) or not record[key]:
            fail(f"{where}: '{key}' must be a non-empty string")
    for key in ("seed", "threads"):
        if not is_uint(record.get(key)):
            fail(f"{where}: '{key}' must be a non-negative integer")
    if not isinstance(record.get("degraded"), bool):
        fail(f"{where}: 'degraded' must be a boolean")
    if record["schema"] >= 2 and not is_uint(record.get("trip_checkpoint")):
        fail(f"{where}: 'trip_checkpoint' must be a non-negative integer")
    if record["schema"] >= 3:
        for key in ("winning_solver", "portfolio_order"):
            if not isinstance(record.get(key), str):
                fail(f"{where}: '{key}' must be a string")
    diagnostics = record.get("diagnostics")
    if not isinstance(diagnostics, dict):
        fail(f"{where}: 'diagnostics' must be an object")
    for code, count in diagnostics.items():
        if not is_uint(count):
            fail(f"{where}: diagnostic count for '{code}' must be an int")
    for key in ("metrics", "timings"):
        points = record.get(key)
        if not isinstance(points, list):
            fail(f"{where}: '{key}' must be an array")
        for index, point in enumerate(points):
            check_point(f"{where}: {key}[{index}]", point)
    for point in record["metrics"]:
        if point.get("timing"):
            fail(
                f"{where}: timing-flagged point '{point['name']}' in the "
                "semantic metrics array"
            )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("ledger", help="ledger JSONL file to validate")
    parser.add_argument(
        "--min-records",
        type=int,
        default=1,
        help="fail when fewer records are present (default: 1)",
    )
    parser.add_argument(
        "--allow-torn-tail",
        action="store_true",
        help="tolerate a malformed final line (crash wreckage) with a notice",
    )
    args = parser.parse_args()

    try:
        with open(args.ledger, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as error:
        die(f"cannot load '{args.ledger}': {error}")

    last_nonblank = max(
        (number for number, line in enumerate(lines, start=1) if line.strip()),
        default=0,
    )
    records = 0
    for line_number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                fail(f"line {line_number}: not valid JSON: {error}")
            check_record(line_number, record)
        except Violation as violation:
            if args.allow_torn_tail and line_number == last_nonblank:
                print(
                    f"check_ledger: NOTE: torn tail skipped ({violation})",
                    file=sys.stderr,
                )
                continue
            die(str(violation))
        records += 1

    if records < args.min_records:
        die(f"expected at least {args.min_records} records, got {records}")

    print(f"check_ledger: OK: {records} record(s) in '{args.ledger}'")


if __name__ == "__main__":
    main()
