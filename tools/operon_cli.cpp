// operon_cli — command-line front end for the OPERON library.
//
//   operon_cli gen    --case I2 --out design.txt       # or --groups/--bits
//   operon_cli info   --in design.txt
//   operon_cli route  --in design.txt [--solver lr|ilp|mip|portfolio]
//                     [--portfolio-order lr,ilp] [--portfolio-lanes 2]
//                     [--portfolio-history runs.jsonl]
//                     [--ilp-limit 20] [--lm 20] [--report out.json]
//                     [--svg out.svg] [--per-net] [--no-timings]
//                     [--trace-out t.json] [--metrics-out m.json]
//                     [--ledger-out runs.jsonl] [--heartbeat-ms 100]
//                     [--time-limit 0.5] [--stop-at-checkpoint N]
//                     [--watchdog-ms 5000]
//   operon_cli stress --faults [--seeds 200] [--threads N]
//                     [--time-limit-sweep]
//
// route and stress install SIGINT/SIGTERM handlers that flip the
// session stop token: an interrupted run stops at its next checkpoint,
// completes on the degradation ladder, and still writes its report and
// ledger record (DiagCode::RunInterrupted, degraded=true).
//   operon_cli ledger append --case I1 [--seed S] --out runs.jsonl
//   operon_cli ledger show runs.jsonl
//   operon_cli compare baseline.jsonl current.jsonl [--json]
//
// Exit code 0 on success, 1 on usage/input errors, 2 when routing left
// detection violations (never expected — the electrical fallback exists),
// when the stress harness observed a robustness breach, or when compare
// found semantic drift; 3 when compare found only a timing regression
// and --fail-on-timing was given.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "benchgen/benchgen.hpp"
#include "benchgen/corrupt.hpp"
#include "core/flow.hpp"
#include "core/report.hpp"
#include "core/verify.hpp"
#include "model/design_json.hpp"
#include "model/diagnostic.hpp"
#include "obs/events.hpp"
#include "obs/ledger.hpp"
#include "obs/resource.hpp"
#include "obs/sink.hpp"
#include "serve/protocol.hpp"
#include "serve/socket.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stop.hpp"
#include "util/strings.hpp"
#include "viz/render.hpp"

namespace {

using namespace operon;

/// Session-wide stop source the SIGINT/SIGTERM handlers flip. Runs
/// chain their own budget source to this token (OperonOptions::stop),
/// so an interrupt stops the pipeline at its next checkpoint and the
/// run still completes degraded — emitting its report and ledger
/// record — instead of dying mid-write.
util::StopSource& signal_stop_source() {
  static util::StopSource source;
  return source;
}

void handle_stop_signal(int) {
  // request_stop touches only atomics — async-signal-safe.
  signal_stop_source().request_stop(util::StopReason::Interrupt);
}

void install_signal_handlers() {
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  operon_cli gen    --case I1..I5 | --groups N [--bits-lo A "
               "--bits-hi B] [--seed S]  --out FILE\n"
               "  operon_cli info   --in FILE\n"
               "  operon_cli route  --in FILE [--solver lr|ilp|mip|portfolio] "
               "[--portfolio-order lr,ilp,... (member race order)] "
               "[--portfolio-lanes N (0 = one lane per member; wall-clock "
               "only)] [--portfolio-history LEDGER.jsonl (seed the race-order "
               "selector)] "
               "[--ilp-limit SEC] [--lm DB] [--threads N (0 = all cores; "
               "results identical at any N)] [--time-limit SEC (whole-run "
               "budget; trips to the degradation ladder, never throws)] "
               "[--stop-at-checkpoint N (deterministic replay of a budget "
               "trip)] [--watchdog-ms N (abort with a stall report when no "
               "checkpoint lands for N ms)] [--report FILE] [--svg FILE] "
               "[--per-net] [--no-timings (omit wall-clock fields from the "
               "report)] [--trace-out FILE (Chrome trace_event JSON)] "
               "[--metrics-out FILE (metrics registry JSON)] [--ledger-out "
               "FILE (append run records, JSONL)] [--heartbeat-ms N "
               "(periodic resource samples into the trace)]\n"
               "  operon_cli stress --faults [--seeds N] [--solver "
               "lr|ilp|mip|portfolio] [--threads N] [--time-limit-sweep (also re-run "
               "each clean seed with a deterministic early stop and verify "
               "the degraded plan)]  # fault-injection harness; exit "
               "2 on any robustness breach\n"
               "  operon_cli ledger append --case I1..I5 | --in FILE "
               "[--seed S] [--solver lr|ilp|mip|portfolio] [--ilp-limit SEC] [--lm DB] "
               "[--threads N]  --out LEDGER.jsonl\n"
               "  operon_cli ledger show LEDGER.jsonl\n"
               "  operon_cli submit --socket PATH [--case I1..I5 | --groups "
               "N [--bits-lo A --bits-hi B]] [--seed S] [--solver "
               "lr|ilp|mip|portfolio] [--portfolio-order lr,ilp,...] "
               "[--portfolio-lanes N] "
               "[--ilp-limit SEC] [--lm DB] [--time-limit SEC] "
               "[--stop-at-checkpoint N] [--tenant NAME] [--priority P] "
               "[--deadline SEC (wall-clock service deadline from "
               "admission; trips the run onto the degradation ladder)] "
               "[--retries N --retry-backoff-ms MS (reconnect with capped "
               "exponential backoff; re-sends only before the first "
               "response byte; exit 4 when the daemon stays unreachable)] "
               "[--wait]  # or --do status|result [--job N] [--wait] "
               "[--metrics (include per-job metric points + span summary)] "
               "| --do cancel [--job N] | --do stats [--prom (print the "
               "Prometheus text exposition)] | --do events [--tail N] | "
               "--do shutdown [--cancel-running]; talks to a running "
               "operon_serve, prints the raw JSON response\n"
               "  operon_cli top    --socket PATH [--interval-ms N] "
               "[--iterations N (0 = until interrupted)] [--events N]  "
               "# live daemon introspection: queue depth, in-flight, cache "
               "hit rate, per-stage timing deltas, recent events\n"
               "  operon_cli compare BASELINE.jsonl CURRENT.jsonl [--json] "
               "[--timing-ratio R] [--timing-min SEC] [--fail-on-timing]  "
               "# exit 2 on semantic drift, 3 on gated timing regression\n"
               "global: --log-level debug|info|warn|error|off (stderr "
               "diagnostic threshold)\n");
  return 1;
}

/// Parse the shared `--solver lr|ilp|mip|portfolio` flag plus the
/// portfolio knobs (--portfolio-order, --portfolio-lanes,
/// --portfolio-history); false = unknown solver name. Malformed
/// portfolio flags throw util::CheckError like other boundary errors.
bool parse_solver(const util::Cli& cli, core::OperonOptions& options) {
  const std::optional<core::SolverKind> kind =
      core::parse_solver_kind(cli.get("solver", "lr"));
  if (!kind.has_value()) return false;
  options.solver = *kind;
  if (cli.has("portfolio-order")) {
    options.portfolio.members =
        core::parse_portfolio_members(cli.get("portfolio-order", ""));
  }
  options.portfolio.lanes =
      static_cast<std::size_t>(cli.get_int("portfolio-lanes", 0));
  if (cli.has("portfolio-history")) {
    // Seed the race-order selector from an existing ledger; ordering is
    // a wall-clock concern, so any ledger (or none) gives the same
    // plan. Salvage read: a history ledger with a torn tail (live
    // daemon, crashed writer) still seeds from its parseable records.
    const std::string path = cli.get("portfolio-history", "");
    const obs::LedgerSalvage salvage = obs::read_ledger_salvage(path);
    OPERON_CHECK_MSG(!salvage.missing, "cannot open ledger '" << path << "'");
    if (salvage.skipped != 0) {
      OPERON_LOG(Warn) << "portfolio-history: skipped " << salvage.skipped
                       << " unparseable line(s) in '" << path << "'";
    }
    options.portfolio.history =
        codesign::PortfolioHistory::from_records(salvage.records);
  }
  return true;
}

/// One-line run summary on stderr (stdout stays byte-identical for
/// digest-based harnesses like stress).
void print_run_summary(const std::string& label, double power_pj,
                       std::size_t optical, std::size_t electrical,
                       bool degraded) {
  const obs::ResourceUsage usage = obs::sample_resource_usage();
  OPERON_LOG(Info) << "summary: " << label << " | "
                   << util::format("%.2f", power_pj) << " pJ/bit-cycle | "
                   << optical << " optical, " << electrical
                   << " electrical nets | degraded=" << (degraded ? 1 : 0)
                   << " | peak_rss="
                   << util::format("%.1f", usage.peak_rss_mb) << " MB";
}

void print_diagnostics(std::span<const model::Diagnostic> diagnostics) {
  for (const model::Diagnostic& diagnostic : diagnostics) {
    std::ostringstream os;
    os << diagnostic;
    std::printf("  %s\n", os.str().c_str());
  }
}

int cmd_gen(const util::Cli& cli) {
  const std::string out = cli.get("out", "");
  if (out.empty()) return usage();
  benchgen::BenchmarkSpec spec;
  if (cli.has("case")) {
    spec = benchgen::table1_spec(cli.get("case", "I1"));
  } else {
    spec.num_groups = static_cast<std::size_t>(cli.get_int("groups", 50));
    spec.bits_lo = static_cast<std::size_t>(cli.get_int("bits-lo", 2));
    spec.bits_hi = static_cast<std::size_t>(cli.get_int("bits-hi", 8));
  }
  if (cli.has("seed")) {
    spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  }
  const model::Design design = benchgen::generate_benchmark(spec);
  model::save_design(out, design);
  std::printf("wrote %s: %zu groups, %zu bits, %zu pins\n", out.c_str(),
              design.groups.size(), design.num_bits(), design.num_pins());
  return 0;
}

int cmd_info(const util::Cli& cli) {
  const std::string in = cli.get("in", "");
  if (in.empty()) return usage();
  const model::Design design = model::load_design(in);
  const std::vector<model::Diagnostic> diagnostics = model::validate(design);
  print_diagnostics(diagnostics);
  if (model::has_errors(diagnostics)) return 1;
  std::printf("design %s: chip %.0f x %.0f um, %zu groups, %zu bits, %zu "
              "pins\n",
              design.name.c_str(), design.chip.width(), design.chip.height(),
              design.groups.size(), design.num_bits(), design.num_pins());
  std::size_t max_bits = 0, multi_sink = 0;
  for (const auto& group : design.groups) {
    max_bits = std::max(max_bits, group.bits.size());
    for (const auto& bit : group.bits) {
      if (bit.sinks.size() > 1) ++multi_sink;
    }
  }
  std::printf("widest group: %zu bits; multi-sink bits: %zu\n", max_bits,
              multi_sink);
  return 0;
}

int cmd_route(const util::Cli& cli) {
  const std::string in = cli.get("in", "");
  if (in.empty()) return usage();
  const model::Design design = model::load_design(in);
  design.validate();

  core::OperonOptions options;
  if (!parse_solver(cli, options)) return usage();
  options.select.time_limit_s = cli.get_double("ilp-limit", 20.0);
  options.threads = cli.get_threads();
  if (cli.has("lm")) {
    options.params.optical.max_loss_db = cli.get_double("lm", 20.0);
  }
  options.run_time_limit_s = cli.get_double("time-limit", 0.0);
  options.stop_at_checkpoint =
      static_cast<std::uint64_t>(cli.get_int("stop-at-checkpoint", 0));
  options.stop = signal_stop_source().token();

  // Install the trace/metrics/ledger sink (a no-op when none of the
  // observability flags is given) so the run's spans, counters, and
  // ledger record land in it.
  obs::CliObservation observing(cli);
  obs::set_ledger_context(design.name, 0);

  const core::OperonResult result = [&] {
    // The watchdog only lives for the run itself: checkpoint progress
    // is forwarded up to the signal token, and a stage that stops
    // polling gets its span stack and metrics dumped before the abort.
    std::optional<obs::Watchdog> watchdog;
    const int watchdog_ms = cli.get_int("watchdog-ms", 0);
    if (watchdog_ms > 0) {
      watchdog.emplace(options.stop, std::chrono::milliseconds(watchdog_ms));
    }
    return core::run_operon(design, options);
  }();
  if (result.stats.trip_checkpoint != 0) {
    OPERON_LOG(Warn) << "run budget tripped at checkpoint "
                     << result.stats.trip_checkpoint << " (stage "
                     << result.stats.trip_stage << ")";
  }
  print_run_summary(design.name, result.stats.power_pj,
                    result.stats.optical_nets, result.stats.electrical_nets,
                    result.degraded);
  std::printf("%s: %.2f pJ/bit-cycle | %zu optical, %zu electrical nets | "
              "worst loss %.2f / %.1f dB | WDMs %zu -> %zu | %.2f s%s\n",
              design.name.c_str(), result.stats.power_pj,
              result.stats.optical_nets, result.stats.electrical_nets,
              result.violations.worst_loss_db,
              options.params.optical.max_loss_db,
              result.wdm_plan.initial_wdms, result.wdm_plan.final_wdms,
              result.stats.times.total_s(),
              result.degraded ? " | DEGRADED" : "");
  print_diagnostics(result.diagnostics);

  if (cli.has("report")) {
    core::ReportOptions report;
    report.per_net = cli.get_bool("per-net", false);
    report.timings = !cli.get_bool("no-timings", false);
    core::write_report(cli.get("report", "report.json"), design, result,
                       options, report);
    std::printf("report: %s\n", cli.get("report", "report.json").c_str());
  }
  if (cli.has("svg")) {
    const std::string path = cli.get("svg", "routed.svg");
    std::ofstream os(path);
    os << viz::render_with_wdms(design.chip, result.sets, result.selection,
                                result.wdm_plan);
    std::printf("svg: %s\n", path.c_str());
  }
  return result.violations.clean() ? 0 : 2;
}

// -- stress: seeded fault-injection harness -------------------------------
//
// Every seed builds a small benchmark, applies one enumerable corruption
// (cycling through benchgen::all_fault_kinds) to the in-memory design,
// and independently byte-corrupts its text and JSON serializations. The
// contract: the pipeline either throws util::CheckError (a structured
// rejection) or completes with a plan that core::verify_result accepts.
// Anything else — an unexpected exception type, a verifier complaint, a
// Reject-expected fault that sails through, a Complete-expected fault
// that gets rejected — is a breach. Output is fully deterministic (no
// timing, no pointers), so stdout is byte-identical at any --threads
// value and the trailing util::fnv1a digest can be diffed across runs.

const char* check_parse_text(const std::string& text, std::size_t* breaches) {
  try {
    std::istringstream is(text);
    const model::Design parsed = model::read_design(is);
    return model::has_errors(model::validate(parsed)) ? "invalid" : "parsed";
  } catch (const util::CheckError&) {
    return "rejected";
  } catch (const std::exception&) {
    ++*breaches;
    return "BREACH";
  }
}

const char* check_parse_json(const std::string& text, std::size_t* breaches) {
  try {
    const model::Design parsed = model::design_from_json(text);
    return model::has_errors(model::validate(parsed)) ? "invalid" : "parsed";
  } catch (const util::CheckError&) {
    return "rejected";
  } catch (const std::exception&) {
    ++*breaches;
    return "BREACH";
  }
}

int cmd_stress(const util::Cli& cli) {
  if (!cli.get_bool("faults", false)) return usage();
  const std::size_t seeds =
      static_cast<std::size_t>(cli.get_int("seeds", 100));

  core::OperonOptions options;
  if (!parse_solver(cli, options)) return usage();
  options.select.time_limit_s = cli.get_double("ilp-limit", 5.0);
  options.threads = cli.get_threads();
  options.stop = signal_stop_source().token();
  // Early-stop robustness sweep: re-run each seed's clean design with a
  // deterministic per-seed stop_at_checkpoint (never wall-clock, so the
  // digest stays byte-identical at any --threads value) and hold the
  // early-stopped plan to core::verify_result.
  const bool time_limit_sweep = cli.get_bool("time-limit-sweep", false);

  // File-only sink: never touches stdout, so the digest stays stable.
  obs::CliObservation observing(cli);

  const std::vector<benchgen::FaultKind> kinds = benchgen::all_fault_kinds();
  std::size_t rejected = 0, completed = 0, degraded = 0, breaches = 0;
  double total_power_pj = 0.0;
  std::size_t total_optical = 0, total_electrical = 0;
  std::uint64_t digest = 1469598103934665603ULL;

  for (std::size_t s = 0; s < seeds; ++s) {
    benchgen::BenchmarkSpec spec;
    spec.name = "stress" + std::to_string(s);
    spec.num_groups = 3 + s % 3;
    spec.bits_lo = 1;
    spec.bits_hi = 2;
    spec.seed = 1000 + s;
    const model::Design base = benchgen::generate_benchmark(spec);
    const benchgen::FaultKind kind = kinds[s % kinds.size()];
    const benchgen::FaultExpectation expected =
        benchgen::fault_expectation(kind);
    util::Rng rng(0x57e55ULL * (s + 1));
    const model::Design bad = benchgen::corrupt_design(base, kind, rng);

    const char* pipeline = nullptr;
    try {
      const core::OperonResult result = core::run_operon(bad, options);
      const std::vector<model::Diagnostic> problems =
          core::verify_result(result, options);
      total_power_pj += result.stats.power_pj;
      total_optical += result.stats.optical_nets;
      total_electrical += result.stats.electrical_nets;
      if (!problems.empty()) {
        pipeline = "BREACH";  // completed, but the plan does not verify
        ++breaches;
      } else if (expected == benchgen::FaultExpectation::Reject) {
        pipeline = "BREACH";  // a malformed input was silently accepted
        ++breaches;
      } else {
        pipeline = result.degraded ? "degraded" : "completed";
        ++(result.degraded ? degraded : completed);
      }
    } catch (const util::CheckError&) {
      if (expected == benchgen::FaultExpectation::Complete) {
        pipeline = "BREACH";  // a processable input was rejected
        ++breaches;
      } else {
        pipeline = "rejected";
        ++rejected;
      }
    } catch (const std::exception&) {
      pipeline = "BREACH";  // only CheckError is a sanctioned rejection
      ++breaches;
    }

    std::ostringstream text_os;
    model::write_design(text_os, base);
    const char* text =
        check_parse_text(benchgen::corrupt_text(text_os.str(), rng),
                         &breaches);
    const char* json =
        check_parse_json(benchgen::corrupt_json(model::design_to_json(base),
                                                rng),
                         &breaches);

    std::string sweep = "-";
    if (time_limit_sweep) {
      core::OperonOptions sweep_options = options;
      sweep_options.stop_at_checkpoint = 1 + (s * 7) % 64;
      try {
        const core::OperonResult early = core::run_operon(base, sweep_options);
        const bool verified =
            core::verify_result(early, sweep_options).empty();
        // A trip must mark the run degraded; a short run may simply
        // finish before the replay checkpoint, which is fine.
        const bool consistent =
            early.stats.trip_checkpoint == 0 || early.degraded;
        if (verified && consistent) {
          sweep = early.stats.trip_checkpoint != 0
                      ? util::format("tripped@%llu",
                                     static_cast<unsigned long long>(
                                         early.stats.trip_checkpoint))
                      : "completed";
        } else {
          sweep = "BREACH";  // early stop broke the plan contract
          ++breaches;
        }
      } catch (const util::CheckError&) {
        sweep = "BREACH";  // an early stop must degrade, never throw
        ++breaches;
      }
    }

    char line[224];
    std::snprintf(line, sizeof(line),
                  "seed=%zu fault=%s pipeline=%s text=%s json=%s sweep=%s", s,
                  std::string(benchgen::fault_name(kind)).c_str(), pipeline,
                  text, json, sweep.c_str());
    digest = util::fnv1a(line, digest);
    std::printf("%s\n", line);
  }

  std::printf("stress: %zu seeds | %zu rejected, %zu completed, %zu degraded "
              "| %zu breaches | digest=%016llx\n",
              seeds, rejected, completed, degraded, breaches,
              static_cast<unsigned long long>(digest));
  print_run_summary(util::format("stress(%zu seeds)", seeds), total_power_pj,
                    total_optical, total_electrical, degraded > 0);
  return breaches == 0 ? 0 : 2;
}

// -- ledger / compare: the cross-run regression sentinel -------------------

int cmd_ledger(const util::Cli& cli) {
  // Cli skips argv[0] ("ledger"), so positional()[0] is the action.
  const std::vector<std::string>& pos = cli.positional();
  if (pos.empty()) return usage();
  const std::string& action = pos[0];

  if (action == "show") {
    if (pos.size() < 2) return usage();
    const std::vector<obs::LedgerRecord> records = obs::read_ledger(pos[1]);
    for (const obs::LedgerRecord& record : records) {
      std::printf("%s seed=%llu solver=%s threads=%zu degraded=%d "
                  "metrics=%zu timings=%zu diagnostics=%zu git=%s "
                  "options=%s\n",
                  record.case_id.c_str(),
                  static_cast<unsigned long long>(record.seed),
                  record.solver.c_str(), record.threads,
                  record.degraded ? 1 : 0, record.metrics.size(),
                  record.timings.size(), record.diagnostics.size(),
                  record.git.c_str(), record.options.c_str());
    }
    std::printf("%zu record(s)\n", records.size());
    return 0;
  }

  if (action != "append") return usage();
  const std::string out = cli.get("out", "");
  if (out.empty()) return usage();

  model::Design design;
  std::string case_id;
  std::uint64_t seed = 0;
  if (cli.has("in")) {
    design = model::load_design(cli.get("in", ""));
    case_id = design.name;
  } else {
    benchgen::BenchmarkSpec spec = benchgen::table1_spec(cli.get("case", "I1"));
    if (cli.has("seed")) {
      spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    }
    case_id = cli.get("case", "I1");
    seed = spec.seed;
    design = benchgen::generate_benchmark(spec);
  }
  design.validate();

  core::OperonOptions options;
  if (!parse_solver(cli, options)) return usage();
  options.select.time_limit_s = cli.get_double("ilp-limit", 20.0);
  options.threads = cli.get_threads();
  if (cli.has("lm")) {
    options.params.optical.max_loss_db = cli.get_double("lm", 20.0);
  }

  obs::LedgerCollector collector;
  {
    const obs::ScopedLedger scope(collector);
    obs::set_ledger_context(case_id, seed);
    const core::OperonResult result = core::run_operon(design, options);
    print_run_summary(case_id, result.stats.power_pj,
                      result.stats.optical_nets, result.stats.electrical_nets,
                      result.degraded);
  }
  for (const obs::LedgerRecord& record : collector.records()) {
    obs::append_ledger_record(out, record);
  }
  std::printf("appended %zu record(s) to %s\n", collector.size(), out.c_str());
  return 0;
}

int cmd_submit(const util::Cli& cli) {
  // Client mode for the operon_serve daemon (see tools/operon_serve.cpp
  // and DESIGN.md "Service architecture"): one request per invocation,
  // raw response JSON on stdout so scripts can parse it. The op
  // defaults to submit; --do selects the others.
  const std::string socket_path = cli.get("socket", "");
  if (socket_path.empty()) return usage();
  const std::string op = cli.get("do", "submit");

  serve::Request request;
  if (op == "submit") {
    request.op = serve::Op::Submit;
    serve::JobSpec& spec = request.spec;
    if (cli.has("groups")) {
      spec.groups = static_cast<std::size_t>(cli.get_int("groups", 0));
      spec.bits_lo = static_cast<std::size_t>(cli.get_int("bits-lo", 2));
      spec.bits_hi = static_cast<std::size_t>(cli.get_int("bits-hi", 8));
    } else {
      spec.case_id = cli.get("case", "I1");
    }
    spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    spec.tenant = cli.get("tenant", "default");
    spec.priority = static_cast<int>(cli.get_int("priority", 0));
    spec.solver = cli.get("solver", "lr");
    if (cli.has("portfolio-order")) {
      spec.portfolio_order = cli.get("portfolio-order", "");
    }
    spec.portfolio_lanes =
        static_cast<std::size_t>(cli.get_int("portfolio-lanes", 0));
    spec.ilp_limit_s = cli.get_double("ilp-limit", 20.0);
    if (cli.has("lm")) spec.max_loss_db = cli.get_double("lm", 20.0);
    spec.time_limit_s = cli.get_double("time-limit", 0.0);
    spec.stop_at_checkpoint =
        static_cast<std::uint64_t>(cli.get_int("stop-at-checkpoint", 0));
    // Wall-clock service deadline, counted from admission (queue wait
    // included). Arms the job's StopSource server-side; never part of
    // the job key, so it cannot split the result cache.
    spec.deadline_s = cli.get_double("deadline", 0.0);
    request.wait = cli.get_bool("wait", false);
  } else if (op == "status" || op == "result" || op == "cancel") {
    request.op = op == "status" ? serve::Op::Status
                 : op == "result" ? serve::Op::Result
                                  : serve::Op::Cancel;
    request.job = static_cast<std::uint64_t>(cli.get_int("job", 0));
    request.wait = cli.get_bool("wait", false);
    request.with_metrics = cli.get_bool("metrics", false);
  } else if (op == "stats") {
    request.op = serve::Op::Stats;
    request.prom = cli.get_bool("prom", false);
  } else if (op == "events") {
    request.op = serve::Op::Events;
    request.tail = static_cast<std::uint64_t>(cli.get_int("tail", 0));
  } else if (op == "shutdown") {
    request.op = serve::Op::Shutdown;
    request.cancel_running = cli.get_bool("cancel-running", false);
  } else {
    return usage();
  }

  serve::RetryPolicy retry;
  retry.retries = static_cast<std::size_t>(cli.get_int("retries", 0));
  retry.backoff_ms = static_cast<int>(cli.get_int("retry-backoff-ms", 100));
  try {
    serve::Client client(socket_path, retry);
    const std::string response_line =
        client.call_line(serve::to_json_line(request));
    if (client.retries_used() != 0) {
      // Client-side retry telemetry; stderr so stdout stays one JSON
      // line for scripts.
      OPERON_LOG(Warn) << "submit: recovered after " << client.retries_used()
                       << " retry(ies) to " << socket_path;
    }
    const serve::Response response = serve::parse_response(response_line);
    if (request.prom && response.ok) {
      // The scrape surface: raw Prometheus text (already newline-real
      // after parsing), not the JSON envelope.
      std::fputs(response.prom.c_str(), stdout);
    } else {
      std::printf("%s\n", response_line.c_str());
    }
    return response.ok ? 0 : 1;
  } catch (const util::CheckError& error) {
    // Transport failure after retries are exhausted (connect refused,
    // daemon died mid-exchange). Scripts parse stdout, so the failure
    // is still one structured JSON line — with a distinct exit code so
    // "daemon unreachable" is separable from "daemon said no" (1).
    std::printf("%s\n", serve::to_json_line(serve::error_response(
                            "connect-failed", error.what()))
                            .c_str());
    return 4;
  }
}

// -- top: live daemon introspection ---------------------------------------

/// Poll the daemon's stats + events ops and render an operator view:
/// queue depth, in-flight, cache hit rate, per-stage serve.job.time.*
/// deltas since the previous poll, and the newest structured events.
/// --iterations bounds the loop for CI one-shots (0 = poll until the
/// daemon goes away or the process is interrupted).
int cmd_top(const util::Cli& cli) {
  const std::string socket_path = cli.get("socket", "");
  if (socket_path.empty()) return usage();
  const int interval_ms = static_cast<int>(cli.get_int("interval-ms", 1000));
  const int iterations = static_cast<int>(cli.get_int("iterations", 0));
  const std::uint64_t event_tail =
      static_cast<std::uint64_t>(cli.get_int("events", 5));

  serve::Client client(socket_path);
  serve::Request stats_request;
  stats_request.op = serve::Op::Stats;
  serve::Request events_request;
  events_request.op = serve::Op::Events;
  events_request.tail = event_tail;

  // Previous-poll histogram state, keyed by stage name: the deltas are
  // what moved since the last screenful.
  std::map<std::string, std::pair<std::uint64_t, double>> last_stage;
  double last_event_ts_us = 0.0;
  for (int poll = 0; iterations == 0 || poll < iterations; ++poll) {
    if (poll != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    const serve::Response stats = serve::parse_response(
        client.call_line(serve::to_json_line(stats_request)));
    if (!stats.ok) {
      OPERON_LOG(Error) << "top: stats request failed: " << stats.error
                        << (stats.detail.empty() ? "" : " — ")
                        << stats.detail;
      return 1;
    }
    obs::MetricsSnapshot snapshot;
    const util::JsonValue doc = util::parse_json(stats.stats_json);
    for (const util::JsonValue& item : doc.at("metrics").items()) {
      snapshot.points.push_back(obs::metric_point_from_json(item));
    }
    const std::uint64_t hits = snapshot.counter("serve.cache.hit");
    const std::uint64_t misses = snapshot.counter("serve.cache.miss");
    const std::uint64_t lookups = hits + misses;
    std::printf("queue=%.0f inflight=%.0f submitted=%llu completed=%llu "
                "canceled=%llu failed=%llu | cache %llu/%llu hit (%.0f%%)\n",
                snapshot.gauge("serve.queue.depth"),
                snapshot.gauge("serve.jobs.inflight"),
                static_cast<unsigned long long>(
                    snapshot.counter("serve.submitted")),
                static_cast<unsigned long long>(
                    snapshot.counter("serve.jobs.completed")),
                static_cast<unsigned long long>(
                    snapshot.counter("serve.jobs.canceled")),
                static_cast<unsigned long long>(
                    snapshot.counter("serve.jobs.failed")),
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(lookups),
                lookups == 0 ? 0.0 : 100.0 * hits / lookups);
    for (const obs::MetricPoint& point : snapshot.points) {
      constexpr std::string_view kStagePrefix = "serve.job.time.";
      if (point.kind != obs::MetricKind::Histogram ||
          point.name.rfind(kStagePrefix, 0) != 0) {
        continue;
      }
      auto& prev = last_stage[point.name];
      const std::uint64_t jobs = point.count - prev.first;
      const double seconds = point.value - prev.second;
      prev = {point.count, point.value};
      if (jobs == 0) continue;
      std::printf("  stage %-12s +%llu job(s)  +%.3f s\n",
                  point.name.substr(kStagePrefix.size()).c_str(),
                  static_cast<unsigned long long>(jobs), seconds);
    }

    const serve::Response events = serve::parse_response(
        client.call_line(serve::to_json_line(events_request)));
    if (events.ok && !events.events_json.empty()) {
      double max_seen = last_event_ts_us;
      // Named: the range-for would dangle on a temporary's items().
      const util::JsonValue events_doc = util::parse_json(events.events_json);
      for (const util::JsonValue& item : events_doc.items()) {
        const obs::Event event = obs::event_from_json(item);
        // ts_us is monotonic across the daemon's whole stream, so it
        // dedups events already shown on the previous poll even though
        // seq restarts per source.
        if (event.ts_us <= last_event_ts_us) continue;
        max_seen = std::max(max_seen, event.ts_us);
        std::printf("  event %s\n", obs::render_event(event).c_str());
      }
      last_event_ts_us = max_seen;
    }
    std::fflush(stdout);
  }
  return 0;
}

int cmd_compare(const util::Cli& cli) {
  // Cli skips argv[0] ("compare"): positional() holds the two ledgers.
  const std::vector<std::string>& pos = cli.positional();
  if (pos.size() < 2) return usage();
  const std::vector<obs::LedgerRecord> baseline = obs::read_ledger(pos[0]);
  const std::vector<obs::LedgerRecord> current = obs::read_ledger(pos[1]);
  obs::CompareOptions compare;
  compare.timing_ratio = cli.get_double("timing-ratio", compare.timing_ratio);
  compare.timing_min = cli.get_double("timing-min", compare.timing_min);
  const obs::CompareResult result =
      obs::compare_ledgers(baseline, current, compare);

  if (cli.get_bool("json", false)) {
    std::printf("%s\n", result.to_json().c_str());
  } else {
    std::printf("compare: %s | %zu pair(s) matched\n",
                std::string(result.verdict()).c_str(), result.matched);
    for (const std::string& key : result.only_baseline) {
      std::printf("  only in baseline: %s\n", key.c_str());
    }
    for (const std::string& key : result.only_current) {
      std::printf("  only in current:  %s\n", key.c_str());
    }
    for (const obs::CompareFinding& finding : result.semantic) {
      std::printf("  semantic %s: %s\n", finding.key.c_str(),
                  finding.detail.c_str());
    }
    for (const obs::CompareFinding& finding : result.timing) {
      std::printf("  timing %s: %s\n", finding.key.c_str(),
                  finding.detail.c_str());
    }
  }
  if (!result.semantic_ok()) return 2;
  if (!result.timing.empty() && cli.get_bool("fail-on-timing", false)) {
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const util::Cli cli(argc - 1, argv + 1);
  if (cli.has("log-level")) {
    const std::string name = cli.get("log-level", "info");
    const std::optional<util::LogLevel> level = util::parse_log_level(name);
    if (!level.has_value()) {
      std::fprintf(stderr,
                   "operon_cli: unknown --log-level '%s' (want "
                   "debug|info|warn|error|off)\n",
                   name.c_str());
      return usage();
    }
    util::set_log_threshold(*level);
  }
  try {
    if (command == "gen") return cmd_gen(cli);
    if (command == "info") return cmd_info(cli);
    if (command == "route") {
      install_signal_handlers();
      return cmd_route(cli);
    }
    if (command == "stress") {
      install_signal_handlers();
      return cmd_stress(cli);
    }
    if (command == "ledger") return cmd_ledger(cli);
    if (command == "submit") return cmd_submit(cli);
    if (command == "top") return cmd_top(cli);
    if (command == "compare") return cmd_compare(cli);
  } catch (const std::exception& error) {
    OPERON_LOG(Error) << "operon_cli: " << error.what();
    return 1;
  }
  return usage();
}
