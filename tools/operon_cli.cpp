// operon_cli — command-line front end for the OPERON library.
//
//   operon_cli gen   --case I2 --out design.txt        # or --groups/--bits
//   operon_cli info  --in design.txt
//   operon_cli route --in design.txt [--solver lr|ilp|mip]
//                    [--ilp-limit 20] [--lm 20] [--report out.json]
//                    [--svg out.svg] [--per-net]
//
// Exit code 0 on success, 1 on usage errors, 2 when routing left
// detection violations (never expected — the electrical fallback exists).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "benchgen/benchgen.hpp"
#include "core/flow.hpp"
#include "core/report.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "viz/render.hpp"

namespace {

using namespace operon;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  operon_cli gen   --case I1..I5 | --groups N [--bits-lo A "
               "--bits-hi B] [--seed S]  --out FILE\n"
               "  operon_cli info  --in FILE\n"
               "  operon_cli route --in FILE [--solver lr|ilp|mip] "
               "[--ilp-limit SEC] [--lm DB] [--threads N (0 = all cores; "
               "results identical at any N)] [--report FILE] [--svg FILE] "
               "[--per-net]\n");
  return 1;
}

int cmd_gen(const util::Cli& cli) {
  const std::string out = cli.get("out", "");
  if (out.empty()) return usage();
  benchgen::BenchmarkSpec spec;
  if (cli.has("case")) {
    spec = benchgen::table1_spec(cli.get("case", "I1"));
  } else {
    spec.num_groups = static_cast<std::size_t>(cli.get_int("groups", 50));
    spec.bits_lo = static_cast<std::size_t>(cli.get_int("bits-lo", 2));
    spec.bits_hi = static_cast<std::size_t>(cli.get_int("bits-hi", 8));
  }
  if (cli.has("seed")) {
    spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  }
  const model::Design design = benchgen::generate_benchmark(spec);
  model::save_design(out, design);
  std::printf("wrote %s: %zu groups, %zu bits, %zu pins\n", out.c_str(),
              design.groups.size(), design.num_bits(), design.num_pins());
  return 0;
}

int cmd_info(const util::Cli& cli) {
  const std::string in = cli.get("in", "");
  if (in.empty()) return usage();
  const model::Design design = model::load_design(in);
  design.validate();
  std::printf("design %s: chip %.0f x %.0f um, %zu groups, %zu bits, %zu "
              "pins\n",
              design.name.c_str(), design.chip.width(), design.chip.height(),
              design.groups.size(), design.num_bits(), design.num_pins());
  std::size_t max_bits = 0, multi_sink = 0;
  for (const auto& group : design.groups) {
    max_bits = std::max(max_bits, group.bits.size());
    for (const auto& bit : group.bits) {
      if (bit.sinks.size() > 1) ++multi_sink;
    }
  }
  std::printf("widest group: %zu bits; multi-sink bits: %zu\n", max_bits,
              multi_sink);
  return 0;
}

int cmd_route(const util::Cli& cli) {
  const std::string in = cli.get("in", "");
  if (in.empty()) return usage();
  const model::Design design = model::load_design(in);
  design.validate();

  core::OperonOptions options;
  const std::string solver = cli.get("solver", "lr");
  if (solver == "ilp") options.solver = core::SolverKind::IlpExact;
  else if (solver == "mip") options.solver = core::SolverKind::MipLiteral;
  else if (solver == "lr") options.solver = core::SolverKind::Lr;
  else return usage();
  options.select.time_limit_s = cli.get_double("ilp-limit", 20.0);
  options.threads = cli.get_threads();
  if (cli.has("lm")) {
    options.params.optical.max_loss_db = cli.get_double("lm", 20.0);
  }

  const core::OperonResult result = core::run_operon(design, options);
  std::printf("%s: %.2f pJ/bit-cycle | %zu optical, %zu electrical nets | "
              "worst loss %.2f / %.1f dB | WDMs %zu -> %zu | %.2f s\n",
              design.name.c_str(), result.power_pj, result.optical_nets,
              result.electrical_nets, result.violations.worst_loss_db,
              options.params.optical.max_loss_db,
              result.wdm_plan.initial_wdms, result.wdm_plan.final_wdms,
              result.times.total_s());

  if (cli.has("report")) {
    core::write_report(cli.get("report", "report.json"), design, result,
                       options, cli.get_bool("per-net", false));
    std::printf("report: %s\n", cli.get("report", "report.json").c_str());
  }
  if (cli.has("svg")) {
    const std::string path = cli.get("svg", "routed.svg");
    std::ofstream os(path);
    os << viz::render_with_wdms(design.chip, result.sets, result.selection,
                                result.wdm_plan);
    std::printf("svg: %s\n", path.c_str());
  }
  return result.violations.clean() ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const util::Cli cli(argc - 1, argv + 1);
  try {
    if (command == "gen") return cmd_gen(cli);
    if (command == "info") return cmd_info(cli);
    if (command == "route") return cmd_route(cli);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return usage();
}
