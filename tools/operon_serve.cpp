// operon_serve — JSONL-over-Unix-socket daemon for OPERON runs.
//
//   operon_serve --socket /tmp/operon.sock [--ledger runs.jsonl]
//                [--workers N (executor threads; 0 = all cores)]
//                [--job-threads N (per-job --threads; 0 = all cores)]
//                [--queue-limit N (backpressure bound; 0 = unbounded)]
//                [--watchdog-ms N (per-job stall abort; 0 = off)]
//                [--trace-dir DIR (one Chrome trace per computed job)]
//                [--events-out FILE (append every event as JSONL)]
//                [--events-ring N (flight-recorder size, default 256)]
//                [--journal FILE (durable job journal: accepted/settled)]
//                [--recover (replay the journal; re-enqueue unsettled jobs)]
//                [--tenant-max-queued N (per-tenant queued quota; 0 = off)]
//                [--tenant-max-inflight N (per-tenant outstanding quota)]
//                [--log-level debug|info|warn|error|off]
//
// Protocol (one JSON object per line, one response line per request):
//   {"op":"submit","case":"I1","seed":7}            queue a Table 1 run
//   {"op":"submit","groups":40,"bits_lo":2,...}     queue a generator run
//   {"op":"status","job":3} / {"op":"result","job":3,"wait":true}
//   {"op":"status","job":3,"with_metrics":true}     + per-job metrics/spans
//   {"op":"cancel","job":3}                         stop at next checkpoint
//   {"op":"stats"} / {"op":"stats","prom":true}     serve.* metrics
//   {"op":"events","tail":50}                       recent structured events
//   {"op":"shutdown","cancel_running":false}        drain and exit
//
// The ledger file is the persistent result store: it is warmed into the
// result cache at startup, every completed job appends one record, and
// a submit whose (case, seed, options-fingerprint) key is already
// present settles instantly from the cache (`cached: true`). See
// DESIGN.md "Service architecture".
//
// SIGINT/SIGTERM cancel all jobs at their next checkpoint (each settles
// with a degraded run-interrupted record), dump the flight recorder
// (recent events + open spans) to stderr, and exit cleanly.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>

#include "obs/events.hpp"
#include "serve/server.hpp"
#include "serve/socket.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/stop.hpp"

namespace {

using namespace operon;

util::StopSource& signal_stop_source() {
  static util::StopSource source;
  return source;
}

void handle_stop_signal(int) {
  // request_stop touches only atomics — async-signal-safe.
  signal_stop_source().request_stop(util::StopReason::Interrupt);
}

int usage() {
  // Raw stderr on purpose: usage is the answer to a malformed command
  // line, not a leveled diagnostic.
  std::fprintf(stderr,
               "usage: operon_serve --socket PATH [--ledger FILE] "
               "[--workers N] [--job-threads N] [--queue-limit N] "
               "[--watchdog-ms N] [--trace-dir DIR] [--events-out FILE] "
               "[--events-ring N] [--journal FILE] [--recover] "
               "[--tenant-max-queued N] [--tenant-max-inflight N] "
               "[--log-level LEVEL]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (!cli.has("socket")) return usage();
  if (cli.has("log-level")) {
    const std::string name = cli.get("log-level", "info");
    const std::optional<util::LogLevel> level = util::parse_log_level(name);
    if (!level.has_value()) {
      std::fprintf(stderr,
                   "operon_serve: unknown --log-level '%s' (want "
                   "debug|info|warn|error|off)\n",
                   name.c_str());
      return usage();
    }
    util::set_log_threshold(*level);
  }
  try {
    serve::ServerConfig config;
    config.ledger_path = cli.get("ledger", "");
    config.workers = static_cast<std::size_t>(cli.get_int("workers", 1));
    config.job_threads =
        static_cast<std::size_t>(cli.get_int("job-threads", 1));
    config.queue_limit =
        static_cast<std::size_t>(cli.get_int("queue-limit", 64));
    config.watchdog_ms = static_cast<int>(cli.get_int("watchdog-ms", 0));
    config.trace_dir = cli.get("trace-dir", "");
    config.events_path = cli.get("events-out", "");
    config.events_capacity =
        static_cast<std::size_t>(cli.get_int("events-ring", 256));
    config.journal_path = cli.get("journal", "");
    config.recover = cli.get_bool("recover", false);
    config.tenant_max_queued =
        static_cast<std::size_t>(cli.get_int("tenant-max-queued", 0));
    config.tenant_max_inflight =
        static_cast<std::size_t>(cli.get_int("tenant-max-inflight", 0));
    config.session_stop = signal_stop_source().token();

    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);

    serve::Server server(config);
    // The daemon log is the process-wide ambient event log: OPERON_LOG
    // lines (via the bridge) and watchdog stall reports join the same
    // stream the `events` op serves.
    const obs::ScopedEventLog ambient_events(server.events_log());
    serve::SocketServer socket(server, cli.get("socket", ""));
    OPERON_LOG(Info) << "operon_serve: listening on " << socket.path()
                     << " (ledger: "
                     << (config.ledger_path.empty() ? "<none>"
                                                    : config.ledger_path)
                     << ")";

    std::thread acceptor([&] { socket.run(); });
    // request_stop only *pends* a stop; it is honored at a numbered
    // checkpoint poll. The daemon loop is that poll: a session-local
    // source chained to the signal source trips here (never on the
    // signal source itself, whose token the jobs chain to).
    util::StopSource session_source;
    session_source.chain(signal_stop_source().token());
    util::StopToken session = session_source.token();
    while (!server.draining() && !session.checkpoint("serve.session")) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (session.stopped()) {
      // Flight recorder first: the moments before the interrupt, while
      // the jobs it names are still live.
      std::fputs(server.flight_recorder(/*tail=*/64).c_str(), stderr);
      std::fflush(stderr);
    }

    // A signal cancels everything at the next checkpoint; a protocol
    // shutdown already applied its own cancel_running choice in
    // handle(). Drain the server BEFORE closing connections so blocked
    // wait=true requests settle and get their responses.
    server.shutdown(/*cancel_running=*/session.stopped());
    socket.stop();
    acceptor.join();
    OPERON_LOG(Info) << "operon_serve: drained ("
                     << server.records_appended() << " records appended)";
    return 0;
  } catch (const std::exception& error) {
    OPERON_LOG(Error) << "operon_serve: " << error.what();
    return 1;
  }
}
