// operon_serve — JSONL-over-Unix-socket daemon for OPERON runs.
//
//   operon_serve --socket /tmp/operon.sock [--ledger runs.jsonl]
//                [--workers N (executor threads; 0 = all cores)]
//                [--job-threads N (per-job --threads; 0 = all cores)]
//                [--queue-limit N (backpressure bound; 0 = unbounded)]
//                [--watchdog-ms N (per-job stall abort; 0 = off)]
//
// Protocol (one JSON object per line, one response line per request):
//   {"op":"submit","case":"I1","seed":7}            queue a Table 1 run
//   {"op":"submit","groups":40,"bits_lo":2,...}     queue a generator run
//   {"op":"status","job":3} / {"op":"result","job":3,"wait":true}
//   {"op":"cancel","job":3}                         stop at next checkpoint
//   {"op":"stats"}                                  serve.* metrics
//   {"op":"shutdown","cancel_running":false}        drain and exit
//
// The ledger file is the persistent result store: it is warmed into the
// result cache at startup, every completed job appends one record, and
// a submit whose (case, seed, options-fingerprint) key is already
// present settles instantly from the cache (`cached: true`). See
// DESIGN.md "Service architecture".
//
// SIGINT/SIGTERM cancel all jobs at their next checkpoint (each settles
// with a degraded run-interrupted record) and exit cleanly.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include "serve/server.hpp"
#include "serve/socket.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/stop.hpp"

namespace {

using namespace operon;

util::StopSource& signal_stop_source() {
  static util::StopSource source;
  return source;
}

void handle_stop_signal(int) {
  // request_stop touches only atomics — async-signal-safe.
  signal_stop_source().request_stop(util::StopReason::Interrupt);
}

int usage() {
  std::fprintf(stderr,
               "usage: operon_serve --socket PATH [--ledger FILE] "
               "[--workers N] [--job-threads N] [--queue-limit N] "
               "[--watchdog-ms N]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (!cli.has("socket")) return usage();
  try {
    serve::ServerConfig config;
    config.ledger_path = cli.get("ledger", "");
    config.workers = static_cast<std::size_t>(cli.get_int("workers", 1));
    config.job_threads =
        static_cast<std::size_t>(cli.get_int("job-threads", 1));
    config.queue_limit =
        static_cast<std::size_t>(cli.get_int("queue-limit", 64));
    config.watchdog_ms = static_cast<int>(cli.get_int("watchdog-ms", 0));
    config.session_stop = signal_stop_source().token();

    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);

    serve::Server server(config);
    serve::SocketServer socket(server, cli.get("socket", ""));
    std::fprintf(stderr, "operon_serve: listening on %s (ledger: %s)\n",
                 socket.path().c_str(),
                 config.ledger_path.empty() ? "<none>"
                                            : config.ledger_path.c_str());

    std::thread acceptor([&] { socket.run(); });
    const util::StopToken session = signal_stop_source().token();
    while (!server.draining() && !session.stopped()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }

    // A signal cancels everything at the next checkpoint; a protocol
    // shutdown already applied its own cancel_running choice in
    // handle(). Drain the server BEFORE closing connections so blocked
    // wait=true requests settle and get their responses.
    server.shutdown(/*cancel_running=*/session.stopped());
    socket.stop();
    acceptor.join();
    std::fprintf(stderr, "operon_serve: drained (%zu records appended)\n",
                 server.records_appended());
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "operon_serve: error: %s\n", error.what());
    return 1;
  }
}
